"""Fast smoke test of the paper's headline claims.

A one-file sanity pass over the reproduction's core results at small
sizes (the full-size sweeps with calibrated thresholds live under
``benchmarks/``).  If this file passes, the engine, both protocols, and
the baseline still behave like the paper says they should.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import make_env, matrix_buffers, mvapich_pingpong, pingpong
from repro.gpu_engine.engine import EngineOptions
from repro.workloads.matrices import (
    MatrixWorkload,
    lower_triangular_type,
    stair_triangular_type,
    submatrix_type,
)

N = 1024


@pytest.fixture(scope="module")
def kernel_bandwidths():
    env = make_env("sm-1gpu")
    proc = env.world.procs[0]
    sim = env.sim
    out = {}
    for name, dt in (
        ("V", submatrix_type(N, N + 512)),
        ("T", lower_triangular_type(N)),
        ("T-stair", stair_triangular_type(N, 512)),
    ):
        src = proc.ctx.malloc(dt.extent)
        dst = proc.ctx.malloc(dt.size)
        proc.engine.warm_cache(dt, 1)
        job = proc.engine.pack_job(dt, 1, src, EngineOptions(use_cache=True))
        t0 = sim.now
        sim.run_until_complete(sim.spawn(job.process_all(dst)))
        out[name] = dt.size / (sim.now - t0)
    a = proc.ctx.malloc(N * N * 8)
    b = proc.ctx.malloc(N * N * 8)
    t0 = sim.now
    sim.run_until_complete(env.gpu0.memcpy_d2d(b, a))
    out["C"] = N * N * 8 / (sim.now - t0)
    return out


class TestHeadlineClaims:
    def test_vector_kernel_near_memcpy_peak(self, kernel_bandwidths):
        """Claim (Fig 6): the vector pack kernel ~ cudaMemcpy."""
        assert kernel_bandwidths["V"] > 0.85 * kernel_bandwidths["C"]

    def test_occupancy_gap_and_stair_recovery(self, kernel_bandwidths):
        """Claim (Figs 5-6): T trails V; the stair variant recovers."""
        assert kernel_bandwidths["T"] < 0.8 * kernel_bandwidths["V"]
        assert kernel_bandwidths["T-stair"] > 0.9 * kernel_bandwidths["V"]

    def test_beats_mvapich_everywhere(self):
        """Claim (Fig 10): 'always significantly faster'."""
        for kind in ("sm-1gpu", "sm-2gpu", "ib"):
            wl = MatrixWorkload.triangular(512)
            env = make_env(kind)
            b0, b1 = matrix_buffers(env, wl)
            ours = pingpong(env, b0, wl.datatype, 1, b1, wl.datatype, 1, 1)
            env2 = make_env(kind)
            c0, c1 = matrix_buffers(env2, wl)
            theirs = mvapich_pingpong(env2, c0, wl.datatype, 1, c1, wl.datatype, 1, 1)
            assert ours < theirs / 2, f"{kind}: {ours} vs {theirs}"

    def test_one_gpu_faster_than_two(self):
        """Claim (Fig 10a/b): no PCIe crossing -> at least ~2x faster."""
        wl = MatrixWorkload.submatrix(N, N + 512)
        times = {}
        for kind in ("sm-1gpu", "sm-2gpu"):
            env = make_env(kind)
            b0, b1 = matrix_buffers(env, wl)
            times[kind] = pingpong(env, b0, wl.datatype, 1, b1, wl.datatype, 1, 2)
        assert times["sm-2gpu"] >= 2 * times["sm-1gpu"]

    def test_data_always_bit_exact(self):
        """The invariant under every claim: nothing corrupts bytes."""
        from repro.datatype.convertor import pack_bytes

        wl = MatrixWorkload.triangular(N)
        env = make_env("ib")
        b0, b1 = matrix_buffers(env, wl)
        pingpong(env, b0, wl.datatype, 1, b1, wl.datatype, 1, 1)
        assert np.array_equal(
            pack_bytes(wl.datatype, 1, b0.bytes),
            pack_bytes(wl.datatype, 1, b1.bytes),
        )
