"""Integration tests: every shipped example must run and self-verify."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert "OK" in result.stdout or "==" in result.stdout


def test_examples_exist():
    assert len(EXAMPLES) >= 3, "the paper reproduction ships >=3 examples"
