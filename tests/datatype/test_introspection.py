"""Tests for datatype introspection, dup, and the trace exporter."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.datatype.convertor import pack_bytes
from repro.datatype.ddt import contiguous, vector
from repro.datatype.primitives import DOUBLE
from repro.sim.trace import Tracer, save_chrome_trace, to_chrome_trace


class TestEnvelope:
    def test_combiner_and_args(self):
        dt = vector(4, 2, 8, DOUBLE).commit()
        kind, env = dt.envelope()
        assert kind == "hvector"
        assert env["count"] == 4 and env["blocklength"] == 2

    def test_primitive_envelope(self):
        dt = contiguous(1, DOUBLE).children[0]
        kind, _ = dt.envelope()
        assert kind == "MPI_DOUBLE"


class TestDup:
    def test_dup_is_equal_but_distinct(self, rng):
        dt = vector(4, 2, 8, DOUBLE).commit()
        clone = dt.dup()
        assert clone.type_id != dt.type_id
        assert clone.size == dt.size and clone.extent == dt.extent
        assert clone.signature == dt.signature
        user = rng.integers(0, 255, dt.extent, dtype=np.uint8)
        assert np.array_equal(
            pack_bytes(clone, 1, user), pack_bytes(dt, 1, user)
        )

    def test_dup_of_uncommitted_stays_uncommitted(self):
        dt = vector(4, 2, 8, DOUBLE)
        assert not dt.dup().committed

    def test_dup_caches_are_independent(self):
        dt = vector(4, 2, 8, DOUBLE).commit()
        from repro.datatype.convertor import gather_indices

        gather_indices(dt, 1)
        clone = dt.dup()
        assert not clone._gather_cache


class TestDescribe:
    def test_tree_rendering(self):
        dt = contiguous(3, vector(4, 2, 8, DOUBLE)).commit()
        text = dt.describe()
        assert "contiguous" in text
        assert "hvector" in text
        assert "MPI_DOUBLE" in text
        assert f"size={dt.size}B" in text


class TestChromeTrace:
    def test_events_match_spans(self):
        t = Tracer()
        t.record("gpu", 0.0, 1e-3, "pack", nbytes=100)
        t.record("pcie", 1e-3, 3e-3, "xfer", nbytes=100)
        events = to_chrome_trace(t)
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 2
        assert xs[0]["name"] == "pack"
        assert xs[0]["dur"] == pytest.approx(1e3)  # microseconds
        assert xs[1]["ts"] == pytest.approx(1e3)
        tids = {e["tid"] for e in xs}
        assert len(tids) == 2

    def test_save_round_trips_json(self, tmp_path):
        t = Tracer()
        t.record("gpu", 0.0, 1.0, "k")
        path = tmp_path / "trace.json"
        save_chrome_trace(t, str(path))
        loaded = json.loads(path.read_text())
        assert "traceEvents" in loaded
        assert any(e.get("ph") == "X" for e in loaded["traceEvents"])
