"""Regression: pack_range/unpack_range with a misaligned ``base_offset``.

Pre-fix, a ``base_offset`` that was not a multiple of the primitive unit
silently used the *unadjusted* gather index — random access returned
bytes from the wrong user offsets.  The fix routes misaligned bases
through a dedicated stack machine that tracks stream position, rebuilds
on rewind (pack), and refuses out-of-order delivery on unpack.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datatype.convertor import Convertor
from repro.datatype.ddt import vector
from repro.datatype.primitives import DOUBLE


@pytest.fixture
def dt():
    return vector(8, 4, 9, DOUBLE).commit()  # 256 packed bytes


def _oracle(dt, user, off):
    """Full sequential pack via the (already correct) stack-machine path."""
    want = np.empty(dt.size, dtype=np.uint8)
    Convertor(dt, 1, user, "pack", base_offset=off).pack(want)
    return want


@pytest.mark.parametrize("off", [3, 5])
def test_pack_range_misaligned_base(rng, off):
    dt = vector(8, 4, 9, DOUBLE).commit()
    user = rng.integers(0, 255, dt.extent + 16, dtype=np.uint8)
    want = _oracle(dt, user, off)

    conv = Convertor(dt, 1, user, "pack", base_offset=off)
    out = np.full(dt.size, 0xEE, dtype=np.uint8)
    # out of order: skip ahead, rewind, then skip ahead again
    conv.pack_range(out[64:128], 64, 128)
    conv.pack_range(out[0:64], 0, 64)
    conv.pack_range(out[128:256], 128, 256)
    assert np.array_equal(out, want)


def test_pack_range_misaligned_matches_aligned_semantics(rng, dt):
    """Aligned offsets keep taking the gather fast path, same answer."""
    user = rng.integers(0, 255, dt.extent + 16, dtype=np.uint8)
    aligned = Convertor(dt, 1, user, "pack", base_offset=8)
    misaligned = Convertor(dt, 1, user[5:], "pack", base_offset=3)
    a = np.empty(dt.size, dtype=np.uint8)
    b = np.empty(dt.size, dtype=np.uint8)
    aligned.pack_range(a, 0, dt.size)
    misaligned.pack_range(b, 0, dt.size)
    assert np.array_equal(a, b)


def test_unpack_range_misaligned_base_round_trips(rng, dt):
    user = rng.integers(0, 255, dt.extent + 16, dtype=np.uint8)
    off = 3
    want = _oracle(dt, user, off)

    target = np.zeros(dt.extent + 16, dtype=np.uint8)
    conv = Convertor(dt, 1, target, "unpack", base_offset=off)
    conv.unpack_range(want[0:64], 0, 64)
    conv.unpack_range(want[64:256], 64, 256)
    assert np.array_equal(_oracle(dt, target, off), want)


def test_unpack_range_misaligned_rejects_out_of_order(rng, dt):
    target = np.zeros(dt.extent + 16, dtype=np.uint8)
    conv = Convertor(dt, 1, target, "unpack", base_offset=3)
    # skip-ahead: fragment 64..128 before 0..64
    with pytest.raises(RuntimeError):
        conv.unpack_range(np.zeros(64, np.uint8), 64, 128)
    # rewind after a delivered range is equally rejected
    conv2 = Convertor(dt, 1, target, "unpack", base_offset=3)
    conv2.unpack_range(np.zeros(64, np.uint8), 0, 64)
    with pytest.raises(RuntimeError):
        conv2.unpack_range(np.zeros(32, np.uint8), 32, 64)
