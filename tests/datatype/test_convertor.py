"""Tests for the gather fast-path convertor and its oracle equivalence."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatype.convertor import Convertor, gather_indices, pack_bytes
from repro.datatype.ddt import contiguous, indexed, struct, vector
from repro.datatype.primitives import BYTE, CHAR, DOUBLE, INT
from tests.datatype.strategies import buffer_for, datatypes, reference_pack


class TestGatherIndices:
    def test_cached_per_datatype(self):
        dt = vector(4, 2, 5, DOUBLE).commit()
        idx1, u1 = gather_indices(dt, 1)
        idx2, u2 = gather_indices(dt, 1)
        assert idx1 is idx2 and u1 == u2

    def test_granularity_for_doubles(self):
        assert vector(4, 2, 5, DOUBLE).commit().granularity() == 8

    def test_granularity_for_bytes(self):
        assert indexed([1, 2], [0, 3], BYTE).commit().granularity() == 1

    def test_indices_cover_size(self):
        dt = indexed([3, 1, 2], [0, 4, 8], DOUBLE).commit()
        idx, u = gather_indices(dt, 2)
        assert len(idx) * u == dt.size * 2


class TestStreamingApi:
    def test_incremental_pack_equals_oneshot(self, rng):
        dt = vector(8, 4, 9, DOUBLE).commit()
        user = rng.integers(0, 255, dt.extent, dtype=np.uint8)
        want = pack_bytes(dt, 1, user)
        conv = Convertor(dt, 1, user, "pack")
        chunks = []
        while not conv.done:
            buf = np.empty(48, dtype=np.uint8)  # multiple of granularity
            n = conv.pack(buf)
            chunks.append(buf[:n])
        assert np.array_equal(np.concatenate(chunks), want)

    def test_misaligned_chunks_fall_back_to_stack(self, rng):
        dt = vector(8, 4, 9, DOUBLE).commit()
        user = rng.integers(0, 255, dt.extent, dtype=np.uint8)
        want = pack_bytes(dt, 1, user)
        conv = Convertor(dt, 1, user, "pack")
        chunks = []
        sizes = [13, 7, 100, 3]
        i = 0
        while not conv.done:
            buf = np.empty(sizes[i % 4], dtype=np.uint8)
            i += 1
            n = conv.pack(buf)
            chunks.append(buf[:n])
        assert np.array_equal(np.concatenate(chunks), want)

    def test_pack_range_random_access(self, rng):
        dt = vector(8, 4, 9, DOUBLE).commit()
        user = rng.integers(0, 255, dt.extent, dtype=np.uint8)
        want = pack_bytes(dt, 1, user)
        conv = Convertor(dt, 1, user, "pack")
        out = np.empty(64, dtype=np.uint8)
        conv.pack_range(out, 64, 128)
        assert np.array_equal(out, want[64:128])

    def test_pack_range_alignment_enforced(self, rng):
        dt = vector(8, 4, 9, DOUBLE).commit()
        user = np.zeros(dt.extent, dtype=np.uint8)
        conv = Convertor(dt, 1, user, "pack")
        with pytest.raises(ValueError):
            conv.pack_range(np.empty(3, np.uint8), 1, 4)

    def test_unpack_range(self, rng):
        dt = indexed([2, 3], [0, 4], DOUBLE).commit()
        user = rng.integers(0, 255, dt.extent, dtype=np.uint8)
        want = pack_bytes(dt, 1, user)
        out = np.zeros(dt.extent, dtype=np.uint8)
        conv = Convertor(dt, 1, out, "unpack")
        conv.unpack_range(want[:16], 0, 16)
        conv.unpack_range(want[16:], 16, dt.size)
        assert np.array_equal(pack_bytes(dt, 1, out), want)

    def test_direction_misuse_rejected(self, rng):
        dt = contiguous(4, DOUBLE).commit()
        user = np.zeros(32, dtype=np.uint8)
        with pytest.raises(RuntimeError):
            Convertor(dt, 1, user, "pack").unpack(user)
        with pytest.raises(RuntimeError):
            Convertor(dt, 1, user, "unpack").pack(user)

    def test_base_offset(self, rng):
        dt = contiguous(4, DOUBLE).commit()
        user = rng.integers(0, 255, 64, dtype=np.uint8)
        conv = Convertor(dt, 1, user, "pack", base_offset=16)
        out = np.empty(32, dtype=np.uint8)
        conv.pack(out)
        assert np.array_equal(out, user[16:48])

    def test_negative_reach_rejected(self):
        dt = struct([1], [-8], [DOUBLE]).commit()
        with pytest.raises(ValueError):
            Convertor(dt, 1, np.zeros(64, np.uint8), "pack", base_offset=0)

    def test_negative_reach_ok_with_offset(self, rng):
        dt = struct([1], [-8], [DOUBLE]).commit()
        user = rng.integers(0, 255, 64, dtype=np.uint8)
        conv = Convertor(dt, 1, user, "pack", base_offset=16)
        out = np.empty(8, dtype=np.uint8)
        conv.pack(out)
        assert np.array_equal(out, user[8:16])


class TestOracleEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(dt=datatypes(), count=st.integers(1, 3), data=st.randoms())
    def test_fast_path_equals_reference(self, dt, count, data):
        rng = np.random.default_rng(data.randint(0, 2**31))
        user = buffer_for(dt, count, rng)
        assert np.array_equal(
            pack_bytes(dt, count, user), reference_pack(dt, count, user)
        )

    @settings(max_examples=50, deadline=None)
    @given(dt=datatypes(), data=st.randoms())
    def test_roundtrip_restores_described_bytes(self, dt, data):
        rng = np.random.default_rng(data.randint(0, 2**31))
        user = buffer_for(dt, 1, rng)
        packed = pack_bytes(dt, 1, user)
        out = np.zeros_like(user)
        conv = Convertor(dt, 1, out, "unpack")
        conv.unpack(packed)
        assert np.array_equal(pack_bytes(dt, 1, out), packed)

    @settings(max_examples=40, deadline=None)
    @given(dt=datatypes(), frag=st.integers(1, 64), data=st.randoms())
    def test_aligned_fragment_concat_equals_whole(self, dt, frag, data):
        rng = np.random.default_rng(data.randint(0, 2**31))
        user = buffer_for(dt, 1, rng)
        want = reference_pack(dt, 1, user)
        g = dt.granularity()
        frag_bytes = max(1, frag) * g
        conv = Convertor(dt, 1, user, "pack")
        chunks = []
        while not conv.done:
            buf = np.empty(frag_bytes, dtype=np.uint8)
            n = conv.pack(buf)
            chunks.append(buf[:n])
        assert np.array_equal(np.concatenate(chunks), want)
