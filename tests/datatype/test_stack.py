"""Tests for the stack-based convertor (the Open MPI state machine)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatype.convertor import pack_bytes
from repro.datatype.ddt import contiguous, hindexed, struct, vector
from repro.datatype.primitives import DOUBLE, INT
from repro.datatype.stack import (
    ElemDesc,
    LoopDesc,
    StackMachine,
    compile_datatype,
)
from tests.datatype.strategies import buffer_for, datatypes, reference_pack


class TestCompilation:
    def test_primitive_is_single_elem(self):
        prog = compile_datatype(contiguous(1, DOUBLE))
        assert prog == [ElemDesc(1, 8, 8, 0)]

    def test_contiguous_folds(self):
        prog = compile_datatype(contiguous(10, DOUBLE))
        assert prog == [ElemDesc(1, 80, 80, 0)]

    def test_vector_folds_to_one_elem(self):
        prog = compile_datatype(vector(5, 3, 7, DOUBLE))
        assert prog == [ElemDesc(5, 24, 56, 0)]

    def test_send_count_wraps_in_loop(self):
        prog = compile_datatype(vector(5, 3, 7, DOUBLE), count=2)
        assert isinstance(prog[0], (LoopDesc, ElemDesc))
        # either a loop over the vector or a folded elem run
        total_elems = sum(1 for d in prog if isinstance(d, ElemDesc))
        assert total_elems >= 1

    def test_hindexed_one_desc_per_block(self):
        prog = compile_datatype(hindexed([2, 3], [0, 100], DOUBLE))
        elems = [d for d in prog if isinstance(d, ElemDesc)]
        assert len(elems) == 2
        assert elems[1].disp == 100


class TestExecution:
    def test_matches_fast_path_on_vector(self, rng):
        dt = vector(6, 2, 5, DOUBLE).commit()
        user = rng.integers(0, 255, dt.extent, dtype=np.uint8)
        sm = StackMachine(compile_datatype(dt), user, "pack")
        out = np.empty(dt.size, dtype=np.uint8)
        assert sm.advance(out) == dt.size
        assert sm.finished
        assert np.array_equal(out, pack_bytes(dt, 1, user))

    def test_resume_at_every_boundary(self, rng):
        dt = struct([2, 3], [0, 40], [INT, DOUBLE]).commit()
        user = rng.integers(0, 255, 80, dtype=np.uint8)
        want = pack_bytes(dt, 1, user)
        for cut in range(1, dt.size):
            sm = StackMachine(compile_datatype(dt), user, "pack")
            a = np.empty(cut, dtype=np.uint8)
            b = np.empty(dt.size - cut, dtype=np.uint8)
            assert sm.advance(a) == cut
            assert not sm.finished
            assert sm.advance(b) == dt.size - cut
            assert sm.finished
            assert np.array_equal(np.concatenate([a, b]), want)

    def test_unpack_direction(self, rng):
        dt = vector(4, 2, 6, DOUBLE).commit()
        user = rng.integers(0, 255, dt.extent, dtype=np.uint8)
        packed = pack_bytes(dt, 1, user)
        out = np.zeros(dt.extent, dtype=np.uint8)
        sm = StackMachine(compile_datatype(dt), out, "unpack")
        sm.advance(packed)
        assert np.array_equal(pack_bytes(dt, 1, out), packed)

    def test_empty_program_finished_immediately(self):
        sm = StackMachine([], np.zeros(0, np.uint8))
        assert sm.finished
        assert sm.advance(np.empty(10, np.uint8)) == 0

    def test_bytes_done_accumulates(self, rng):
        dt = contiguous(10, DOUBLE).commit()
        user = rng.integers(0, 255, 80, dtype=np.uint8)
        sm = StackMachine(compile_datatype(dt), user, "pack")
        sm.advance(np.empty(30, np.uint8))
        assert sm.bytes_done == 30

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError):
            StackMachine([], np.zeros(0, np.uint8), "sideways")


class TestAgainstOracle:
    @settings(max_examples=60, deadline=None)
    @given(dt=datatypes(), count=st.integers(1, 3), data=st.randoms())
    def test_stack_machine_equals_reference(self, dt, count, data):
        rng = np.random.default_rng(data.randint(0, 2**31))
        user = buffer_for(dt, count, rng)
        want = reference_pack(dt, count, user)
        sm = StackMachine(compile_datatype(dt, count), user, "pack")
        out = np.empty(len(want), dtype=np.uint8)
        got = sm.advance(out)
        assert got == len(want)
        assert sm.finished
        assert np.array_equal(out, want)

    @settings(max_examples=40, deadline=None)
    @given(dt=datatypes(), data=st.randoms())
    def test_random_fragmentation_equals_whole(self, dt, data):
        rng = np.random.default_rng(data.randint(0, 2**31))
        user = buffer_for(dt, 1, rng)
        want = reference_pack(dt, 1, user)
        sm = StackMachine(compile_datatype(dt, 1), user, "pack")
        chunks = []
        while not sm.finished:
            n = rng.integers(1, 37)
            buf = np.empty(n, dtype=np.uint8)
            got = sm.advance(buf)
            chunks.append(buf[:got])
            if got == 0:
                break
        assert np.array_equal(np.concatenate(chunks), want)
