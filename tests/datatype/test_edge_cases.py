"""Edge cases across the datatype constructor algebra."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datatype.convertor import Convertor, pack_bytes
from repro.datatype.ddt import (
    contiguous,
    hindexed,
    hvector,
    indexed,
    resized,
    struct,
    vector,
)
from repro.datatype.primitives import BYTE, CHAR, DOUBLE, FLOAT, INT, SHORT


class TestNegativeDisplacements:
    def test_struct_with_negative_disp(self, rng):
        dt = struct([1, 1], [-16, 0], [DOUBLE, DOUBLE]).commit()
        assert dt.lb == -16 and dt.true_lb == -16
        user = rng.integers(0, 255, 64, dtype=np.uint8)
        conv = Convertor(dt, 1, user, "pack", base_offset=32)
        out = np.empty(16, dtype=np.uint8)
        conv.pack(out)
        assert np.array_equal(out[:8], user[16:24])
        assert np.array_equal(out[8:], user[32:40])

    def test_backwards_hindexed(self, rng):
        dt = hindexed([1, 1, 1], [32, 16, 0], DOUBLE).commit()
        user = rng.integers(0, 255, 48, dtype=np.uint8)
        packed = pack_bytes(dt, 1, user)
        assert np.array_equal(packed[:8], user[32:40])
        assert np.array_equal(packed[16:], user[0:8])


class TestExtents:
    def test_vector_extent_formula(self):
        # MPI: extent = ((count-1)*stride + blocklength) * base_extent
        dt = vector(5, 3, 7, DOUBLE).commit()
        assert dt.extent == ((5 - 1) * 7 + 3) * 8

    def test_resized_shrink_enables_overlap_tiling(self, rng):
        # extent smaller than the span: elements interleave (legal for send)
        base = vector(2, 1, 2, DOUBLE)  # spans at 0 and 16
        dt = resized(base, 0, 8).commit()
        user = rng.integers(0, 255, 64, dtype=np.uint8)
        packed = pack_bytes(dt, 2, user)
        # element 0: bytes 0-8 and 16-24; element 1 shifted by 8
        assert np.array_equal(packed[8:16], user[16:24])
        assert np.array_equal(packed[16:24], user[8:16])

    def test_empty_indexed(self):
        dt = indexed([0, 0], [0, 4], DOUBLE).commit()
        assert dt.size == 0
        assert dt.spans.count == 0

    def test_struct_extent_spans_members(self):
        dt = struct([1, 1], [0, 100], [INT, CHAR]).commit()
        assert dt.lb == 0 and dt.ub == 101


class TestGranularities:
    @pytest.mark.parametrize(
        "prim,expected",
        [(BYTE, 1), (CHAR, 1), (SHORT, 2), (INT, 4), (FLOAT, 4), (DOUBLE, 8)],
    )
    def test_primitive_granularity(self, prim, expected):
        dt = contiguous(3, prim).commit()
        # contiguous blocks can raise the granularity above the itemsize
        assert dt.granularity() % expected == 0 or dt.granularity() >= expected

    def test_mixed_struct_takes_gcd(self):
        dt = struct([1, 1], [0, 4], [INT, INT]).commit()
        assert dt.granularity() >= 4
        odd = struct([1, 1], [0, 5], [INT, BYTE]).commit()
        assert odd.granularity() == 1


class TestLargeCounts:
    def test_tiling_ten_thousand_elements(self, rng):
        dt = resized(contiguous(1, DOUBLE), 0, 16).commit()
        count = 10_000
        user = rng.integers(0, 255, 16 * count, dtype=np.uint8)
        packed = pack_bytes(dt, count, user)
        assert packed.nbytes == 8 * count
        view = user.view(np.uint64).reshape(count, 2)[:, 0]
        assert np.array_equal(packed.view(np.uint64), view)

    def test_vector_of_vectors_deep_nesting(self, rng):
        inner = vector(3, 1, 2, DOUBLE)
        mid = hvector(2, 1, inner.commit().extent + 8, inner)
        outer = hvector(2, 1, mid.commit().extent + 16, mid).commit()
        user = rng.integers(0, 255, outer.extent + 32, dtype=np.uint8)
        packed = pack_bytes(outer, 1, user)
        assert packed.nbytes == outer.size == 3 * 2 * 2 * 8


class TestMisalignedBytes:
    def test_char_vector_odd_stride(self, rng):
        dt = hvector(10, 3, 7, CHAR).commit()
        user = rng.integers(0, 255, 100, dtype=np.uint8)
        packed = pack_bytes(dt, 1, user)
        want = np.concatenate([user[i * 7 : i * 7 + 3] for i in range(10)])
        assert np.array_equal(packed, want)

    def test_roundtrip_odd_granularity(self, rng):
        dt = hindexed([3, 5, 2], [0, 11, 29], BYTE).commit()
        user = rng.integers(0, 255, 64, dtype=np.uint8)
        packed = pack_bytes(dt, 1, user)
        out = np.zeros(64, dtype=np.uint8)
        conv = Convertor(dt, 1, out, "unpack")
        conv.unpack(packed)
        assert np.array_equal(pack_bytes(dt, 1, out), packed)
