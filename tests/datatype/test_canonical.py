"""Tests for the canonical datatype IR and the compiled pack plans.

The contract under test: any two ways of building the same logical
layout canonicalize to the same key (so caches actually hit across
constructions), and every pack plan the cost model can select moves
exactly the same bytes as the legacy stack machine.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatype.canonical import (
    PLAN_GATHER,
    PLAN_MEMCPY,
    PLAN_STACK,
    PLAN_STRIDED2D,
    PLAN_VECTOR_KERNEL,
    canonical_key,
    canonicalize,
    display_id,
    plan_cost,
    select_cpu_plan,
    select_gpu_plan,
)
from repro.datatype.convertor import Convertor, pack_bytes, unpack_bytes
from repro.datatype.ddt import (
    contiguous,
    hindexed,
    hvector,
    indexed,
    resized,
    struct,
    vector,
)
from repro.datatype.primitives import BYTE, DOUBLE, INT

from .strategies import buffer_for, datatypes, reference_pack

S = 4096


def key1(dt):
    return canonical_key(dt, 1, S)


class TestEquivalentConstructions:
    """Same logical layout, different constructor trees -> same key."""

    def test_vector_hvector_hindexed_unify(self):
        c, bl, stride = 7, 3, 5
        v = vector(c, bl, stride, DOUBLE)
        hv = hvector(c, bl, stride * 8, DOUBLE)
        hi = hindexed([bl] * c, [i * stride * 8 for i in range(c)], DOUBLE)
        assert key1(v) == key1(hv) == key1(hi)
        assert canonicalize(v).kind == "vector"

    def test_contiguous_collapse(self):
        # stride == blocklength: the "vector" is really contiguous
        v = vector(6, 4, 4, DOUBLE)
        c = contiguous(24, DOUBLE)
        b = contiguous(192, BYTE)
        assert key1(v) == key1(c) == key1(b)
        assert canonicalize(v).kind == "contig"

    def test_indexed_run_merging(self):
        # touching indexed blocks coalesce into the same maximal runs
        a = indexed([2, 2, 3], [0, 2, 10], INT)
        b = indexed([4, 1, 2], [0, 10, 11], INT)
        assert key1(a) == key1(b)

    def test_struct_flattening(self):
        inner = vector(4, 2, 5, DOUBLE)
        wrapped = struct([1], [0], [inner])
        assert key1(wrapped) == key1(inner)

    def test_resized_and_dup_erased_at_count_1(self):
        base = vector(4, 2, 5, DOUBLE).commit()
        r = resized(base, base.lb, base.extent + 64)
        assert key1(r) == key1(base)
        assert key1(base.dup()) == key1(base)

    def test_resized_extent_matters_at_count_2(self):
        # at count > 1 the extent tiles the layout: keys must differ
        base = vector(4, 2, 5, DOUBLE).commit()
        r = resized(base, base.lb, base.extent + 64)
        assert canonical_key(base, 2, S) != canonical_key(r, 2, S)

    def test_count_folds_into_the_key(self):
        # contiguous(2, D) packed once == D packed twice
        assert canonical_key(contiguous(2, DOUBLE), 1, S) == canonical_key(
            contiguous(1, DOUBLE), 2, S
        )

    def test_unit_size_distinguishes_keys(self):
        dt = vector(4, 2, 5, DOUBLE)
        assert canonical_key(dt, 1, 1024) != canonical_key(dt, 1, 4096)

    def test_different_layouts_different_keys(self):
        assert key1(vector(4, 2, 5, DOUBLE)) != key1(vector(4, 2, 6, DOUBLE))
        assert key1(indexed([1, 2], [0, 4], INT)) != key1(
            indexed([2, 1], [0, 4], INT)
        )

    @given(dt=datatypes(), pad=st.integers(0, 64))
    @settings(max_examples=60, deadline=None)
    def test_dup_and_same_extent_resize_share_keys(self, dt, pad):
        assert key1(dt.dup()) == key1(dt)
        r = resized(dt, dt.lb, dt.extent + pad)
        assert key1(r) == key1(dt)


class TestDisplayId:
    def test_structural_not_positional(self):
        a = vector(5, 2, 7, DOUBLE).commit()
        b = hvector(5, 2, 56, DOUBLE).commit()  # same layout, built later
        assert a.display_id == b.display_id == display_id(a)
        assert a.display_id != contiguous(10, DOUBLE).commit().display_id

    def test_uncommitted_has_placeholder(self):
        assert display_id(vector(5, 2, 7, DOUBLE)) == "uncommitted"

    def test_repr_uses_display_id(self):
        dt = vector(5, 2, 7, DOUBLE).commit()
        assert dt.display_id in repr(dt)


class TestPlanSelection:
    def test_contig_aligned_is_memcpy(self):
        form = canonicalize(contiguous(32, DOUBLE))
        assert select_cpu_plan(form, 8) == PLAN_MEMCPY
        assert select_gpu_plan(form) == PLAN_MEMCPY

    def test_vector_aligned_is_strided(self):
        form = canonicalize(vector(8, 4, 6, DOUBLE))
        assert select_cpu_plan(form, 8) == PLAN_STRIDED2D
        assert select_gpu_plan(form) == PLAN_VECTOR_KERNEL

    def test_vector_misaligned_for_unit_falls_back(self):
        # 12-byte blocks cannot be walked in 8-byte elements
        form = canonicalize(hvector(8, 12, 24, BYTE))
        assert select_cpu_plan(form, 8) in (PLAN_GATHER, PLAN_STACK)

    def test_irregular_is_gather(self):
        form = canonicalize(indexed([1, 2, 1], [0, 3, 9], DOUBLE))
        assert form.kind == "runs"
        assert select_cpu_plan(form, 8) == PLAN_GATHER
        assert select_gpu_plan(form) == PLAN_GATHER

    def test_misaligned_base_forces_stack(self):
        form = canonicalize(contiguous(32, DOUBLE))
        assert select_cpu_plan(form, 8, base_offset=4) == PLAN_STACK

    def test_force_dev_pins_gather(self):
        form = canonicalize(vector(8, 4, 6, DOUBLE))
        assert select_gpu_plan(form, force_dev=True) == PLAN_GATHER

    def test_cost_ordering_sane(self):
        form = canonicalize(contiguous(32, DOUBLE))
        assert (
            plan_cost(form, PLAN_MEMCPY)
            < plan_cost(form, PLAN_GATHER)
            < plan_cost(form, PLAN_STACK)
        )


class TestPlanEquivalence:
    """Every selected plan moves exactly the stack machine's bytes."""

    CASES = [
        ("contig", lambda: contiguous(100, DOUBLE)),
        ("vector", lambda: vector(9, 3, 7, DOUBLE)),
        ("hvector-odd", lambda: hvector(5, 3, 29, BYTE)),
        ("runs", lambda: indexed([1, 3, 2], [0, 5, 20], DOUBLE)),
        ("struct", lambda: struct([2, 1], [0, 48], [INT, DOUBLE])),
    ]

    @pytest.mark.parametrize("name,make", CASES, ids=[c[0] for c in CASES])
    @pytest.mark.parametrize("count", [1, 3])
    def test_pack_matches_oracle_and_stack(self, name, make, count):
        dt = make().commit()
        rng = np.random.default_rng(17)
        user = buffer_for(dt, count, rng)
        oracle = reference_pack(dt, count, user)

        packed = pack_bytes(dt, count, user)
        assert np.array_equal(packed, oracle)

        # the legacy convertor: force the stack machine on the same input
        conv = Convertor(dt, count, user, "pack")
        conv._fallback()
        assert conv.plan == PLAN_STACK
        out = np.empty(conv.total_bytes, dtype=np.uint8)
        conv.pack(out)
        assert np.array_equal(out, oracle)

        # unpack roundtrip restores the layout bytes
        blank = np.zeros_like(user)
        unpack_bytes(dt, count, blank, packed)
        mask = np.zeros(len(user), dtype=bool)
        for d, l in dt.spans_for_count(count).iter_pairs():
            mask[d : d + l] = True
        assert np.array_equal(blank[mask], user[mask])
        assert not blank[~mask].any()

    @given(dt=datatypes(), count=st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_property_pack_matches_oracle(self, dt, count):
        rng = np.random.default_rng(3)
        user = buffer_for(dt, count, rng)
        assert np.array_equal(
            pack_bytes(dt, count, user), reference_pack(dt, count, user)
        )


class TestDevCacheReuse:
    def test_second_construction_hits(self, gpu):
        from repro.gpu_engine.cache import DevCache

        cache = DevCache(gpu)
        c, bl, stride = 6, 2, 9
        units = cache.put(vector(c, bl, stride, DOUBLE), 1, S)
        # an equivalent type built a *different* way still hits
        hi = hindexed([bl * 8] * c, [i * stride * 8 for i in range(c)], BYTE)
        assert cache.get(hi, 1, S) is units
        assert cache.hits == 1 and cache.misses == 0
