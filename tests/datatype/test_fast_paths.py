"""Equivalence tests for this PR's hot-path optimizations.

Two fast paths must be observationally identical to their references:

* the convertor's uniform-vector strided 2-D transfer (``_fast_range``)
  vs the gather path and the stack machine;
* the hindexed gap-free-base vectorized span build vs the generic
  per-block tile/shift/coalesce loop.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatype.convertor import Convertor, pack_bytes
from repro.datatype.ddt import contiguous, hindexed, indexed, vector
from repro.datatype.primitives import DOUBLE
from repro.datatype.typemap import Spans, coalesce, concat, tile
from tests.datatype.strategies import buffer_for, reference_pack

#: committed Datatype equivalent of the DOUBLE primitive, for the
#: reference span builder (which needs .spans / .extent)
DOUBLE_DT = contiguous(1, DOUBLE).commit()


def make_vec(count=16, bl=4, stride=9):
    return vector(count, bl, stride, DOUBLE).commit()


class TestStridedFastPath:
    def test_vector_engages_fast_path(self, rng):
        dt = make_vec()
        user = buffer_for(dt, 1, rng)
        conv = Convertor(dt, 1, user, "pack")
        assert conv._vec is not None  # precondition for everything below
        out = np.empty(dt.size, dtype=np.uint8)
        conv.pack(out)
        assert conv._idx is None  # gather map never materialized
        assert np.array_equal(out, reference_pack(dt, 1, user))

    def test_non_uniform_layout_does_not_engage(self, rng):
        dt = indexed([3, 1, 2], [0, 4, 8], DOUBLE).commit()
        user = buffer_for(dt, 1, rng)
        conv = Convertor(dt, 1, user, "pack")
        assert conv._vec is None
        out = np.empty(dt.size, dtype=np.uint8)
        conv.pack(out)
        assert np.array_equal(out, reference_pack(dt, 1, user))

    @settings(max_examples=60, deadline=None)
    @given(
        count=st.integers(1, 12),
        bl=st.integers(1, 6),
        pad=st.integers(0, 5),
        frag_elems=st.integers(1, 40),
        data=st.randoms(),
    )
    def test_fragmented_pack_equals_reference(
        self, count, bl, pad, frag_elems, data
    ):
        """Arbitrary fragment sizes hit head/mid/tail block splits."""
        dt = vector(count, bl, bl + pad, DOUBLE).commit()
        rng = np.random.default_rng(data.randint(0, 2**31))
        user = buffer_for(dt, 1, rng)
        want = reference_pack(dt, 1, user)
        conv = Convertor(dt, 1, user, "pack")
        assert conv._vec is not None
        chunks = []
        while not conv.done:
            buf = np.empty(frag_elems * 8, dtype=np.uint8)
            n = conv.pack(buf)
            chunks.append(buf[:n])
        assert np.array_equal(np.concatenate(chunks), want)

    @settings(max_examples=40, deadline=None)
    @given(
        count=st.integers(1, 12),
        bl=st.integers(1, 6),
        pad=st.integers(0, 5),
        frag_elems=st.integers(1, 40),
        data=st.randoms(),
    )
    def test_fragmented_unpack_roundtrips(
        self, count, bl, pad, frag_elems, data
    ):
        dt = vector(count, bl, bl + pad, DOUBLE).commit()
        rng = np.random.default_rng(data.randint(0, 2**31))
        user = buffer_for(dt, 1, rng)
        packed = reference_pack(dt, 1, user)
        out = np.zeros_like(user)
        conv = Convertor(dt, 1, out, "unpack")
        assert conv._vec is not None
        pos = 0
        while not conv.done:
            n = conv.unpack(packed[pos : pos + frag_elems * 8])
            pos += n
        assert np.array_equal(reference_pack(dt, 1, out), packed)

    def test_pack_range_random_access_on_fast_path(self, rng):
        dt = make_vec(count=8, bl=4, stride=9)
        user = buffer_for(dt, 1, rng)
        want = reference_pack(dt, 1, user)
        conv = Convertor(dt, 1, user, "pack")
        assert conv._vec is not None
        # out-of-order, overlapping, and sub-block ranges
        for lo, hi in [(64, 128), (0, 8), (24, 104), (248, 256), (0, 256)]:
            out = np.empty(hi - lo, dtype=np.uint8)
            conv.pack_range(out, lo, hi)
            assert np.array_equal(out, want[lo:hi]), (lo, hi)

    def test_base_offset_shifts_fast_path(self, rng):
        dt = make_vec(count=4, bl=2, stride=5)
        shift = 3 * 8
        user = rng.integers(0, 255, dt.extent + shift, dtype=np.uint8)
        conv = Convertor(dt, 1, user, "pack", base_offset=shift)
        assert conv._vec is not None
        out = np.empty(dt.size, dtype=np.uint8)
        conv.pack(out)
        assert np.array_equal(out, reference_pack(dt, 1, user[shift:]))

    def test_count_gt_one_tiles_into_fast_path(self, rng):
        # tiling a vector whose extent continues the stride stays uniform
        dt = vector(4, 2, 4, DOUBLE).commit()
        count = 3
        user = buffer_for(dt, count, rng)
        conv = Convertor(dt, count, user, "pack")
        out = np.empty(dt.size * count, dtype=np.uint8)
        conv.pack(out)
        assert np.array_equal(out, reference_pack(dt, count, user))

    def test_layout_exceeding_buffer_falls_back(self, rng):
        # a buffer sized to true extent, but the strided row view would
        # need stride-padding past the last block: must not crash
        dt = make_vec(count=4, bl=2, stride=8)
        user = buffer_for(dt, 1, rng)
        conv = Convertor(dt, 1, user, "pack")
        out = np.empty(dt.size, dtype=np.uint8)
        conv.pack(out)
        assert np.array_equal(out, reference_pack(dt, 1, user))


def reference_hindexed_spans(bls, disps, base) -> Spans:
    """The generic per-block build: tile each block, shift, coalesce."""
    parts = []
    for bl, d in zip(bls, disps):
        if bl == 0:
            continue
        parts.append(tile(base.spans, bl, base.extent).shift(int(d)))
    return coalesce(concat(parts))


class TestHindexedVectorizedBuild:
    def assert_spans_equal(self, got: Spans, want: Spans):
        assert got.disps.tolist() == want.disps.tolist()
        assert got.lens.tolist() == want.lens.tolist()

    def test_triangular_type_matches_reference(self):
        n = 64
        bls = [n - i for i in range(n)]
        disps = [(i * n + i) * 8 for i in range(n)]
        dt = hindexed(bls, disps, DOUBLE).commit()
        self.assert_spans_equal(
            dt.spans, reference_hindexed_spans(bls, disps, DOUBLE_DT)
        )

    def test_zero_length_blocks_dropped(self):
        dt = hindexed([2, 0, 3], [0, 800, 32], DOUBLE).commit()
        assert dt.spans.count == 2
        assert dt.spans.lens.tolist() == [16, 24]

    def test_all_zero_blocks_empty(self):
        dt = hindexed([0, 0], [0, 64], DOUBLE).commit()
        assert dt.spans.count == 0

    def test_adjacent_blocks_coalesce(self):
        # block 1 at byte 0 (2 doubles) touches block 2 at byte 16
        dt = hindexed([2, 3], [0, 16], DOUBLE).commit()
        assert dt.spans.count == 1
        assert dt.spans.lens.tolist() == [40]

    @settings(max_examples=60, deadline=None)
    @given(
        blocks=st.lists(
            st.tuples(st.integers(0, 6), st.integers(0, 40)),
            min_size=1,
            max_size=12,
        ),
        data=st.randoms(),
    )
    def test_random_layouts_match_reference_and_pack(self, blocks, data):
        bls = [b for b, _ in blocks]
        disps = [d * 8 for _, d in blocks]
        dt = hindexed(bls, disps, DOUBLE).commit()
        want = reference_hindexed_spans(bls, disps, DOUBLE_DT)
        self.assert_spans_equal(dt.spans, want)
        if dt.size == 0:
            return
        rng = np.random.default_rng(data.randint(0, 2**31))
        user = buffer_for(dt, 1, rng)
        assert np.array_equal(
            pack_bytes(dt, 1, user), reference_pack(dt, 1, user)
        )
