"""Unit tests for every datatype constructor against NumPy references."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datatype.convertor import pack_bytes, unpack_bytes
from repro.datatype.ddt import (
    contiguous,
    hindexed,
    hvector,
    indexed,
    indexed_block,
    resized,
    struct,
    subarray,
    vector,
)
from repro.datatype.primitives import BYTE, CHAR, DOUBLE, FLOAT, INT


@pytest.fixture
def matrix(rng) -> np.ndarray:
    """8x8 doubles, column-major mental model, flat storage."""
    return rng.random(64)


class TestContiguous:
    def test_size_extent(self):
        dt = contiguous(10, DOUBLE).commit()
        assert dt.size == 80 and dt.extent == 80
        assert dt.is_contiguous

    def test_pack_identity(self, matrix):
        dt = contiguous(64, DOUBLE).commit()
        packed = pack_bytes(dt, 1, matrix.view(np.uint8))
        assert np.array_equal(packed.view("f8"), matrix)

    def test_nested(self):
        dt = contiguous(3, contiguous(4, INT)).commit()
        assert dt.size == 48
        assert dt.spans.count == 1  # fully coalesced

    def test_zero_count(self):
        dt = contiguous(0, DOUBLE).commit()
        assert dt.size == 0 and dt.spans.count == 0

    def test_signature(self):
        assert contiguous(5, INT).signature == (("MPI_INT", 5),)


class TestVector:
    def test_columns_of_submatrix(self, matrix):
        # 4x3 sub-matrix of an 8x8, column-major
        dt = vector(3, 4, 8, DOUBLE).commit()
        packed = pack_bytes(dt, 1, matrix.view(np.uint8)).view("f8")
        expect = np.concatenate([matrix[c * 8 : c * 8 + 4] for c in range(3)])
        assert np.array_equal(packed, expect)

    def test_size_vs_extent(self):
        dt = vector(3, 4, 8, DOUBLE).commit()
        assert dt.size == 3 * 4 * 8
        assert dt.extent == (2 * 8 + 4) * 8

    def test_stride_equal_blocklength_coalesces(self):
        dt = vector(5, 2, 2, DOUBLE).commit()
        assert dt.is_contiguous
        assert dt.spans.count == 1

    def test_as_vector_detection(self):
        dt = vector(6, 4, 9, DOUBLE).commit()
        shape = dt.as_vector()
        assert shape is not None
        assert (shape.count, shape.blocklength, shape.stride) == (6, 32, 72)

    def test_hvector_byte_stride(self, matrix):
        dt = hvector(3, 2, 100, DOUBLE).commit()
        packed = pack_bytes(dt, 1, matrix.view(np.uint8))
        raw = matrix.view(np.uint8)
        expect = np.concatenate([raw[i * 100 : i * 100 + 16] for i in range(3)])
        assert np.array_equal(packed, expect)


class TestIndexed:
    def test_triangular_pattern(self, matrix):
        bls = [4, 3, 2, 1]
        disps = [0, 9, 18, 27]
        dt = indexed(bls, disps, DOUBLE).commit()
        packed = pack_bytes(dt, 1, matrix.view(np.uint8)).view("f8")
        expect = np.concatenate(
            [matrix[d : d + b] for d, b in zip(disps, bls)]
        )
        assert np.array_equal(packed, expect)

    def test_zero_blocklengths_skipped(self):
        dt = indexed([2, 0, 3], [0, 5, 10], INT).commit()
        assert dt.size == 5 * 4
        assert dt.spans.count == 2

    def test_indexed_block(self, matrix):
        dt = indexed_block(2, [0, 10, 20], DOUBLE).commit()
        packed = pack_bytes(dt, 1, matrix.view(np.uint8)).view("f8")
        expect = np.concatenate([matrix[d : d + 2] for d in (0, 10, 20)])
        assert np.array_equal(packed, expect)

    def test_unsorted_displacements_preserve_order(self, matrix):
        # pack order follows definition order, not memory order: the
        # first block (8 doubles at byte 32) packs before the second
        # (8 doubles at byte 0)
        dt = hindexed([8, 8], [32, 0], DOUBLE).commit()
        packed = pack_bytes(dt, 1, matrix.view(np.uint8)).view("f8")
        assert np.array_equal(packed[:8], matrix[4:12])
        assert np.array_equal(packed[8:16], matrix[0:8])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            indexed([1, 2], [0], DOUBLE)


class TestStruct:
    def test_mixed_primitives(self, rng):
        buf = np.zeros(128, dtype=np.uint8)
        buf[:12] = rng.integers(0, 255, 12)
        buf[64:88] = rng.integers(0, 255, 24)
        dt = struct([3, 3], [0, 64], [INT, DOUBLE]).commit()
        packed = pack_bytes(dt, 1, buf)
        assert np.array_equal(packed[:12], buf[:12])
        assert np.array_equal(packed[12:], buf[64:88])

    def test_signature_sequences(self):
        dt = struct([2, 1, 2], [0, 16, 32], [INT, DOUBLE, INT]).commit()
        assert dt.signature == (
            ("MPI_INT", 2),
            ("MPI_DOUBLE", 1),
            ("MPI_INT", 2),
        )

    def test_char_granularity(self, rng):
        dt = struct([3, 5], [0, 7], [CHAR, BYTE]).commit()
        assert dt.granularity() == 1
        buf = rng.integers(0, 255, 32, dtype=np.uint8)
        packed = pack_bytes(dt, 1, buf)
        assert np.array_equal(packed, np.concatenate([buf[:3], buf[7:12]]))

    def test_derived_members(self, matrix):
        inner = vector(2, 1, 4, DOUBLE)
        dt = struct([1], [8], [inner]).commit()
        packed = pack_bytes(dt, 1, matrix.view(np.uint8)).view("f8")
        assert np.array_equal(packed, matrix[[1, 5]])


class TestSubarray:
    def test_c_order(self, rng):
        full = rng.random(6 * 5)
        dt = subarray([6, 5], [2, 3], [1, 1], DOUBLE, order="C").commit()
        packed = pack_bytes(dt, 1, full.view(np.uint8)).view("f8")
        grid = full.reshape(6, 5)
        assert np.array_equal(packed, grid[1:3, 1:4].reshape(-1))

    def test_f_order(self, rng):
        full = rng.random(6 * 5)
        dt = subarray([6, 5], [2, 3], [1, 1], DOUBLE, order="F").commit()
        packed = pack_bytes(dt, 1, full.view(np.uint8)).view("f8")
        grid = full.reshape(5, 6).T  # F-order interpretation
        assert np.array_equal(packed, grid[1:3, 1:4].T.reshape(-1))

    def test_extent_is_full_array(self):
        dt = subarray([8, 8], [2, 2], [0, 0], DOUBLE).commit()
        assert dt.extent == 64 * 8

    def test_3d(self, rng):
        full = rng.random(4 * 4 * 4)
        dt = subarray([4, 4, 4], [2, 2, 2], [1, 1, 1], DOUBLE, order="C").commit()
        packed = pack_bytes(dt, 1, full.view(np.uint8)).view("f8")
        cube = full.reshape(4, 4, 4)
        assert np.array_equal(packed, cube[1:3, 1:3, 1:3].reshape(-1))

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            subarray([4, 4], [3, 3], [2, 2], DOUBLE)


class TestResized:
    def test_extent_override(self):
        base = contiguous(2, DOUBLE)
        dt = resized(base, 0, 100).commit()
        assert dt.extent == 100 and dt.size == 16

    def test_count_respects_new_extent(self, rng):
        # one double, resized to a 3-double extent => every 3rd element
        dt = resized(contiguous(1, DOUBLE), 0, 24).commit()
        data = rng.random(9)
        packed = pack_bytes(dt, 3, data.view(np.uint8)).view("f8")
        assert np.array_equal(packed, data[[0, 3, 6]])


class TestRoundTrips:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: vector(5, 3, 7, DOUBLE),
            lambda: indexed([3, 1, 2], [0, 5, 9], FLOAT),
            lambda: struct([2, 4], [0, 32], [INT, DOUBLE]),
            lambda: subarray([8, 8], [3, 3], [2, 2], DOUBLE, order="F"),
            lambda: hvector(4, 1, 24, INT),
        ],
        ids=["vector", "indexed", "struct", "subarray", "hvector"],
    )
    def test_pack_unpack_identity(self, make, rng):
        dt = make().commit()
        size = dt.spans_for_count(2).true_ub
        src = rng.integers(0, 255, size, dtype=np.uint8)
        packed = pack_bytes(dt, 2, src)
        dst = np.zeros_like(src)
        unpack_bytes(dt, 2, dst, packed)
        # every described byte must match; gaps stay zero
        spans = dt.spans_for_count(2)
        mask = np.zeros(size, dtype=bool)
        for d, l in spans.iter_pairs():
            mask[d : d + l] = True
        assert np.array_equal(dst[mask], src[mask])
        assert (dst[~mask] == 0).all()


class TestCommitDiscipline:
    def test_use_before_commit_rejected(self):
        dt = vector(2, 2, 4, DOUBLE)
        with pytest.raises(RuntimeError):
            _ = dt.spans

    def test_commit_idempotent(self):
        dt = vector(2, 2, 4, DOUBLE).commit()
        assert dt.commit() is dt
