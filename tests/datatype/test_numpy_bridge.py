"""Tests for the NumPy slice -> datatype bridge."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatype.numpy_bridge import (
    byte_mask,
    datatype_from_slice,
    described_elements,
)
from repro.datatype.primitives import DOUBLE, FLOAT


class TestSliceDatatypes:
    def test_2d_c_order(self, rng):
        a = rng.random((8, 8))
        dt = datatype_from_slice(a.shape, np.s_[1:5, 3:7], DOUBLE, order="C")
        got = described_elements(dt, a)
        assert np.array_equal(got, a[1:5, 3:7].reshape(-1))

    def test_2d_f_order(self, rng):
        a = np.asfortranarray(rng.random((8, 8)))
        dt = datatype_from_slice(a.shape, np.s_[1:5, 3:7], DOUBLE, order="F")
        got = described_elements(dt, a)
        assert np.array_equal(got, a[1:5, 3:7].reshape(-1, order="F"))

    def test_int_index_collapses_to_width_one(self, rng):
        a = rng.random((6, 6))
        dt = datatype_from_slice(a.shape, np.s_[2, 1:5], DOUBLE, order="C")
        got = described_elements(dt, a)
        assert np.array_equal(got, a[2, 1:5])

    def test_partial_key_fills_trailing_dims(self, rng):
        a = rng.random((4, 5))
        dt = datatype_from_slice(a.shape, np.s_[1:3], DOUBLE, order="C")
        got = described_elements(dt, a)
        assert np.array_equal(got, a[1:3].reshape(-1))

    def test_3d(self, rng):
        a = rng.random((4, 4, 4)).astype(np.float32)
        dt = datatype_from_slice(a.shape, np.s_[1:3, :2, 2:], FLOAT, order="C")
        got = described_elements(dt, a)
        assert np.array_equal(got, a[1:3, :2, 2:].reshape(-1))

    def test_negative_indices_normalize(self, rng):
        a = rng.random((6, 6))
        dt = datatype_from_slice(a.shape, np.s_[-2, :], DOUBLE, order="C")
        assert np.array_equal(described_elements(dt, a), a[-2])

    def test_strided_rejected(self):
        with pytest.raises(ValueError, match="step"):
            datatype_from_slice((8, 8), np.s_[::2, :], DOUBLE)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            datatype_from_slice((8, 8), np.s_[4:4, :], DOUBLE)

    def test_out_of_range_rejected(self):
        with pytest.raises(IndexError):
            datatype_from_slice((8, 8), np.s_[9, :], DOUBLE)

    def test_too_many_indices_rejected(self):
        with pytest.raises(ValueError):
            datatype_from_slice((8,), np.s_[1:2, 3:4], DOUBLE)


class TestByteMask:
    def test_mask_size_equals_dt_size(self):
        dt = datatype_from_slice((8, 8), np.s_[0:4, 0:4], DOUBLE)
        mask = byte_mask(dt, 8 * 8 * 8)
        assert mask.sum() == dt.size

    def test_overreach_rejected(self):
        dt = datatype_from_slice((8, 8), np.s_[:, :], DOUBLE)
        with pytest.raises(ValueError):
            byte_mask(dt, 10)


class TestPropertySlices:
    @settings(max_examples=60, deadline=None)
    @given(
        rows=st.integers(2, 10),
        cols=st.integers(2, 10),
        data=st.randoms(),
    )
    def test_random_rectangles_match_numpy(self, rows, cols, data):
        rng = np.random.default_rng(data.randint(0, 2**31))
        a = rng.random((rows, cols))
        r0 = data.randint(0, rows - 1)
        r1 = data.randint(r0 + 1, rows)
        c0 = data.randint(0, cols - 1)
        c1 = data.randint(c0 + 1, cols)
        dt = datatype_from_slice(a.shape, np.s_[r0:r1, c0:c1], DOUBLE, "C")
        got = described_elements(dt, a)
        assert np.array_equal(got, a[r0:r1, c0:c1].reshape(-1))
