"""Hypothesis strategies generating random MPI derived datatypes.

Types are built bottom-up over the full constructor algebra, bounded so
that extent and block counts stay test-sized.  ``reference_pack`` is an
independent oracle: it packs by walking the typemap spans with plain
NumPy slicing, against which the stack machine, the gather fast path,
the GPU engine, and the full protocols are all compared.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.datatype.ddt import (
    Datatype,
    contiguous,
    hindexed,
    hvector,
    indexed,
    resized,
    struct,
    vector,
)
from repro.datatype.primitives import BYTE, DOUBLE, FLOAT, INT

MAX_EXTENT = 1 << 16

primitives = st.sampled_from([BYTE, INT, FLOAT, DOUBLE])


def _bounded(dt: Datatype) -> bool:
    dt.commit()
    return 0 < dt.size and dt.extent <= MAX_EXTENT and dt.spans.count <= 2048


@st.composite
def _contiguous(draw, inner):
    base = draw(inner)
    count = draw(st.integers(1, 8))
    return contiguous(count, base)


@st.composite
def _vector(draw, inner):
    base = draw(inner)
    count = draw(st.integers(1, 8))
    bl = draw(st.integers(1, 4))
    stride = draw(st.integers(bl, bl + 6))
    return vector(count, bl, stride, base)


@st.composite
def _hvector(draw, inner):
    base = draw(inner)
    count = draw(st.integers(1, 6))
    bl = draw(st.integers(1, 3))
    # byte stride at least the block footprint, 8-aligned or not
    min_stride = bl * base.commit().extent
    stride = draw(st.integers(min_stride, min_stride + 64))
    return hvector(count, bl, stride, base)


@st.composite
def _indexed(draw, inner):
    base = draw(inner)
    n = draw(st.integers(1, 6))
    bls = draw(st.lists(st.integers(0, 3), min_size=n, max_size=n))
    # non-overlapping ascending displacements
    disps = []
    pos = 0
    for bl in bls:
        gap = draw(st.integers(0, 4))
        disps.append(pos + gap)
        pos += gap + max(bl, 1)
    if sum(bls) == 0:
        bls[0] = 1
    return indexed(bls, disps, base)


@st.composite
def _struct(draw, inner):
    n = draw(st.integers(1, 4))
    types = [draw(inner) for _ in range(n)]
    bls = draw(st.lists(st.integers(1, 3), min_size=n, max_size=n))
    disps = []
    pos = 0
    for bl, t in zip(bls, types):
        gap = draw(st.integers(0, 32))
        disps.append(pos + gap)
        pos += gap + bl * t.commit().extent
    return struct(bls, disps, types)


@st.composite
def _resized(draw, inner):
    base = draw(inner).commit()
    pad = draw(st.integers(0, 64))
    return resized(base, base.lb, base.extent + pad)


def datatypes(max_depth: int = 3):
    """Random committed datatypes over the full constructor algebra."""
    base = primitives.map(lambda p: contiguous(1, p))
    tree = st.recursive(
        base,
        lambda inner: st.one_of(
            _contiguous(inner),
            _vector(inner),
            _hvector(inner),
            _indexed(inner),
            _struct(inner),
            _resized(inner),
        ),
        max_leaves=max_depth,
    )
    return tree.map(lambda dt: dt.commit()).filter(_bounded)


def reference_pack(dt: Datatype, count: int, user: np.ndarray) -> np.ndarray:
    """Oracle pack: walk typemap spans with plain slicing."""
    spans = dt.spans_for_count(count)
    out = np.empty(spans.size, dtype=np.uint8)
    pos = 0
    for d, l in spans.iter_pairs():
        out[pos : pos + l] = user[d : d + l]
        pos += l
    return out


def buffer_for(dt: Datatype, count: int, rng: np.random.Generator) -> np.ndarray:
    """A random user buffer big enough for ``count`` elements."""
    spans = dt.spans_for_count(count)
    size = max(spans.true_ub, 1)
    return rng.integers(0, 255, size, dtype=np.uint8)
