"""Tests for the span algebra (typemap normalization)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatype.typemap import Spans, coalesce, concat, tile


def mk(disps, lens) -> Spans:
    return Spans(np.array(disps, np.int64), np.array(lens, np.int64))


class TestSpans:
    def test_basic_facts(self):
        s = mk([0, 16], [8, 8])
        assert s.count == 2 and s.size == 16
        assert s.true_lb == 0 and s.true_ub == 24

    def test_packed_offsets(self):
        s = mk([0, 100, 200], [4, 8, 2])
        assert s.packed_offsets().tolist() == [0, 4, 12]

    def test_shift(self):
        assert mk([0, 8], [4, 4]).shift(10).disps.tolist() == [10, 18]

    def test_overlap_detection(self):
        assert mk([0, 4], [8, 8]).overlaps_self()
        assert not mk([0, 8], [8, 8]).overlaps_self()
        assert not mk([8, 0], [4, 4]).overlaps_self()  # order-independent

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mk([0, 1], [1])


class TestCoalesce:
    def test_adjacent_merge(self):
        s = coalesce(mk([0, 8, 16], [8, 8, 8]))
        assert s.count == 1 and s.lens.tolist() == [24]

    def test_gap_preserved(self):
        s = coalesce(mk([0, 9], [8, 8]))
        assert s.count == 2

    def test_order_dependence(self):
        # spans adjacent in memory but not consecutive in pack order
        s = coalesce(mk([8, 0], [8, 8]))
        assert s.count == 2

    def test_partial_runs(self):
        s = coalesce(mk([0, 8, 100, 108, 116], [8, 8, 8, 8, 8]))
        assert s.disps.tolist() == [0, 100]
        assert s.lens.tolist() == [16, 24]


class TestTile:
    def test_counts_and_offsets(self):
        s = tile(mk([0], [4]), 3, 16)
        assert s.disps.tolist() == [0, 16, 32]

    def test_tile_coalesces_contiguous(self):
        s = tile(mk([0], [16]), 4, 16)
        assert s.count == 1 and s.size == 64

    def test_zero_count(self):
        assert tile(mk([0], [4]), 0, 16).count == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            tile(mk([0], [4]), -1, 16)


class TestConcat:
    def test_order_preserved(self):
        s = concat([mk([100], [4]), mk([0], [4])])
        assert s.disps.tolist() == [100, 0]

    def test_empty_parts_dropped(self):
        s = concat([Spans.empty(), mk([0], [4]), Spans.empty()])
        assert s.count == 1


class TestProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, 1000), st.integers(1, 64)), min_size=1, max_size=50
        )
    )
    def test_coalesce_preserves_bytes_and_order(self, pairs):
        s = mk([p[0] for p in pairs], [p[1] for p in pairs])
        c = coalesce(s)
        assert c.size == s.size
        # expanding both into per-byte address streams gives identical sequences
        def stream(sp):
            return np.concatenate(
                [np.arange(d, d + l) for d, l in sp.iter_pairs()]
            )
        assert np.array_equal(stream(s), stream(c))
        # no two consecutive output spans are mergeable
        if c.count > 1:
            assert (c.disps[1:] != c.disps[:-1] + c.lens[:-1]).all()

    @settings(max_examples=50, deadline=None)
    @given(
        count=st.integers(1, 10),
        stride=st.integers(0, 500),
        disp=st.integers(0, 100),
        length=st.integers(1, 32),
    )
    def test_tile_size_scales(self, count, stride, disp, length):
        s = tile(mk([disp], [length]), count, stride)
        assert s.size == count * length
