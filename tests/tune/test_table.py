"""Tests for the decision table (repro.tune.table): banding, argmin
decisions, and the strict schema-versioned persistence contract."""

from __future__ import annotations

import json

import pytest

from repro.tune.table import (
    DEFAULT_BANDS,
    SCHEMA,
    DecisionTable,
    band_label,
    band_of,
    validate_bands,
)


class TestBands:
    def test_defaults_valid(self):
        assert validate_bands(DEFAULT_BANDS) == DEFAULT_BANDS

    def test_lists_normalize_to_tuples(self):
        assert validate_bands([1024, 4096]) == (1024, 4096)

    @pytest.mark.parametrize(
        "bands",
        [(), (0,), (-1,), (4096, 1024), (1024, 1024), (1024.0,), (True,),
         "4096", 4096],
        ids=["empty", "zero", "negative", "decreasing", "equal", "float",
             "bool", "string", "scalar"],
    )
    def test_bad_bands_rejected(self, bands):
        with pytest.raises(ValueError):
            validate_bands(bands)

    def test_band_of_inclusive_upper_edges(self):
        bands = (4096, 32768)
        assert band_of(bands, 0) == 0
        assert band_of(bands, 4096) == 0  # inclusive
        assert band_of(bands, 4097) == 1
        assert band_of(bands, 32768) == 1
        assert band_of(bands, 32769) == 2  # open top band

    def test_band_label(self):
        bands = (4096, 32768)
        assert band_label(bands, 100) == "le4096"
        assert band_label(bands, 5000) == "le32768"
        assert band_label(bands, 1 << 20) == "gt32768"


class TestObserveAndDecide:
    def test_best_is_cost_argmin(self):
        t = DecisionTable()
        t.observe("k", "slow", 2.0, 1000)
        t.observe("k", "fast", 1.0, 1000)
        assert t.best("k") == "fast"
        assert t.cost("k", "slow") == pytest.approx(2.0 / 1000)

    def test_cost_averages_over_samples(self):
        t = DecisionTable()
        t.observe("k", "c", 1.0, 500)
        t.observe("k", "c", 3.0, 1500)
        assert t.cost("k", "c") == pytest.approx(4.0 / 2000)

    def test_unseen_key_and_choice(self):
        t = DecisionTable()
        assert t.best("nope") is None
        assert t.cost("nope", "c") is None

    def test_feasible_filter(self):
        t = DecisionTable()
        t.observe("k", "fast", 1.0, 1000)
        t.observe("k", "slow", 2.0, 1000)
        assert t.best("k", feasible=("slow",)) == "slow"
        assert t.best("k", feasible=("other",)) is None

    def test_tie_breaks_lexicographically(self):
        t = DecisionTable()
        t.observe("k", "zeta", 1.0, 1000)
        t.observe("k", "alpha", 1.0, 1000)
        assert t.best("k") == "alpha"

    def test_zero_byte_observation_still_costs(self):
        # DEV-prep overheads arrive with nbytes=0; they must rank, not /0
        t = DecisionTable()
        t.observe("k", "prep", 0.5, 0)
        assert t.cost("k", "prep") == pytest.approx(0.5)

    def test_negative_observation_rejected(self):
        t = DecisionTable()
        with pytest.raises(ValueError):
            t.observe("k", "c", -1.0, 10)
        with pytest.raises(ValueError):
            t.observe("k", "c", 1.0, -10)

    def test_merge_folds_samples(self):
        a, b = DecisionTable(), DecisionTable()
        a.observe("k", "c", 1.0, 100)
        b.observe("k", "c", 3.0, 300)
        b.observe("k2", "d", 1.0, 50)
        a.merge(b)
        assert a.entries["k"]["c"] == [2, 4.0, 400]
        assert "k2" in a.entries

    def test_merge_rejects_band_mismatch(self):
        a = DecisionTable(bands=(1024,))
        b = DecisionTable(bands=(2048,))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_snapshot_is_frozen(self):
        t = DecisionTable()
        t.observe("k", "c", 1.0, 1000)
        snap = t.snapshot()
        t.observe("k", "c", 100.0, 1)  # later samples must not leak in
        assert snap["k"]["c"] == pytest.approx(1.0 / 1000)


class TestPersistence:
    def roundtrip(self, t: DecisionTable) -> DecisionTable:
        return DecisionTable.from_doc(json.loads(json.dumps(t.to_doc())))

    def test_roundtrip_identity(self):
        t = DecisionTable()
        t.observe("p2p/contig/le4096/intra/d", "frag=1048576,depth=4,proto=-",
                  1.5, 4096)
        t.observe("coll/alltoall/dev/le32768/n2x4", "staged", 2.0, 32768)
        back = self.roundtrip(t)
        assert back.entries == t.entries
        assert back.bands == t.bands

    def test_doc_is_schema_tagged_and_sorted(self):
        t = DecisionTable()
        t.observe("z", "c", 1.0, 1)
        t.observe("a", "c", 1.0, 1)
        doc = t.to_doc()
        assert doc["schema"] == SCHEMA
        assert list(doc["entries"]) == ["a", "z"]

    @pytest.mark.parametrize(
        "mangle",
        [
            lambda d: d.pop("schema"),
            lambda d: d.update(schema="repro-tune/999"),
            lambda d: d.update(entries=[]),
            lambda d: d["entries"].update({"": {"c": [1, 1.0, 1]}}),
            lambda d: d["entries"].update({"k2": "not-an-object"}),
            lambda d: d["entries"]["k"].update({"": [1, 1.0, 1]}),
            lambda d: d["entries"]["k"].update({"c": [0, 1.0, 1]}),
            lambda d: d["entries"]["k"].update({"c": [1, -1.0, 1]}),
            lambda d: d["entries"]["k"].update({"c": [1, 1.0]}),
            lambda d: d["entries"]["k"].update({"c": [True, 1.0, 1]}),
            lambda d: d.update(bands=[4096, 1024]),
        ],
        ids=["no-schema", "wrong-schema", "entries-list", "empty-key",
             "choices-not-object", "empty-choice", "zero-samples",
             "negative-seconds", "short-cell", "bool-samples", "bad-bands"],
    )
    def test_malformed_doc_hard_fails(self, mangle):
        t = DecisionTable()
        t.observe("k", "c", 1.0, 1)
        doc = json.loads(json.dumps(t.to_doc()))
        mangle(doc)
        with pytest.raises(ValueError):
            DecisionTable.from_doc(doc)

    def test_non_object_doc_rejected(self):
        with pytest.raises(ValueError):
            DecisionTable.from_doc([1, 2, 3])

    def test_save_load(self, tmp_path):
        t = DecisionTable(bands=(1024, 8192))
        t.observe("k", "c", 1.0, 512)
        path = t.save(str(tmp_path / "sub" / "table.json"))
        back = DecisionTable.load(path)
        assert back.bands == (1024, 8192)
        assert back.entries == t.entries

    def test_load_invalid_json_is_value_error(self, tmp_path):
        path = tmp_path / "table.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="invalid JSON"):
            DecisionTable.load(str(path))
