"""Tests for the frozen-decision autotuner (repro.tune.tuner)."""

from __future__ import annotations

import pytest

from repro.datatype.canonical import canonicalize
from repro.datatype.ddt import contiguous, vector
from repro.datatype.primitives import BYTE, DOUBLE
from repro.mpi.config import MpiConfig
from repro.tune import Autotuner, DecisionTable
from repro.tune.tuner import (
    SendChoice,
    parse_send_choice,
    send_choice_str,
    struct_sig,
)


def table_with(*obs) -> DecisionTable:
    t = DecisionTable()
    for key, choice, seconds, nbytes in obs:
        t.observe(key, choice, seconds, nbytes)
    return t


class TestChoiceStrings:
    def test_roundtrip(self):
        s = send_choice_str(1 << 20, 4, "ipc_rdma")
        assert s == "frag=1048576,depth=4,proto=ipc_rdma"
        assert parse_send_choice(s) == SendChoice(1 << 20, 4, "ipc_rdma")

    def test_no_preference_encodes_as_dash(self):
        s = send_choice_str(4096, 2, None)
        assert s.endswith("proto=-")
        assert parse_send_choice(s) == SendChoice(4096, 2, None)

    @pytest.mark.parametrize(
        "s", ["eager", "staged", "frag=x,depth=2,proto=-", "frag=0,depth=2",
              "frag=4096,depth=0,proto=-", "frag=4096"]
    )
    def test_non_send_or_malformed_is_none(self, s):
        assert parse_send_choice(s) is None


class TestStructSig:
    def test_vector_keeps_geometry_not_count(self):
        small = canonicalize(vector(64, 4, 12, DOUBLE).commit(), 1)
        large = canonicalize(vector(512, 4, 12, DOUBLE).commit(), 1)
        assert struct_sig(small) == struct_sig(large) == "v32x96"

    def test_contig(self):
        form = canonicalize(contiguous(4096, BYTE).commit(), 1)
        assert struct_sig(form) == "contig"


class TestConstruction:
    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            Autotuner(mode="off")
        with pytest.raises(ValueError):
            Autotuner(mode="On")

    def test_band_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Autotuner(DecisionTable(bands=(1024,)), bands=(2048,))

    def test_from_config_off_is_none(self):
        assert Autotuner.from_config(MpiConfig()) is None

    def test_from_config_builds_mode(self, tmp_path):
        t = table_with(("k", "staged", 1.0, 100))
        path = t.save(str(tmp_path / "table.json"))
        tuner = Autotuner.from_config(
            MpiConfig(autotune="on", tuner_table=path, tuner_seed=3)
        )
        assert tuner.mode == "on" and tuner.seed == 3
        assert tuner.table.entries == t.entries

    def test_from_config_malformed_table_fails_loudly(self, tmp_path):
        path = tmp_path / "table.json"
        path.write_text('{"schema": "wrong/0"}')
        with pytest.raises(ValueError):
            Autotuner.from_config(MpiConfig(autotune="on", tuner_table=str(path)))


class TestDecide:
    KEY = "p2p/contig/le4096/intra/d"

    def test_observe_mode_never_decides(self):
        t = table_with((self.KEY, "frag=4096,depth=2,proto=copyinout", 1.0, 100))
        tuner = Autotuner(t, mode="observe")
        assert tuner.decide_send(self.KEY) is None
        assert tuner.decide_coll("coll/x", ("staged",)) is None
        assert tuner.decide_plan("plan/x", ("a", "b")) is None

    def test_decide_send_picks_cheapest_and_records(self):
        t = table_with(
            (self.KEY, "frag=1048576,depth=4,proto=-", 2.0, 1000),
            (self.KEY, "frag=4096,depth=2,proto=copyinout", 1.0, 1000),
            (self.KEY, "eager", 0.1, 1000),  # non-send choice is skipped
        )
        tuner = Autotuner(t, mode="on")
        choice = tuner.decide_send(self.KEY)
        assert choice == SendChoice(4096, 2, "copyinout")
        assert tuner.decisions[self.KEY] == "frag=4096,depth=2,proto=copyinout"

    def test_decide_send_no_history_is_none(self):
        tuner = Autotuner(DecisionTable(), mode="on")
        assert tuner.decide_send(self.KEY) is None
        assert tuner.decisions == {}

    def test_decisions_are_frozen_at_construction(self):
        t = table_with((self.KEY, "frag=4096,depth=2,proto=-", 1.0, 1000))
        tuner = Autotuner(t, mode="on")
        # a much cheaper in-run observation must not steer this run
        tuner.observe_send(self.KEY, 1 << 20, 8, "ipc_rdma", 1e-9, 1000)
        assert tuner.decide_send(self.KEY) == SendChoice(4096, 2, None)

    def test_decide_coll_respects_feasible(self):
        key = "coll/alltoall/dev/le32768/n2x4"
        t = table_with((key, "direct", 1.0, 100), (key, "staged", 2.0, 100))
        tuner = Autotuner(t, mode="on")
        assert tuner.decide_coll(key, ("staged", "direct")) == "direct"
        assert tuner.decide_coll(key, ("staged",)) == "staged"
        assert tuner.decide_coll(key, ("pairwise",)) is None

    def test_decide_plan_requires_full_coverage(self):
        key = "plan/v32x96/le32768"
        t = table_with((key, "gather", 1.0, 100))
        tuner = Autotuner(t, mode="on")
        # only one of two feasible plans has history: static model wins
        assert tuner.decide_plan(key, ("gather", "vector_kernel")) is None
        t2 = table_with(
            (key, "gather", 1.0, 100), (key, "vector_kernel", 2.0, 100)
        )
        tuner2 = Autotuner(t2, mode="on")
        assert tuner2.decide_plan(key, ("gather", "vector_kernel")) == "gather"

    def test_decide_plan_single_feasible_is_none(self):
        key = "plan/contig/le4096"
        tuner = Autotuner(table_with((key, "contig", 1.0, 100)), mode="on")
        assert tuner.decide_plan(key, ("contig",)) is None


class TestDigest:
    def test_digest_is_order_independent(self):
        t = table_with(
            ("a", "frag=4096,depth=2,proto=-", 1.0, 100),
            ("b", "frag=4096,depth=2,proto=-", 1.0, 100),
        )
        t1 = Autotuner(t, mode="on")
        t1.decide_send("a")
        t1.decide_send("b")
        t2 = Autotuner(t, mode="on")
        t2.decide_send("b")
        t2.decide_send("a")
        assert t1.decisions_digest() == t2.decisions_digest()

    def test_digest_changes_with_decisions(self):
        t = table_with(("a", "frag=4096,depth=2,proto=-", 1.0, 100))
        tuner = Autotuner(t, mode="on")
        empty = tuner.decisions_digest()
        tuner.decide_send("a")
        assert tuner.decisions_digest() != empty


class TestKeys:
    def test_p2p_key_shape(self):
        tuner = Autotuner(DecisionTable(), mode="observe")
        form = canonicalize(vector(512, 4, 12, DOUBLE).commit(), 1)
        key = tuner.p2p_key(form, 16 << 10, True, "device")
        assert key == "p2p/v32x96/le32768/intra/d"
        key = tuner.p2p_key(form, 16 << 10, False, "host")
        assert key == "p2p/v32x96/le32768/inter/h"

    def test_coll_and_plan_keys(self):
        tuner = Autotuner(DecisionTable(), mode="observe")
        assert (
            tuner.coll_key("alltoall", 8 << 10, True, 2, 4)
            == "coll/alltoall/dev/le32768/n2x4"
        )
        form = canonicalize(contiguous(4096, BYTE).commit(), 1)
        assert tuner.plan_key(form, 4096) == "plan/contig/le4096"
