"""Tests for the Fig 1 staging baselines (correctness + cost ordering)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.staging import (
    per_block_d2d_transfer,
    per_block_d2h_pack,
    whole_region_pack,
)
from repro.datatype.convertor import pack_bytes
from repro.hw.node import Cluster
from repro.mpi.proc import MpiProcess
from repro.mpi.config import MpiConfig
from repro.workloads.matrices import lower_triangular_type, submatrix_type


@pytest.fixture
def proc(cluster):
    return MpiProcess(0, cluster.nodes[0], cluster.nodes[0].gpus[0], MpiConfig())


def run(cluster, coro):
    return cluster.sim.run_until_complete(cluster.sim.spawn(coro))


class TestWholeRegionPack:
    def test_packs_correctly(self, cluster, proc, rng):
        dt = lower_triangular_type(64)
        src = proc.ctx.malloc(dt.extent)
        src.write(rng.random(dt.extent // 8))
        out = proc.node.host_memory.alloc(dt.size)
        region = run(cluster, whole_region_pack(proc, dt, 1, src, out))
        assert np.array_equal(out.bytes, pack_bytes(dt, 1, src.bytes))
        # it reports the wasted bounce-buffer footprint (the whole extent)
        assert region >= dt.size

    def test_wastes_pcie_on_sparse_layouts(self, cluster, proc, rng):
        # 1/16 density: the region copy moves 16x the payload
        dt = submatrix_type(16, 256)
        src = proc.ctx.malloc(dt.extent)
        out = proc.node.host_memory.alloc(dt.size)
        before = proc.gpu.d2h_link.bytes_transferred
        run(cluster, whole_region_pack(proc, dt, 1, src, out))
        moved = proc.gpu.d2h_link.bytes_transferred - before
        assert moved > 10 * dt.size


class TestPerBlockD2H:
    def test_packs_correctly(self, cluster, proc, rng):
        dt = lower_triangular_type(48)
        src = proc.ctx.malloc(dt.extent)
        src.write(rng.random(dt.extent // 8))
        out = proc.node.host_memory.alloc(dt.size)
        n_blocks = run(cluster, per_block_d2h_pack(proc, dt, 1, src, out))
        assert n_blocks == 48
        assert np.array_equal(out.bytes, pack_bytes(dt, 1, src.bytes))

    def test_cost_scales_with_block_count(self, cluster, proc):
        # same payload, 4x the blocks => much slower
        few = submatrix_type(64, 128)  # 64 blocks of 512B
        many_bls = [8] * 512
        from repro.datatype.ddt import indexed

        many = indexed(many_bls, [i * 16 for i in range(512)], __import__(
            "repro.datatype.primitives", fromlist=["DOUBLE"]).DOUBLE).commit()
        src = proc.ctx.malloc(max(few.extent, many.extent))
        out = proc.node.host_memory.alloc(max(few.size, many.size))
        t0 = cluster.sim.now
        run(cluster, per_block_d2h_pack(proc, few, 1, src, out))
        t_few = cluster.sim.now - t0
        t0 = cluster.sim.now
        run(cluster, per_block_d2h_pack(proc, many, 1, src, out))
        t_many = cluster.sim.now - t0
        # similar bytes (256KiB vs 32KiB) but 8x blocks: call-bound
        assert t_many > t_few * 2


class TestPerBlockD2D:
    def test_same_gpu_identity_layout(self, cluster, proc, rng):
        dt = lower_triangular_type(48)
        src = proc.ctx.malloc(dt.extent)
        src.write(rng.random(dt.extent // 8))
        dst = proc.ctx.malloc(dt.extent)
        run(cluster, per_block_d2d_transfer(proc, dt, 1, src, dst))
        assert np.array_equal(
            pack_bytes(dt, 1, dst.bytes), pack_bytes(dt, 1, src.bytes)
        )

    def test_cross_gpu(self, cluster, proc, rng):
        dt = lower_triangular_type(32)
        g1 = cluster.nodes[0].gpus[1]
        src = proc.ctx.malloc(dt.extent)
        src.write(rng.random(dt.extent // 8))
        dst = g1.memory.alloc(dt.extent)
        run(
            cluster,
            per_block_d2d_transfer(proc, dt, 1, src, dst, peer_gpu=g1),
        )
        assert np.array_equal(
            pack_bytes(dt, 1, dst.bytes), pack_bytes(dt, 1, src.bytes)
        )
