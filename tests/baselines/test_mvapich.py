"""Tests for the MVAPICH-style vectorization baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.mvapich import MvapichLikeTransfer, vectorize_spans
from repro.datatype.convertor import pack_bytes
from repro.datatype.ddt import contiguous
from repro.datatype.primitives import DOUBLE
from repro.hw.node import Cluster
from repro.mpi.config import MpiConfig
from repro.mpi.proc import MpiProcess
from repro.workloads.matrices import (
    lower_triangular_type,
    submatrix_type,
    transpose_type,
)


class TestVectorize:
    def test_vector_becomes_one_run(self):
        dt = submatrix_type(64, 128)
        runs = vectorize_spans(dt.spans)
        assert len(runs) == 1
        assert runs[0].count == 64 and runs[0].blocklength == 512

    def test_triangular_one_run_per_column(self):
        dt = lower_triangular_type(32)
        runs = vectorize_spans(dt.spans)
        assert len(runs) == 32  # the paper's complaint

    def test_transpose_one_run_per_column(self):
        dt = transpose_type(16)
        runs = vectorize_spans(dt.spans)
        assert len(runs) == 16
        assert all(r.blocklength == 8 and r.count == 16 for r in runs)

    def test_contiguous_single_run(self):
        dt = contiguous(100, DOUBLE).commit()
        runs = vectorize_spans(dt.spans)
        assert len(runs) == 1 and runs[0].count == 1

    def test_empty(self):
        from repro.datatype.typemap import Spans

        assert vectorize_spans(Spans.empty()) == []

    def test_runs_cover_all_bytes(self):
        dt = lower_triangular_type(20)
        runs = vectorize_spans(dt.spans)
        assert sum(r.nbytes for r in runs) == dt.size


def _procs(kind: str):
    if kind == "sm":
        c = Cluster(1, 2)
        p0 = MpiProcess(0, c.nodes[0], c.nodes[0].gpus[0], MpiConfig())
        p1 = MpiProcess(1, c.nodes[0], c.nodes[0].gpus[1], MpiConfig())
    else:
        c = Cluster(2, 1)
        p0 = MpiProcess(0, c.nodes[0], c.nodes[0].gpus[0], MpiConfig())
        p1 = MpiProcess(1, c.nodes[1], c.nodes[1].gpus[0], MpiConfig())
    return c, p0, p1


class TestTransfer:
    @pytest.mark.parametrize("kind", ["sm", "ib"])
    def test_vector_transfer_correct(self, kind, rng):
        c, p0, p1 = _procs(kind)
        dt = submatrix_type(48, 96)
        b0 = p0.ctx.malloc(dt.extent)
        b0.write(rng.random(dt.extent // 8))
        b1 = p1.ctx.malloc(dt.extent)
        xfer = MvapichLikeTransfer(p0, p1)
        c.sim.run_until_complete(
            c.sim.spawn(xfer.transfer(b0, dt, 1, b1, dt, 1))
        )
        assert np.array_equal(
            pack_bytes(dt, 1, b1.bytes), pack_bytes(dt, 1, b0.bytes)
        )

    def test_indexed_much_slower_than_vector(self, rng):
        c, p0, p1 = _procs("sm")
        V = submatrix_type(128, 256)
        T = lower_triangular_type(181)  # ~same payload as V
        bV0 = p0.ctx.malloc(V.extent)
        bV1 = p1.ctx.malloc(V.extent)
        bT0 = p0.ctx.malloc(T.extent)
        bT1 = p1.ctx.malloc(T.extent)
        xfer = MvapichLikeTransfer(p0, p1)
        t0 = c.sim.now
        c.sim.run_until_complete(c.sim.spawn(xfer.transfer(bV0, V, 1, bV1, V, 1)))
        t_v = c.sim.now - t0
        t0 = c.sim.now
        c.sim.run_until_complete(c.sim.spawn(xfer.transfer(bT0, T, 1, bT1, T, 1)))
        t_t = c.sim.now - t0
        assert t_t > 3 * t_v  # per-column cudaMemcpy2D calls dominate

    def test_host_only_rank_rejected(self):
        c = Cluster(1, 1)
        p0 = MpiProcess(0, c.nodes[0], c.nodes[0].gpus[0], MpiConfig())
        p1 = MpiProcess(1, c.nodes[0], None, MpiConfig())
        with pytest.raises(ValueError):
            MvapichLikeTransfer(p0, p1)

    def test_reshape_transfer(self, rng):
        # contiguous sender, transpose receiver (the Fig 12 shape)
        c, p0, p1 = _procs("ib")
        n = 24
        C = contiguous(n * n, DOUBLE).commit()
        TR = transpose_type(n)
        b0 = p0.ctx.malloc(n * n * 8)
        b0.write(rng.random(n * n))
        b1 = p1.ctx.malloc(n * n * 8)
        xfer = MvapichLikeTransfer(p0, p1)
        c.sim.run_until_complete(c.sim.spawn(xfer.transfer(b0, C, 1, b1, TR, 1)))
        a = b0.view("f8").reshape(n, n)
        b = b1.view("f8").reshape(n, n)
        assert np.array_equal(b, a.T)
