"""Property tests for the MVAPICH vectorization algorithm."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.mvapich import VectorRun, vectorize_spans
from repro.datatype.typemap import Spans
from tests.datatype.strategies import datatypes


def expand(runs: list[VectorRun]) -> list[tuple[int, int]]:
    """Flatten runs back into (disp, len) blocks in pack order."""
    blocks = []
    for r in runs:
        for i in range(r.count):
            blocks.append((r.first_disp + i * r.stride, r.blocklength))
    return blocks


class TestVectorizeProperties:
    @settings(max_examples=80, deadline=None)
    @given(dt=datatypes())
    def test_runs_reproduce_spans_exactly(self, dt):
        """Vectorization is a lossless re-encoding of the typemap."""
        spans = dt.spans
        runs = vectorize_spans(spans)
        got = expand(runs)
        want = list(spans.iter_pairs())
        assert got == want

    @settings(max_examples=80, deadline=None)
    @given(dt=datatypes())
    def test_total_bytes_preserved(self, dt):
        runs = vectorize_spans(dt.spans)
        assert sum(r.nbytes for r in runs) == dt.size

    @settings(max_examples=50, deadline=None)
    @given(dt=datatypes())
    def test_runs_are_legal_pitches(self, dt):
        """Multi-block runs never overlap themselves (cudaMemcpy2D-legal)."""
        for r in vectorize_spans(dt.spans):
            if r.count > 1:
                assert abs(r.stride) >= r.blocklength

    @settings(max_examples=40, deadline=None)
    @given(
        count=st.integers(1, 50),
        bl=st.integers(1, 64),
        gap=st.integers(0, 64),
    )
    def test_uniform_vectors_fuse_to_one_run(self, count, bl, gap):
        stride = bl + gap
        disps = np.arange(count, dtype=np.int64) * stride
        lens = np.full(count, bl, dtype=np.int64)
        spans = Spans(disps, lens)
        runs = vectorize_spans(spans)
        if gap == 0:
            # adjacent blocks: still a valid encoding covering all bytes
            assert sum(r.nbytes for r in runs) == count * bl
        else:
            assert len(runs) == 1
            assert runs[0].count == count
