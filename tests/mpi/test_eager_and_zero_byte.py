"""Regression tests for two latent eager-path bugs.

* A receive posted *larger* than the eager send must unpack only the
  sent prefix.  Pre-fix, the device path handed the short contiguous
  stage to ``GpuSideJob.process_all``, which raised
  ``ValueError("contiguous buffer smaller than the message")``.
* Zero-byte transfers must complete without shipping a ghost ``(0, 0)``
  fragment or touching the GPU datatype engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datatype.ddt import contiguous, vector
from repro.datatype.primitives import DOUBLE
from repro.mpi.config import MpiConfig
from repro.mpi.protocols.common import TransferState, byte_ranges
from tests.mpi.test_property_end_to_end import build_world

#: a committed 8-byte element (primitives cannot be posted directly)
D8 = contiguous(1, DOUBLE).commit()


def _bufs(world, size):
    bufs = []
    for rank in range(2):
        proc = world.procs[rank]
        if proc.gpu is not None:
            buf = proc.ctx.malloc(size)
        else:
            buf = proc.node.host_memory.alloc(size)
        bufs.append(buf)
    return bufs


@pytest.mark.parametrize("kind", ["cpu", "sm-2gpu"])
def test_eager_recv_posted_larger_unpacks_prefix(kind):
    """recv posts 8 DOUBLEs, send ships 3: exactly 24 bytes move."""
    world = build_world(kind, MpiConfig())
    send_buf, recv_buf = _bufs(world, 8 * DOUBLE.size)
    send_buf.bytes[:] = np.arange(8 * DOUBLE.size, dtype=np.uint8)
    recv_buf.bytes[:] = 0xAB
    got_status = []

    def s(mpi):
        yield mpi.send(send_buf, D8, 3, dest=1, tag=4)

    def r(mpi):
        status = yield mpi.recv(recv_buf, D8, 8, source=0, tag=4)
        got_status.append(status)

    world.run([s, r])
    assert got_status[0].count_bytes == 3 * DOUBLE.size
    assert np.array_equal(
        recv_buf.bytes[: 3 * DOUBLE.size], send_buf.bytes[: 3 * DOUBLE.size]
    )
    # the unposted tail is never written
    assert np.all(recv_buf.bytes[3 * DOUBLE.size:] == 0xAB)
    assert world.stats().by_protocol == {"eager": 2}


@pytest.mark.parametrize("kind", ["cpu", "sm-2gpu"])
def test_eager_prefix_with_noncontig_type(kind):
    """Same prefix rule when the posted datatype is strided."""
    dt = vector(4, 2, 3, DOUBLE).commit()  # 64 packed bytes per element
    world = build_world(kind, MpiConfig())
    size = dt.spans_for_count(4).true_ub
    send_buf, recv_buf = _bufs(world, size)
    rng = np.random.default_rng(7)
    send_buf.bytes[:] = rng.integers(0, 255, size, dtype=np.uint8)
    recv_buf.bytes[:] = 0xAB

    def s(mpi):
        yield mpi.send(send_buf, dt, 1, dest=1, tag=4)

    def r(mpi):
        status = yield mpi.recv(recv_buf, dt, 4, source=0, tag=4)
        assert status.count_bytes == dt.size

    world.run([s, r])
    # first element's strided blocks landed; later elements untouched
    for blk in range(4):
        lo = blk * 3 * DOUBLE.size
        assert np.array_equal(
            recv_buf.bytes[lo: lo + 2 * DOUBLE.size],
            send_buf.bytes[lo: lo + 2 * DOUBLE.size],
        )
    assert np.all(recv_buf.bytes[dt.extent:] == 0xAB)


def test_byte_ranges_zero():
    assert byte_ranges(0, 4096) == []
    assert byte_ranges(1, 4096) == [(0, 1)]


@pytest.mark.parametrize("kind", ["cpu", "sm-2gpu", "ib"])
def test_zero_count_send_completes_without_engines(kind):
    """count=0: no payload moves, no GPU engine is ever instantiated."""
    world = build_world(kind, MpiConfig())
    send_buf, recv_buf = _bufs(world, 64)
    recv_buf.bytes[:] = 0xCD

    def s(mpi):
        yield mpi.send(send_buf, D8, 0, dest=1, tag=5)

    def r(mpi):
        status = yield mpi.recv(recv_buf, D8, 0, source=0, tag=5)
        assert status.count_bytes == 0

    world.run([s, r])
    assert np.all(recv_buf.bytes == 0xCD)
    ws = world.stats()
    assert ws.is_complete()
    assert ws.by_protocol == {"eager": 2}
    assert ws.engine.jobs == 0
    # lazily-created engines were never needed
    assert all(p._engine is None for p in world.procs)


def test_zero_count_into_larger_posted_recv():
    """count=0 send against a count>0 recv is a plain zero-byte message."""
    world = build_world("sm-2gpu", MpiConfig())
    send_buf, recv_buf = _bufs(world, 64)
    recv_buf.bytes[:] = 0xCD

    def s(mpi):
        yield mpi.send(send_buf, D8, 0, dest=1, tag=5)

    def r(mpi):
        status = yield mpi.recv(recv_buf, D8, 4, source=0, tag=5)
        assert status.count_bytes == 0

    world.run([s, r])
    assert np.all(recv_buf.bytes == 0xCD)
    assert all(p._engine is None for p in world.procs)


def test_zero_fragment_transfer_state_completes_immediately():
    """expect_acks(0) resolves without any wire traffic."""
    world = build_world("cpu", MpiConfig())
    proc = world.procs[0]
    state = TransferState(
        proc=proc, btl=None, tid="t0", dt=D8, count=0,
        buf=None, total=0, frag_bytes=1024, depth=4,
    )
    fut = state.expect_acks(0)
    assert fut.done
    state.close()
