"""MpiConfig / RetryPolicy constructor validation (fail fast, not deep
inside a protocol coroutine with a cryptic ZeroDivisionError)."""

from __future__ import annotations

import pytest

from repro.mpi.config import MpiConfig, RetryPolicy


def test_defaults_are_valid():
    cfg = MpiConfig()
    assert cfg.frag_bytes > 0 and cfg.pipeline_depth > 0


def test_but_keeps_validation():
    cfg = MpiConfig().but(frag_bytes=4096)
    assert cfg.frag_bytes == 4096
    with pytest.raises(ValueError):
        MpiConfig().but(frag_bytes=0)


@pytest.mark.parametrize(
    "kw",
    [
        dict(frag_bytes=0),
        dict(frag_bytes=-1),
        dict(pipeline_depth=0),
        dict(eager_limit=-1),
        dict(rdma_mode="push"),
        dict(coll_algorithm="bruck"),
        dict(coll_algorithm=""),
        dict(coll_staged_threshold=-1),
    ],
    ids=lambda kw: next(iter(kw.items()))[0] + "=" + str(next(iter(kw.values()))),
)
def test_bad_config_rejected(kw):
    with pytest.raises(ValueError):
        MpiConfig(**kw)


@pytest.mark.parametrize(
    "kw",
    [
        dict(rto=0.0),
        dict(rto=-1.0),
        dict(backoff=0.5),
        dict(max_retries=-1),
        dict(ipc_open_retries=-1),
    ],
)
def test_bad_retry_policy_rejected(kw):
    with pytest.raises(ValueError):
        RetryPolicy(**kw)


def test_retry_policy_defaults_valid():
    rp = RetryPolicy()
    assert rp.rto > 0 and rp.backoff >= 1.0 and rp.max_retries >= 0


@pytest.mark.parametrize(
    "name",
    ["auto", "pairwise", "nonblocking", "staged", "direct", "hierarchical"],
)
def test_every_ladder_rung_accepted(name):
    assert MpiConfig(coll_algorithm=name).coll_algorithm == name


class TestTunerKnobs:
    @pytest.mark.parametrize("mode", ["off", "observe", "on"])
    def test_autotune_modes_accepted(self, mode):
        assert MpiConfig(autotune=mode).autotune == mode

    @pytest.mark.parametrize(
        "kw",
        [
            dict(autotune="On"),  # case matters: "On" would run untuned
            dict(autotune="auto"),
            dict(autotune=""),
            dict(tuner_table=123),
            dict(tuner_seed=-1),
            dict(tuner_seed=True),  # bool is not a seed
            dict(tuner_seed=1.5),
            dict(tuner_bands=()),
            dict(tuner_bands=(0,)),
            dict(tuner_bands=(4096, 1024)),
            dict(tuner_bands="4096"),
        ],
        ids=lambda kw: next(iter(kw.items()))[0] + "=" + str(next(iter(kw.values()))),
    )
    def test_bad_tuner_knobs_rejected(self, kw):
        with pytest.raises(ValueError):
            MpiConfig(**kw)

    def test_bands_normalize_to_tuple(self):
        cfg = MpiConfig(tuner_bands=[1024, 8192])
        assert cfg.tuner_bands == (1024, 8192)

    def test_malformed_tuner_table_fails_world_construction(self, tmp_path):
        # a configured table that cannot be parsed must fail loudly at
        # world construction, not silently run untuned
        from repro.hw.node import Cluster
        from repro.mpi.world import MpiWorld

        path = tmp_path / "table.json"
        path.write_text('{"schema": "bogus/7", "entries": {}}')
        cfg = MpiConfig(autotune="on", tuner_table=str(path))
        cluster = Cluster(1, 2)
        with pytest.raises(ValueError, match="schema"):
            MpiWorld(cluster, [(0, 0), (0, 1)], config=cfg)

    def test_missing_tuner_table_fails_world_construction(self, tmp_path):
        from repro.hw.node import Cluster
        from repro.mpi.world import MpiWorld

        cfg = MpiConfig(autotune="on", tuner_table=str(tmp_path / "nope.json"))
        cluster = Cluster(1, 2)
        with pytest.raises(OSError):
            MpiWorld(cluster, [(0, 0), (0, 1)], config=cfg)
