"""MpiConfig / RetryPolicy constructor validation (fail fast, not deep
inside a protocol coroutine with a cryptic ZeroDivisionError)."""

from __future__ import annotations

import pytest

from repro.mpi.config import MpiConfig, RetryPolicy


def test_defaults_are_valid():
    cfg = MpiConfig()
    assert cfg.frag_bytes > 0 and cfg.pipeline_depth > 0


def test_but_keeps_validation():
    cfg = MpiConfig().but(frag_bytes=4096)
    assert cfg.frag_bytes == 4096
    with pytest.raises(ValueError):
        MpiConfig().but(frag_bytes=0)


@pytest.mark.parametrize(
    "kw",
    [
        dict(frag_bytes=0),
        dict(frag_bytes=-1),
        dict(pipeline_depth=0),
        dict(eager_limit=-1),
        dict(rdma_mode="push"),
        dict(coll_algorithm="bruck"),
        dict(coll_algorithm=""),
        dict(coll_staged_threshold=-1),
    ],
    ids=lambda kw: next(iter(kw.items()))[0] + "=" + str(next(iter(kw.values()))),
)
def test_bad_config_rejected(kw):
    with pytest.raises(ValueError):
        MpiConfig(**kw)


@pytest.mark.parametrize(
    "kw",
    [
        dict(rto=0.0),
        dict(rto=-1.0),
        dict(backoff=0.5),
        dict(max_retries=-1),
        dict(ipc_open_retries=-1),
    ],
)
def test_bad_retry_policy_rejected(kw):
    with pytest.raises(ValueError):
        RetryPolicy(**kw)


def test_retry_policy_defaults_valid():
    rp = RetryPolicy()
    assert rp.rto > 0 and rp.backoff >= 1.0 and rp.max_retries >= 0


@pytest.mark.parametrize(
    "name",
    ["auto", "pairwise", "nonblocking", "staged", "direct", "hierarchical"],
)
def test_every_ladder_rung_accepted(name):
    assert MpiConfig(coll_algorithm=name).coll_algorithm == name
