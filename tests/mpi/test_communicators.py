"""Tests for communicator context isolation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datatype.ddt import contiguous
from repro.datatype.primitives import DOUBLE
from repro.hw.node import Cluster
from repro.mpi.comm import Communicator
from repro.mpi.world import MpiWorld


def cpu_world():
    return MpiWorld(Cluster(1, 1), [(0, None), (0, None)])


class TestCommunicator:
    def test_world_comm_id_zero(self):
        world = cpu_world()
        assert world.comm_world.comm_id == 0
        assert world.comm_world.size == 2

    def test_dup_gets_fresh_context(self):
        world = cpu_world()
        a = world.comm_world.dup()
        b = world.comm_world.dup()
        assert a.comm_id != 0 and a.comm_id != b.comm_id

    def test_messages_isolated_between_communicators(self, rng):
        """Same (source, tag) on different comms must not cross-match."""
        world = cpu_world()
        dup = world.comm_world.dup()
        dt = contiguous(64, DOUBLE).commit()
        lib_msg = world.procs[0].node.host_memory.alloc(dt.size)
        lib_msg.write(np.full(64, 111.0))
        app_msg = world.procs[0].node.host_memory.alloc(dt.size)
        app_msg.write(np.full(64, 222.0))
        lib_out = world.procs[1].node.host_memory.alloc(dt.size)
        app_out = world.procs[1].node.host_memory.alloc(dt.size)

        def s(mpi):
            # library traffic first on the wire, same tag as app traffic
            r1 = mpi.isend(lib_msg, dt, 1, dest=1, tag=5, comm=dup)
            r2 = mpi.isend(app_msg, dt, 1, dest=1, tag=5)
            yield mpi.wait_all(r1, r2)

        def r(mpi):
            # app posts first: must NOT receive the library's message
            yield mpi.recv(app_out, dt, 1, source=0, tag=5)
            yield mpi.recv(lib_out, dt, 1, source=0, tag=5, comm=dup)

        world.run([s, r])
        assert (app_out.view("f8") == 222.0).all()
        assert (lib_out.view("f8") == 111.0).all()

    def test_recv_on_wrong_comm_blocks(self):
        from repro.sim.core import SimulationError

        world = cpu_world()
        dup = world.comm_world.dup()
        dt = contiguous(8, DOUBLE).commit()
        src = world.procs[0].node.host_memory.alloc(dt.size)
        dst = world.procs[1].node.host_memory.alloc(dt.size)

        def s(mpi):
            yield mpi.send(src, dt, 1, dest=1, tag=1)

        def r(mpi):
            yield mpi.recv(dst, dt, 1, source=0, tag=1, comm=dup)

        with pytest.raises(SimulationError, match="deadlock"):
            world.run([s, r])
