"""Oracle tests: every collective x every algorithm vs NumPy packing.

The contract under test: whatever rung of the :class:`CollAlgorithm`
ladder moves the bytes, the packed content landing in each receive slot
is byte-identical to the NumPy ``pack_bytes`` oracle applied to the
sender's buffer — across world sizes 1-8 (non-powers-of-two included),
host and device buffers, triangular datatypes, and a chaos leg with
seeded Active-Message drops.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatype.convertor import pack_bytes
from repro.datatype.ddt import contiguous
from repro.datatype.primitives import DOUBLE
from repro.faults.plan import FaultSpec
from repro.hw.node import Cluster
from repro.mpi.collectives import (
    CollAlgorithm,
    allgather,
    alltoall,
    alltoallv,
    bcast,
    gather,
)
from repro.mpi.config import MpiConfig
from repro.mpi.world import MpiWorld
from repro.workloads.matrices import lower_triangular_type
from tests.datatype.strategies import datatypes

TWO_SIDED = [
    CollAlgorithm.PAIRWISE,
    CollAlgorithm.NONBLOCKING,
    CollAlgorithm.STAGED,
    CollAlgorithm.DIRECT,
]
A2A_ALGOS = TWO_SIDED + [CollAlgorithm.HIERARCHICAL]

#: 1 and 2 are the degenerate worlds; 3 and 5 are non-powers-of-two
#: (ragged last node for the hierarchical path); 8 is two full nodes
WORLD_SIZES = [1, 2, 3, 5, 8]


def build_world(n_ranks: int, device: bool = True, config=None) -> MpiWorld:
    """Ranks block-distributed over two nodes (one node for size 1)."""
    n_nodes = 2 if n_ranks > 1 else 1
    per_node = -(-n_ranks // n_nodes)
    cluster = Cluster(n_nodes, per_node if device else 1)
    placements = []
    for r in range(n_ranks):
        placements.append((r // per_node, r % per_node if device else None))
    return MpiWorld(cluster, placements, config)


def alloc(world: MpiWorld, rank: int, nbytes: int, device: bool):
    """A device or host buffer on ``rank``'s hardware."""
    proc = world.procs[rank]
    if device:
        return proc.ctx.malloc(nbytes)
    return proc.node.host_memory.alloc(nbytes)


def fill_random(buf, rng) -> None:
    """Fully initialize a buffer with random bytes (MemSan-clean)."""
    buf.bytes[:] = rng.integers(0, 255, buf.nbytes, dtype=np.uint8)


class TestAlltoallvOracle:
    """alltoallv: ragged counts (zeros included), triangular datatype."""

    @pytest.mark.parametrize("algo", A2A_ALGOS)
    @pytest.mark.parametrize("n_ranks", WORLD_SIZES)
    def test_matches_oracle(self, algo, n_ranks):
        world = build_world(n_ranks)
        rng = np.random.default_rng(7 * n_ranks + 1)
        T = lower_triangular_type(8)
        block = T.extent + 64

        def counts(src: int, dest: int) -> int:
            # ragged, includes zero blocks, symmetric-by-contract
            return (src + dest) % 3

        sendbufs = {}
        recvbufs = {}
        for r in range(n_ranks):
            sendbufs[r] = []
            recvbufs[r] = []
            for peer in range(n_ranks):
                sb = alloc(world, r, block * max(counts(r, peer), 1), True)
                fill_random(sb, rng)
                rb = alloc(world, r, block * max(counts(peer, r), 1), True)
                rb.fill(0)
                sendbufs[r].append(sb)
                recvbufs[r].append(rb)

        def program(rank):
            def run(mpi):
                moved = yield from alltoallv(
                    mpi, sendbufs[rank], T,
                    [counts(rank, d) for d in range(n_ranks)],
                    recvbufs[rank], T,
                    [counts(s, rank) for s in range(n_ranks)],
                    algorithm=algo,
                )
                assert moved == T.size * sum(
                    counts(rank, d) for d in range(n_ranks)
                )
            return run

        world.run({r: program(r) for r in range(n_ranks)})
        for r in range(n_ranks):
            for src in range(n_ranks):
                c = counts(src, r)
                if not c:
                    continue
                got = pack_bytes(T, c, recvbufs[r][src].bytes)
                want = pack_bytes(T, c, sendbufs[src][r].bytes)
                assert np.array_equal(got, want), (
                    f"{algo.value} n={n_ranks}: rank {r} block from {src}"
                )


class TestFlatOpsOracle:
    """bcast / gather / allgather x algorithm, device buffers, size 5."""

    N_RANKS = 5

    def _world_and_type(self):
        world = build_world(self.N_RANKS)
        T = lower_triangular_type(10)
        return world, T, np.random.default_rng(42)

    @pytest.mark.parametrize("algo", TWO_SIDED)
    def test_bcast(self, algo):
        world, T, rng = self._world_and_type()
        n = self.N_RANKS
        bufs = [alloc(world, r, T.extent + 32, True) for r in range(n)]
        for b in bufs:
            fill_random(b, rng)

        def program(rank):
            def run(mpi):
                got = yield from bcast(
                    mpi, bufs[rank], T, 1, root=1, algorithm=algo
                )
                assert got == T.size
            return run

        world.run({r: program(r) for r in range(n)})
        want = pack_bytes(T, 1, bufs[1].bytes)
        for r in range(n):
            assert np.array_equal(pack_bytes(T, 1, bufs[r].bytes), want), (
                f"{algo.value}: rank {r}"
            )

    @pytest.mark.parametrize("algo", TWO_SIDED)
    def test_gather(self, algo):
        world, T, rng = self._world_and_type()
        n = self.N_RANKS
        sendbufs = [alloc(world, r, T.extent + 32, True) for r in range(n)]
        for b in sendbufs:
            fill_random(b, rng)
        recvbufs = [alloc(world, 2, T.extent + 32, True) for _ in range(n)]
        for b in recvbufs:
            b.fill(0)

        def program(rank):
            def run(mpi):
                yield from gather(
                    mpi, sendbufs[rank], T, 1,
                    recvbufs if rank == 2 else None,
                    T if rank == 2 else None,
                    1, root=2, algorithm=algo,
                )
            return run

        world.run({r: program(r) for r in range(n)})
        for src in range(n):
            assert np.array_equal(
                pack_bytes(T, 1, recvbufs[src].bytes),
                pack_bytes(T, 1, sendbufs[src].bytes),
            ), f"{algo.value}: slot {src}"

    @pytest.mark.parametrize("algo", TWO_SIDED)
    def test_allgather(self, algo):
        world, T, rng = self._world_and_type()
        n = self.N_RANKS
        sendbufs = [alloc(world, r, T.extent + 32, True) for r in range(n)]
        for b in sendbufs:
            fill_random(b, rng)
        recv = [
            [alloc(world, r, T.extent + 32, True) for _ in range(n)]
            for r in range(n)
        ]
        for row in recv:
            for b in row:
                b.fill(0)

        def program(rank):
            def run(mpi):
                yield from allgather(
                    mpi, sendbufs[rank], T, 1, recv[rank], T, 1,
                    algorithm=algo,
                )
            return run

        world.run({r: program(r) for r in range(n)})
        for r in range(n):
            for src in range(n):
                assert np.array_equal(
                    pack_bytes(T, 1, recv[r][src].bytes),
                    pack_bytes(T, 1, sendbufs[src].bytes),
                ), f"{algo.value}: rank {r} block {src}"


class TestHostAndMixedBuffers:
    """Host-only worlds and mixed host/device staged interop."""

    @pytest.mark.parametrize("algo", TWO_SIDED)
    def test_alltoall_host_buffers(self, algo):
        n = 4
        world = build_world(n, device=False)
        rng = np.random.default_rng(3)
        dt = contiguous(24, DOUBLE).commit()
        sendbufs = [
            [alloc(world, r, dt.size, False) for _ in range(n)]
            for r in range(n)
        ]
        recvbufs = [
            [alloc(world, r, dt.size, False) for _ in range(n)]
            for r in range(n)
        ]
        for r in range(n):
            for d in range(n):
                fill_random(sendbufs[r][d], rng)
                recvbufs[r][d].fill(0)

        def program(rank):
            def run(mpi):
                yield from alltoall(
                    mpi, sendbufs[rank], dt, 1, recvbufs[rank], dt, 1,
                    algorithm=algo,
                )
            return run

        world.run({r: program(r) for r in range(n)})
        for r in range(n):
            for src in range(n):
                assert np.array_equal(
                    recvbufs[r][src].bytes, sendbufs[src][r].bytes
                ), f"{algo.value}: rank {r} from {src}"

    def test_staged_mixed_host_device_interop(self):
        """STAGED is a per-rank wire decision: device ranks stage, host
        ranks don't, and the packed signatures still match."""
        n = 4
        world = build_world(n)
        rng = np.random.default_rng(5)
        dt = contiguous(32, DOUBLE).commit()
        device_of = {0: True, 1: False, 2: True, 3: False}
        sendbufs = [
            [alloc(world, r, dt.size, device_of[r]) for _ in range(n)]
            for r in range(n)
        ]
        recvbufs = [
            [alloc(world, r, dt.size, device_of[r]) for _ in range(n)]
            for r in range(n)
        ]
        for r in range(n):
            for d in range(n):
                fill_random(sendbufs[r][d], rng)
                recvbufs[r][d].fill(0)

        def program(rank):
            def run(mpi):
                yield from alltoall(
                    mpi, sendbufs[rank], dt, 1, recvbufs[rank], dt, 1,
                    algorithm=CollAlgorithm.STAGED,
                )
            return run

        world.run({r: program(r) for r in range(n)})
        for r in range(n):
            for src in range(n):
                assert np.array_equal(
                    recvbufs[r][src].bytes, sendbufs[src][r].bytes
                ), f"rank {r} from {src}"


@settings(max_examples=8, deadline=None)
@given(
    dt=datatypes(),
    algo=st.sampled_from(A2A_ALGOS),
    data=st.randoms(),
)
def test_alltoall_random_datatype(dt, algo, data):
    """Random committed datatypes through every alltoall algorithm."""
    n = 3
    world = build_world(n)
    rng = np.random.default_rng(data.randint(0, 2**31))
    size = max(dt.spans.true_ub, 1) + 64
    sendbufs = []
    recvbufs = []
    for r in range(n):
        srow, rrow = [], []
        for _ in range(n):
            sb = world.procs[r].ctx.malloc(size)
            fill_random(sb, rng)
            rb = world.procs[r].ctx.malloc(size)
            rb.fill(0)
            srow.append(sb)
            rrow.append(rb)
        sendbufs.append(srow)
        recvbufs.append(rrow)

    def program(rank):
        def run(mpi):
            yield from alltoall(
                mpi, sendbufs[rank], dt, 1, recvbufs[rank], dt, 1,
                algorithm=algo,
            )
        return run

    world.run({r: program(r) for r in range(n)})
    for r in range(n):
        for src in range(n):
            assert np.array_equal(
                pack_bytes(dt, 1, recvbufs[r][src].bytes),
                pack_bytes(dt, 1, sendbufs[src][r].bytes),
            ), f"{algo.value}: rank {r} from {src}"


class TestChaos:
    """Seeded AM drops: the retransmit layer must keep results exact."""

    @pytest.mark.parametrize("algo", TWO_SIDED)
    def test_alltoall_under_drops(self, algo):
        n = 4
        config = MpiConfig(
            faults=FaultSpec(seed=23, am_drop=0.15, max_faults=40)
        )
        world = build_world(n, config=config)
        rng = np.random.default_rng(23)
        dt = contiguous(64, DOUBLE).commit()
        sendbufs = [
            [alloc(world, r, dt.size, True) for _ in range(n)]
            for r in range(n)
        ]
        recvbufs = [
            [alloc(world, r, dt.size, True) for _ in range(n)]
            for r in range(n)
        ]
        for r in range(n):
            for d in range(n):
                fill_random(sendbufs[r][d], rng)
                recvbufs[r][d].fill(0)

        def program(rank):
            def run(mpi):
                yield from alltoall(
                    mpi, sendbufs[rank], dt, 1, recvbufs[rank], dt, 1,
                    algorithm=algo,
                )
            return run

        world.run({r: program(r) for r in range(n)})
        for r in range(n):
            for src in range(n):
                assert np.array_equal(
                    recvbufs[r][src].bytes, sendbufs[src][r].bytes
                ), f"{algo.value}: rank {r} from {src}"

    def test_interleaved_ops_under_drops(self):
        """bcast + alltoall + gather back-to-back with drops enabled —
        the disjoint tag sub-spaces keep matching unambiguous even with
        retransmitted fragments in flight."""
        n = 3
        config = MpiConfig(
            faults=FaultSpec(seed=31, am_drop=0.2, max_faults=30)
        )
        world = build_world(n, config=config)
        rng = np.random.default_rng(31)
        dt = contiguous(48, DOUBLE).commit()
        bbufs = [alloc(world, r, dt.size, True) for r in range(n)]
        fill_random(bbufs[0], rng)
        sendbufs = [
            [alloc(world, r, dt.size, True) for _ in range(n)]
            for r in range(n)
        ]
        recvbufs = [
            [alloc(world, r, dt.size, True) for _ in range(n)]
            for r in range(n)
        ]
        gslots = [alloc(world, 0, dt.size, True) for _ in range(n)]
        for r in range(n):
            for d in range(n):
                fill_random(sendbufs[r][d], rng)
                recvbufs[r][d].fill(0)
        for b in gslots:
            b.fill(0)

        def program(rank):
            def run(mpi):
                yield from bcast(mpi, bbufs[rank], dt, 1, root=0)
                yield from alltoall(
                    mpi, sendbufs[rank], dt, 1, recvbufs[rank], dt, 1
                )
                yield from gather(
                    mpi, sendbufs[rank][rank], dt, 1,
                    gslots if rank == 0 else None,
                    dt if rank == 0 else None,
                    1, root=0,
                )
            return run

        world.run({r: program(r) for r in range(n)})
        for r in range(1, n):
            assert np.array_equal(bbufs[r].bytes, bbufs[0].bytes)
        for r in range(n):
            for src in range(n):
                assert np.array_equal(
                    recvbufs[r][src].bytes, sendbufs[src][r].bytes
                )
            assert np.array_equal(gslots[r].bytes, sendbufs[r][r].bytes)
