"""Tracer tests for copy-in/out pipelining on the InfiniBand path."""

from __future__ import annotations

import numpy as np

from repro.hw.node import Cluster
from repro.mpi.config import MpiConfig
from repro.mpi.world import MpiWorld
from repro.workloads.matrices import submatrix_type


def run_ib_transfer(zero_copy: bool, n=1024, frag=256 << 10):
    cluster = Cluster(2, 1, trace=True)
    cfg = MpiConfig(frag_bytes=frag, zero_copy=zero_copy)
    world = MpiWorld(cluster, [(0, 0), (1, 0)], cfg)
    V = submatrix_type(n, 2 * n)
    b0 = world.procs[0].ctx.malloc(4 * n * n * 8)
    b0.write(np.random.default_rng(0).random(4 * n * n))
    b1 = world.procs[1].ctx.malloc(4 * n * n * 8)

    def s(mpi):
        yield mpi.send(b0, V, 1, dest=1, tag=1)

    def r(mpi):
        yield mpi.recv(b1, V, 1, source=0, tag=1)

    world.run([s, r])
    cluster.tracer.clear()
    elapsed = world.run([s, r])
    return cluster.tracer, elapsed


class TestCopyInOutOverlap:
    def test_pack_overlaps_wire(self):
        tracer, _ = run_ib_transfer(zero_copy=True)
        wire = "ib.node0->node1"
        pack = "node0.gpu0.dtengine.r0"
        pack_busy = tracer.busy_time(pack)
        assert pack_busy > 0
        # zero-copy pack kernels (PCIe-bound) hide under the slower wire
        assert tracer.overlap_time(pack, wire) > 0.5 * pack_busy

    def test_unpack_overlaps_wire(self):
        tracer, _ = run_ib_transfer(zero_copy=True)
        wire = "ib.node0->node1"
        unpack = "node1.gpu0.dtengine.r1"
        unpack_busy = tracer.busy_time(unpack)
        assert unpack_busy > 0
        assert tracer.overlap_time(unpack, wire) > 0.5 * unpack_busy

    def test_explicit_staging_uses_pcie_memcpys(self):
        tracer, _ = run_ib_transfer(zero_copy=False)
        d2h = tracer.busy_time("node0.pcie.d2h.node0.gpu0")
        h2d = tracer.busy_time("node1.pcie.h2d.node1.gpu0")
        assert d2h > 0 and h2d > 0
        # and those explicit copies also pipeline with the wire
        assert tracer.overlap_time("node0.pcie.d2h.node0.gpu0", "ib.node0->node1") > 0

    def test_wire_is_the_bottleneck(self):
        tracer, elapsed = run_ib_transfer(zero_copy=True)
        wire_busy = tracer.busy_time("ib.node0->node1")
        # one-way transfer: the wire is busy most of the elapsed time
        assert wire_busy > 0.75 * elapsed
