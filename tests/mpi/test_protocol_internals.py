"""Unit tests for protocol plumbing: selection, side info, staging pool."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datatype.ddt import contiguous, vector
from repro.datatype.primitives import DOUBLE
from repro.hw.node import Cluster
from repro.mpi.btl.ib import IbBtl
from repro.mpi.btl.sm import SmBtl
from repro.mpi.bml import Bml
from repro.mpi.config import MpiConfig
from repro.mpi.pml import _signature_check
from repro.mpi.proc import MpiProcess
from repro.mpi.protocols.common import SideInfo, choose_protocol, describe_side
from repro.mpi.protocols.ipc_rdma import transfer_mode


def procs(kind="sm-gpu"):
    if kind == "sm-gpu":
        c = Cluster(1, 2)
        return c, MpiProcess(0, c.nodes[0], c.nodes[0].gpus[0], MpiConfig()), \
            MpiProcess(1, c.nodes[0], c.nodes[0].gpus[1], MpiConfig())
    if kind == "ib-gpu":
        c = Cluster(2, 1)
        return c, MpiProcess(0, c.nodes[0], c.nodes[0].gpus[0], MpiConfig()), \
            MpiProcess(1, c.nodes[1], c.nodes[1].gpus[0], MpiConfig())
    c = Cluster(1, 1)
    return c, MpiProcess(0, c.nodes[0], None, MpiConfig()), \
        MpiProcess(1, c.nodes[0], None, MpiConfig())


def side(loc="device", contig=False, total=1 << 20):
    return SideInfo(loc=loc, gpu_name="g", contiguous=contig, total=total)


class TestProtocolSelection:
    def test_host_host(self):
        c, p0, p1 = procs("cpu")
        btl = SmBtl(p0, p1)
        assert choose_protocol(side("host"), side("host"), btl) == "host"

    def test_device_device_intra_node(self):
        c, p0, p1 = procs("sm-gpu")
        btl = SmBtl(p0, p1)
        assert choose_protocol(side(), side(), btl) == "ipc_rdma"

    def test_device_device_inter_node(self):
        c, p0, p1 = procs("ib-gpu")
        btl = IbBtl(p0, p1)
        assert choose_protocol(side(), side(), btl) == "copyinout"

    def test_mixed_host_device(self):
        c, p0, p1 = procs("sm-gpu")
        btl = SmBtl(p0, p1)
        assert choose_protocol(side("host"), side("device"), btl) == "copyinout"

    def test_ipc_disabled_forces_copyinout(self):
        c = Cluster(1, 2)
        cfg = MpiConfig(use_cuda_ipc=False)
        p0 = MpiProcess(0, c.nodes[0], c.nodes[0].gpus[0], cfg)
        p1 = MpiProcess(1, c.nodes[0], c.nodes[0].gpus[1], cfg)
        btl = SmBtl(p0, p1)
        assert choose_protocol(side(), side(), btl) == "copyinout"


class TestTransferMode:
    def test_modes(self):
        assert transfer_mode(side(contig=True), side(contig=True)) == "both_contig"
        assert transfer_mode(side(contig=True), side()) == "send_contig"
        assert transfer_mode(side(), side(contig=True)) == "recv_contig"
        assert transfer_mode(side(), side()) == "general"


class TestDescribeSide:
    def test_device_buffer(self):
        c, p0, _ = procs("sm-gpu")
        dt = vector(4, 2, 6, DOUBLE).commit()
        buf = p0.ctx.malloc(dt.extent)
        info = describe_side(p0, buf, dt, 1)
        assert info.loc == "device"
        assert info.gpu_name == p0.gpu.name
        assert not info.contiguous
        assert info.total == dt.size

    def test_host_contiguous(self):
        c, p0, _ = procs("cpu")
        dt = contiguous(32, DOUBLE).commit()
        buf = p0.node.host_memory.alloc(dt.size)
        info = describe_side(p0, buf, dt, 2)
        assert info.loc == "host" and info.contiguous
        assert info.total == dt.size * 2


class TestSignatureCheck:
    def test_identical_ok(self):
        sig = (("MPI_DOUBLE", 10),)
        _signature_check(sig, sig)

    def test_recv_longer_ok(self):
        _signature_check((("MPI_DOUBLE", 5),), (("MPI_DOUBLE", 9),))

    def test_recv_shorter_fails(self):
        with pytest.raises(ValueError):
            _signature_check((("MPI_DOUBLE", 9),), (("MPI_DOUBLE", 5),))

    def test_different_primitive_fails(self):
        with pytest.raises(ValueError):
            _signature_check((("MPI_INT", 4),), (("MPI_DOUBLE", 4),))

    def test_run_boundaries_do_not_matter(self):
        # [2 INT][2 INT] matches [4 INT]
        _signature_check(
            (("MPI_INT", 2), ("MPI_INT", 2)), (("MPI_INT", 4),)
        )

    def test_interleaved_mismatch(self):
        with pytest.raises(ValueError):
            _signature_check(
                (("MPI_INT", 2), ("MPI_DOUBLE", 1)),
                (("MPI_INT", 3), ("MPI_DOUBLE", 1)),
            )


class TestStagingPool:
    def test_reuse(self):
        c, p0, _ = procs("sm-gpu")
        a = p0.acquire_staging("device", 4096)
        p0.release_staging("device", a)
        b = p0.acquire_staging("device", 4096)
        assert a is b

    def test_distinct_sizes_not_mixed(self):
        c, p0, _ = procs("sm-gpu")
        a = p0.acquire_staging("device", 4096)
        p0.release_staging("device", a)
        b = p0.acquire_staging("device", 8192)
        assert a is not b

    def test_zero_copy_host_ring_mapped(self):
        from repro.cuda.uma import is_mapped_host

        c, p0, _ = procs("sm-gpu")
        buf = p0.acquire_staging("host", 4096, zero_copy_map=True)
        assert is_mapped_host(buf)
        plain = p0.acquire_staging("host", 4096, zero_copy_map=False)
        assert not is_mapped_host(plain)

    def test_host_rank_cannot_get_device_staging(self):
        c, p0, _ = procs("cpu")
        with pytest.raises(RuntimeError):
            p0.acquire_staging("device", 4096)


class TestBml:
    def test_selection_and_caching(self):
        c = Cluster(2, 1)
        cfg = MpiConfig()
        p0 = MpiProcess(0, c.nodes[0], c.nodes[0].gpus[0], cfg)
        p1 = MpiProcess(1, c.nodes[1], c.nodes[1].gpus[0], cfg)
        p2 = MpiProcess(2, c.nodes[0], None, cfg)
        bml = Bml()
        assert isinstance(bml.btl_for(p0, p1), IbBtl)
        assert isinstance(bml.btl_for(p0, p2), SmBtl)
        assert bml.btl_for(p0, p1) is bml.btl_for(p0, p1)  # cached
        # direction matters (separate endpoints)
        assert bml.btl_for(p0, p1) is not bml.btl_for(p1, p0)


class TestAmDispatch:
    def test_unknown_handler_raises(self):
        c, p0, p1 = procs("sm-gpu")
        btl = SmBtl(p0, p1)
        btl.am_send("no.such.handler", {})
        with pytest.raises(Exception):
            c.sim.run()

    def test_duplicate_registration_rejected(self):
        c, p0, _ = procs("sm-gpu")
        p0.register_handler("h", lambda pkt, b: None)
        with pytest.raises(ValueError):
            p0.register_handler("h", lambda pkt, b: None)

    def test_payload_snapshot_semantics(self, rng):
        c, p0, p1 = procs("sm-gpu")
        btl = SmBtl(p0, p1)
        got = []
        p1.register_handler("x", lambda pkt, b: got.append(pkt.payload.copy()))
        data = rng.integers(0, 255, 64, dtype=np.uint8)
        buf = data.copy()
        btl.am_send("x", {}, payload=buf)
        buf[:] = 0  # mutate after send: the wire carries the snapshot
        c.sim.run()
        assert np.array_equal(got[0], data)
