"""Property test: arbitrary datatypes survive every transport bit-for-bit.

The capstone invariant: for any derived datatype the strategy can build,
sending from a random buffer and receiving into a clean one yields
identical packed streams on both sides — through CUDA-IPC RDMA,
copy-in/out over InfiniBand, and the host path alike.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datatype.convertor import pack_bytes
from repro.hw.node import Cluster
from repro.mpi.config import MpiConfig
from repro.mpi.world import MpiWorld
from tests.datatype.strategies import datatypes

TRANSPORTS = ["sm-2gpu", "ib", "cpu"]


def build_world(kind: str, config=None):
    if kind == "sm-2gpu":
        return MpiWorld(Cluster(1, 2), [(0, 0), (0, 1)], config)
    if kind == "ib":
        return MpiWorld(Cluster(2, 1), [(0, 0), (1, 0)], config)
    return MpiWorld(Cluster(1, 1), [(0, None), (0, None)], config)


def transfer_roundtrip(kind: str, dt, count: int, seed: int, config=None):
    world = build_world(kind, config)
    rng = np.random.default_rng(seed)
    size = max(dt.spans_for_count(count).true_ub, 1) + 64
    bufs = []
    for rank in range(2):
        proc = world.procs[rank]
        if proc.gpu is not None:
            buf = proc.ctx.malloc(size)
        else:
            buf = proc.node.host_memory.alloc(size)
        bufs.append(buf)
    bufs[0].bytes[:] = rng.integers(0, 255, size, dtype=np.uint8)
    bufs[1].fill(0)

    def s(mpi):
        yield mpi.send(bufs[0], dt, count, dest=1, tag=1)

    def r(mpi):
        yield mpi.recv(bufs[1], dt, count, source=0, tag=1)

    world.run([s, r])
    want = pack_bytes(dt, count, bufs[0].bytes)
    got = pack_bytes(dt, count, bufs[1].bytes)
    return want, got


@pytest.mark.parametrize("kind", TRANSPORTS)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(dt=datatypes(), count=st.integers(1, 2), data=st.randoms())
def test_random_datatype_roundtrip(kind, dt, count, data):
    want, got = transfer_roundtrip(kind, dt, count, data.randint(0, 2**31))
    assert np.array_equal(want, got)


@settings(max_examples=8, deadline=None)
@given(dt=datatypes(), data=st.randoms())
def test_random_datatype_roundtrip_small_fragments(dt, data):
    """Aggressive fragmentation must not change delivered bytes."""
    cfg = MpiConfig(frag_bytes=4096, pipeline_depth=2, eager_limit=0)
    want, got = transfer_roundtrip(
        "sm-2gpu", dt, 1, data.randint(0, 2**31), config=cfg
    )
    assert np.array_equal(want, got)


@settings(max_examples=8, deadline=None)
@given(dt=datatypes(), data=st.randoms())
def test_random_datatype_roundtrip_no_ipc(dt, data):
    """The copy-in/out fallback delivers the same bytes."""
    cfg = MpiConfig(use_cuda_ipc=False, eager_limit=0)
    want, got = transfer_roundtrip(
        "sm-2gpu", dt, 1, data.randint(0, 2**31), config=cfg
    )
    assert np.array_equal(want, got)
