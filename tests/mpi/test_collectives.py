"""Tests for datatype-aware collectives over the GPU protocols."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datatype.convertor import pack_bytes
from repro.datatype.ddt import contiguous
from repro.datatype.primitives import DOUBLE
from repro.hw.node import Cluster
from repro.mpi.collectives import allgather, bcast, gather
from repro.mpi.world import MpiWorld
from repro.workloads.matrices import lower_triangular_type


def gpu_world(n_ranks: int) -> MpiWorld:
    cluster = Cluster(1, n_ranks)
    return MpiWorld(cluster, [(0, g) for g in range(n_ranks)])


class TestBcast:
    @pytest.mark.parametrize("n_ranks", [2, 3, 4])
    def test_triangular_bcast(self, n_ranks, rng):
        world = gpu_world(n_ranks)
        n = 48
        T = lower_triangular_type(n)
        bufs = [world.procs[r].ctx.malloc(n * n * 8) for r in range(n_ranks)]
        bufs[0].write(rng.random(n * n))

        def program(rank):
            def run(mpi):
                yield from bcast(mpi, bufs[rank], T, 1, root=0)
            return run

        world.run({r: program(r) for r in range(n_ranks)})
        want = pack_bytes(T, 1, bufs[0].bytes)
        for r in range(1, n_ranks):
            assert np.array_equal(pack_bytes(T, 1, bufs[r].bytes), want)

    def test_nonzero_root(self, rng):
        world = gpu_world(3)
        dt = contiguous(256, DOUBLE).commit()
        bufs = [world.procs[r].ctx.malloc(2048) for r in range(3)]
        bufs[2].write(rng.random(256))

        def program(rank):
            def run(mpi):
                yield from bcast(mpi, bufs[rank], dt, 1, root=2)
            return run

        world.run({r: program(r) for r in range(3)})
        for r in range(3):
            assert np.array_equal(bufs[r].bytes, bufs[2].bytes)

    def test_single_rank_noop(self):
        world = gpu_world(1)
        dt = contiguous(8, DOUBLE).commit()
        buf = world.procs[0].ctx.malloc(256)

        def program(mpi):
            got = yield from bcast(mpi, buf, dt, 1)
            assert got == 0

        world.run([program])

    def test_binomial_beats_linear_time(self, rng):
        """log2 rounds: 4-rank bcast ~2 sequential hops, not 3."""
        world = gpu_world(4)
        dt = contiguous(1 << 18, DOUBLE).commit()  # 2 MiB
        bufs = [world.procs[r].ctx.malloc(dt.size) for r in range(4)]
        bufs[0].write(rng.random(1 << 18))

        def program(rank):
            def run(mpi):
                yield from bcast(mpi, bufs[rank], dt, 1, root=0)
            return run

        world.run({r: program(r) for r in range(4)})  # warm-up
        t4 = world.run({r: program(r) for r in range(4)})

        world2 = gpu_world(2)
        bufs2 = [world2.procs[r].ctx.malloc(dt.size) for r in range(2)]
        bufs2[0].write(rng.random(1 << 18))

        def program2(rank):
            def run(mpi):
                yield from bcast(mpi, bufs2[rank], dt, 1, root=0)
            return run

        world2.run({r: program2(r) for r in range(2)})
        t2 = world2.run({r: program2(r) for r in range(2)})
        # binomial: 4 ranks take ~2 rounds => < 2.6x the 2-rank time
        assert t4 < t2 * 2.6


class TestGather:
    def test_gather_triangular_to_root(self, rng):
        n_ranks = 3
        world = gpu_world(n_ranks)
        n = 32
        T = lower_triangular_type(n)
        packed = contiguous(T.size // 8, DOUBLE).commit()
        sendbufs = [world.procs[r].ctx.malloc(n * n * 8) for r in range(n_ranks)]
        for b in sendbufs:
            b.write(rng.random(n * n))
        recvbufs = [world.procs[0].ctx.malloc(T.size) for _ in range(n_ranks)]

        def program(rank):
            def run(mpi):
                yield from gather(
                    mpi, sendbufs[rank], T, 1,
                    recvbufs if rank == 0 else None,
                    packed if rank == 0 else None,
                    1, root=0,
                )
            return run

        world.run({r: program(r) for r in range(n_ranks)})
        for r in range(n_ranks):
            assert np.array_equal(
                recvbufs[r].bytes, pack_bytes(T, 1, sendbufs[r].bytes)
            )


class TestAllgather:
    def test_ring_allgather(self, rng):
        n_ranks = 4
        world = gpu_world(n_ranks)
        dt = contiguous(512, DOUBLE).commit()
        sendbufs = [world.procs[r].ctx.malloc(dt.size) for r in range(n_ranks)]
        for i, b in enumerate(sendbufs):
            b.write(np.full(512, float(i + 1)))
        recv = [
            [world.procs[r].ctx.malloc(dt.size) for _ in range(n_ranks)]
            for r in range(n_ranks)
        ]

        def program(rank):
            def run(mpi):
                yield from allgather(
                    mpi, sendbufs[rank], dt, 1, recv[rank], dt, 1
                )
            return run

        world.run({r: program(r) for r in range(n_ranks)})
        for r in range(n_ranks):
            for src in range(n_ranks):
                assert (recv[r][src].view("f8") == float(src + 1)).all(), (
                    f"rank {r} block {src}"
                )
