"""Tests for datatype-aware collectives over the GPU protocols."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datatype.convertor import pack_bytes
from repro.datatype.ddt import contiguous
from repro.datatype.primitives import DOUBLE
from repro.faults.plan import FaultSpec
from repro.hw.node import Cluster
from repro.mpi.collectives import (
    _COLL_OP_INDEX,
    _COLL_OP_SPAN,
    _COLL_TAG_BASE,
    CollAlgorithm,
    allgather,
    alltoall,
    bcast,
    gather,
    _op_tag,
)
from repro.mpi.config import MpiConfig
from repro.mpi.world import MpiWorld
from repro.workloads.matrices import lower_triangular_type


def gpu_world(n_ranks: int, config: MpiConfig | None = None) -> MpiWorld:
    cluster = Cluster(1, n_ranks)
    return MpiWorld(cluster, [(0, g) for g in range(n_ranks)], config)


class TestBcast:
    @pytest.mark.parametrize("n_ranks", [2, 3, 4])
    def test_triangular_bcast(self, n_ranks, rng):
        world = gpu_world(n_ranks)
        n = 48
        T = lower_triangular_type(n)
        bufs = [world.procs[r].ctx.malloc(n * n * 8) for r in range(n_ranks)]
        bufs[0].write(rng.random(n * n))

        def program(rank):
            def run(mpi):
                yield from bcast(mpi, bufs[rank], T, 1, root=0)
            return run

        world.run({r: program(r) for r in range(n_ranks)})
        want = pack_bytes(T, 1, bufs[0].bytes)
        for r in range(1, n_ranks):
            assert np.array_equal(pack_bytes(T, 1, bufs[r].bytes), want)

    def test_nonzero_root(self, rng):
        world = gpu_world(3)
        dt = contiguous(256, DOUBLE).commit()
        bufs = [world.procs[r].ctx.malloc(2048) for r in range(3)]
        bufs[2].write(rng.random(256))

        def program(rank):
            def run(mpi):
                yield from bcast(mpi, bufs[rank], dt, 1, root=2)
            return run

        world.run({r: program(r) for r in range(3)})
        for r in range(3):
            assert np.array_equal(bufs[r].bytes, bufs[2].bytes)

    def test_single_rank_returns_bytes_moved(self):
        """World size 1 honours the 'bytes moved per rank' contract —
        the old early-return of 0 forced bench sweeps to special-case."""
        world = gpu_world(1)
        dt = contiguous(8, DOUBLE).commit()
        buf = world.procs[0].ctx.malloc(256)

        def program(mpi):
            got = yield from bcast(mpi, buf, dt, 1)
            assert got == dt.size

        world.run([program])

    def test_binomial_beats_linear_time(self, rng):
        """log2 rounds: 4-rank bcast ~2 sequential hops, not 3."""
        world = gpu_world(4)
        dt = contiguous(1 << 18, DOUBLE).commit()  # 2 MiB
        bufs = [world.procs[r].ctx.malloc(dt.size) for r in range(4)]
        bufs[0].write(rng.random(1 << 18))

        def program(rank):
            def run(mpi):
                yield from bcast(mpi, bufs[rank], dt, 1, root=0)
            return run

        world.run({r: program(r) for r in range(4)})  # warm-up
        t4 = world.run({r: program(r) for r in range(4)})

        world2 = gpu_world(2)
        bufs2 = [world2.procs[r].ctx.malloc(dt.size) for r in range(2)]
        bufs2[0].write(rng.random(1 << 18))

        def program2(rank):
            def run(mpi):
                yield from bcast(mpi, bufs2[rank], dt, 1, root=0)
            return run

        world2.run({r: program2(r) for r in range(2)})
        t2 = world2.run({r: program2(r) for r in range(2)})
        # binomial: 4 ranks take ~2 rounds => < 2.6x the 2-rank time
        assert t4 < t2 * 2.6


class TestGather:
    def test_gather_triangular_to_root(self, rng):
        n_ranks = 3
        world = gpu_world(n_ranks)
        n = 32
        T = lower_triangular_type(n)
        packed = contiguous(T.size // 8, DOUBLE).commit()
        sendbufs = [world.procs[r].ctx.malloc(n * n * 8) for r in range(n_ranks)]
        for b in sendbufs:
            b.write(rng.random(n * n))
        recvbufs = [world.procs[0].ctx.malloc(T.size) for _ in range(n_ranks)]

        def program(rank):
            def run(mpi):
                yield from gather(
                    mpi, sendbufs[rank], T, 1,
                    recvbufs if rank == 0 else None,
                    packed if rank == 0 else None,
                    1, root=0,
                )
            return run

        world.run({r: program(r) for r in range(n_ranks)})
        for r in range(n_ranks):
            assert np.array_equal(
                recvbufs[r].bytes, pack_bytes(T, 1, sendbufs[r].bytes)
            )


class TestTagSpaces:
    """Regression coverage for the per-op disjoint tag sub-spaces."""

    def test_same_seq_different_ops_never_collide(self):
        """The original bug: bcast seq k == gather seq k tag-wise."""
        for k in range(256):
            assert _op_tag("bcast", k) != _op_tag("gather", k)

    def test_all_op_subspaces_disjoint(self):
        seen: dict[int, tuple] = {}
        for op in _COLL_OP_INDEX:
            for seq in (0, 1, 7, 1000, (1 << 15) - 1):
                for phase in range(4):
                    tag = _op_tag(op, seq, phase)
                    lo = _COLL_TAG_BASE + _COLL_OP_INDEX[op] * _COLL_OP_SPAN
                    assert lo <= tag < lo + _COLL_OP_SPAN
                    assert tag not in seen, (op, seq, phase, seen[tag])
                    seen[tag] = (op, seq, phase)

    def test_interleaved_collective_types(self, rng):
        """Two different collectives back-to-back under AM delays.

        With the old shared tag arithmetic, bcast seq k and allgather
        seq k messages between the same pair could cross-match when
        injection reordered deliveries; disjoint sub-spaces make the
        match unambiguous.  Verify byte-exact results end to end.
        """
        n_ranks = 3
        world = gpu_world(
            n_ranks,
            MpiConfig(
                faults=FaultSpec(seed=11, am_delay=0.5, am_delay_s=300e-6)
            ),
        )
        dt = contiguous(64, DOUBLE).commit()
        bbufs = [world.procs[r].ctx.malloc(dt.size) for r in range(n_ranks)]
        bbufs[0].write(rng.random(64))
        sendbufs = [world.procs[r].ctx.malloc(dt.size) for r in range(n_ranks)]
        for i, b in enumerate(sendbufs):
            b.write(np.full(64, float(i + 10)))
        recv = [
            [world.procs[r].ctx.malloc(dt.size) for _ in range(n_ranks)]
            for r in range(n_ranks)
        ]

        def program(rank):
            def run(mpi):
                yield from bcast(mpi, bbufs[rank], dt, 1, root=0)
                yield from allgather(
                    mpi, sendbufs[rank], dt, 1, recv[rank], dt, 1
                )
                yield from bcast(mpi, bbufs[rank], dt, 1, root=1)
            return run

        world.run({r: program(r) for r in range(n_ranks)})
        for r in range(1, n_ranks):
            assert np.array_equal(bbufs[r].bytes, bbufs[0].bytes)
        for r in range(n_ranks):
            for src in range(n_ranks):
                assert (recv[r][src].view("f8") == float(src + 10)).all()


class TestGatherValidation:
    """The root must pass a real receive spec — no silent zero-gather."""

    def _run_bad_gather(self, **kw):
        world = gpu_world(2)
        dt = contiguous(8, DOUBLE).commit()
        sendbufs = [world.procs[r].ctx.malloc(dt.size) for r in range(2)]
        for b in sendbufs:
            b.fill(1)
        recvbufs = [world.procs[0].ctx.malloc(dt.size) for _ in range(2)]
        args = dict(recvbufs=recvbufs, recv_dt=dt, recv_count=1)
        args.update(kw)

        def program(rank):
            def run(mpi):
                yield from gather(
                    mpi, sendbufs[rank], dt, 1,
                    args["recvbufs"] if rank == 0 else None,
                    args["recv_dt"] if rank == 0 else None,
                    args["recv_count"], root=0,
                )
            return run

        world.run({r: program(r) for r in range(2)})

    def test_missing_recv_count_rejected(self):
        with pytest.raises(ValueError, match="recv_count must be a positive"):
            self._run_bad_gather(recv_count=None)

    def test_zero_recv_count_rejected(self):
        """The old default of 0 silently received nothing into every slot."""
        with pytest.raises(ValueError, match="recv_count must be a positive"):
            self._run_bad_gather(recv_count=0)

    def test_missing_recvbufs_rejected(self):
        with pytest.raises(ValueError, match="must pass recvbufs"):
            self._run_bad_gather(recvbufs=None)

    def test_short_recvbufs_rejected(self):
        world = gpu_world(3)
        dt = contiguous(8, DOUBLE).commit()
        sendbufs = [world.procs[r].ctx.malloc(dt.size) for r in range(3)]
        for b in sendbufs:
            b.fill(1)
        recvbufs = [world.procs[0].ctx.malloc(dt.size) for _ in range(2)]

        def program(rank):
            def run(mpi):
                yield from gather(
                    mpi, sendbufs[rank], dt, 1,
                    recvbufs if rank == 0 else None,
                    dt if rank == 0 else None,
                    1, root=0,
                )
            return run

        with pytest.raises(ValueError, match="one recv buffer per rank"):
            world.run({r: program(r) for r in range(3)})


class TestAllgather:
    def test_ring_allgather(self, rng):
        n_ranks = 4
        world = gpu_world(n_ranks)
        dt = contiguous(512, DOUBLE).commit()
        sendbufs = [world.procs[r].ctx.malloc(dt.size) for r in range(n_ranks)]
        for i, b in enumerate(sendbufs):
            b.write(np.full(512, float(i + 1)))
        recv = [
            [world.procs[r].ctx.malloc(dt.size) for _ in range(n_ranks)]
            for r in range(n_ranks)
        ]

        def program(rank):
            def run(mpi):
                yield from allgather(
                    mpi, sendbufs[rank], dt, 1, recv[rank], dt, 1
                )
            return run

        world.run({r: program(r) for r in range(n_ranks)})
        for r in range(n_ranks):
            for src in range(n_ranks):
                assert (recv[r][src].view("f8") == float(src + 1)).all(), (
                    f"rank {r} block {src}"
                )


def two_node_world(config: MpiConfig | None = None) -> MpiWorld:
    """4 ranks over 2 nodes x 2 GPUs — exercises intra- and inter-node."""
    cluster = Cluster(2, 2)
    placements = [(n, g) for n in range(2) for g in range(2)]
    return MpiWorld(cluster, placements, config)


class TestAlltoall:
    """alltoall across every rung of the algorithm ladder."""

    @pytest.mark.parametrize("algo", list(CollAlgorithm))
    def test_all_algorithms_byte_identical(self, algo):
        world = two_node_world()
        size = 4
        count = 32
        dt = contiguous(count, DOUBLE).commit()
        sendbufs = [
            [world.procs[r].ctx.malloc(dt.size) for _ in range(size)]
            for r in range(size)
        ]
        for r in range(size):
            for d in range(size):
                sendbufs[r][d].write(np.full(count, float(r * 10 + d)))
        recvbufs = [
            [world.procs[r].ctx.malloc(dt.size) for _ in range(size)]
            for r in range(size)
        ]

        def program(rank):
            def run(mpi):
                moved = yield from alltoall(
                    mpi, sendbufs[rank], dt, 1, recvbufs[rank], dt, 1,
                    algorithm=algo,
                )
                assert moved == dt.size * size
            return run

        world.run({r: program(r) for r in range(size)})
        for r in range(size):
            for src in range(size):
                assert (recvbufs[r][src].view("f8") == float(src * 10 + r)).all(), (
                    f"algo {algo.value}: rank {r} block from {src}"
                )

    def test_config_knob_selects_algorithm(self):
        """MpiConfig.coll_algorithm drives selection; counters record it."""
        world = two_node_world(MpiConfig(coll_algorithm="staged"))
        size = 4
        dt = contiguous(16, DOUBLE).commit()
        sendbufs = [
            [world.procs[r].ctx.malloc(dt.size) for _ in range(size)]
            for r in range(size)
        ]
        recvbufs = [
            [world.procs[r].ctx.malloc(dt.size) for _ in range(size)]
            for r in range(size)
        ]
        for r in range(size):
            for d in range(size):
                sendbufs[r][d].fill(r + 1)

        def program(rank):
            def run(mpi):
                yield from alltoall(
                    mpi, sendbufs[rank], dt, 1, recvbufs[rank], dt, 1
                )
            return run

        world.run({r: program(r) for r in range(size)})
        assert world.stats().coll_ops.get("alltoall.staged") == size

    def test_hierarchical_rejected_for_bcast(self):
        world = gpu_world(2)
        dt = contiguous(8, DOUBLE).commit()
        bufs = [world.procs[r].ctx.malloc(dt.size) for r in range(2)]
        bufs[0].fill(3)

        def program(rank):
            def run(mpi):
                yield from bcast(
                    mpi, bufs[rank], dt, 1,
                    algorithm=CollAlgorithm.HIERARCHICAL,
                )
            return run

        with pytest.raises(ValueError, match="alltoall"):
            world.run({r: program(r) for r in range(2)})

    def test_unknown_algorithm_rejected(self):
        world = gpu_world(2)
        dt = contiguous(8, DOUBLE).commit()
        bufs = [world.procs[r].ctx.malloc(dt.size) for r in range(2)]
        bufs[0].fill(3)

        def program(rank):
            def run(mpi):
                yield from bcast(mpi, bufs[rank], dt, 1, algorithm="quantum")
            return run

        with pytest.raises(ValueError, match="unknown collective algorithm"):
            world.run({r: program(r) for r in range(2)})
