"""Tests for the PUT-driven general RDMA mode (Section 4.1 alternative)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datatype.convertor import pack_bytes
from repro.hw.node import Cluster
from repro.mpi.config import MpiConfig
from repro.mpi.world import MpiWorld
from repro.workloads.matrices import lower_triangular_type, submatrix_type


def run_transfer(mode: str, n=512, kind="sm-2gpu"):
    cfg = MpiConfig(rdma_mode=mode)
    placements = [(0, 0), (0, 1)] if kind == "sm-2gpu" else [(0, 0), (0, 0)]
    world = MpiWorld(Cluster(1, 2), placements, cfg)
    T = lower_triangular_type(n)
    b0 = world.procs[0].ctx.malloc(n * n * 8)
    b0.write(np.random.default_rng(0).random(n * n))
    b1 = world.procs[1].ctx.malloc(n * n * 8)

    def s(mpi):
        yield mpi.send(b0, T, 1, dest=1, tag=1)

    def r(mpi):
        yield mpi.recv(b1, T, 1, source=0, tag=1)

    world.run([s, r])
    elapsed = world.run([s, r])
    assert np.array_equal(pack_bytes(T, 1, b1.bytes), pack_bytes(T, 1, b0.bytes))
    return elapsed


class TestPutMode:
    def test_put_delivers_identical_bytes(self):
        run_transfer("put")

    def test_put_same_gpu(self):
        run_transfer("put", kind="sm-1gpu")

    def test_put_vs_get_tradeoff(self):
        """PUT saves the staging copy but packs through PCIe: on the
        cross-GPU path the two modes land in the same ballpark, and
        neither breaks pipelining."""
        t_get = run_transfer("get", n=1024)
        t_put = run_transfer("put", n=1024)
        assert 0.5 < t_put / t_get < 2.0

    def test_put_mode_fast_paths_unchanged(self):
        """Contiguous fast paths ignore rdma_mode (no ring either way)."""
        from repro.datatype.ddt import contiguous
        from repro.datatype.primitives import DOUBLE

        cfg = MpiConfig(rdma_mode="put")
        world = MpiWorld(Cluster(1, 2), [(0, 0), (0, 1)], cfg)
        dt = contiguous(1 << 15, DOUBLE).commit()
        b0 = world.procs[0].ctx.malloc(dt.size)
        b0.write(np.random.default_rng(1).random(1 << 15))
        b1 = world.procs[1].ctx.malloc(dt.size)

        def s(mpi):
            yield mpi.send(b0, dt, 1, dest=1, tag=1)

        def r(mpi):
            yield mpi.recv(b1, dt, 1, source=0, tag=1)

        world.run([s, r])
        assert np.array_equal(b0.bytes, b1.bytes)
