"""Timing-property tests: the protocol behaviours the paper banks on.

These assert *relations* on the simulated clock (faster/slower, scaling),
complementing the correctness tests — a regression that silently
serializes a pipeline or skips a fast path fails here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datatype.ddt import contiguous, vector
from repro.datatype.primitives import DOUBLE
from repro.hw.node import Cluster
from repro.mpi.config import MpiConfig
from repro.mpi.world import MpiWorld
from repro.workloads.matrices import lower_triangular_type, submatrix_type


def timed_transfer(kind, s_dt, r_dt, n_elems, config=None, footprint=None):
    if kind == "sm-2gpu":
        world = MpiWorld(Cluster(1, 2), [(0, 0), (0, 1)], config)
    else:
        world = MpiWorld(Cluster(2, 1), [(0, 0), (1, 0)], config)
    size = footprint or max(s_dt.extent, r_dt.extent) + 256
    b0 = world.procs[0].ctx.malloc(size)
    b1 = world.procs[1].ctx.malloc(size)

    def s(mpi):
        yield mpi.send(b0, s_dt, 1, dest=1, tag=1)

    def r(mpi):
        yield mpi.recv(b1, r_dt, 1, source=0, tag=1)

    world.run([s, r])
    return world.run([s, r])


class TestFastPaths:
    def test_contiguous_sender_beats_general(self):
        n = 1024
        V = submatrix_type(n, n + 256)
        C = contiguous(n * n, DOUBLE).commit()
        fp = max(V.extent, C.extent) + 256
        # C -> V skips the sender pack stage entirely
        fast = timed_transfer("sm-2gpu", C, V, n, footprint=fp)
        general = timed_transfer("sm-2gpu", V, V, n, footprint=fp)
        assert fast <= general * 1.02

    def test_contiguous_receiver_beats_general(self):
        n = 1024
        V = submatrix_type(n, n + 256)
        C = contiguous(n * n, DOUBLE).commit()
        fp = max(V.extent, C.extent) + 256
        fast = timed_transfer("sm-2gpu", V, C, n, footprint=fp)
        general = timed_transfer("sm-2gpu", V, V, n, footprint=fp)
        assert fast <= general * 1.02

    def test_both_contiguous_is_fastest(self):
        n = 1024
        V = submatrix_type(n, n + 256)
        C = contiguous(n * n, DOUBLE).commit()
        fp = max(V.extent, C.extent) + 256
        cc = timed_transfer("sm-2gpu", C, C, n, footprint=fp)
        vv = timed_transfer("sm-2gpu", V, V, n, footprint=fp)
        assert cc < vv


class TestScaling:
    def test_time_grows_with_payload(self):
        times = []
        for n in (256, 512, 1024):
            V = submatrix_type(n, n + 256)
            times.append(timed_transfer("sm-2gpu", V, V, n))
        assert times[0] < times[1] < times[2]
        # 4x payload should cost 2.5-4.5x once wire-bound
        assert 2.0 < times[2] / times[1] < 4.6

    def test_ib_slower_than_sm_for_large(self):
        n = 1024
        V = submatrix_type(n, n + 256)
        sm = timed_transfer("sm-2gpu", V, V, n)
        ib = timed_transfer("ib", V, V, n)
        assert ib > sm  # 6.8 GB/s wire vs ~11.5 GB/s P2P


class TestConfigKnobs:
    def test_zero_copy_not_slower_on_ib(self):
        n = 1024
        T = lower_triangular_type(n)
        zc = timed_transfer("ib", T, T, n, MpiConfig(zero_copy=True))
        no = timed_transfer("ib", T, T, n, MpiConfig(zero_copy=False))
        assert zc <= no * 1.02

    def test_ipc_beats_copy_in_out_intra_node(self):
        n = 1024
        T = lower_triangular_type(n)
        ipc = timed_transfer("sm-2gpu", T, T, n, MpiConfig(use_cuda_ipc=True))
        cio = timed_transfer("sm-2gpu", T, T, n, MpiConfig(use_cuda_ipc=False))
        assert ipc < cio

    def test_first_transfer_pays_registration_once(self):
        world = MpiWorld(Cluster(1, 2), [(0, 0), (0, 1)])
        n = 512
        V = submatrix_type(n, n + 256)
        b0 = world.procs[0].ctx.malloc(V.extent + 256)
        b1 = world.procs[1].ctx.malloc(V.extent + 256)

        def s(mpi):
            yield mpi.send(b0, V, 1, dest=1, tag=1)

        def r(mpi):
            yield mpi.recv(b1, V, 1, source=0, tag=1)

        t1 = world.run([s, r])
        t2 = world.run([s, r])
        t3 = world.run([s, r])
        reg = world.cluster.params.ipc_registration_cost
        assert t1 - t2 > reg * 0.8
        assert t2 == pytest.approx(t3)

    def test_eager_limit_moves_protocol_boundary(self):
        """A message under the eager limit completes sender-side sooner."""
        n_elems = 1024  # 8 KiB
        dt = contiguous(n_elems, DOUBLE).commit()
        eager = timed_transfer(
            "ib", dt, dt, n_elems, MpiConfig(eager_limit=64 << 10)
        )
        rndv = timed_transfer("ib", dt, dt, n_elems, MpiConfig(eager_limit=0))
        # rendezvous adds at least the RTS/CTS round trip
        assert rndv > eager
