"""End-to-end tests of the MPI world: transports, requests, correctness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datatype.convertor import pack_bytes
from repro.datatype.ddt import contiguous, vector
from repro.datatype.primitives import DOUBLE
from repro.hw.node import Cluster
from repro.mpi.config import MpiConfig
from repro.mpi.world import MpiWorld
from repro.workloads.matrices import lower_triangular_type, submatrix_type


def make_world(kind: str, config=None):
    if kind == "sm-1gpu":
        return MpiWorld(Cluster(1, 1), [(0, 0), (0, 0)], config)
    if kind == "sm-2gpu":
        return MpiWorld(Cluster(1, 2), [(0, 0), (0, 1)], config)
    if kind == "ib":
        return MpiWorld(Cluster(2, 1), [(0, 0), (1, 0)], config)
    if kind == "cpu":
        return MpiWorld(Cluster(1, 1), [(0, None), (0, None)], config)
    raise ValueError(kind)


def alloc(world, rank, nbytes):
    proc = world.procs[rank]
    if proc.gpu is not None:
        return proc.ctx.malloc(nbytes)
    return proc.node.host_memory.alloc(nbytes)


def one_way(world, b0, d0, c0, b1, d1, c1, tag=5):
    def s(mpi):
        yield mpi.send(b0, d0, c0, dest=1, tag=tag)

    def r(mpi):
        got = yield mpi.recv(b1, d1, c1, source=0, tag=tag)
        return got

    return world.run([s, r])


ENVS = ["sm-1gpu", "sm-2gpu", "ib", "cpu"]


class TestTransferCorrectness:
    @pytest.mark.parametrize("kind", ENVS)
    def test_vector_transfer(self, kind, rng):
        world = make_world(kind)
        n, ld = 96, 160
        V = submatrix_type(n, ld)
        b0 = alloc(world, 0, ld * ld * 8)
        b0.write(rng.random(ld * ld))
        b1 = alloc(world, 1, ld * ld * 8)
        one_way(world, b0, V, 1, b1, V, 1)
        assert np.array_equal(pack_bytes(V, 1, b1.bytes), pack_bytes(V, 1, b0.bytes))

    @pytest.mark.parametrize("kind", ENVS)
    def test_triangular_transfer(self, kind, rng):
        world = make_world(kind)
        n = 96
        T = lower_triangular_type(n)
        b0 = alloc(world, 0, n * n * 8)
        b0.write(rng.random(n * n))
        b1 = alloc(world, 1, n * n * 8)
        one_way(world, b0, T, 1, b1, T, 1)
        assert np.array_equal(pack_bytes(T, 1, b1.bytes), pack_bytes(T, 1, b0.bytes))

    @pytest.mark.parametrize("kind", ["sm-2gpu", "ib"])
    def test_sender_contiguous_fast_path(self, kind, rng):
        world = make_world(kind)
        n = 64
        C = contiguous(n * n, DOUBLE).commit()
        V = vector(n, n, 2 * n, DOUBLE).commit()
        b0 = alloc(world, 0, n * n * 8)
        b0.write(rng.random(n * n))
        b1 = alloc(world, 1, 2 * n * n * 8)
        one_way(world, b0, C, 1, b1, V, 1)
        assert np.array_equal(pack_bytes(V, 1, b1.bytes), b0.bytes)

    @pytest.mark.parametrize("kind", ["sm-2gpu", "ib"])
    def test_receiver_contiguous_fast_path(self, kind, rng):
        world = make_world(kind)
        n = 64
        C = contiguous(n * n, DOUBLE).commit()
        V = vector(n, n, 2 * n, DOUBLE).commit()
        b0 = alloc(world, 0, 2 * n * n * 8)
        b0.write(rng.random(2 * n * n))
        b1 = alloc(world, 1, n * n * 8)
        one_way(world, b0, V, 1, b1, C, 1)
        assert np.array_equal(b1.bytes, pack_bytes(V, 1, b0.bytes))

    def test_both_contiguous_get(self, rng):
        world = make_world("sm-2gpu")
        C = contiguous(4096, DOUBLE).commit()
        b0 = alloc(world, 0, 4096 * 8)
        b0.write(rng.random(4096))
        b1 = alloc(world, 1, 4096 * 8)
        one_way(world, b0, C, 1, b1, C, 1)
        assert np.array_equal(b0.bytes, b1.bytes)

    def test_mixed_host_device(self, rng):
        world = MpiWorld(Cluster(1, 1), [(0, None), (0, 0)])
        V = vector(32, 16, 48, DOUBLE).commit()
        b0 = world.procs[0].node.host_memory.alloc(V.extent + 4096)
        b0.write(rng.random((V.extent + 4096) // 8))
        b1 = world.procs[1].ctx.malloc(V.extent + 4096)
        one_way(world, b0, V, 1, b1, V, 1)
        assert np.array_equal(pack_bytes(V, 1, b1.bytes), pack_bytes(V, 1, b0.bytes))

    def test_device_to_host(self, rng):
        world = MpiWorld(Cluster(1, 1), [(0, 0), (0, None)])
        V = vector(32, 16, 48, DOUBLE).commit()
        b0 = world.procs[0].ctx.malloc(V.extent + 4096)
        b0.write(rng.random((V.extent + 4096) // 8))
        b1 = world.procs[1].node.host_memory.alloc(V.extent + 4096)
        one_way(world, b0, V, 1, b1, V, 1)
        assert np.array_equal(pack_bytes(V, 1, b1.bytes), pack_bytes(V, 1, b0.bytes))

    @pytest.mark.parametrize("kind", ENVS)
    def test_eager_small_messages(self, kind, rng):
        world = make_world(kind)
        dt = contiguous(16, DOUBLE).commit()
        b0 = alloc(world, 0, 256)
        b0.write(rng.random(16))
        b1 = alloc(world, 1, 256)
        one_way(world, b0, dt, 1, b1, dt, 1)
        assert np.array_equal(b0.bytes[:128], b1.bytes[:128])

    def test_ipc_disabled_falls_back_to_copyinout(self, rng):
        world = make_world("sm-2gpu", MpiConfig(use_cuda_ipc=False))
        T = lower_triangular_type(64)
        b0 = alloc(world, 0, 64 * 64 * 8)
        b0.write(rng.random(64 * 64))
        b1 = alloc(world, 1, 64 * 64 * 8)
        one_way(world, b0, T, 1, b1, T, 1)
        assert np.array_equal(pack_bytes(T, 1, b1.bytes), pack_bytes(T, 1, b0.bytes))

    def test_no_zero_copy_explicit_staging(self, rng):
        world = make_world("ib", MpiConfig(zero_copy=False))
        T = lower_triangular_type(64)
        b0 = alloc(world, 0, 64 * 64 * 8)
        b0.write(rng.random(64 * 64))
        b1 = alloc(world, 1, 64 * 64 * 8)
        one_way(world, b0, T, 1, b1, T, 1)
        assert np.array_equal(pack_bytes(T, 1, b1.bytes), pack_bytes(T, 1, b0.bytes))


class TestRequests:
    def test_isend_irecv_wait(self, rng):
        world = make_world("cpu")
        dt = contiguous(1024, DOUBLE).commit()
        b0 = alloc(world, 0, 8192)
        b0.write(rng.random(1024))
        b1 = alloc(world, 1, 8192)

        def s(mpi):
            req = mpi.isend(b0, dt, 1, dest=1, tag=1)
            assert not req.test()
            yield req
            assert req.test()

        def r(mpi):
            req = mpi.irecv(b1, dt, 1, source=0, tag=1)
            yield req

        world.run([s, r])
        assert np.array_equal(b0.bytes, b1.bytes)

    def test_multiple_outstanding_messages_ordered(self, rng):
        world = make_world("cpu")
        dt = contiguous(512, DOUBLE).commit()
        srcs = [alloc(world, 0, 4096) for _ in range(3)]
        for i, s_ in enumerate(srcs):
            s_.write(np.full(512, float(i)))
        dsts = [alloc(world, 1, 4096) for _ in range(3)]

        def s(mpi):
            reqs = [mpi.isend(b, dt, 1, dest=1, tag=9) for b in srcs]
            yield mpi.wait_all(*reqs)

        def r(mpi):
            for b in dsts:  # same tag: must match in send order
                yield mpi.recv(b, dt, 1, source=0, tag=9)

        world.run([s, r])
        for i, b in enumerate(dsts):
            assert (b.view("f8") == float(i)).all()

    def test_recv_larger_than_send(self, rng):
        world = make_world("cpu")
        small = contiguous(64, DOUBLE).commit()
        big = contiguous(128, DOUBLE).commit()
        b0 = alloc(world, 0, 512)
        b0.write(rng.random(64))
        b1 = alloc(world, 1, 1024)
        b1.fill(0)
        one_way(world, b0, small, 1, b1, big, 1)
        assert np.array_equal(b1.bytes[:512], b0.bytes)
        assert (b1.bytes[512:] == 0).all()

    def test_signature_mismatch_fails(self, rng):
        world = make_world("cpu")
        d_doubles = contiguous(64, DOUBLE).commit()
        from repro.datatype.primitives import INT
        d_ints = contiguous(64, INT).commit()
        b0 = alloc(world, 0, 512)
        b1 = alloc(world, 1, 512)

        def s(mpi):
            yield mpi.send(b0, d_doubles, 1, dest=1, tag=2)

        def r(mpi):
            yield mpi.recv(b1, d_ints, 1, source=0, tag=2)

        with pytest.raises(Exception):
            world.run([s, r])


class TestBarrier:
    def test_barrier_synchronizes(self):
        world = make_world("cpu")
        order = []

        def a(mpi):
            order.append("a-before")
            yield mpi.barrier()
            order.append("a-after")

        def b(mpi):
            yield mpi.sim.timeout(1e-3)
            order.append("b-before")
            yield mpi.barrier()
            order.append("b-after")

        world.run([a, b])
        assert order[:2] == ["a-before", "b-before"]


class TestSteadyStateReuse:
    def test_pingpong_many_iterations_stable(self, rng):
        """Registration/caching makes iteration 3 as fast as iteration 2."""
        world = make_world("sm-2gpu")
        V = submatrix_type(128, 256)
        b0 = world.procs[0].ctx.malloc(256 * 256 * 8)
        b0.write(rng.random(256 * 256))
        b1 = world.procs[1].ctx.malloc(256 * 256 * 8)

        times = []
        for _ in range(4):
            def s(mpi):
                yield mpi.send(b0, V, 1, dest=1, tag=1)
                yield mpi.recv(b0, V, 1, source=1, tag=2)

            def r(mpi):
                yield mpi.recv(b1, V, 1, source=0, tag=1)
                yield mpi.send(b1, V, 1, dest=0, tag=2)

            times.append(world.run([s, r]))
        # iteration 1 pays IPC registration; later iterations identical
        assert times[0] > times[1]
        assert times[1] == pytest.approx(times[2]) == pytest.approx(times[3])


class TestWorldScaleObservability:
    """The simulator-core counters WorldStats reports per stats window."""

    def test_stats_carries_event_loop_counters(self):
        world = make_world("cpu")
        C = contiguous(256, DOUBLE).commit()
        b0 = alloc(world, 0, C.size)
        b1 = alloc(world, 1, C.size)
        one_way(world, b0, C, 1, b1, C, 1)
        ws = world.stats()
        assert ws.events_processed > 0
        assert ws.peak_queue_depth >= 1
        assert ws.timers_cancelled >= 0
        assert ws.run_wall_s > 0.0
        assert ws.sim_elapsed_s > 0.0
        assert ws.events_per_wall_s == pytest.approx(
            ws.events_processed / ws.run_wall_s
        )
        d = ws.to_dict()
        for key in (
            "events_processed",
            "timers_cancelled",
            "peak_queue_depth",
            "run_wall_s",
            "sim_elapsed_s",
            "events_per_wall_s",
        ):
            assert key in d
        assert "events:" in ws.summary()

    def test_reset_stats_restarts_the_window(self):
        world = make_world("cpu")
        C = contiguous(256, DOUBLE).commit()
        b0 = alloc(world, 0, C.size)
        b1 = alloc(world, 1, C.size)
        one_way(world, b0, C, 1, b1, C, 1)
        assert world.stats().events_processed > 0
        world.reset_stats()
        ws = world.stats()
        assert ws.events_processed == 0
        assert ws.run_wall_s == 0.0
        assert ws.sim_elapsed_s == 0.0
        assert not ws.by_protocol
        # a fresh run after the reset is counted again
        one_way(world, b0, C, 1, b1, C, 1, tag=6)
        ws2 = world.stats()
        assert ws2.events_processed > 0
        assert ws2.by_protocol  # counters-fallback or transfer log

    def test_by_protocol_fallback_without_transfer_log(self):
        world = make_world("cpu", MpiConfig(transfer_log=False))
        C = contiguous(256, DOUBLE).commit()
        b0 = alloc(world, 0, C.size)
        b1 = alloc(world, 1, C.size)
        one_way(world, b0, C, 1, b1, C, 1)
        ws = world.stats()
        assert not ws.transfers  # log off: no per-transfer records
        # ... but the protocol mix is rebuilt from the metric counters
        assert ws.by_protocol.get("eager") == 2  # one send + one recv

    def test_world_builds_lazily(self):
        world = make_world("cpu")
        assert sum(1 for _ in world.procs.materialized()) == 0
        assert len(world.procs) == 2
        _ = world.procs[1]
        assert sum(1 for _ in world.procs.materialized()) == 1
        assert [p.rank for p in world.procs] == [0, 1]  # full iteration
        assert world.procs[-1].rank == 1
