"""Tests for Status objects, sendrecv, and wait_any."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datatype.ddt import contiguous, vector
from repro.datatype.primitives import DOUBLE
from repro.hw.node import Cluster
from repro.mpi.requests import Status
from repro.mpi.world import MpiWorld


def cpu_world():
    return MpiWorld(Cluster(1, 1), [(0, None), (0, None)])


class TestStatus:
    def test_recv_resolves_with_status(self, rng):
        world = cpu_world()
        dt = contiguous(64, DOUBLE).commit()
        b0 = world.procs[0].node.host_memory.alloc(512)
        b0.write(rng.random(64))
        b1 = world.procs[1].node.host_memory.alloc(512)
        seen = {}

        def s(mpi):
            yield mpi.send(b0, dt, 1, dest=1, tag=42)

        def r(mpi):
            status = yield mpi.recv(b1, dt, 1, source=0, tag=42)
            seen["status"] = status

        world.run([s, r])
        st = seen["status"]
        assert isinstance(st, Status)
        assert st.source == 0 and st.tag == 42
        assert st.count_bytes == dt.size
        assert st.get_count(dt) == 1

    def test_status_on_rendezvous(self, rng):
        world = cpu_world()
        dt = contiguous(1 << 16, DOUBLE).commit()  # well past eager
        b0 = world.procs[0].node.host_memory.alloc(dt.size)
        b1 = world.procs[1].node.host_memory.alloc(dt.size)
        seen = {}

        def s(mpi):
            yield mpi.send(b0, dt, 1, dest=1, tag=7)

        def r(mpi):
            seen["status"] = yield mpi.recv(b1, dt, 1, source=0, tag=7)

        world.run([s, r])
        assert seen["status"].count_bytes == dt.size

    def test_wildcard_recv_reports_actual_source(self, rng):
        world = MpiWorld(Cluster(1, 1), [(0, None), (0, None), (0, None)])
        dt = contiguous(16, DOUBLE).commit()
        b = world.procs[2].node.host_memory.alloc(256)
        src = world.procs[1].node.host_memory.alloc(256)
        seen = {}

        def quiet(mpi):
            return
            yield

        def s(mpi):
            yield mpi.send(src, dt, 1, dest=2, tag=9)

        def r(mpi):
            from repro.mpi.message import ANY_SOURCE

            seen["status"] = yield mpi.recv(b, dt, 1, source=ANY_SOURCE, tag=9)

        world.run([quiet, s, r])
        assert seen["status"].source == 1

    def test_get_count_partial_element(self):
        dt = contiguous(3, DOUBLE).commit()
        st = Status(source=0, tag=0, count_bytes=20)
        assert st.get_count(dt) == -1  # MPI_UNDEFINED


class TestSendrecv:
    def test_bidirectional_exchange(self, rng):
        world = cpu_world()
        dt = contiguous(256, DOUBLE).commit()
        bufs = {
            r: (
                world.procs[r].node.host_memory.alloc(dt.size),
                world.procs[r].node.host_memory.alloc(dt.size),
            )
            for r in range(2)
        }
        bufs[0][0].write(np.full(256, 1.0))
        bufs[1][0].write(np.full(256, 2.0))

        def program(rank):
            other = 1 - rank

            def run(mpi):
                snd, rcv = bufs[rank]
                yield mpi.sendrecv(snd, dt, 1, other, rcv, dt, 1, source=other)

            return run

        world.run({0: program(0), 1: program(1)})
        assert (bufs[0][1].view("f8") == 2.0).all()
        assert (bufs[1][1].view("f8") == 1.0).all()

    def test_ring_shift_no_deadlock(self):
        """Every rank sendrecvs to its right neighbour simultaneously."""
        n = 4
        world = MpiWorld(Cluster(1, 1), [(0, None)] * n)
        dt = contiguous(1 << 15, DOUBLE).commit()  # rendezvous-sized
        snd = [world.procs[r].node.host_memory.alloc(dt.size) for r in range(n)]
        rcv = [world.procs[r].node.host_memory.alloc(dt.size) for r in range(n)]
        for r in range(n):
            snd[r].write(np.full(1 << 15, float(r)))

        def program(rank):
            def run(mpi):
                yield mpi.sendrecv(
                    snd[rank], dt, 1, (rank + 1) % n,
                    rcv[rank], dt, 1, source=(rank - 1) % n,
                )
            return run

        world.run({r: program(r) for r in range(n)})
        for r in range(n):
            assert (rcv[r].view("f8") == float((r - 1) % n)).all()


class TestWaitAny:
    def test_first_completion_wins(self, rng):
        world = cpu_world()
        small = contiguous(8, DOUBLE).commit()
        big = contiguous(1 << 16, DOUBLE).commit()
        p0, p1 = world.procs
        s_small = p0.node.host_memory.alloc(small.size)
        s_big = p0.node.host_memory.alloc(big.size)
        r_small = p1.node.host_memory.alloc(small.size)
        r_big = p1.node.host_memory.alloc(big.size)
        seen = {}

        def s(mpi):
            a = mpi.isend(s_big, big, 1, dest=1, tag=1)
            b = mpi.isend(s_small, small, 1, dest=1, tag=2)
            yield mpi.wait_all(a, b)

        def r(mpi):
            a = mpi.irecv(r_big, big, 1, source=0, tag=1)
            b = mpi.irecv(r_small, small, 1, source=0, tag=2)
            idx, _val = yield mpi.wait_any(a, b)
            seen["first"] = idx
            yield mpi.wait_all(a, b)

        world.run([s, r])
        assert seen["first"] == 1  # the small eager message lands first
