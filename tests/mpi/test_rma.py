"""Tests for one-sided (RMA) operations over the datatype machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datatype.convertor import pack_bytes
from repro.datatype.ddt import contiguous, vector
from repro.datatype.primitives import DOUBLE
from repro.hw.node import Cluster
from repro.mpi.rma import RmaWindow
from repro.mpi.world import MpiWorld
from repro.workloads.matrices import lower_triangular_type


def gpu_world():
    return MpiWorld(Cluster(1, 2), [(0, 0), (0, 1)])


def ib_world():
    return MpiWorld(Cluster(2, 1), [(0, 0), (1, 0)])


def host_world():
    return MpiWorld(Cluster(1, 1), [(0, None), (0, None)])


def run_epoch(world, win, ops_by_rank):
    """Each rank runs its RMA ops inside one fence epoch."""

    def program(rank):
        def run(mpi):
            yield from win.fence(mpi)
            for op in ops_by_rank.get(rank, []):
                op(mpi)
            yield from win.fence(mpi)

        return run

    world.run({r: program(r) for r in range(world.size)})


class TestIntraNodeDevice:
    def test_put_triangular_into_peer_window(self, rng):
        world = gpu_world()
        n = 48
        T = lower_triangular_type(n)
        src = world.procs[0].ctx.malloc(n * n * 8)
        src.write(rng.random(n * n))
        windows = [world.procs[r].ctx.malloc(n * n * 8) for r in range(2)]
        windows[1].fill(0)
        win = RmaWindow(world, windows)
        run_epoch(
            world, win,
            {0: [lambda mpi: win.put(mpi, src, T, 1, target=1)]},
        )
        assert np.array_equal(
            pack_bytes(T, 1, windows[1].bytes), pack_bytes(T, 1, src.bytes)
        )

    def test_get_from_peer_window(self, rng):
        world = gpu_world()
        V = vector(16, 8, 24, DOUBLE).commit()
        windows = [world.procs[r].ctx.malloc(V.extent + 256) for r in range(2)]
        windows[1].write(rng.random((V.extent + 256) // 8))
        dst = world.procs[0].ctx.malloc(V.extent + 256)
        dst.fill(0)
        win = RmaWindow(world, windows)
        run_epoch(
            world, win,
            {0: [lambda mpi: win.get(mpi, dst, V, 1, target=1)]},
        )
        assert np.array_equal(
            pack_bytes(V, 1, dst.bytes), pack_bytes(V, 1, windows[1].bytes)
        )

    def test_put_reshapes_between_datatypes(self, rng):
        """Origin vector scattered as target contiguous (signatures match)."""
        world = gpu_world()
        V = vector(16, 8, 24, DOUBLE).commit()
        C = contiguous(16 * 8, DOUBLE).commit()
        src = world.procs[0].ctx.malloc(V.extent + 256)
        src.write(rng.random((V.extent + 256) // 8))
        windows = [world.procs[r].ctx.malloc(V.size) for r in range(2)]
        win = RmaWindow(world, windows)
        run_epoch(
            world, win,
            {0: [lambda mpi: win.put(mpi, src, V, 1, target=1, target_dt=C)]},
        )
        assert np.array_equal(windows[1].bytes, pack_bytes(V, 1, src.bytes))

    def test_signature_mismatch_rejected(self):
        world = gpu_world()
        from repro.datatype.primitives import INT

        windows = [world.procs[r].ctx.malloc(1024) for r in range(2)]
        win = RmaWindow(world, windows)
        src = world.procs[0].ctx.malloc(1024)
        dtd = contiguous(8, DOUBLE).commit()
        dti = contiguous(8, INT).commit()

        def program(rank):
            def run(mpi):
                yield from win.fence(mpi)
                if rank == 0:
                    win.put(mpi, src, dtd, 1, target=1, target_dt=dti)
                yield from win.fence(mpi)

            return run

        with pytest.raises(Exception):
            world.run({r: program(r) for r in range(2)})


class TestHostWindows:
    def test_put_host_to_host(self, rng):
        world = host_world()
        dt = vector(8, 4, 12, DOUBLE).commit()
        src = world.procs[0].node.host_memory.alloc(dt.extent + 64)
        src.write(rng.random((dt.extent + 64) // 8))
        windows = [
            world.procs[r].node.host_memory.alloc(dt.extent + 64)
            for r in range(2)
        ]
        windows[1].fill(0)
        win = RmaWindow(world, windows)
        run_epoch(world, win, {0: [lambda mpi: win.put(mpi, src, dt, 1, target=1)]})
        assert np.array_equal(
            pack_bytes(dt, 1, windows[1].bytes), pack_bytes(dt, 1, src.bytes)
        )


class TestInterNode:
    def test_put_over_ib(self, rng):
        world = ib_world()
        n = 32
        T = lower_triangular_type(n)
        src = world.procs[0].ctx.malloc(n * n * 8)
        src.write(rng.random(n * n))
        windows = [world.procs[r].ctx.malloc(n * n * 8) for r in range(2)]
        windows[1].fill(0)
        win = RmaWindow(world, windows)
        run_epoch(world, win, {0: [lambda mpi: win.put(mpi, src, T, 1, target=1)]})
        assert np.array_equal(
            pack_bytes(T, 1, windows[1].bytes), pack_bytes(T, 1, src.bytes)
        )

    def test_get_over_ib(self, rng):
        world = ib_world()
        dt = contiguous(4096, DOUBLE).commit()
        windows = [world.procs[r].ctx.malloc(dt.size) for r in range(2)]
        windows[1].write(rng.random(4096))
        dst = world.procs[0].ctx.malloc(dt.size)
        win = RmaWindow(world, windows)
        run_epoch(world, win, {0: [lambda mpi: win.get(mpi, dst, dt, 1, target=1)]})
        assert np.array_equal(dst.bytes, windows[1].bytes)


class TestEpochSemantics:
    def test_ops_complete_by_fence(self, rng):
        world = gpu_world()
        dt = contiguous(1 << 15, DOUBLE).commit()
        src = world.procs[0].ctx.malloc(dt.size)
        src.write(rng.random(1 << 15))
        windows = [world.procs[r].ctx.malloc(dt.size) for r in range(2)]
        win = RmaWindow(world, windows)
        checked = {}

        def origin(mpi):
            yield from win.fence(mpi)
            win.put(mpi, src, dt, 1, target=1)
            yield from win.fence(mpi)

        def target(mpi):
            yield from win.fence(mpi)
            yield from win.fence(mpi)
            checked["ok"] = np.array_equal(windows[1].bytes, src.bytes)

        world.run([origin, target])
        assert checked["ok"]

    def test_concurrent_puts_to_distinct_targets(self, rng):
        world = MpiWorld(Cluster(1, 3), [(0, 0), (0, 1), (0, 2)])
        dt = contiguous(1024, DOUBLE).commit()
        srcs = [world.procs[r].ctx.malloc(dt.size) for r in range(3)]
        for i, s in enumerate(srcs):
            s.write(np.full(1024, float(i)))
        windows = [world.procs[r].ctx.malloc(dt.size) for r in range(3)]
        win = RmaWindow(world, windows)
        run_epoch(
            world, win,
            {
                0: [lambda mpi: win.put(mpi, srcs[0], dt, 1, target=1)],
                1: [lambda mpi: win.put(mpi, srcs[1], dt, 1, target=2)],
                2: [lambda mpi: win.put(mpi, srcs[2], dt, 1, target=0)],
            },
        )
        assert (windows[1].view("f8") == 0.0).all()
        assert (windows[2].view("f8") == 1.0).all()
        assert (windows[0].view("f8") == 2.0).all()
