"""Chaos suite: seeded fault injection across every rendezvous protocol.

The tentpole invariant (docs/ROBUSTNESS.md): under any seeded plan of
dropped, duplicated or delayed data-plane messages, failed CUDA IPC
mappings and staging-allocation pressure, every transfer either delivers
byte-exact data — recovering through retransmission, duplicate
suppression, and the fallback ladder (ipc_rdma -> copyinout,
local staging -> direct remote unpack) — or fails loudly with
:class:`TransferTimeout`.  Never silent corruption.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datatype.convertor import pack_bytes
from repro.datatype.ddt import vector
from repro.datatype.primitives import DOUBLE
from repro.faults.plan import FaultSpec, TransferTimeout
from repro.mpi.config import MpiConfig, RetryPolicy
from tests.datatype.strategies import datatypes
from tests.mpi.test_property_end_to_end import build_world

#: non-contiguous on both sides -> the general (ring) pipeline
NONCONTIG = vector(64, 32, 48, DOUBLE).commit()


def faulted_roundtrip(kind, config, dt=None, count=1, seed=99):
    """One send/recv under ``config``; returns (want, got, world)."""
    dt = NONCONTIG if dt is None else dt
    world = build_world(kind, config)
    rng = np.random.default_rng(seed)
    size = max(dt.spans_for_count(count).true_ub, 1) + 64
    bufs = []
    for rank in range(2):
        proc = world.procs[rank]
        if proc.gpu is not None:
            buf = proc.ctx.malloc(size)
        else:
            buf = proc.node.host_memory.alloc(size)
        bufs.append(buf)
    bufs[0].bytes[:] = rng.integers(0, 255, size, dtype=np.uint8)
    bufs[1].fill(0)

    def s(mpi):
        yield mpi.send(bufs[0], dt, count, dest=1, tag=1)

    def r(mpi):
        yield mpi.recv(bufs[1], dt, count, source=0, tag=1)

    world.run([s, r])
    want = pack_bytes(dt, count, bufs[0].bytes)
    got = pack_bytes(dt, count, bufs[1].bytes)
    return want, got, world


FAULT_KINDS = {
    "drop": dict(am_drop=0.25),
    "dup": dict(am_dup=0.5),
    "delay": dict(am_delay=0.5),
    "ipc_open_fail": dict(ipc_open_fail=1.0),
    "staging_fail": dict(staging_fail=1.0),
    "everything": dict(am_drop=0.15, am_dup=0.2, am_delay=0.3,
                       ipc_open_fail=0.3, staging_fail=0.3),
}


@pytest.mark.parametrize("kind", ["sm-2gpu", "ib", "cpu"])
@pytest.mark.parametrize("fault", sorted(FAULT_KINDS))
def test_chaos_byte_exact(kind, fault):
    """protocol x fault-kind sweep: delivery stays byte-exact."""
    cfg = MpiConfig(
        frag_bytes=2048,
        eager_limit=0,
        faults=FaultSpec(seed=7, **FAULT_KINDS[fault]),
    )
    want, got, world = faulted_roundtrip(kind, cfg)
    assert np.array_equal(want, got)
    assert world.stats().is_complete()


@pytest.mark.parametrize("fault", ["drop", "dup", "delay", "everything"])
def test_chaos_put_mode_byte_exact(fault):
    """The PUT-driven ring pipeline survives the same plans."""
    cfg = MpiConfig(
        frag_bytes=2048,
        eager_limit=0,
        rdma_mode="put",
        faults=FaultSpec(seed=11, **FAULT_KINDS[fault]),
    )
    want, got, _world = faulted_roundtrip("sm-2gpu", cfg)
    assert np.array_equal(want, got)


def test_chaos_seeded_runs_are_identical():
    """Same seed, same workload -> identical fault history and stats."""
    cfg = MpiConfig(
        frag_bytes=2048, eager_limit=0,
        faults=FaultSpec(seed=21, am_drop=0.3, am_dup=0.3, am_delay=0.3),
    )
    _, got_a, world_a = faulted_roundtrip("ib", cfg)
    _, got_b, world_b = faulted_roundtrip("ib", cfg)
    assert np.array_equal(got_a, got_b)
    sa, sb = world_a.stats(), world_b.stats()
    assert sa.faults_injected == sb.faults_injected
    assert sa.retransmits == sb.retransmits
    assert sa.dup_drops == sb.dup_drops


def test_retransmit_and_dup_counters_surface():
    """Retry/dedupe work shows up in MpiWorld.stats()."""
    cfg = MpiConfig(
        frag_bytes=2048, eager_limit=0,
        faults=FaultSpec(seed=5, am_drop=0.4, am_dup=0.5),
    )
    want, got, world = faulted_roundtrip("ib", cfg)
    assert np.array_equal(want, got)
    ws = world.stats()
    assert ws.retransmits > 0
    assert ws.dup_drops > 0
    assert world.faults is not None and world.faults.injected > 0
    assert sum(ws.faults_injected.values()) == world.faults.injected
    d = ws.to_dict()
    assert d["retransmits"] == ws.retransmits
    assert d["dup_drops"] == ws.dup_drops
    assert d["faults_injected"] == ws.faults_injected


def test_ipc_open_failure_degrades_to_copyinout():
    """Receiver-side mapping failure renegotiates instead of crashing."""
    cfg = MpiConfig(
        frag_bytes=2048, eager_limit=0,
        faults=FaultSpec(seed=2, ipc_open_fail=1.0),
    )
    want, got, world = faulted_roundtrip("sm-2gpu", cfg)
    assert np.array_equal(want, got)
    ws = world.stats()
    # both sides record the renegotiated protocol
    assert ws.by_protocol == {"copyinout": 2}
    assert ws.fallbacks == {"copyinout": 1}
    assert ws.faults_injected.get("ipc_open_fail", 0) >= 1
    assert any(k.endswith("pml.fallback.copyinout") for k in ws.metrics)


def test_staging_pressure_degrades_to_direct_unpack():
    """Losing the optional local stage keeps the RDMA pipeline correct."""
    cfg = MpiConfig(
        frag_bytes=2048, eager_limit=0,
        faults=FaultSpec(seed=2, staging_fail=1.0),
    )
    want, got, world = faulted_roundtrip("sm-2gpu", cfg)
    assert np.array_equal(want, got)
    ws = world.stats()
    assert ws.by_protocol == {"ipc_rdma": 2}
    assert ws.fallbacks == {"direct_unpack": 1}
    assert ws.faults_injected.get("staging_fail.device", 0) >= 1
    assert any(k.endswith("pml.fallback.direct_unpack") for k in ws.metrics)


def test_unreachable_peer_times_out():
    """A dead data plane fails loudly with TransferTimeout, not a hang."""
    cfg = MpiConfig(
        frag_bytes=2048, eager_limit=0,
        retry=RetryPolicy(rto=1e-4, max_retries=2),
        faults=FaultSpec(seed=1, am_drop=1.0),
    )
    with pytest.raises(TransferTimeout):
        faulted_roundtrip("cpu", cfg)


def test_lost_acks_recovered_by_retransmission():
    """ACK-only loss: sender retransmits, receiver dedupes and re-ACKs."""
    cfg = MpiConfig(
        frag_bytes=2048, eager_limit=0,
        faults=FaultSpec(seed=3, am_drop=0.6, targets=("ack",)),
    )
    want, got, world = faulted_roundtrip("cpu", cfg)
    assert np.array_equal(want, got)
    ws = world.stats()
    assert ws.retransmits > 0
    # every retransmitted fragment was either suppressed mid-transfer or
    # re-ACKed by the post-completion tombstone handler
    late = sum(v for k, v in ws.metrics.items()
               if k.endswith("pml.late_retransmits"))
    assert ws.dup_drops + late > 0


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(dt=datatypes(), data=st.randoms())
def test_faulted_pipeline_matches_fault_free(dt, data):
    """Property: a faulted ipc_rdma run delivers what a clean run delivers."""
    seed = data.randint(0, 2**31)
    base = MpiConfig(frag_bytes=4096, pipeline_depth=2, eager_limit=0)
    want_clean, got_clean, _ = faulted_roundtrip(
        "sm-2gpu", base, dt=dt, seed=seed
    )
    faulted = base.but(
        faults=FaultSpec(
            seed=data.randint(0, 2**31),
            am_drop=0.2, am_dup=0.25, am_delay=0.3,
        )
    )
    want_f, got_f, _ = faulted_roundtrip("sm-2gpu", faulted, dt=dt, seed=seed)
    assert np.array_equal(want_clean, got_clean)
    assert np.array_equal(want_f, want_clean)
    assert np.array_equal(got_f, want_f)
