"""Failure injection and stress tests for the MPI stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datatype.convertor import pack_bytes
from repro.datatype.ddt import contiguous
from repro.datatype.primitives import DOUBLE
from repro.hw.node import Cluster
from repro.mpi.config import MpiConfig
from repro.mpi.world import MpiWorld
from repro.sim.core import SimulationError
from repro.workloads.matrices import lower_triangular_type, submatrix_type


def gpu_world(config=None):
    return MpiWorld(Cluster(1, 2), [(0, 0), (0, 1)], config)


class TestFailureInjection:
    def test_recv_without_send_deadlocks_detectably(self):
        world = gpu_world()
        dt = contiguous(64, DOUBLE).commit()
        buf = world.procs[1].ctx.malloc(dt.size)

        def lonely(mpi):
            yield mpi.recv(buf, dt, 1, source=0, tag=1)

        def silent(mpi):
            return
            yield

        with pytest.raises(SimulationError, match="deadlock"):
            world.run({0: silent, 1: lonely})

    def test_killed_sender_leaves_receiver_blocked(self):
        world = gpu_world()
        dt = contiguous(1 << 16, DOUBLE).commit()
        b0 = world.procs[0].ctx.malloc(dt.size)
        b1 = world.procs[1].ctx.malloc(dt.size)
        sim = world.sim

        def s(mpi):
            yield mpi.sim.timeout(1e-3)  # dies during this window
            yield mpi.send(b0, dt, 1, dest=1, tag=1)

        def r(mpi):
            yield mpi.recv(b1, dt, 1, source=0, tag=1)

        sender = sim.spawn(s(world.context(0)), label="s")
        receiver = sim.spawn(r(world.context(1)), label="r")
        sender.kill("network died")
        sim.run()
        assert sender.failed
        # the receiver is stuck waiting for a sender that died; this is
        # observable (posted recv outstanding), not silent corruption
        assert not receiver.done
        assert world.procs[1].matching.posted_count == 1

    def test_failed_rank_program_surfaces(self):
        world = gpu_world()

        def bad(mpi):
            yield mpi.sim.timeout(1e-6)
            raise RuntimeError("application error")

        def good(mpi):
            yield mpi.sim.timeout(1e-6)

        with pytest.raises(RuntimeError, match="application error"):
            world.run([bad, good])


class TestStress:
    def test_many_interleaved_transfers_one_pair(self, rng):
        """16 concurrent messages, mixed sizes/tags, one link: all intact."""
        world = gpu_world()
        msgs = []
        for i in range(16):
            n = int(rng.integers(8, 4096))
            dt = contiguous(n, DOUBLE).commit()
            src = world.procs[0].ctx.malloc(dt.size)
            src.write(rng.random(n))
            dst = world.procs[1].ctx.malloc(dt.size)
            msgs.append((dt, src, dst, 100 + i))

        def s(mpi):
            reqs = [
                mpi.isend(src, dt, 1, dest=1, tag=tag)
                for dt, src, _dst, tag in msgs
            ]
            yield mpi.wait_all(*reqs)

        def r(mpi):
            reqs = [
                mpi.irecv(dst, dt, 1, source=0, tag=tag)
                for dt, _src, dst, tag in msgs
            ]
            yield mpi.wait_all(*reqs)

        world.run([s, r])
        for dt, src, dst, _tag in msgs:
            assert np.array_equal(src.bytes, dst.bytes)

    def test_message_far_larger_than_ring(self, rng):
        """64 fragments through a depth-2 ring: flow control must hold."""
        cfg = MpiConfig(frag_bytes=64 << 10, pipeline_depth=2)
        world = gpu_world(cfg)
        n = 724  # ~4 MiB triangular payload
        T = lower_triangular_type(n)
        b0 = world.procs[0].ctx.malloc(n * n * 8)
        b0.write(rng.random(n * n))
        b1 = world.procs[1].ctx.malloc(n * n * 8)

        def s(mpi):
            yield mpi.send(b0, T, 1, dest=1, tag=1)

        def r(mpi):
            yield mpi.recv(b1, T, 1, source=0, tag=1)

        world.run([s, r])
        assert np.array_equal(
            pack_bytes(T, 1, b1.bytes), pack_bytes(T, 1, b0.bytes)
        )

    def test_transfer_on_nearly_starved_gpu(self, rng):
        world = gpu_world()
        for proc in world.procs:
            proc.gpu.contention = 0.999
        V = submatrix_type(128, 256)
        b0 = world.procs[0].ctx.malloc(256 * 256 * 8)
        b0.write(rng.random(256 * 256))
        b1 = world.procs[1].ctx.malloc(256 * 256 * 8)

        def s(mpi):
            yield mpi.send(b0, V, 1, dest=1, tag=1)

        def r(mpi):
            yield mpi.recv(b1, V, 1, source=0, tag=1)

        elapsed = world.run([s, r])
        assert elapsed > 0
        assert np.array_equal(
            pack_bytes(V, 1, b1.bytes), pack_bytes(V, 1, b0.bytes)
        )

    def test_send_count_greater_than_one(self, rng):
        from repro.datatype.ddt import resized, vector

        world = gpu_world()
        elem = resized(vector(4, 2, 6, DOUBLE), 0, 4 * 6 * 8).commit()
        count = 50
        size = elem.extent * count + 256
        b0 = world.procs[0].ctx.malloc(size)
        b0.write(rng.random(size // 8))
        b1 = world.procs[1].ctx.malloc(size)

        def s(mpi):
            yield mpi.send(b0, elem, count, dest=1, tag=1)

        def r(mpi):
            yield mpi.recv(b1, elem, count, source=0, tag=1)

        world.run([s, r])
        assert np.array_equal(
            pack_bytes(elem, count, b1.bytes), pack_bytes(elem, count, b0.bytes)
        )

    def test_bidirectional_simultaneous_large_transfers(self, rng):
        """Full-duplex rendezvous in both directions at once."""
        world = gpu_world()
        V = submatrix_type(512, 1024)
        bufs = [world.procs[r].ctx.malloc(1024 * 1024 * 8) for r in range(2)]
        outs = [world.procs[r].ctx.malloc(1024 * 1024 * 8) for r in range(2)]
        for b in bufs:
            b.write(rng.random(1024 * 1024))

        def program(rank):
            other = 1 - rank

            def run(mpi):
                yield mpi.sendrecv(
                    bufs[rank], V, 1, other, outs[rank], V, 1, source=other
                )

            return run

        world.run({0: program(0), 1: program(1)})
        for r in range(2):
            assert np.array_equal(
                pack_bytes(V, 1, outs[r].bytes),
                pack_bytes(V, 1, bufs[1 - r].bytes),
            )


class TestMvapichBatchPath:
    def test_batched_calls_preserve_data(self, rng, monkeypatch):
        from repro.baselines.mvapich import MvapichLikeTransfer
        from repro.mpi.proc import MpiProcess

        monkeypatch.setattr(MvapichLikeTransfer, "MAX_MODELED_CALLS", 8)
        c = Cluster(1, 2)
        p0 = MpiProcess(0, c.nodes[0], c.nodes[0].gpus[0], MpiConfig())
        p1 = MpiProcess(1, c.nodes[0], c.nodes[0].gpus[1], MpiConfig())
        T = lower_triangular_type(64)  # 64 runs >> 8: batch path engages
        b0 = p0.ctx.malloc(T.extent)
        b0.write(rng.random(T.extent // 8))
        b1 = p1.ctx.malloc(T.extent)
        xfer = MvapichLikeTransfer(p0, p1)
        c.sim.run_until_complete(c.sim.spawn(xfer.transfer(b0, T, 1, b1, T, 1)))
        assert np.array_equal(
            pack_bytes(T, 1, b1.bytes), pack_bytes(T, 1, b0.bytes)
        )
