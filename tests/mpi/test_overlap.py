"""Tracer-based tests proving the pipelines actually pipeline.

These are the invariants behind Figs 7 and 9: with fragmentation on,
sender pack kernels overlap the wire, and the wire overlaps receiver
unpack kernels; without fragmentation nothing overlaps.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw.node import Cluster
from repro.mpi.config import MpiConfig
from repro.mpi.world import MpiWorld
from repro.workloads.matrices import submatrix_type


def run_transfer(frag_bytes: int, n=512):
    cluster = Cluster(1, 2, trace=True)
    cfg = MpiConfig(frag_bytes=frag_bytes)
    world = MpiWorld(cluster, [(0, 0), (0, 1)], cfg)
    V = submatrix_type(n, 2 * n)
    b0 = world.procs[0].ctx.malloc(4 * n * n * 8)
    b1 = world.procs[1].ctx.malloc(4 * n * n * 8)
    b0.write(np.random.default_rng(0).random(4 * n * n))

    def s(mpi):
        yield mpi.send(b0, V, 1, dest=1, tag=1)

    def r(mpi):
        yield mpi.recv(b1, V, 1, source=0, tag=1)

    # warm up (registration + caches), then trace the steady-state run
    world.run([s, r])
    cluster.tracer.clear()
    world.run([s, r])
    return cluster.tracer


class TestPipelineOverlap:
    def test_pack_overlaps_wire_when_fragmented(self):
        tracer = run_transfer(frag_bytes=256 << 10)
        pack_stream = "node0.gpu0.dtengine.r0"
        p2p = "node0.pcie.p2p.node0.gpu1->node0.gpu0"
        pack_busy = tracer.busy_time(pack_stream)
        overlap = tracer.overlap_time(pack_stream, p2p)
        assert pack_busy > 0
        # most of the packing hides under the wire
        assert overlap > 0.5 * pack_busy

    def test_wire_overlaps_unpack(self):
        tracer = run_transfer(frag_bytes=256 << 10)
        unpack_stream = "node0.gpu1.dtengine.r1"
        p2p = "node0.pcie.p2p.node0.gpu1->node0.gpu0"
        unpack_busy = tracer.busy_time(unpack_stream)
        assert unpack_busy > 0
        assert tracer.overlap_time(unpack_stream, p2p) > 0.5 * unpack_busy

    def test_single_fragment_has_no_pack_wire_overlap(self):
        tracer = run_transfer(frag_bytes=1 << 30)
        pack_stream = "node0.gpu0.dtengine.r0"
        p2p = "node0.pcie.p2p.node0.gpu1->node0.gpu0"
        pack_busy = tracer.busy_time(pack_stream)
        overlap = tracer.overlap_time(pack_stream, p2p)
        # the whole message packs before a single byte hits the wire
        # (only the IPC sync rides the wire during pack)
        assert overlap < 0.2 * pack_busy

    def test_fragmented_transfer_faster_at_scale(self):
        """Per-fragment sync costs only amortize on large messages, where
        hiding the kernels behind the wire wins (the Fig 9 regime)."""
        t_frag = _elapsed(frag_bytes=4 << 20, n=2048)
        t_whole = _elapsed(frag_bytes=1 << 30, n=2048)
        assert t_frag < t_whole


def _elapsed(frag_bytes: int, n=512) -> float:
    cluster = Cluster(1, 2)
    cfg = MpiConfig(frag_bytes=frag_bytes)
    world = MpiWorld(cluster, [(0, 0), (0, 1)], cfg)
    V = submatrix_type(n, 2 * n)
    b0 = world.procs[0].ctx.malloc(4 * n * n * 8)
    b1 = world.procs[1].ctx.malloc(4 * n * n * 8)

    def s(mpi):
        yield mpi.send(b0, V, 1, dest=1, tag=1)
        yield mpi.recv(b0, V, 1, source=1, tag=2)

    def r(mpi):
        yield mpi.recv(b1, V, 1, source=0, tag=1)
        yield mpi.send(b1, V, 1, dest=0, tag=2)

    world.run([s, r])
    return world.run([s, r])
