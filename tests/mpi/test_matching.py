"""Tests for MPI message matching semantics."""

from __future__ import annotations

import pytest

from repro.mpi.matching import MatchingEngine, PostedRecv
from repro.mpi.message import ANY_SOURCE, ANY_TAG, Envelope
from repro.sim.core import Future, Simulator


def post(engine, sim, source=ANY_SOURCE, tag=ANY_TAG, comm=0):
    fut = Future(sim)
    engine.post(PostedRecv(source=source, tag=tag, comm_id=comm, on_match=fut))
    return fut


def arrive(engine, source=0, tag=0, comm=0, what="msg"):
    env = Envelope(source=source, dest=1, tag=tag, comm_id=comm)
    return engine.arrive(env, what)


class TestMatching:
    def test_posted_then_arrival(self, sim):
        eng = MatchingEngine()
        fut = post(eng, sim, source=0, tag=7)
        arrive(eng, source=0, tag=7, what="hello")
        assert fut.value == "hello"

    def test_arrival_then_posted(self, sim):
        eng = MatchingEngine()
        arrive(eng, source=0, tag=7, what="early")
        assert eng.unexpected_count == 1
        fut = post(eng, sim, source=0, tag=7)
        assert fut.value == "early"
        assert eng.unexpected_count == 0

    def test_tag_mismatch_queues(self, sim):
        eng = MatchingEngine()
        fut = post(eng, sim, source=0, tag=7)
        arrive(eng, source=0, tag=8)
        assert not fut.done and eng.unexpected_count == 1

    def test_source_wildcard(self, sim):
        eng = MatchingEngine()
        fut = post(eng, sim, source=ANY_SOURCE, tag=5)
        arrive(eng, source=3, tag=5, what="from3")
        assert fut.value == "from3"

    def test_tag_wildcard(self, sim):
        eng = MatchingEngine()
        fut = post(eng, sim, source=2, tag=ANY_TAG)
        arrive(eng, source=2, tag=99, what="x")
        assert fut.value == "x"

    def test_comm_isolation(self, sim):
        eng = MatchingEngine()
        fut = post(eng, sim, source=0, tag=1, comm=1)
        arrive(eng, source=0, tag=1, comm=0)
        assert not fut.done

    def test_non_overtaking_same_source(self, sim):
        eng = MatchingEngine()
        arrive(eng, source=0, tag=4, what="first")
        arrive(eng, source=0, tag=4, what="second")
        a = post(eng, sim, source=0, tag=4)
        b = post(eng, sim, source=0, tag=4)
        assert a.value == "first" and b.value == "second"

    def test_posted_receives_match_in_post_order(self, sim):
        eng = MatchingEngine()
        a = post(eng, sim, source=0, tag=4)
        b = post(eng, sim, source=0, tag=4)
        arrive(eng, source=0, tag=4, what="x")
        assert a.done and not b.done

    def test_wildcard_takes_earliest_unexpected(self, sim):
        eng = MatchingEngine()
        arrive(eng, source=5, tag=1, what="older")
        arrive(eng, source=2, tag=1, what="newer")
        fut = post(eng, sim, source=ANY_SOURCE, tag=1)
        assert fut.value == "older"


def arrive_seq(engine, pair_seq, source=0, tag=0, comm=0, what="msg"):
    """An arrival stamped with a sender post-order pair_seq."""
    env = Envelope(
        source=source, dest=1, tag=tag, comm_id=comm, pair_seq=pair_seq
    )
    return engine.arrive(env, what)


class TestNonOvertakingResequencing:
    """Out-of-order wire arrivals must still match in send order.

    A small eager message posted second can finish packing — and hit the
    wire — before a big one posted first; fault-injected delays reorder
    too.  The pair_seq stamp lets the matcher hold the overtaker back."""

    def test_overtaking_arrival_held_until_gap_closes(self, sim):
        eng = MatchingEngine()
        a = post(eng, sim, source=0, tag=4)
        b = post(eng, sim, source=0, tag=4)
        arrive_seq(eng, 1, source=0, tag=4, what="second-posted")
        assert not a.done and not b.done  # held: seq 0 still in flight
        arrive_seq(eng, 0, source=0, tag=4, what="first-posted")
        assert a.value == "first-posted" and b.value == "second-posted"

    def test_resequenced_into_unexpected_queue(self, sim):
        eng = MatchingEngine()
        arrive_seq(eng, 1, source=0, tag=4, what="second")
        assert eng.unexpected_count == 0  # held, not yet visible
        arrive_seq(eng, 0, source=0, tag=4, what="first")
        assert eng.unexpected_count == 2
        a = post(eng, sim, source=0, tag=4)
        b = post(eng, sim, source=0, tag=4)
        assert a.value == "first" and b.value == "second"

    def test_different_sizes_different_tags_still_ordered(self, sim):
        eng = MatchingEngine()
        a = post(eng, sim, source=0, tag=1)
        b = post(eng, sim, source=0, tag=2)
        arrive_seq(eng, 1, source=0, tag=2, what="t2")
        arrive_seq(eng, 0, source=0, tag=1, what="t1")
        assert a.value == "t1" and b.value == "t2"

    def test_sources_resequence_independently(self, sim):
        eng = MatchingEngine()
        a = post(eng, sim, source=ANY_SOURCE, tag=4)
        arrive_seq(eng, 1, source=7, tag=4, what="late-from-7")
        arrive_seq(eng, 0, source=3, tag=4, what="from-3")
        assert a.value == "from-3"

    def test_unstamped_envelopes_bypass_resequencing(self, sim):
        eng = MatchingEngine()
        fut = post(eng, sim, source=0, tag=4)
        arrive(eng, source=0, tag=4, what="legacy")  # pair_seq=-1
        assert fut.value == "legacy"
