"""End-to-end observability: one run, one uniform stats object.

The acceptance bar for the metrics subsystem: a single ping-pong yields
a :class:`WorldStats` reporting cache hit rate, pack/wire overlap and
per-resource busy time, without the caller touching protocol internals.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import make_env, matrix_buffers, pingpong_stats
from repro.mpi.config import MpiConfig
from repro.obs.stats import WorldStats
from repro.workloads.matrices import MatrixWorkload


@pytest.fixture
def traced_env():
    return make_env("sm-2gpu", config=MpiConfig(frag_bytes=16 * 1024), trace=True)


def _run(env, iters=1, warmup=1):
    wl = MatrixWorkload.triangular(n=128)
    b0, b1 = matrix_buffers(env, wl)
    return pingpong_stats(
        env, b0, wl.datatype, 1, b1, wl.datatype, 1, iters=iters, warmup=warmup
    )


class TestWorldStats:
    def test_single_pingpong_yields_complete_stats(self, traced_env):
        per_iter, ws = _run(traced_env)
        assert isinstance(ws, WorldStats)
        assert per_iter > 0.0
        assert ws.is_complete()
        # both directions, both sides
        assert len(ws.transfers) == 4
        assert {t.role for t in ws.transfers} == {"send", "recv"}
        assert ws.by_protocol == {"ipc_rdma": 4}
        assert all(t.mode for t in ws.transfers)  # ipc_rdma records a mode

    def test_cache_hit_rate_after_warmup(self, traced_env):
        _, ws = _run(traced_env)
        # the warmup filled the CUDA_DEV cache; measured jobs hit it
        assert ws.cache.lookups > 0
        assert ws.cache_hit_rate == pytest.approx(1.0)
        assert ws.engine.jobs > 0 and ws.engine.bytes_packed > 0

    def test_overlap_and_busy_times_reported(self, traced_env):
        _, ws = _run(traced_env)
        assert ws.resource_busy_s  # tracer on: at least streams + wire
        assert ws.pack_busy_s > 0.0 and ws.wire_busy_s > 0.0
        assert 0.0 < ws.pack_wire_overlap_fraction <= 1.0
        stages = ws.busy_by_stage()
        assert stages.get("pack", 0.0) > 0.0

    def test_fragment_and_credit_accounting(self, traced_env):
        _, ws = _run(traced_env)
        for t in ws.transfers:
            assert t.fragments >= 2  # 64 KB message in 16 KB fragments
            assert 1 <= t.max_in_flight <= 4  # bounded by the window
        assert ws.credit_wait_s >= 0.0

    def test_reset_stats_drops_history(self, traced_env):
        _run(traced_env)
        traced_env.world.reset_stats()
        ws = traced_env.world.stats()
        assert ws.transfers == [] and not ws.resource_busy_s
        assert ws.engine.jobs == 0 and ws.cache.lookups == 0

    def test_metrics_snapshot_scoped_per_rank(self, traced_env):
        _, ws = _run(traced_env)
        assert any(k.startswith("r0.") for k in ws.metrics)
        assert any(k.startswith("r1.") for k in ws.metrics)
        assert ws.metrics["r0.pml.sends"] >= 1

    def test_untraced_env_still_reports_transfers(self):
        env = make_env("cpu")
        _, ws = _run(env)
        assert ws.is_complete()
        assert ws.by_protocol == {"host": 4}
        # no tracer: busy/overlap sections are empty, not wrong
        assert ws.resource_busy_s == {} and ws.pack_busy_s == 0.0

    def test_eager_transfers_recorded_too(self):
        env = make_env("cpu")
        wl = MatrixWorkload.submatrix(n=16)  # 2 KB: eager path
        b0, b1 = matrix_buffers(env, wl)
        _, ws = pingpong_stats(
            env, b0, wl.datatype, 1, b1, wl.datatype, 1, iters=1, warmup=0
        )
        assert ws.by_protocol == {"eager": 4}
        assert ws.is_complete()
