"""Property tests: RMA and collectives with random datatypes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatype.convertor import pack_bytes
from repro.hw.node import Cluster
from repro.mpi.collectives import bcast
from repro.mpi.rma import RmaWindow
from repro.mpi.world import MpiWorld
from tests.datatype.strategies import datatypes


@settings(max_examples=12, deadline=None)
@given(dt=datatypes(), data=st.randoms())
def test_rma_put_random_datatype(dt, data):
    world = MpiWorld(Cluster(1, 2), [(0, 0), (0, 1)])
    rng = np.random.default_rng(data.randint(0, 2**31))
    size = max(dt.spans.true_ub, 1) + 64
    src = world.procs[0].ctx.malloc(size)
    src.bytes[:] = rng.integers(0, 255, size, dtype=np.uint8)
    windows = [world.procs[r].ctx.malloc(size) for r in range(2)]
    windows[1].fill(0)
    win = RmaWindow(world, windows)

    def origin(mpi):
        yield from win.fence(mpi)
        win.put(mpi, src, dt, 1, target=1)
        yield from win.fence(mpi)

    def passive(mpi):
        yield from win.fence(mpi)
        yield from win.fence(mpi)

    world.run([origin, passive])
    assert np.array_equal(
        pack_bytes(dt, 1, windows[1].bytes), pack_bytes(dt, 1, src.bytes)
    )


@settings(max_examples=10, deadline=None)
@given(dt=datatypes(), n_ranks=st.integers(2, 4), data=st.randoms())
def test_bcast_random_datatype(dt, n_ranks, data):
    world = MpiWorld(Cluster(1, n_ranks), [(0, g) for g in range(n_ranks)])
    rng = np.random.default_rng(data.randint(0, 2**31))
    size = max(dt.spans.true_ub, 1) + 64
    bufs = [world.procs[r].ctx.malloc(size) for r in range(n_ranks)]
    bufs[0].bytes[:] = rng.integers(0, 255, size, dtype=np.uint8)

    def program(rank):
        def run(mpi):
            yield from bcast(mpi, bufs[rank], dt, 1, root=0)

        return run

    world.run({r: program(r) for r in range(n_ranks)})
    want = pack_bytes(dt, 1, bufs[0].bytes)
    for r in range(1, n_ranks):
        assert np.array_equal(pack_bytes(dt, 1, bufs[r].bytes), want)


@settings(max_examples=10, deadline=None)
@given(dt=datatypes(), data=st.randoms())
def test_rma_get_matches_put(dt, data):
    """get(x) after put(x) into an untouched window returns x."""
    world = MpiWorld(Cluster(1, 2), [(0, 0), (0, 1)])
    rng = np.random.default_rng(data.randint(0, 2**31))
    size = max(dt.spans.true_ub, 1) + 64
    src = world.procs[0].ctx.malloc(size)
    src.bytes[:] = rng.integers(0, 255, size, dtype=np.uint8)
    back = world.procs[0].ctx.malloc(size)
    back.fill(0)
    windows = [world.procs[r].ctx.malloc(size) for r in range(2)]
    win = RmaWindow(world, windows)

    def origin(mpi):
        yield from win.fence(mpi)
        win.put(mpi, src, dt, 1, target=1)
        yield from win.fence(mpi)
        win.get(mpi, back, dt, 1, target=1)
        yield from win.fence(mpi)

    def passive(mpi):
        for _ in range(3):
            yield from win.fence(mpi)

    world.run([origin, passive])
    assert np.array_equal(
        pack_bytes(dt, 1, back.bytes), pack_bytes(dt, 1, src.bytes)
    )
