"""Tests for the GPU datatype engine driver (PackJob)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cuda.uma import map_host_buffer
from repro.datatype.convertor import pack_bytes
from repro.gpu_engine.engine import EngineOptions, GpuDatatypeEngine
from repro.workloads.matrices import lower_triangular_type, submatrix_type
from tests.datatype.strategies import datatypes, reference_pack


@pytest.fixture
def engine(cluster):
    return GpuDatatypeEngine(cluster.nodes[0].gpus[0])


def run(cluster, coro):
    return cluster.sim.run_until_complete(cluster.sim.spawn(coro))


class TestPathSelection:
    def test_vector_type_uses_vector_kernel(self, cluster, engine):
        dt = submatrix_type(64, 128)
        src = cluster.nodes[0].gpus[0].memory.alloc(dt.extent)
        job = engine.pack_job(dt, 1, src)
        assert job.uses_vector_kernel
        assert job.units is None

    def test_indexed_type_uses_dev_kernel(self, cluster, engine):
        dt = lower_triangular_type(64)
        src = cluster.nodes[0].gpus[0].memory.alloc(dt.extent)
        job = engine.pack_job(dt, 1, src)
        assert not job.uses_vector_kernel
        assert job.units is not None

    def test_force_dev_path(self, cluster, engine):
        dt = submatrix_type(64, 128)
        src = cluster.nodes[0].gpus[0].memory.alloc(dt.extent)
        job = engine.pack_job(dt, 1, src, EngineOptions(force_dev_path=True))
        assert not job.uses_vector_kernel


class TestFragments:
    def test_fragments_tile_stream(self, cluster, engine):
        dt = lower_triangular_type(128)
        src = cluster.nodes[0].gpus[0].memory.alloc(dt.extent)
        job = engine.pack_job(dt, 1, src)
        frags = job.fragments(4096)
        assert frags[0].lo == 0
        assert frags[-1].hi == job.total_bytes
        for a, b in zip(frags, frags[1:]):
            assert a.hi == b.lo

    def test_range_fragment_covers_units(self, cluster, engine):
        dt = lower_triangular_type(128)
        src = cluster.nodes[0].gpus[0].memory.alloc(dt.extent)
        job = engine.pack_job(dt, 1, src)
        frag = job.range_fragment(0, 8192, 16384)
        units = job.units
        lo_b, hi_b = units.packed_range(frag.unit_lo, frag.unit_hi)
        assert lo_b <= 8192 and hi_b >= 16384

    def test_range_fragment_out_of_bounds_rejected(self, cluster, engine):
        dt = lower_triangular_type(32)
        src = cluster.nodes[0].gpus[0].memory.alloc(dt.extent)
        job = engine.pack_job(dt, 1, src)
        with pytest.raises(ValueError):
            job.range_fragment(0, 0, job.total_bytes + 8)


class TestCorrectness:
    def test_pack_all_d2d(self, cluster, engine, rng):
        dt = lower_triangular_type(96)
        gpu = cluster.nodes[0].gpus[0]
        src = gpu.memory.alloc(dt.extent)
        src.write(rng.random(dt.extent // 8))
        dst = gpu.memory.alloc(dt.size)
        job = engine.pack_job(dt, 1, src)
        run(cluster, job.process_all(dst, frag_bytes=4096))
        assert np.array_equal(dst.bytes, pack_bytes(dt, 1, src.bytes))

    def test_unpack_restores(self, cluster, engine, rng):
        dt = lower_triangular_type(96)
        gpu = cluster.nodes[0].gpus[0]
        src = gpu.memory.alloc(dt.extent)
        src.write(rng.random(dt.extent // 8))
        packed_np = pack_bytes(dt, 1, src.bytes)
        packed = gpu.memory.alloc(dt.size)
        packed.bytes[:] = packed_np
        out = gpu.memory.alloc(dt.extent)
        job = engine.unpack_job(dt, 1, out)
        run(cluster, job.process_all(packed, frag_bytes=4096))
        assert np.array_equal(pack_bytes(dt, 1, out.bytes), packed_np)

    def test_zero_copy_to_mapped_host(self, cluster, engine, rng):
        dt = submatrix_type(64, 128)
        gpu = cluster.nodes[0].gpus[0]
        node = cluster.nodes[0]
        src = gpu.memory.alloc(dt.extent)
        src.write(rng.random(dt.extent // 8))
        host = node.host_memory.alloc(dt.size)
        map_host_buffer(host, gpu)
        job = engine.pack_job(dt, 1, src)
        run(cluster, job.process_all(host, frag_bytes=8192))
        assert np.array_equal(host.bytes, pack_bytes(dt, 1, src.bytes))

    def test_unmapped_host_target_rejected(self, cluster, engine):
        dt = submatrix_type(32, 64)
        gpu = cluster.nodes[0].gpus[0]
        src = gpu.memory.alloc(dt.extent)
        host = cluster.nodes[0].host_memory.alloc(dt.size)
        job = engine.pack_job(dt, 1, src)
        proc = cluster.sim.spawn(job.process_all(host))
        cluster.sim.run()
        assert proc.failed

    def test_pack_into_peer_gpu(self, cluster, engine, rng):
        dt = submatrix_type(64, 128)
        g0, g1 = cluster.nodes[0].gpus
        src = g0.memory.alloc(dt.extent)
        src.write(rng.random(dt.extent // 8))
        remote = g1.memory.alloc(dt.size)
        job = engine.pack_job(dt, 1, src)
        run(cluster, job.process_all(remote, frag_bytes=8192))
        assert np.array_equal(remote.bytes, pack_bytes(dt, 1, src.bytes))

    @settings(max_examples=25, deadline=None)
    @given(dt=datatypes(), data=st.randoms())
    def test_random_datatypes_match_oracle(self, dt, data):
        from repro.hw.node import Cluster

        cluster = Cluster(1, 1)
        gpu = cluster.nodes[0].gpus[0]
        engine = GpuDatatypeEngine(gpu)
        rng = np.random.default_rng(data.randint(0, 2**31))
        size = max(dt.spans.true_ub, 1)
        src = gpu.memory.alloc(size + 16)
        src.bytes[:size] = rng.integers(0, 255, size, dtype=np.uint8)
        dst = gpu.memory.alloc(max(dt.size, 1))
        job = engine.pack_job(dt, 1, src)
        run(cluster, job.process_all(dst, frag_bytes=4096))
        assert np.array_equal(
            dst.bytes[: dt.size], reference_pack(dt, 1, src.bytes)
        )


class TestTimingBehaviour:
    def test_cached_job_skips_prep(self, cluster, engine):
        dt = lower_triangular_type(256)
        gpu = cluster.nodes[0].gpus[0]
        src = gpu.memory.alloc(dt.extent)
        dst = gpu.memory.alloc(dt.size)
        t0 = cluster.sim.now
        job = engine.pack_job(dt, 1, src, EngineOptions(use_cache=False))
        run(cluster, job.process_all(dst))
        uncached = cluster.sim.now - t0
        engine.warm_cache(dt, 1)
        t0 = cluster.sim.now
        job = engine.pack_job(dt, 1, src, EngineOptions(use_cache=True))
        run(cluster, job.process_all(dst))
        cached = cluster.sim.now - t0
        assert cached < uncached

    def test_pipeline_beats_no_pipeline(self, cluster, engine):
        dt = lower_triangular_type(2048)
        gpu = cluster.nodes[0].gpus[0]
        src = gpu.memory.alloc(dt.extent)
        dst = gpu.memory.alloc(dt.size)
        t0 = cluster.sim.now
        job = engine.pack_job(
            dt, 1, src, EngineOptions(use_cache=False, pipeline_prep=False)
        )
        run(cluster, job.process_all(dst, frag_bytes=2 << 20))
        plain = cluster.sim.now - t0
        t0 = cluster.sim.now
        job = engine.pack_job(
            dt, 1, src, EngineOptions(use_cache=False, pipeline_prep=True)
        )
        run(cluster, job.process_all(dst, frag_bytes=2 << 20))
        piped = cluster.sim.now - t0
        assert piped < plain

    def test_more_fragments_more_launches(self, cluster, engine):
        dt = submatrix_type(512, 1024)
        gpu = cluster.nodes[0].gpus[0]
        src = gpu.memory.alloc(dt.extent)
        dst = gpu.memory.alloc(dt.size)
        t0 = cluster.sim.now
        job = engine.pack_job(dt, 1, src)
        run(cluster, job.process_all(dst))
        one = cluster.sim.now - t0
        t0 = cluster.sim.now
        job = engine.pack_job(dt, 1, src)
        run(cluster, job.process_all(dst, frag_bytes=64 * 1024))
        many = cluster.sim.now - t0
        assert many > one  # launch overhead per fragment

    def test_small_buffer_rejected(self, cluster, engine):
        dt = submatrix_type(32, 64)
        gpu = cluster.nodes[0].gpus[0]
        src = gpu.memory.alloc(dt.extent)
        small = gpu.memory.alloc(dt.size // 2)
        job = engine.pack_job(dt, 1, src)
        proc = cluster.sim.spawn(job.process_all(small))
        cluster.sim.run()
        assert proc.failed
