"""Tests for DEV conversion and CUDA_DEV work-unit splitting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatype.ddt import indexed, vector
from repro.datatype.primitives import DOUBLE
from repro.gpu_engine.dev import DevList, to_devs
from repro.gpu_engine.work_units import UNIT_DESCRIPTOR_BYTES, WorkUnits, split_units
from tests.datatype.strategies import datatypes


class TestDevConversion:
    def test_vector_devs(self):
        dt = vector(4, 2, 5, DOUBLE).commit()
        devs = to_devs(dt)
        assert devs.count == 4
        assert devs.lens.tolist() == [16] * 4
        assert devs.src_disps.tolist() == [0, 40, 80, 120]
        assert devs.dst_disps.tolist() == [0, 16, 32, 48]

    def test_dst_is_prefix_sum(self):
        dt = indexed([3, 1, 2], [0, 4, 8], DOUBLE).commit()
        devs = to_devs(dt)
        assert devs.dst_disps.tolist() == [0, 24, 32]

    def test_total_bytes_matches_size(self):
        dt = indexed([3, 1, 2], [0, 4, 8], DOUBLE).commit()
        assert to_devs(dt, 3).total_bytes == dt.size * 3

    @settings(max_examples=40, deadline=None)
    @given(dt=datatypes(), count=st.integers(1, 3))
    def test_devs_relative_and_ordered(self, dt, count):
        devs = to_devs(dt, count)
        assert devs.total_bytes == dt.size * count
        # the packed stream is gapless: dst[i+1] = dst[i] + len[i]
        if devs.count > 1:
            assert (
                devs.dst_disps[1:] == devs.dst_disps[:-1] + devs.lens[:-1]
            ).all()


class TestUnitSplitting:
    def test_exact_multiples(self):
        devs = DevList(
            np.array([0, 100]), np.array([0, 64]), np.array([64, 32])
        )
        units = split_units(devs, 32)
        assert units.count == 3
        assert units.lens.tolist() == [32, 32, 32]
        assert units.src_disps.tolist() == [0, 32, 100]

    def test_residues(self):
        devs = DevList(np.array([0]), np.array([0]), np.array([100]))
        units = split_units(devs, 32)
        assert units.lens.tolist() == [32, 32, 32, 4]

    def test_packed_range(self):
        devs = DevList(np.array([0]), np.array([0]), np.array([100]))
        units = split_units(devs, 32)
        assert units.packed_range(0, 2) == (0, 64)
        assert units.packed_range(1, 4) == (32, 100)

    def test_packed_range_empty(self):
        devs = DevList(np.array([0]), np.array([0]), np.array([100]))
        units = split_units(devs, 32)  # 4 units: 32+32+32+4
        # empty at a valid unit: zero-length slice at that unit's start
        assert units.packed_range(2, 2) == (64, 64)
        # empty at one-past-the-end: zero-length slice at stream end
        assert units.packed_range(4, 4) == (100, 100)
        assert units.packed_range(0, 0) == (0, 0)

    def test_packed_range_rejects_bad_ranges(self):
        devs = DevList(np.array([0]), np.array([0]), np.array([100]))
        units = split_units(devs, 32)
        with pytest.raises(IndexError):
            units.packed_range(-1, 2)  # would index from the array's end
        with pytest.raises(IndexError):
            units.packed_range(3, 1)  # inverted
        with pytest.raises(IndexError):
            units.packed_range(0, 5)  # beyond the last unit
        with pytest.raises(IndexError):
            units.packed_range(5, 5)  # empty but out of bounds

    def test_packed_range_empty_units(self):
        z = np.empty(0, dtype=np.int64)
        units = split_units(DevList(z, z, z), 64)
        assert units.packed_range(0, 0) == (0, 0)

    def test_slice(self):
        devs = DevList(np.array([0]), np.array([0]), np.array([100]))
        units = split_units(devs, 32).slice(1, 3)
        assert units.lens.tolist() == [32, 32]

    def test_descriptor_bytes(self):
        devs = DevList(np.array([0]), np.array([0]), np.array([64]))
        assert split_units(devs, 32).descriptor_bytes == 2 * UNIT_DESCRIPTOR_BYTES

    def test_empty(self):
        z = np.empty(0, dtype=np.int64)
        assert split_units(DevList(z, z, z), 1024).count == 0

    def test_bad_unit_size_rejected(self):
        z = np.empty(0, dtype=np.int64)
        with pytest.raises(ValueError):
            split_units(DevList(z, z, z), 0)

    @settings(max_examples=60, deadline=None)
    @given(
        lens=st.lists(st.integers(1, 10_000), min_size=1, max_size=60),
        s=st.sampled_from([256, 1024, 4096]),
    )
    def test_split_invariants(self, lens, s):
        lens_arr = np.array(lens, dtype=np.int64)
        dst = np.concatenate([[0], np.cumsum(lens_arr)[:-1]])
        src = dst * 3 + 17  # arbitrary layout
        devs = DevList(src, dst, lens_arr)
        units = split_units(devs, s)
        # covers every byte exactly once
        assert units.total_bytes == devs.total_bytes
        assert (units.lens > 0).all() and (units.lens <= s).all()
        # units tile the packed stream contiguously
        assert (
            units.dst_disps[1:] == units.dst_disps[:-1] + units.lens[:-1]
        ).all()
        # unit count is what the paper's formula says
        assert units.count == int((-(-lens_arr // s)).sum())
        # src offsets advance by S inside each DEV
        rebuilt = units.src_disps - units.dst_disps
        dev_of = np.searchsorted(np.cumsum(lens_arr), units.dst_disps, "right")
        assert (rebuilt == (src - dst)[dev_of]).all()
