"""Tests for the CUDA_DEV cache (LRU, GPU-memory charge, eviction)."""

from __future__ import annotations

import pytest

from repro.datatype.ddt import indexed
from repro.datatype.primitives import DOUBLE
from repro.gpu_engine.cache import DevCache
from repro.workloads.matrices import lower_triangular_type


def tri(n: int):
    return lower_triangular_type(n)


class TestDevCache:
    def test_miss_then_hit(self, gpu):
        cache = DevCache(gpu)
        dt = tri(64)
        assert cache.get(dt, 1, 4096) is None
        units = cache.put(dt, 1, 4096)
        assert cache.get(dt, 1, 4096) is units
        assert cache.hits == 1 and cache.misses == 1

    def test_distinct_keys(self, gpu):
        cache = DevCache(gpu)
        dt = tri(64)
        cache.put(dt, 1, 4096)
        assert cache.get(dt, 2, 4096) is None
        assert cache.get(dt, 1, 1024) is None
        other = tri(32)
        assert cache.get(other, 1, 4096) is None

    def test_charges_gpu_memory(self, gpu):
        cache = DevCache(gpu)
        before = gpu.memory.bytes_in_use
        units = cache.put(tri(128), 1, 4096)
        assert gpu.memory.bytes_in_use >= before + units.descriptor_bytes - 256

    def test_put_idempotent(self, gpu):
        cache = DevCache(gpu)
        dt = tri(64)
        a = cache.put(dt, 1, 4096)
        before = gpu.memory.bytes_in_use
        b = cache.put(dt, 1, 4096)
        assert a is b and gpu.memory.bytes_in_use == before

    def test_lru_eviction_frees_memory(self, gpu):
        dt_a, dt_b = tri(256), tri(300)
        need = 0
        cache = DevCache(gpu, budget_bytes=8 * 1024)
        cache.put(dt_a, 1, 1024)
        used_after_a = cache.bytes_cached
        cache.put(dt_b, 1, 1024)  # should evict A (budget is tiny)
        assert cache.get(dt_a, 1, 1024) is None or cache.bytes_cached <= 8 * 1024
        assert len(cache) >= 1

    def test_precomputed_units_accepted(self, gpu):
        from repro.gpu_engine.dev import to_devs
        from repro.gpu_engine.work_units import split_units

        dt = tri(64)
        units = split_units(to_devs(dt, 1), 4096)
        cache = DevCache(gpu)
        assert cache.put(dt, 1, 4096, units=units) is units
