"""Tests for the CUDA_DEV cache (LRU, GPU-memory charge, eviction)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatype.ddt import indexed
from repro.datatype.primitives import DOUBLE
from repro.gpu_engine.cache import DevCache
from repro.workloads.matrices import lower_triangular_type


def tri(n: int):
    return lower_triangular_type(n)


class TestDevCache:
    def test_miss_then_hit(self, gpu):
        cache = DevCache(gpu)
        dt = tri(64)
        assert cache.get(dt, 1, 4096) is None
        units = cache.put(dt, 1, 4096)
        assert cache.get(dt, 1, 4096) is units
        assert cache.hits == 1 and cache.misses == 1

    def test_distinct_keys(self, gpu):
        cache = DevCache(gpu)
        dt = tri(64)
        cache.put(dt, 1, 4096)
        assert cache.get(dt, 2, 4096) is None
        assert cache.get(dt, 1, 1024) is None
        other = tri(32)
        assert cache.get(other, 1, 4096) is None

    def test_charges_gpu_memory(self, gpu):
        cache = DevCache(gpu)
        before = gpu.memory.bytes_in_use
        units = cache.put(tri(128), 1, 4096)
        assert gpu.memory.bytes_in_use >= before + units.descriptor_bytes - 256

    def test_put_idempotent(self, gpu):
        cache = DevCache(gpu)
        dt = tri(64)
        a = cache.put(dt, 1, 4096)
        before = gpu.memory.bytes_in_use
        b = cache.put(dt, 1, 4096)
        assert a is b and gpu.memory.bytes_in_use == before

    def test_lru_eviction_frees_memory(self, gpu):
        # budget admits either descriptor alone (9216 B / 12384 B) but
        # not both, so the second put must evict the first
        dt_a, dt_b = tri(256), tri(300)
        cache = DevCache(gpu, budget_bytes=14 * 1024)
        before = gpu.memory.bytes_in_use
        cache.put(dt_a, 1, 1024)
        used_after_a = cache.bytes_cached
        assert used_after_a > 0
        cache.put(dt_b, 1, 1024)  # evicts A
        assert cache.evictions == 1
        assert len(cache) == 1
        assert cache.bytes_cached <= 14 * 1024
        assert cache.resident_bytes == cache.bytes_cached
        # A's device memory was actually freed
        assert gpu.memory.bytes_in_use <= before + 14 * 1024
        assert cache.get(dt_a, 1, 1024) is None

    def test_precomputed_units_accepted(self, gpu):
        from repro.gpu_engine.dev import to_devs
        from repro.gpu_engine.work_units import split_units

        dt = tri(64)
        units = split_units(to_devs(dt, 1), 4096)
        cache = DevCache(gpu)
        assert cache.put(dt, 1, 4096, units=units) is units


class TestCacheAccounting:
    """Regression tests for the bytes_cached bookkeeping bugs."""

    def test_oversized_entry_refused_uncached(self, gpu):
        # an entry larger than the whole budget used to be inserted
        # *uncharged*; a later eviction then drove bytes_cached negative
        dt = tri(300)  # 12384 B descriptor
        cache = DevCache(gpu, budget_bytes=4 * 1024)
        units = cache.put(dt, 1, 1024)
        assert units is not None  # caller still gets its work units
        assert len(cache) == 0 and cache.bytes_cached == 0
        assert cache.rejected_oversized == 1
        assert cache.get(dt, 1, 1024) is None  # it was never resident

    def test_oversized_then_churn_never_negative(self, gpu):
        cache = DevCache(gpu, budget_bytes=14 * 1024)
        cache.put(tri(300), 1, 1024)  # fits (12384 B)
        cache.put(tri(512), 1, 1024)  # oversized: refused
        cache.put(tri(256), 1, 1024)  # fits (9216 B) -> evicts tri(300)
        assert 0 <= cache.bytes_cached <= cache.budget_bytes
        assert cache.resident_bytes == cache.bytes_cached
        assert cache.evictions == 1 and cache.rejected_oversized == 1

    def test_put_on_resident_key_counts_put_resident(self, gpu):
        # put() finding the key resident used to bump the same counter as
        # get() hits, so pre-populating (warm_cache, double inserts)
        # inflated the observed hit rate; it is its own counter now and
        # hits/misses stay lookup-only
        cache = DevCache(gpu)
        dt = tri(64)
        first = cache.put(dt, 1, 4096)
        assert cache.hits == 0  # fresh insert: not a lookup
        again = cache.put(dt, 1, 4096)
        assert again is first
        assert cache.hits == 0 and cache.misses == 0
        assert cache.put_resident == 1
        assert cache.get(dt, 1, 4096) is first  # real lookups still count
        assert cache.hits == 1

    def test_stats_snapshot_consistent(self, gpu):
        cache = DevCache(gpu, budget_bytes=14 * 1024)
        dt = tri(64)
        cache.get(dt, 1, 4096)  # miss
        cache.put(dt, 1, 4096)
        cache.put(dt, 1, 4096)  # resident pre-populate: not a hit
        cache.get(dt, 1, 4096)  # hit
        s = cache.stats()
        assert s.hits == 1 and s.misses == 1 and s.insertions == 1
        assert s.put_resident == 1
        assert s.bytes_cached == cache.bytes_cached
        assert s.budget_bytes == 14 * 1024
        assert s.hit_rate == pytest.approx(0.5)
        assert s.to_dict()["put_resident"] == 1

    def test_structurally_identical_types_share_entry(self, gpu):
        # the cache keys on canonical structure, not object identity: a
        # second, separately constructed identical type must hit
        cache = DevCache(gpu)
        units = cache.put(tri(64), 1, 4096)
        assert cache.get(tri(64), 1, 4096) is units
        assert cache.hits == 1 and cache.misses == 0
        assert len(cache) == 1

    def test_invariant_raises_if_corrupted(self, gpu):
        from repro.gpu_engine.cache import CacheInvariantError

        cache = DevCache(gpu, budget_bytes=14 * 1024)
        cache.put(tri(64), 1, 4096)
        cache.bytes_cached = -1
        with pytest.raises(CacheInvariantError):
            cache._check_invariant()


class TestCacheProperty:
    """bytes_cached always equals the resident entries' footprint."""

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from([16, 24, 32, 48, 64, 128, 300]),
                st.integers(min_value=1, max_value=3),
            ),
            min_size=1,
            max_size=30,
        ),
        budget_kb=st.sampled_from([2, 8, 14, 64]),
    )
    @settings(max_examples=40, deadline=None)
    def test_accounting_matches_residency(self, ops, budget_kb):
        from repro.hw.node import Cluster

        gpu = Cluster(1, 1).nodes[0].gpus[0]
        cache = DevCache(gpu, budget_bytes=budget_kb * 1024)
        types = {}
        for n, count in ops:
            dt = types.setdefault(n, tri(n))
            cache.put(dt, count, 4096)
            assert 0 <= cache.bytes_cached <= cache.budget_bytes
            assert cache.bytes_cached == cache.resident_bytes
        # counters never go negative and lookups reconcile
        assert cache.hits >= 0 and cache.misses >= 0
        assert cache.evictions + len(cache) + cache.rejected_oversized <= len(ops) + len(cache)
