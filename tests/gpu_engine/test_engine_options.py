"""Engine option coverage: zero-copy unpack, grids, forced DEV path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cuda.uma import map_host_buffer
from repro.datatype.convertor import pack_bytes
from repro.gpu_engine.engine import EngineOptions, GpuDatatypeEngine
from repro.workloads.matrices import lower_triangular_type, submatrix_type


@pytest.fixture
def setup(cluster):
    gpu = cluster.nodes[0].gpus[0]
    return cluster, gpu, GpuDatatypeEngine(gpu)


def run(cluster, coro):
    return cluster.sim.run_until_complete(cluster.sim.spawn(coro))


class TestZeroCopyUnpack:
    def test_unpack_from_mapped_host(self, setup, rng):
        cluster, gpu, engine = setup
        dt = lower_triangular_type(64)
        packed_np = rng.integers(0, 255, dt.size, dtype=np.uint8)
        host = cluster.nodes[0].host_memory.alloc(dt.size)
        host.bytes[:] = packed_np
        map_host_buffer(host, gpu)
        out = gpu.memory.alloc(dt.extent)
        job = engine.unpack_job(dt, 1, out)
        run(cluster, job.process_all(host, frag_bytes=4096))
        assert np.array_equal(pack_bytes(dt, 1, out.bytes), packed_np)

    def test_zero_copy_charges_pcie(self, setup, rng):
        cluster, gpu, engine = setup
        dt = submatrix_type(256, 512)
        src = gpu.memory.alloc(dt.extent)
        host = cluster.nodes[0].host_memory.alloc(dt.size)
        map_host_buffer(host, gpu)
        before = gpu.d2h_link.bytes_transferred
        job = engine.pack_job(dt, 1, src)
        run(cluster, job.process_all(host))
        assert gpu.d2h_link.bytes_transferred - before >= dt.size


class TestGridOption:
    def test_small_grid_is_slower(self, setup):
        cluster, gpu, engine = setup
        dt = submatrix_type(512, 1024)
        src = gpu.memory.alloc(dt.extent)
        dst = gpu.memory.alloc(dt.size)

        def timed(grid):
            t0 = cluster.sim.now
            job = engine.pack_job(dt, 1, src, EngineOptions(grid_blocks=grid))
            run(cluster, job.process_all(dst))
            return cluster.sim.now - t0

        assert timed(1) > timed(120) * 2


class TestForcedDevPath:
    def test_same_bytes_slower_time(self, setup, rng):
        cluster, gpu, engine = setup
        dt = submatrix_type(256, 512)
        src = gpu.memory.alloc(dt.extent)
        src.write(rng.random(dt.extent // 8))
        dst = gpu.memory.alloc(dt.size)

        t0 = cluster.sim.now
        job = engine.pack_job(dt, 1, src, EngineOptions())
        run(cluster, job.process_all(dst))
        vec_time = cluster.sim.now - t0
        vec_bytes = dst.bytes.copy()

        dst.fill(0)
        t0 = cluster.sim.now
        job = engine.pack_job(
            dt, 1, src, EngineOptions(force_dev_path=True, use_cache=False)
        )
        run(cluster, job.process_all(dst))
        dev_time = cluster.sim.now - t0
        assert np.array_equal(dst.bytes, vec_bytes)
        # the generic path pays DEV preparation; the specialized one doesn't
        assert dev_time > vec_time


class TestDegenerateMessages:
    def test_empty_fragments_list(self, setup):
        cluster, gpu, engine = setup
        from repro.datatype.ddt import contiguous
        from repro.datatype.primitives import DOUBLE

        dt = contiguous(0, DOUBLE).commit()
        src = gpu.memory.alloc(256)
        job = engine.pack_job(dt, 1, src)
        assert job.fragments(4096) == []
        assert job.total_bytes == 0

    def test_single_element(self, setup, rng):
        cluster, gpu, engine = setup
        from repro.datatype.ddt import contiguous
        from repro.datatype.primitives import DOUBLE

        dt = contiguous(1, DOUBLE).commit()
        src = gpu.memory.alloc(256)
        src.write(rng.random(1))
        dst = gpu.memory.alloc(256)
        job = engine.pack_job(dt, 1, src)
        run(cluster, job.process_all(dst[:8]))
        assert np.array_equal(dst.bytes[:8], src.bytes[:8])
