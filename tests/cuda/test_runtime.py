"""Tests for the CUDA-runtime facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cuda.runtime import CudaContext, MemcpyKind


@pytest.fixture
def ctx(cluster):
    return CudaContext(cluster.nodes[0].gpus[0])


class TestMemcpy:
    def test_kind_inference(self, cluster, ctx):
        dev = ctx.malloc(64)
        host = ctx.malloc_host(64)
        assert ctx.infer_kind(dev, dev) is MemcpyKind.D2D
        assert ctx.infer_kind(host, dev) is MemcpyKind.D2H
        assert ctx.infer_kind(dev, host) is MemcpyKind.H2D
        assert ctx.infer_kind(host, host) is MemcpyKind.H2H

    def test_default_kind_moves_data(self, cluster, ctx, rng):
        a = ctx.malloc(512)
        h = ctx.malloc_host(512)
        a.write(rng.random(64))
        ctx.memcpy(h, a)
        cluster.sim.run()
        assert np.array_equal(h.bytes, a.bytes)

    def test_cross_gpu_d2d(self, cluster, rng):
        g0, g1 = cluster.nodes[0].gpus
        c0 = CudaContext(g0)
        a = g0.memory.alloc(256)
        b = g1.memory.alloc(256)
        a.write(rng.random(32))
        c0.memcpy(b, a)
        cluster.sim.run()
        assert np.array_equal(a.bytes, b.bytes)

    def test_h2h_goes_through_cpu(self, cluster, ctx, rng):
        a = ctx.malloc_host(256)
        b = ctx.malloc_host(256)
        a.write(rng.random(32))
        ctx.memcpy(b, a)
        cluster.sim.run()
        assert np.array_equal(a.bytes, b.bytes)
        assert cluster.nodes[0].cpu_memcpy_engine.transfers == 1


class TestMemcpy2D:
    def test_strided_gather(self, cluster, ctx, rng):
        # 10 rows of 16 bytes with a 32-byte pitch
        src = ctx.malloc(10 * 32)
        dst = ctx.malloc(160)
        data = rng.integers(0, 255, 320, dtype=np.uint8)
        src.bytes[:] = data
        ctx.memcpy2d(dst, 16, src, 32, width=16, height=10)
        cluster.sim.run()
        expect = np.concatenate([data[r * 32 : r * 32 + 16] for r in range(10)])
        assert np.array_equal(dst.bytes, expect)

    def test_scatter_into_pitched_destination(self, cluster, ctx, rng):
        src = ctx.malloc(160)
        dst = ctx.malloc(10 * 32)
        data = rng.integers(0, 255, 160, dtype=np.uint8)
        src.bytes[:] = data
        dst.fill(0)
        ctx.memcpy2d(dst, 32, src, 16, width=16, height=10)
        cluster.sim.run()
        for r in range(10):
            row = dst.bytes[r * 32 : r * 32 + 32]
            assert np.array_equal(row[:16], data[r * 16 : (r + 1) * 16])
            assert (row[16:] == 0).all()

    def test_full_width_fast_path(self, cluster, ctx, rng):
        src = ctx.malloc(256)
        dst = ctx.malloc(256)
        src.write(rng.random(32))
        ctx.memcpy2d(dst, 16, src, 16, width=16, height=16)
        cluster.sim.run()
        assert np.array_equal(src.bytes, dst.bytes)

    def test_width_exceeding_pitch_rejected(self, cluster, ctx):
        b = ctx.malloc(256)
        with pytest.raises(ValueError):
            ctx.memcpy2d(b, 8, b, 8, width=16, height=2)

    def test_source_too_small_rejected(self, cluster, ctx):
        small = ctx.malloc(16)
        big = ctx.malloc(256)
        with pytest.raises(ValueError):
            ctx.memcpy2d(big, 32, small, 32, width=16, height=4)


class TestEvents:
    def test_event_completes_with_stream(self, cluster, ctx):
        s = ctx.stream("s")
        s.enqueue(2e-3)
        ev = ctx.event().record(s)
        assert not ev.complete
        cluster.sim.run()
        assert ev.complete and cluster.sim.now == pytest.approx(2e-3)

    def test_unrecorded_event_rejected(self, cluster, ctx):
        with pytest.raises(RuntimeError):
            ctx.event().synchronize()
