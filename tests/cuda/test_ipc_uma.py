"""Tests for CUDA IPC handles and UMA zero-copy mapping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cuda.ipc import IpcMemHandle
from repro.cuda.uma import (
    is_mapped_host,
    map_host_buffer,
    mapped_gpu,
    unmap_host_buffer,
)


class TestIpc:
    def test_handle_requires_device_memory(self, cluster):
        host = cluster.nodes[0].host_memory.alloc(64)
        with pytest.raises(ValueError):
            IpcMemHandle.get(host)

    def test_mapped_buffer_aliases_bytes(self, cluster, rng):
        g0, g1 = cluster.nodes[0].gpus
        src = g0.memory.alloc(256)
        src.write(rng.random(32))
        handle = IpcMemHandle.get(src)
        fut = handle.open(g1)
        cluster.sim.run()
        mapped = fut.value
        assert np.array_equal(mapped.bytes, src.bytes)
        mapped.bytes[0] = 255
        assert src.bytes[0] == 255

    def test_first_open_pays_registration(self, cluster):
        g0, g1 = cluster.nodes[0].gpus
        src = g0.memory.alloc(64)
        handle = IpcMemHandle.get(src)
        handle.open(g1, registration_cache={})
        cluster.sim.run()
        assert cluster.sim.now == pytest.approx(
            cluster.params.ipc_registration_cost
        )

    def test_cached_open_is_free(self, cluster):
        g0, g1 = cluster.nodes[0].gpus
        src = g0.memory.alloc(64)
        handle = IpcMemHandle.get(src)
        cache: dict = {}
        handle.open(g1, cache)
        cluster.sim.run()
        t = cluster.sim.now
        fut = handle.open(g1, cache)
        assert fut.done  # immediate
        cluster.sim.run()
        assert cluster.sim.now == t

    def test_source_gpu_recorded(self, cluster):
        g0 = cluster.nodes[0].gpus[0]
        handle = IpcMemHandle.get(g0.memory.alloc(64))
        assert handle.source_gpu is g0


class TestUma:
    def test_mapping_round_trip(self, cluster):
        gpu = cluster.nodes[0].gpus[0]
        buf = cluster.nodes[0].host_memory.alloc(1024)
        assert not is_mapped_host(buf)
        map_host_buffer(buf, gpu)
        assert is_mapped_host(buf)
        assert mapped_gpu(buf) is gpu
        unmap_host_buffer(buf)
        assert not is_mapped_host(buf)

    def test_sub_buffers_inherit_mapping(self, cluster):
        gpu = cluster.nodes[0].gpus[0]
        buf = cluster.nodes[0].host_memory.alloc(1024)
        map_host_buffer(buf, gpu)
        assert is_mapped_host(buf[128:256])
        unmap_host_buffer(buf)

    def test_device_memory_not_mappable(self, cluster):
        gpu = cluster.nodes[0].gpus[0]
        with pytest.raises(ValueError):
            map_host_buffer(gpu.memory.alloc(64), gpu)

    def test_unmap_unmapped_rejected(self, cluster):
        buf = cluster.nodes[0].host_memory.alloc(64)
        with pytest.raises(ValueError):
            unmap_host_buffer(buf)

    def test_mapped_gpu_unmapped_rejected(self, cluster):
        buf = cluster.nodes[0].host_memory.alloc(64)
        with pytest.raises(ValueError):
            mapped_gpu(buf)
