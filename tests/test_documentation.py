"""Meta-tests: documentation and packaging hygiene.

Deliverable (e) requires doc comments on every public item; this test
walks the package and fails on any undocumented public module, class, or
function, so the guarantee can't rot.
"""

from __future__ import annotations

import importlib
import inspect
import pathlib
import pkgutil

import pytest

import repro

PACKAGE_ROOT = pathlib.Path(repro.__file__).parent


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


class TestDocstrings:
    def test_every_module_documented(self):
        missing = [
            m.__name__
            for m in ALL_MODULES
            if not (m.__doc__ or "").strip() and not m.__name__.endswith("__main__")
        ]
        assert not missing, f"undocumented modules: {missing}"

    def test_every_public_class_documented(self):
        missing = []
        for mod in ALL_MODULES:
            for name, obj in vars(mod).items():
                if name.startswith("_") or not inspect.isclass(obj):
                    continue
                if obj.__module__ != mod.__name__:
                    continue  # re-export
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{mod.__name__}.{name}")
        assert not missing, f"undocumented classes: {missing}"

    def test_every_public_function_documented(self):
        missing = []
        for mod in ALL_MODULES:
            for name, obj in vars(mod).items():
                if name.startswith("_") or not inspect.isfunction(obj):
                    continue
                if obj.__module__ != mod.__name__:
                    continue
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{mod.__name__}.{name}")
        assert not missing, f"undocumented functions: {missing}"

    def test_public_methods_documented(self):
        """Public methods of public classes carry docstrings."""
        missing = []
        allow = {"__init__", "__repr__", "__len__", "__getitem__", "__post_init__"}
        for mod in ALL_MODULES:
            for cname, cls in vars(mod).items():
                if cname.startswith("_") or not inspect.isclass(cls):
                    continue
                if cls.__module__ != mod.__name__:
                    continue
                for mname, meth in vars(cls).items():
                    if mname.startswith("_") or mname in allow:
                        continue
                    if not inspect.isfunction(meth):
                        continue
                    if not (meth.__doc__ or "").strip():
                        missing.append(f"{mod.__name__}.{cname}.{mname}")
        # properties and trivial accessors are exempt by construction;
        # anything that shows up here needs a sentence
        assert not missing, f"undocumented methods: {missing}"


class TestRepoLayout:
    def test_required_documents_exist(self):
        root = PACKAGE_ROOT.parent.parent
        for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            assert (root / doc).exists(), f"{doc} missing"
        assert (root / "docs" / "ARCHITECTURE.md").exists()
        assert (root / "docs" / "PROTOCOLS.md").exists()

    def test_every_figure_has_a_benchmark(self):
        root = PACKAGE_ROOT.parent.parent
        names = {p.name for p in (root / "benchmarks").glob("test_*.py")}
        for fig in ("fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
                    "sec53", "sec54"):
            assert any(fig in n for n in names), f"no benchmark for {fig}"
