"""Tests for simulated memory arenas and buffer handles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw.memory import Buffer, Memory, MemoryKind, OutOfMemory


@pytest.fixture
def mem() -> Memory:
    return Memory("test", 1 << 20, MemoryKind.DEVICE)


class TestAllocation:
    def test_alloc_and_use(self, mem):
        buf = mem.alloc(100)
        assert buf.nbytes == 100
        buf.fill(7)
        assert (buf.bytes == 7).all()

    def test_alignment_rounding(self, mem):
        mem.alloc(1)
        assert mem.bytes_in_use == Memory.ALIGNMENT

    def test_oom(self, mem):
        mem.alloc(1 << 19)
        mem.alloc(1 << 19)
        with pytest.raises(OutOfMemory):
            mem.alloc(1)

    def test_free_returns_capacity(self, mem):
        buf = mem.alloc(1 << 19)
        buf.free()
        assert mem.bytes_in_use == 0
        mem.alloc(1 << 20)  # whole capacity available again

    def test_double_free_rejected(self, mem):
        buf = mem.alloc(64)
        buf.free()
        with pytest.raises(ValueError):
            buf.free()

    def test_use_after_free_rejected(self, mem):
        buf = mem.alloc(64)
        buf.free()
        with pytest.raises(ValueError, match="use after free"):
            _ = buf.bytes
        # under REPRO_SANITIZE the memory sanitizer records the same
        # event; assert it did, then scrub the intentional violation so
        # the session-level zero-violation check stays meaningful
        from repro import sanitize
        from repro.sanitize import runtime as _san

        if _san.MEM is not None:
            rep = sanitize.report()
            assert any(
                v.code == "mem.use_after_free" for v in rep.violations
            )
            rep.violations[:] = [
                v for v in rep.violations if v.code != "mem.use_after_free"
            ]

    def test_zero_alloc_rejected(self, mem):
        with pytest.raises(ValueError):
            mem.alloc(0)

    def test_odd_size_alloc_free_balances(self, mem):
        # in-use accounting charges and refunds the same rounded size:
        # an odd-sized allocation must return the arena to exactly zero
        buf = mem.alloc(1000)  # not a multiple of ALIGNMENT
        rounded = -(-1000 // Memory.ALIGNMENT) * Memory.ALIGNMENT
        assert mem.bytes_in_use == rounded
        buf.free()
        assert mem.bytes_in_use == 0

    def test_subbuffer_free_rejected(self, mem):
        buf = mem.alloc(256)
        sub = buf[0:64]
        with pytest.raises(ValueError, match="sub-buffer"):
            sub.free()
        # the allocation is still live and fully usable
        buf.fill(3)
        assert (sub.bytes == 3).all()
        buf.free()
        assert mem.bytes_in_use == 0

    def test_peak_tracking(self, mem):
        a = mem.alloc(1024)
        b = mem.alloc(1024)
        a.free()
        b.free()
        assert mem.peak_bytes_in_use == 2048
        assert mem.bytes_in_use == 0

    def test_kind_predicates(self):
        dev = Memory("d", 1024, MemoryKind.DEVICE)
        host = Memory("h", 1024, MemoryKind.HOST)
        assert dev.alloc(16).is_device and not dev.alloc(16).is_host
        assert host.alloc(16).is_host and not host.alloc(16).is_device


class TestBuffer:
    def test_slicing_aliases_bytes(self, mem):
        buf = mem.alloc(256)
        buf.fill(0)
        sub = buf[16:32]
        sub.fill(9)
        assert (buf.bytes[16:32] == 9).all()
        assert (buf.bytes[:16] == 0).all()

    def test_slice_of_slice(self, mem):
        buf = mem.alloc(256)
        sub = buf[100:200][10:20]
        assert sub.offset == buf.offset + 110
        assert sub.nbytes == 10

    def test_step_slices_rejected(self, mem):
        with pytest.raises(TypeError):
            _ = mem.alloc(64)[::2]

    def test_view_roundtrip(self, mem, rng):
        buf = mem.alloc(800)
        data = rng.random(100)
        buf.write(data)
        assert np.array_equal(buf.view("f8")[:100], data)

    def test_view_size_mismatch_rejected(self, mem):
        buf = mem.alloc(10)
        with pytest.raises(ValueError):
            buf.view("f8")

    def test_write_overrun_rejected(self, mem):
        buf = mem.alloc(8)
        with pytest.raises(ValueError):
            buf.write(np.zeros(2, dtype="f8"))

    def test_read_copies(self, mem):
        buf = mem.alloc(64)
        buf.write(np.arange(8, dtype="f8"))
        out = buf.read("f8", 8)
        buf.fill(0)
        assert np.array_equal(out, np.arange(8))

    def test_split_covers_buffer(self, mem):
        buf = mem.alloc(100)
        parts = list(buf.split(30))
        assert [p.nbytes for p in parts] == [30, 30, 30, 10]
        assert parts[0].offset == buf.offset
        assert parts[-1].offset == buf.offset + 90

    def test_out_of_range_construction_rejected(self, mem):
        buf = mem.alloc(64)
        with pytest.raises(ValueError):
            Buffer(buf.allocation, 0, buf.allocation.nbytes + 1)

    def test_len(self, mem):
        assert len(mem.alloc(33)) == 33
