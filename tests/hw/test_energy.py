"""Tests for the dynamic-energy extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw.energy import PowerRatings, energy_report
from repro.hw.node import Cluster
from repro.mpi.config import MpiConfig
from repro.mpi.world import MpiWorld
from repro.sim.trace import Tracer
from repro.workloads.matrices import submatrix_type


class TestRatings:
    def test_classification(self):
        r = PowerRatings()
        assert r.classify("node0.gpu0.dtengine.r0") == r.gpu_kernel
        # the copy-engine resource echoes stream-billed work: zero-rated
        assert r.classify("node0.gpu0.ce") == 0.0
        assert r.classify("node0.gpu0.stream0") == r.gpu_dma
        assert r.classify("node0.pcie.h2d.node0.gpu0") == r.pcie
        assert r.classify("ib.node0->node1") == r.nic
        assert r.classify("node0.cpu_pack") == r.cpu_core
        assert r.classify("node0.shmem") == r.shmem


class TestReport:
    def test_energy_is_power_times_busy(self):
        t = Tracer()
        t.record("node0.cpu_pack", 0.0, 2.0, "pack")
        rep = energy_report(t)
        assert rep.per_resource["node0.cpu_pack"] == pytest.approx(
            2.0 * PowerRatings().cpu_core
        )

    def test_render_contains_total(self):
        t = Tracer()
        t.record("node0.cpu_pack", 0.0, 1.0, "pack")
        assert "total" in energy_report(t).render()


class TestPaperClaim:
    def test_gpu_engine_uses_less_energy_than_cpu_pack(self, rng):
        """Section 1's qualitative claim: offloading pack/unpack to the
        GPU lowers the energy of a non-contiguous transfer, because the
        CPU's seconds-long pack burns more than the GPU's milliseconds."""

        def transfer_energy(use_gpu: bool) -> float:
            cluster = Cluster(1, 2, trace=True)
            if use_gpu:
                world = MpiWorld(cluster, [(0, 0), (0, 1)])
            else:
                world = MpiWorld(cluster, [(0, None), (0, None)])
            n, ld = 1024, 1536
            V = submatrix_type(n, ld)
            if use_gpu:
                b0 = world.procs[0].ctx.malloc(ld * ld * 8)
                b1 = world.procs[1].ctx.malloc(ld * ld * 8)
            else:
                b0 = world.procs[0].node.host_memory.alloc(ld * ld * 8)
                b1 = world.procs[1].node.host_memory.alloc(ld * ld * 8)
            b0.write(rng.random(ld * ld))

            def s(mpi):
                yield mpi.send(b0, V, 1, dest=1, tag=0)

            def r(mpi):
                yield mpi.recv(b1, V, 1, source=0, tag=0)

            world.run([s, r])
            cluster.tracer.clear()
            world.run([s, r])
            return energy_report(cluster.tracer).total_joules

        e_gpu = transfer_energy(True)
        e_cpu = transfer_energy(False)
        assert e_gpu < e_cpu, f"GPU {e_gpu:.4f}J vs CPU {e_cpu:.4f}J"
