"""Tests for the GPU model: streams, copies, and the kernel cost model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.node import Cluster
from repro.hw.params import GpuParams


class TestStreams:
    def test_ops_on_one_stream_serialize(self, cluster):
        gpu = cluster.nodes[0].gpus[0]
        s = gpu.stream("s")
        s.enqueue(1e-3, label="a")
        fut = s.enqueue(1e-3, label="b")
        cluster.sim.run()
        assert cluster.sim.now == pytest.approx(2e-3)
        assert fut.done

    def test_different_streams_overlap(self, cluster):
        gpu = cluster.nodes[0].gpus[0]
        gpu.stream("s1").enqueue(1e-3)
        gpu.stream("s2").enqueue(1e-3)
        cluster.sim.run()
        assert cluster.sim.now == pytest.approx(1e-3)

    def test_co_links_serialize_across_streams(self, cluster):
        gpu = cluster.nodes[0].gpus[0]
        link = gpu.copy_engine
        gpu.stream("s1").enqueue(1e-3, co_links=(link,))
        gpu.stream("s2").enqueue(1e-3, co_links=(link,))
        cluster.sim.run()
        assert cluster.sim.now == pytest.approx(2e-3)

    def test_synchronize_waits_for_queued_work(self, cluster):
        gpu = cluster.nodes[0].gpus[0]
        s = gpu.stream("s")
        s.enqueue(5e-3)
        fut = s.synchronize()
        cluster.sim.run()
        assert fut.done and cluster.sim.now == pytest.approx(5e-3)

    def test_fn_runs_at_completion(self, cluster):
        gpu = cluster.nodes[0].gpus[0]
        seen = []
        gpu.default_stream.enqueue(1e-3, fn=lambda: seen.append(cluster.sim.now))
        cluster.sim.run()
        assert seen == [pytest.approx(1e-3)]

    def test_negative_duration_rejected(self, cluster):
        gpu = cluster.nodes[0].gpus[0]
        with pytest.raises(ValueError):
            gpu.default_stream.enqueue(-1.0)


class TestCopies:
    def test_d2d_moves_bytes(self, cluster, rng):
        gpu = cluster.nodes[0].gpus[0]
        a = gpu.memory.alloc(1024)
        b = gpu.memory.alloc(1024)
        a.write(rng.random(128))
        gpu.memcpy_d2d(b, a)
        cluster.sim.run()
        assert np.array_equal(a.bytes, b.bytes)

    def test_d2h_h2d_roundtrip(self, cluster, rng):
        node = cluster.nodes[0]
        gpu = node.gpus[0]
        dev = gpu.memory.alloc(1024)
        host = node.host_memory.alloc(1024)
        back = gpu.memory.alloc(1024)
        dev.write(rng.random(128))
        gpu.memcpy_d2h(host, dev)
        cluster.sim.run()
        gpu.memcpy_h2d(back, host)
        cluster.sim.run()
        assert np.array_equal(dev.bytes, back.bytes)

    def test_peer_copy_moves_bytes(self, cluster, rng):
        g0, g1 = cluster.nodes[0].gpus
        a = g0.memory.alloc(512)
        b = g1.memory.alloc(512)
        a.write(rng.random(64))
        g0.memcpy_peer(b, a, g1)
        cluster.sim.run()
        assert np.array_equal(a.bytes, b.bytes)

    def test_peer_without_path_rejected(self, two_node_cluster):
        g0 = two_node_cluster.nodes[0].gpus[0]
        g1 = two_node_cluster.nodes[1].gpus[0]
        a = g0.memory.alloc(64)
        b = g1.memory.alloc(64)
        with pytest.raises(RuntimeError):
            g0.memcpy_peer(b, a, g1)

    def test_destination_too_small_rejected(self, cluster):
        gpu = cluster.nodes[0].gpus[0]
        a = gpu.memory.alloc(128)
        b = gpu.memory.alloc(64)
        with pytest.raises(ValueError):
            gpu.memcpy_d2d(b, a)

    def test_d2h_charges_pcie(self, cluster):
        node = cluster.nodes[0]
        gpu = node.gpus[0]
        dev = gpu.memory.alloc(1 << 20)
        host = node.host_memory.alloc(1 << 20)
        gpu.memcpy_d2h(host, dev)
        cluster.sim.run()
        lp = node.params.pcie_d2h
        expect = lp.overhead + (1 << 20) / lp.bandwidth + lp.latency
        assert cluster.sim.now == pytest.approx(expect)


class TestKernelCostModel:
    def test_vector_kernel_efficiency_near_peak(self, gpu):
        # 32 KiB rows: perfectly warp-aligned
        st_ = gpu.vector_kernel_stats(count=4000, blocklength_bytes=32768)
        bw = st_.payload_bytes / st_.total_time
        assert 0.90 <= bw / gpu.params.copy_peak_bw <= 0.95

    def test_triangular_units_pay_occupancy(self, gpu):
        lens = np.arange(1, 4001) * 8
        units = []
        s = gpu.params.dev_unit_size
        for l in lens:
            full, res = divmod(int(l), s)
            units.extend([s] * full)
            if res:
                units.append(res)
        st_ = gpu.dev_kernel_stats(np.array(units))
        # effective bandwidth lands at the paper's ~80% of cudaMemcpy peak
        bw = st_.payload_bytes / st_.total_time
        assert 0.75 <= bw / gpu.params.copy_peak_bw <= 0.85

    def test_block_aligned_units_full_efficiency(self, gpu):
        s = gpu.params.threads_per_block * gpu.params.bytes_per_thread
        st_ = gpu.dev_kernel_stats(np.full(1000, s))
        assert st_.efficiency == 1.0

    def test_empty_units(self, gpu):
        st_ = gpu.dev_kernel_stats(np.empty(0, dtype=np.int64))
        assert st_.payload_bytes == 0
        assert st_.total_time == pytest.approx(gpu.params.kernel_launch_overhead)

    def test_grid_throttling_reduces_bandwidth(self, gpu):
        assert gpu.kernel_bandwidth(1) < gpu.kernel_bandwidth(8)
        assert gpu.kernel_bandwidth(120) <= (
            gpu.params.copy_peak_bw * gpu.params.kernel_peak_fraction
        )

    def test_contention_scales_bandwidth(self, gpu):
        full = gpu.kernel_bandwidth()
        gpu.contention = 0.5
        assert gpu.kernel_bandwidth() == pytest.approx(full * 0.5)
        gpu.contention = 0.0

    def test_misaligned_vector_pays_extra(self, gpu):
        good = gpu.vector_kernel_stats(1000, 256, aligned=True)
        bad = gpu.vector_kernel_stats(1000, 256, aligned=False)
        assert bad.total_time > good.total_time

    def test_memcpy2d_misalignment_penalty(self, gpu):
        aligned = gpu.memcpy2d_time(192, 1000, over_pcie=True, pcie_bw=10e9)
        misaligned = gpu.memcpy2d_time(196, 1000, over_pcie=True, pcie_bw=10e9)
        # ~same bytes but off the 64B fast path
        assert misaligned > aligned * 1.2
        # per-byte regression is even clearer
        assert misaligned / 196 > (aligned / 192) * 1.2

    @settings(max_examples=50, deadline=None)
    @given(
        lens=st.lists(st.integers(1, 1 << 16), min_size=1, max_size=100),
        grid=st.integers(1, 240),
    )
    def test_dev_kernel_stats_invariants(self, lens, grid):
        cluster = Cluster(1, 1)
        gpu = cluster.nodes[0].gpus[0]
        st_ = gpu.dev_kernel_stats(np.array(lens, dtype=np.int64), grid_blocks=grid)
        assert st_.payload_bytes == sum(lens)
        assert st_.charged_bytes >= st_.payload_bytes
        assert 0 < st_.efficiency <= 1.0
        assert st_.total_time > 0

    def test_fractional_vector_rows(self, gpu):
        whole = gpu.vector_kernel_stats(1.0, 1 << 20)
        half = gpu.vector_kernel_stats(0.5, 1 << 20)
        assert half.payload_bytes == whole.payload_bytes // 2
        assert half.transfer_time < whole.transfer_time
