"""Tests for node/cluster wiring, PCIe switch, and NIC models."""

from __future__ import annotations

import pytest

from repro.hw.node import Cluster
from repro.hw.params import k40_cluster


class TestClusterConstruction:
    def test_shapes(self):
        c = Cluster(n_nodes=3, gpus_per_node=4)
        assert len(c.nodes) == 3
        assert all(len(n.gpus) == 4 for n in c.nodes)
        assert c.gpu(2, 3).name == "node2.gpu3"

    def test_every_gpu_wired_to_pcie(self, cluster):
        for gpu in cluster.nodes[0].gpus:
            assert gpu.h2d_link is not None and gpu.d2h_link is not None
            assert gpu.node is cluster.nodes[0]

    def test_p2p_paths_pairwise(self):
        c = Cluster(1, 3)
        gpus = c.nodes[0].gpus
        for a in gpus:
            for b in gpus:
                if a is not b:
                    assert b.name in a.p2p_links

    def test_trace_flag(self):
        from repro.sim.trace import NullTracer

        c = Cluster(1, 1, trace=True)
        assert c.tracer.enabled and bool(c.tracer)
        off = Cluster(1, 1).tracer
        assert isinstance(off, NullTracer)
        assert not off.enabled and not bool(off)
        # NullTracer answers every query like an empty trace
        off.record("r", 0.0, 1.0, "x")
        assert off.spans == [] and off.busy_time("r") == 0.0


class TestCpuEngines:
    def test_cpu_pack_op_charges_time_and_runs_fn(self, cluster):
        node = cluster.nodes[0]
        seen = []
        node.cpu_pack_op(10 * 1024 * 1024, fn=lambda: seen.append(cluster.sim.now))
        cluster.sim.run()
        p = node.params.host
        expect = p.cpu_pack_overhead + 10 * 1024 * 1024 / p.cpu_pack_bw
        assert seen == [pytest.approx(expect)]

    def test_memcpy_faster_than_pack(self, cluster):
        node = cluster.nodes[0]
        n = 64 << 20
        t_pack = node.cpu_pack_engine.occupancy_time(n)
        t_copy = node.cpu_memcpy_engine.occupancy_time(n)
        assert t_copy < t_pack


class TestNic:
    def test_wire_time(self, two_node_cluster):
        c = two_node_cluster
        nic = c.nodes[0].nic
        fut = nic.send("node1", 1 << 20, payload="hello")
        c.sim.run()
        lp = c.params.ib
        expect = lp.overhead + (1 << 20) / lp.bandwidth + lp.latency
        assert c.sim.now == pytest.approx(expect)
        assert fut.value == "hello"

    def test_flows_to_same_destination_serialize(self, two_node_cluster):
        c = two_node_cluster
        nic = c.nodes[0].nic
        nic.send("node1", 1 << 20)
        nic.send("node1", 1 << 20)
        c.sim.run()
        lp = c.params.ib
        expect = 2 * (lp.overhead + (1 << 20) / lp.bandwidth) + lp.latency
        assert c.sim.now == pytest.approx(expect)

    def test_gpudirect_degrades_large_messages(self, two_node_cluster):
        c = two_node_cluster
        nic = c.nodes[0].nic
        t0 = c.sim.now
        nic.send("node1", 1 << 20, gpudirect=True)
        c.sim.run()
        gdr_large = c.sim.now - t0
        t0 = c.sim.now
        nic.send("node1", 1 << 20)
        c.sim.run()
        host_staged = c.sim.now - t0
        assert gdr_large > host_staged * 2

    def test_gpudirect_small_messages_at_wire_speed(self, two_node_cluster):
        c = two_node_cluster
        nic = c.nodes[0].nic
        small = nic.gpudirect_crossover_bytes // 2
        t0 = c.sim.now
        nic.send("node1", small, gpudirect=True)
        c.sim.run()
        gdr = c.sim.now - t0
        t0 = c.sim.now
        nic.send("node1", small)
        c.sim.run()
        assert gdr == pytest.approx(c.sim.now - t0)


class TestParams:
    def test_preset_ratio_structure(self):
        p = k40_cluster()
        # the ratios the reproduction depends on (DESIGN.md section 5)
        assert p.gpu.copy_peak_bw > 10 * p.pcie_d2h.bandwidth
        assert p.pcie_d2h.bandwidth > p.ib.bandwidth
        assert p.ib.bandwidth > p.host.cpu_pack_bw

    def test_with_gpu_override(self):
        p = k40_cluster().with_gpu(copy_peak_bw=1.0)
        assert p.gpu.copy_peak_bw == 1.0
        # original untouched (frozen dataclasses)
        assert k40_cluster().gpu.copy_peak_bw != 1.0

    def test_derived_gpu_properties(self):
        g = k40_cluster().gpu
        assert g.warps_per_block == g.threads_per_block // 32
        assert g.warp_iter_bytes == 32 * g.bytes_per_thread
