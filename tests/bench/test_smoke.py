"""The observability smoke check, run as part of the suite."""

from __future__ import annotations

import json
import os

from repro.bench.smoke import SMOKE_CASES, run_smoke


def test_smoke_all_protocols(tmp_path):
    assert run_smoke(trace_dir=str(tmp_path), verbose=False) == 0
    for kind, _proto in SMOKE_CASES:
        path = tmp_path / f"smoke-{kind}.trace.json"
        assert path.exists()
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]
        assert doc["metrics"]["transfers"]


def test_smoke_cli_entry(tmp_path, capsys):
    from repro.bench.__main__ import main

    assert main(["--smoke", "--trace-out", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "smoke: all protocols OK" in out
    assert os.listdir(tmp_path)


def test_faults_smoke_chaos_leg():
    from repro.bench.smoke import run_faults_smoke

    assert run_faults_smoke("seed=3", verbose=False) == 0


def test_faults_smoke_cli_entry(capsys):
    from repro.bench.__main__ import main

    assert main(["--smoke", "--faults", "seed=3"]) == 0
    out = capsys.readouterr().out
    assert "byte-exact" in out


def test_faults_cli_requires_smoke():
    import pytest

    from repro.bench.__main__ import main

    with pytest.raises(SystemExit):
        main(["--faults", "seed=3"])
