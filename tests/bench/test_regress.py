"""Tests for the perf-regression gate (repro.bench.regress)."""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench import regress
from repro.bench.regress import Issue, compare


def make_doc(**overrides) -> dict:
    doc = {
        "schema": "repro-bench/1",
        "label": "test",
        "created": "2026-01-01T00:00:00+0000",
        "profile": "quick",
        "provenance": {"python": "3.11", "numpy": "2.0", "platform": "test"},
        "scenarios": {
            "scen": {
                "metrics": {"time_s": 1.0, "bw": 2.0e9},
                "phases": {"dev_build": {"seconds": 0.01, "count": 4}},
                "wall_seconds": 1.0,
            }
        },
        "harness": {"wall_seconds": 1.0},
    }
    doc.update(overrides)
    return doc


def failures(issues: list[Issue]) -> list[str]:
    return [i.metric for i in issues if i.is_failure]


class TestCompare:
    def test_identical_docs_pass(self):
        base = make_doc()
        assert failures(compare(copy.deepcopy(base), base)) == []

    def test_perturbed_metric_fails_and_is_named(self):
        base = make_doc()
        cur = copy.deepcopy(base)
        cur["scenarios"]["scen"]["metrics"]["time_s"] *= 1.2  # 20% drift
        issues = compare(cur, base)
        assert "scen.time_s" in failures(issues)
        msg = next(i for i in issues if i.metric == "scen.time_s").message
        assert "20.0%" in msg

    def test_within_tolerance_passes(self):
        base = make_doc()
        cur = copy.deepcopy(base)
        cur["scenarios"]["scen"]["metrics"]["time_s"] *= 1.01  # 1% < 5%
        assert failures(compare(cur, base)) == []

    def test_both_directions_gated(self):
        base = make_doc()
        cur = copy.deepcopy(base)
        cur["scenarios"]["scen"]["metrics"]["time_s"] *= 0.8  # "speedup"
        assert "scen.time_s" in failures(compare(cur, base))

    def test_per_metric_tolerance_override(self):
        base = make_doc()
        base["tolerances"] = {"scen.time_s": 0.5}
        cur = copy.deepcopy(base)
        cur["scenarios"]["scen"]["metrics"]["time_s"] *= 1.2
        assert failures(compare(cur, base)) == []

    def test_missing_metric_fails(self):
        base = make_doc()
        cur = copy.deepcopy(base)
        del cur["scenarios"]["scen"]["metrics"]["bw"]
        assert "scen.bw" in failures(compare(cur, base))

    def test_missing_scenario_fails(self):
        base = make_doc()
        cur = copy.deepcopy(base)
        cur["scenarios"] = {}
        assert "scen" in failures(compare(cur, base))

    def test_extra_metric_and_scenario_warn_only(self):
        base = make_doc()
        cur = copy.deepcopy(base)
        cur["scenarios"]["scen"]["metrics"]["new_metric"] = 1.0
        cur["scenarios"]["new_scen"] = {
            "metrics": {}, "phases": {}, "wall_seconds": 0.0
        }
        issues = compare(cur, base)
        assert failures(issues) == []
        warns = [i.metric for i in issues if not i.is_failure]
        assert "scen.new_metric" in warns and "new_scen" in warns

    def test_profile_mismatch_fails(self):
        base = make_doc()
        cur = make_doc(profile="full")
        assert "profile" in failures(compare(cur, base))

    def test_schema_mismatch_fails(self):
        base = make_doc()
        cur = make_doc(schema="something-else/9")
        assert "schema" in failures(compare(cur, base))

    def test_wall_clock_is_regression_only(self):
        base = make_doc()
        fast = copy.deepcopy(base)
        fast["scenarios"]["scen"]["wall_seconds"] = 0.01  # improvement: fine
        assert failures(compare(fast, base)) == []
        slow = copy.deepcopy(base)
        slow["scenarios"]["scen"]["wall_seconds"] = (
            base["scenarios"]["scen"]["wall_seconds"] * regress.WALL_FACTOR
            + regress.WALL_FLOOR_S + 1.0
        )
        assert "scen.wall_seconds" in failures(compare(slow, base))

    def test_phase_count_must_match_exactly(self):
        base = make_doc()
        cur = copy.deepcopy(base)
        cur["scenarios"]["scen"]["phases"]["dev_build"]["count"] = 5
        assert "scen.phases.dev_build.count" in failures(compare(cur, base))


class TestSubsetGate:
    def test_only_restricts_to_named_scenarios(self):
        base = make_doc()
        base["scenarios"]["other"] = {
            "metrics": {"x": 1.0}, "phases": {}, "wall_seconds": 0.1
        }
        cur = make_doc()  # ran only "scen"; "other" missing is fine
        assert failures(compare(cur, base, only=["scen"])) == []
        # without the subset, the un-run scenario fails the gate
        assert "other" in failures(compare(cur, base))

    def test_only_still_gates_the_named_scenario(self):
        base = make_doc()
        cur = copy.deepcopy(base)
        cur["scenarios"]["scen"]["metrics"]["time_s"] *= 1.2
        assert "scen.time_s" in failures(compare(cur, base, only=["scen"]))

    def test_empty_intersection_fails(self):
        # a subset gate that would check nothing must not pass
        issues = compare(make_doc(), make_doc(), only=["not_in_baseline"])
        assert "scenarios" in failures(issues)


class TestLoadBaseline:
    def test_valid_baseline_loads(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(make_doc()))
        assert regress.load_baseline(str(path))["schema"] == "repro-bench/1"

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            regress.load_baseline(str(tmp_path / "nope.json"))

    @pytest.mark.parametrize(
        "text",
        ["{not json", "[1, 2]", '{"schema": "other/1"}', '{"scenarios": {}}'],
        ids=["invalid-json", "not-object", "wrong-schema", "no-schema"],
    )
    def test_malformed_baseline_raises_valueerror(self, tmp_path, text):
        path = tmp_path / "baseline.json"
        path.write_text(text)
        with pytest.raises(ValueError):
            regress.load_baseline(str(path))


class TestRunCheck:
    def test_exit_codes(self, tmp_path, capsys):
        base = make_doc()
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(base))
        assert regress.run_check(copy.deepcopy(base), str(path)) == 0
        bad = copy.deepcopy(base)
        bad["scenarios"]["scen"]["metrics"]["time_s"] *= 1.2
        assert regress.run_check(bad, str(path)) == 1
        out = capsys.readouterr().out
        assert "scen.time_s" in out  # the offending metric is named

    def test_missing_baseline_is_hard_failure(self, tmp_path, capsys):
        rc = regress.run_check(make_doc(), str(tmp_path / "nope.json"))
        assert rc == 1
        assert "[FAIL] baseline:" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "text", ["{broken", '{"schema": "wrong/0"}'],
        ids=["invalid-json", "wrong-schema"],
    )
    def test_malformed_baseline_is_hard_failure(self, tmp_path, capsys, text):
        # the regression this guards: a gate that cannot read its baseline
        # used to warn and pass — it must exit nonzero
        path = tmp_path / "baseline.json"
        path.write_text(text)
        assert regress.run_check(make_doc(), str(path)) == 1
        assert "[FAIL] baseline:" in capsys.readouterr().out

    def test_update_baseline_refuses_malformed_previous(self, tmp_path, capsys,
                                                        monkeypatch):
        # --update-baseline must not silently overwrite a baseline it
        # cannot parse (a fresh/missing one is fine)
        from repro.bench.__main__ import main

        monkeypatch.chdir(tmp_path)
        (tmp_path / "benchmarks").mkdir()
        (tmp_path / "benchmarks" / "baseline.json").write_text("{broken")
        rc = main([
            "--suite", "--quick", "--scenario", "world_stats",
            "--json", str(tmp_path / "BENCH_t.json"), "--label", "t",
            "--update-baseline",
        ])
        assert rc == 1
        assert "malformed baseline" in capsys.readouterr().err
        assert (tmp_path / "benchmarks" / "baseline.json").read_text() == "{broken"


class TestEndToEnd:
    """The full loop: suite run -> baseline -> pass, perturb -> fail."""

    def test_fresh_identical_run_passes_perturbed_fails(self, tmp_path, capsys):
        from repro.bench.__main__ import main
        from repro.bench.profiles import QUICK
        from repro.bench.suite import run_suite, write_suite_json

        doc = run_suite(
            QUICK, names=["world_stats"], label="t0", verbose=False
        )
        baseline_path = tmp_path / "baseline.json"
        write_suite_json(doc, str(baseline_path))

        # a fresh identical run must pass the gate through the real CLI
        out_json = tmp_path / "BENCH_t1.json"
        rc = main([
            "--suite", "--quick", "--scenario", "world_stats",
            "--json", str(out_json), "--label", "t1",
            "--check", str(baseline_path),
        ])
        assert rc == 0
        written = json.loads(out_json.read_text())
        assert written["schema"] == "repro-bench/1"
        assert written["profile"] == "quick"
        assert written["scenarios"]["world_stats"]["metrics"]

        # perturb one simulated metric by 20%: gate must fail, naming it
        perturbed = json.loads(baseline_path.read_text())
        perturbed["scenarios"]["world_stats"]["metrics"]["T_pingpong_s"] *= 1.2
        baseline_path.write_text(json.dumps(perturbed))
        capsys.readouterr()  # drop earlier output
        rc = main([
            "--suite", "--quick", "--scenario", "world_stats",
            "--json", str(tmp_path / "BENCH_t2.json"), "--label", "t2",
            "--check", str(baseline_path),
        ])
        assert rc == 1
        assert "world_stats.T_pingpong_s" in capsys.readouterr().out
