"""Tests for the benchmark harness drivers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import (
    make_env,
    matrix_buffers,
    mvapich_pingpong,
    one_way,
    pack_time,
    pingpong,
)
from repro.workloads.matrices import MatrixWorkload


class TestEnvironments:
    @pytest.mark.parametrize("kind", ["sm-1gpu", "sm-2gpu", "ib", "cpu"])
    def test_make_env(self, kind):
        env = make_env(kind)
        assert env.world.size == 2
        if kind == "cpu":
            assert env.gpu0 is None
        else:
            assert env.gpu0 is not None
        if kind == "sm-1gpu":
            assert env.gpu0 is env.gpu1
        if kind == "sm-2gpu":
            assert env.gpu0 is not env.gpu1
        if kind == "ib":
            assert env.world.procs[0].node is not env.world.procs[1].node

    def test_unknown_env_rejected(self):
        with pytest.raises(ValueError):
            make_env("quantum")

    def test_matrix_buffers_seeded(self):
        env = make_env("sm-2gpu")
        wl = MatrixWorkload.submatrix(64, 128)
        a0, _ = matrix_buffers(env, wl, seed=7)
        env2 = make_env("sm-2gpu")
        b0, _ = matrix_buffers(env2, wl, seed=7)
        assert np.array_equal(a0.bytes, b0.bytes)


class TestDrivers:
    def test_pingpong_positive_and_deterministic(self):
        def measure():
            env = make_env("sm-2gpu")
            wl = MatrixWorkload.submatrix(128, 256)
            b0, b1 = matrix_buffers(env, wl)
            return pingpong(env, b0, wl.datatype, 1, b1, wl.datatype, 1, iters=2)

        t1, t2 = measure(), measure()
        assert t1 > 0 and t1 == t2

    def test_one_way_less_than_round_trip(self):
        env = make_env("sm-2gpu")
        wl = MatrixWorkload.submatrix(128, 256)
        b0, b1 = matrix_buffers(env, wl)
        t_rt = pingpong(env, b0, wl.datatype, 1, b1, wl.datatype, 1, iters=2)
        env2 = make_env("sm-2gpu")
        c0, c1 = matrix_buffers(env2, wl)
        t_ow = one_way(env2, c0, wl.datatype, 1, c1, wl.datatype, 1)
        assert t_ow < t_rt

    def test_mvapich_pingpong_runs_and_verifies(self):
        env = make_env("sm-2gpu")
        wl = MatrixWorkload.submatrix(64, 128)
        b0, b1 = matrix_buffers(env, wl)
        t = mvapich_pingpong(env, b0, wl.datatype, 1, b1, wl.datatype, 1, iters=1)
        assert t > 0
        from repro.datatype.convertor import pack_bytes

        assert np.array_equal(
            pack_bytes(wl.datatype, 1, b1.bytes),
            pack_bytes(wl.datatype, 1, b0.bytes),
        )

    def test_pack_time_runs(self):
        env = make_env("sm-1gpu")
        wl = MatrixWorkload.triangular(128)
        proc = env.world.procs[0]
        src = proc.ctx.malloc(wl.footprint_bytes)
        dst = proc.ctx.malloc(wl.payload_bytes)
        t = pack_time(env, wl.datatype, 1, src, dst, warmup=1)
        assert t > 0
