"""Tests for the benchmark size profiles."""

from __future__ import annotations

import pytest

from repro.bench import profiles


class TestProfile:
    def test_pick(self):
        assert profiles.FULL.pick([1, 2], [1]) == [1, 2]
        assert profiles.QUICK.pick([1, 2], [1]) == [1]
        assert profiles.FULL.is_full and not profiles.QUICK.is_full

    def test_get(self):
        assert profiles.get("full") is profiles.FULL
        assert profiles.get("quick") is profiles.QUICK
        with pytest.raises(ValueError):
            profiles.get("huge")

    def test_current_from_env(self, monkeypatch):
        monkeypatch.delenv(profiles.ENV_VAR, raising=False)
        assert profiles.current() is profiles.FULL
        monkeypatch.setenv(profiles.ENV_VAR, "quick")
        assert profiles.current() is profiles.QUICK
        monkeypatch.setenv(profiles.ENV_VAR, "bogus")
        with pytest.raises(ValueError):
            profiles.current()
