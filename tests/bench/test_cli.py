"""Smoke tests for the CLI report (`python -m repro.bench`)."""

from __future__ import annotations

import pytest

from repro.bench.__main__ import main
from repro.bench.figures import FIGURES, run_figure


class TestFigures:
    def test_registry_covers_evaluation(self):
        for name in ("fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
                     "fig12", "sec5.3", "sec5.4", "energy"):
            assert name in FIGURES

    def test_run_figure_returns_series(self):
        series_list = run_figure("fig6")
        assert len(series_list) == 1
        s = series_list[0]
        assert s.x and all(v is not None for v in s.column("V"))

    def test_fig10_returns_three_environments(self):
        # use the callable directly with a tiny sweep to stay fast
        out = FIGURES["fig10"](sizes=(256,))
        assert len(out) == 3


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "sec5.4" in out

    def test_unknown_figure_errors(self):
        with pytest.raises(SystemExit):
            main(["figZZ"])

    def test_single_figure_prints_table(self, capsys):
        assert main(["sec5.4"]) == 0
        out = capsys.readouterr().out
        assert "S5.4" in out and "%" in out
