"""Tests for the benchmark reporting helpers."""

from __future__ import annotations

import pytest

from repro.bench.reporting import Series, Table, fmt_bw, fmt_bytes, fmt_time


class TestFormatters:
    def test_fmt_time_units(self):
        assert fmt_time(1.5e-6) == "1.5us"
        assert fmt_time(2.5e-3) == "2.50ms"
        assert fmt_time(1.25) == "1.250s"

    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512B"
        assert fmt_bytes(2048) == "2.0KiB"
        assert fmt_bytes(3 * 1024 * 1024) == "3.0MiB"

    def test_fmt_bw(self):
        assert fmt_bw(6.8e9) == "6.80GB/s"


class TestTable:
    def test_render_alignment(self):
        t = Table("demo", ["a", "bb"])
        t.add("x", 1)
        t.add("longer", 2)
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "== demo =="
        assert "longer" in out

    def test_wrong_arity_rejected(self):
        t = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add("only-one")


class TestSeries:
    def test_columns_and_missing_values(self):
        s = Series("t", "x", ["p", "q"])
        s.add(1, p=1.0)
        s.add(2, p=2.0, q=4.0)
        assert s.column("q") == [None, 4.0]
        table = s.to_table()
        assert "-" in table.render()

    def test_ratio(self):
        s = Series("t", "x", ["a", "b"])
        s.add(1, a=2.0, b=4.0)
        s.add(2, a=1.0, b=None)
        assert s.ratio("b", "a") == [2.0, None]
