"""Tests for the benchmark reporting helpers."""

from __future__ import annotations

import pytest

from repro.bench.reporting import Series, Table, fmt_bw, fmt_bytes, fmt_time


class TestFormatters:
    def test_fmt_time_units(self):
        assert fmt_time(1.5e-6) == "1.5us"
        assert fmt_time(2.5e-3) == "2.50ms"
        assert fmt_time(1.25) == "1.250s"

    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512B"
        assert fmt_bytes(2048) == "2.0KiB"
        assert fmt_bytes(3 * 1024 * 1024) == "3.0MiB"

    def test_fmt_bw(self):
        assert fmt_bw(6.8e9) == "6.80GB/s"


class TestTable:
    def test_render_alignment(self):
        t = Table("demo", ["a", "bb"])
        t.add("x", 1)
        t.add("longer", 2)
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "== demo =="
        assert "longer" in out

    def test_wrong_arity_rejected(self):
        t = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add("only-one")

    def test_float_formatting(self):
        t = Table("demo", ["v"])
        t.add(0.125)
        t.add(3.0)
        t.add(1e-7)
        rendered = t.render()
        assert "0.125" in rendered
        assert "3" in rendered  # %g drops the trailing .0
        assert "1e-07" in rendered

    def test_none_renders_as_dash(self):
        t = Table("demo", ["a", "b"])
        t.add("x", None)
        lines = t.render().splitlines()
        assert lines[-1].split() == ["x", "-"]

    def test_bool_not_swallowed_by_float_format(self):
        t = Table("demo", ["flag"])
        t.add(True)
        assert "True" in t.render()

    def test_non_finite_floats(self):
        t = Table("demo", ["v"])
        t.add(float("nan"))
        t.add(float("inf"))
        rendered = t.render()
        assert "nan" in rendered and "inf" in rendered


class TestSeries:
    def test_columns_and_missing_values(self):
        s = Series("t", "x", ["p", "q"])
        s.add(1, p=1.0)
        s.add(2, p=2.0, q=4.0)
        assert s.column("q") == [None, 4.0]
        table = s.to_table()
        assert "-" in table.render()

    def test_ratio(self):
        s = Series("t", "x", ["a", "b"])
        s.add(1, a=2.0, b=4.0)
        s.add(2, a=1.0, b=None)
        assert s.ratio("b", "a") == [2.0, None]

    def test_ratio_zero_denominator(self):
        s = Series("t", "x", ["a", "b"])
        s.add(1, a=0.0, b=3.0)
        s.add(2, a=5.0, b=10.0)
        # b/a with a == 0 must be None, never ZeroDivisionError
        assert s.ratio("b", "a") == [None, 2.0]
        # a numerator of zero is a legitimate 0.0 ratio, not missing
        assert s.ratio("a", "b") == [0.0, 0.5]

    def test_ratio_nan_is_missing(self):
        s = Series("t", "x", ["a", "b"])
        s.add(1, a=float("nan"), b=1.0)
        s.add(2, a=1.0, b=float("nan"))
        assert s.ratio("a", "b") == [None, None]
        assert s.ratio("b", "a") == [None, None]
