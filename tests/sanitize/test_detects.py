"""Seeded-bug fixtures: every checker must catch its bug class.

Each test plants one intentional bug of the kind the paper's pipeline
can produce — an out-of-bounds pack target, ring-slot reuse without
waiting for the ACK, a corrupted DEV list, nondeterministic simulation
code — and asserts the matching checker reports it with an actionable
message.  These are the sanitizers' own regression tests: a refactor
that silently stops detecting one of these classes fails here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import sanitize
from repro.gpu_engine.work_units import WorkUnits
from repro.hw.memory import Buffer, Memory, MemoryKind
from repro.sanitize import SanitizeOptions, SanitizerError
from repro.workloads.matrices import lower_triangular_type


def test_oob_pack_target_caught():
    """Bug: a pack target sized to the *rounded* allocation overruns the
    requested bytes — classic off-by-alignment OOB."""
    with sanitize.enabled(SanitizeOptions.all(mode="raise")):
        mem = Memory("dev", 1 << 20, MemoryKind.DEVICE)
        buf = mem.alloc(1000)  # rounded up; [1000, rounded) is redzone
        with pytest.raises(SanitizerError) as exc:
            Buffer(buf.allocation, 0, buf.allocation.nbytes)
    v = exc.value.violation
    assert v.code == "mem.oob_subbuffer"
    assert "redzone" in v.message and "requested size 1000" in v.message


def test_use_after_free_caught():
    """Bug: touching a staging buffer after releasing it."""
    with sanitize.enabled(SanitizeOptions.all(mode="record")) as rep:
        mem = Memory("dev", 1 << 20, MemoryKind.DEVICE)
        buf = mem.alloc(4096, label="staging")
        buf.free()
        with pytest.raises(ValueError):
            buf.fill(0)
    (v,) = rep.by_code("mem.use_after_free")
    assert "'staging'" in v.message


def test_ghost_slot_unpack_caught(cluster):
    """Bug: unpacking a ring slot no pack kernel ever filled.

    The receiver trusts a (forged/corrupt) notification and launches an
    unpack of a staging segment that holds only poison.
    """
    from repro.gpu_engine.engine import GpuDatatypeEngine

    dt = lower_triangular_type(64)
    gpu = cluster.nodes[0].gpus[0]
    with sanitize.enabled(SanitizeOptions.all(mode="record")) as rep:
        engine = GpuDatatypeEngine(gpu)
        dst = gpu.memory.alloc(dt.extent)
        job = engine.unpack_job(dt, 1, dst)
        ghost = gpu.memory.alloc(job.total_bytes, label="ring")  # never packed
        frag = job.single_fragment()
        cluster.sim.run_until_complete(
            cluster.sim.spawn(job.process_fragment(frag, ghost))
        )
    (v,) = rep.by_code("mem.uninit_read")
    assert "no writer ever filled this range" in v.message
    assert "unpack-kernel" in v.where


def test_slot_reuse_without_ack_caught(monkeypatch):
    """Bug: the sender repacks a ring slot without waiting for the ACK of
    the fragment that previously lived there (the slot_free gate from
    docs/ROBUSTNESS.md removed) — under dropped messages the retransmit
    path then overlaps a slot the receiver is still unpacking."""
    from repro.faults.plan import FaultSpec
    from repro.mpi.config import MpiConfig
    from repro.mpi.protocols.common import TransferState
    from repro.sim.core import Future
    from tests.mpi.test_chaos import faulted_roundtrip

    def no_gate(self, i):
        fut = Future(self.proc.sim, label="slot-gate-bypassed")
        fut.resolve(None)
        return fut

    monkeypatch.setattr(TransferState, "slot_free", no_gate)
    with sanitize.enabled(SanitizeOptions.all(mode="record")) as rep:
        faulted_roundtrip(
            "sm-2gpu",
            MpiConfig(
                frag_bytes=2048,
                eager_limit=0,
                rdma_mode="put",
                faults=FaultSpec(seed=11, am_drop=0.25),
            ),
        )
    races = rep.by_code("race.unordered_access")
    assert races, "removing the slot_free gate must surface the ring race"
    assert any("no happens-before edge" in v.message for v in races)


def test_overlapping_dev_list_caught(cluster, monkeypatch):
    """Bug: the CPU-side DEV conversion emits two units packing into the
    same destination bytes (a broken split would corrupt the stream)."""
    import repro.gpu_engine.engine as engine_mod
    from repro.gpu_engine.engine import GpuDatatypeEngine

    real_split = engine_mod.split_units

    def bad_split(devs, unit_size):
        units = real_split(devs, unit_size)
        bad = WorkUnits(
            units.src_disps.copy(),
            units.dst_disps.copy(),
            units.lens.copy(),
            units.unit_size,
        )
        if bad.count > 1:
            bad.dst_disps[1] = bad.dst_disps[0]
        return bad

    monkeypatch.setattr(engine_mod, "split_units", bad_split)
    dt = lower_triangular_type(64)
    gpu = cluster.nodes[0].gpus[0]
    with sanitize.enabled(SanitizeOptions.all(mode="raise")):
        engine = GpuDatatypeEngine(gpu)
        src = gpu.memory.alloc(dt.extent)
        with pytest.raises(SanitizerError) as exc:
            engine.pack_job(dt, 1, src)
    v = exc.value.violation
    assert v.code == "dev.overlap"
    assert "DEV" in v.where


def test_nondeterministic_sim_code_caught(tmp_path):
    """Bug: simulation code reading the wall clock — every schedule (and
    every race verdict) becomes unreproducible."""
    from repro.sanitize.lint import run_lint

    bad = tmp_path / "repro" / "sim" / "sneaky.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        "import time\n\ndef backoff():\n    return time.time() % 1\n"
    )
    out = run_lint([str(tmp_path)])
    assert len(out) == 1
    assert out[0].code == "SAN-L001"
    assert "simulator clock" in out[0].message


def test_metric_kind_conflict_caught(tmp_path):
    """Bug: one metric name registered as two instrument kinds."""
    from repro.sanitize.lint import run_lint

    d = tmp_path / "repro" / "obs"
    d.mkdir(parents=True)
    (d / "a.py").write_text("m.counter('x.y').inc()\n")
    (d / "b.py").write_text("m.histogram('x.y').observe(1.0)\n")
    out = run_lint([str(tmp_path)])
    assert {v.code for v in out} == {"SAN-L003"}


def test_seeded_deadlock_caught():
    """Bug: a cyclic blocking sendrecv — every rank rendezvous-sends to
    its neighbour and nobody posts a receive first.  The verifier must
    name each rank's blocked call site (peer, tag, comm) and the cycle
    instead of a silent hang."""
    from repro.bench.harness import make_env
    from repro.datatype.ddt import contiguous
    from repro.datatype.primitives import DOUBLE
    from repro.sim.core import SimulationError

    dt = contiguous(4096, DOUBLE).commit()  # 32 KB: over the eager limit
    with sanitize.enabled(
        SanitizeOptions(verify=True, mode="record")
    ) as rep:
        env = make_env("cpu")
        bufs = []
        for rank in (0, 1):
            b = env.world.procs[rank].node.host_memory.alloc(dt.size)
            b.fill(0)
            bufs.append(b)

        def program(rank):
            def run(mpi):
                peer = 1 - rank
                yield mpi.send(bufs[rank], dt, 1, dest=peer, tag=5)
                yield mpi.recv(bufs[rank], dt, 1, source=peer, tag=5)
            return run

        with pytest.raises(SimulationError, match="deadlock") as exc:
            env.world.run([program(0), program(1)])
    msg = str(exc.value)
    assert "wait cycle" in msg and "r0 -> r1 -> r0" in msg
    viols = rep.by_code("verify.deadlock")
    assert len(viols) == 2
    assert all("tag=5" in v.message and "comm=0" in v.message for v in viols)
    assert {v.where for v in viols} == {"r0", "r1"}


def test_seeded_request_leak_caught():
    """Bug: an isend whose matching receive never arrives — the program
    'succeeds', the request is a zombie; finalize must name it."""
    from repro.bench.harness import make_env
    from repro.datatype.ddt import contiguous
    from repro.datatype.primitives import DOUBLE

    dt = contiguous(4096, DOUBLE).commit()
    with sanitize.enabled(SanitizeOptions(verify=True, mode="record")):
        env = make_env("cpu")
        b0 = env.world.procs[0].node.host_memory.alloc(dt.size)
        b0.fill(0)

        def rank0(mpi):
            mpi.isend(b0, dt, 1, dest=1, tag=9)
            return
            yield  # pragma: no cover

        def rank1(mpi):
            return
            yield  # pragma: no cover

        env.world.run([rank0, rank1])
        findings = env.world.finalize()
    leaks = [v for v in findings if v.code == "verify.request_leak"]
    assert len(leaks) == 1
    assert "rank 0 send to r1" in leaks[0].message
    assert "tag=9" in leaks[0].message and "comm=0" in leaks[0].message


def test_blocking_self_send_lint_caught(tmp_path):
    """Bug: ``yield mpi.send(..., dest=mpi.rank)`` — the rendezvous
    self-deadlock shape the collectives avoid with isend-first."""
    from repro.sanitize.lint import run_lint

    bad = tmp_path / "repro" / "mpi" / "selfsend.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        "def gather_self(mpi, buf, dt, tag):\n"
        "    rank = mpi.rank\n"
        "    yield mpi.send(buf, dt, 1, dest=rank, tag=tag)\n"
        "    yield mpi.recv(buf, dt, 1, source=rank, tag=tag)\n"
        "\n"
        "def also_bad(mpi, buf, dt):\n"
        "    yield mpi.send(buf, dt, 1, dest=mpi.rank, tag=0)\n"
    )
    out = [v for v in run_lint([str(tmp_path)]) if v.code == "SAN-L005"]
    assert len(out) == 2
    assert all("self-send" in v.message for v in out)
    assert "isend first" in out[0].message


def test_dropped_request_lint_caught(tmp_path):
    """Bug: an isend/irecv Request discarded or bound but never read —
    the static shape of the verify.request_leak runtime finding."""
    from repro.sanitize.lint import run_lint

    bad = tmp_path / "repro" / "mpi" / "dropreq.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        "def fire_and_forget(mpi, buf, dt, peer):\n"
        "    mpi.isend(buf, dt, 1, dest=peer, tag=1)\n"  # discarded
        "    req = mpi.irecv(buf, dt, 1, source=peer, tag=2)\n"  # never read
        "    yield mpi.barrier()\n"
        "\n"
        "def correct(mpi, buf, dt, peer):\n"
        "    req = mpi.isend(buf, dt, 1, dest=peer, tag=3)\n"
        "    yield req\n"
    )
    out = [v for v in run_lint([str(tmp_path)]) if v.code == "SAN-L006"]
    assert len(out) == 2
    assert any("discarded" in v.message for v in out)
    assert any("'req'" in v.message and "never read" in v.message for v in out)


def test_violations_surface_as_metrics():
    """Violations double as repro.obs counters for dashboards."""
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    with sanitize.enabled(
        SanitizeOptions.all(mode="record"), metrics=registry.scoped("sanitize.")
    ) as rep:
        mem = Memory("dev", 1 << 20, MemoryKind.DEVICE)
        buf = mem.alloc(64)
        buf.free()
        with pytest.raises(ValueError):
            _ = buf.bytes
    assert rep.total == 1
    assert (
        registry.counter("sanitize.violations_total").value == 1
    )
    assert (
        registry.counter("sanitize.violations.mem.use_after_free").value == 1
    )
