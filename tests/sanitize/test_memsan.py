"""Unit tests for the ASan-style memory sanitizer."""

from __future__ import annotations

import pytest

from repro import sanitize
from repro.hw.memory import Buffer, Memory, MemoryKind
from repro.sanitize import SanitizeOptions, SanitizerError


@pytest.fixture
def record():
    """Fresh all-checker install in record mode; yields the report."""
    with sanitize.enabled(SanitizeOptions.all(mode="record")) as rep:
        yield rep


@pytest.fixture
def raising():
    """Fresh all-checker install in raise mode; yields the report."""
    with sanitize.enabled(SanitizeOptions.all(mode="raise")) as rep:
        yield rep


def dev_mem() -> Memory:
    return Memory("dev", 1 << 20, MemoryKind.DEVICE)


class TestShadowLifecycle:
    def test_fresh_allocation_is_poisoned(self, record):
        from repro.sanitize import runtime as _san

        buf = dev_mem().alloc(256)
        _san.MEM.check_read(buf, 0, 256, what="probe")
        assert record.by_code("mem.uninit_read")

    def test_touch_unpoisons(self, record):
        from repro.sanitize import runtime as _san

        buf = dev_mem().alloc(256)
        buf.fill(1)  # .bytes view marks the range valid
        _san.MEM.check_read(buf, 0, 256, what="probe")
        assert not record.violations

    def test_partial_poison_reports_first_offset(self, record):
        from repro.sanitize import runtime as _san

        buf = dev_mem().alloc(512)
        buf[0:128].fill(1)
        _san.MEM.check_read(buf, 0, 512, what="probe")
        (v,) = record.by_code("mem.uninit_read")
        assert "first poisoned byte at offset 128" in v.message

    def test_repoison_marks_stale_contents(self, record):
        from repro.sanitize import runtime as _san

        buf = dev_mem().alloc(256)
        buf.fill(1)
        _san.MEM.repoison(buf)
        _san.MEM.check_read(buf, 0, 256, what="probe")
        assert record.by_code("mem.uninit_read")


class TestRedzone:
    def test_subbuffer_into_redzone_flagged(self, raising):
        buf = dev_mem().alloc(100)  # rounded up to ALIGNMENT internally
        with pytest.raises(SanitizerError) as exc:
            Buffer(buf.allocation, 0, 128)
        assert exc.value.violation.code == "mem.oob_subbuffer"
        assert "redzone" in str(exc.value)

    def test_exact_requested_size_allowed(self, raising):
        buf = dev_mem().alloc(100)
        sub = buf[0:100]
        assert sub.nbytes == 100


class TestUseAfterFree:
    def test_freed_access_recorded_and_raises_valueerror(self, record):
        buf = dev_mem().alloc(64)
        buf.free()
        with pytest.raises(ValueError, match="use after free"):
            _ = buf.bytes
        (v,) = record.by_code("mem.use_after_free")
        assert "freed allocation" in v.message


class TestSpaceConfusion:
    def test_device_buffer_on_cpu_path(self, raising):
        from repro.sanitize import runtime as _san

        buf = dev_mem().alloc(64)
        with pytest.raises(SanitizerError) as exc:
            _san.MEM.check_cpu_path(buf, what="CpuSideJob(pack)")
        assert exc.value.violation.code == "mem.space_confusion"

    def test_unmapped_host_buffer_on_gpu_path(self, raising):
        from repro.sanitize import runtime as _san

        host = Memory("host", 1 << 20, MemoryKind.HOST)
        buf = host.alloc(64)
        with pytest.raises(SanitizerError) as exc:
            _san.MEM.check_gpu_path(buf, mapped=False, what="PackJob")
        assert "map_host_buffer" in str(exc.value)
        _san.MEM.check_gpu_path(buf, mapped=True, what="PackJob")  # clean


class TestZeroOverheadWhenDisabled:
    def test_hooks_uninstalled_outside_context(self):
        from repro.sanitize import runtime as _san

        assert not sanitize.is_enabled() or _san.MEM is not None
        with sanitize.enabled(SanitizeOptions.all(mode="record")):
            assert sanitize.is_enabled()
