"""MPI-semantics verifier tests (``repro.sanitize.verify``).

Layer 1 (deadlock detection): blocked operations must surface as a
structured wait-for-graph diagnosis — rank, call site, peer, tag,
communicator, and the cycle — instead of a bare "never completed".

Layer 2 (finalize audit): ``MpiWorld.finalize`` must flag leaked
requests, unmatched receives, unfreed RMA windows and DevCache pins
that outlive their communicator, and stay silent on clean worlds.

Invariants: pair_seq non-overtaking at the matching engine, lazy
``_ProcTable`` materialization untouched by the instrumentation.
"""

from __future__ import annotations

import pytest

from repro import sanitize
from repro.bench.harness import make_env
from repro.datatype.ddt import contiguous
from repro.datatype.primitives import DOUBLE
from repro.mpi.matching import MatchingEngine
from repro.mpi.message import Envelope
from repro.sanitize import SanitizeOptions, SanitizerError
from repro.sim.core import SimulationError


def _verify(mode: str = "record"):
    return sanitize.enabled(SanitizeOptions(verify=True, mode=mode))


def _host_bufs(env, nbytes: int):
    bufs = []
    for rank in (0, 1):
        b = env.world.procs[rank].node.host_memory.alloc(nbytes)
        b.fill(0)
        bufs.append(b)
    return bufs


# ---------------------------------------------------------------------------
# layer 1: deadlock detection
# ---------------------------------------------------------------------------


class TestDeadlockDetection:
    def test_recv_cycle_diagnosed(self):
        """Both ranks blocking-recv from each other: a certain deadlock
        (queue drained) with a two-rank wait cycle."""
        dt = contiguous(64, DOUBLE).commit()
        with _verify() as rep:
            env = make_env("cpu")
            b0, b1 = _host_bufs(env, dt.size)

            def rank0(mpi):
                yield mpi.recv(b0, dt, 1, source=1, tag=5)

            def rank1(mpi):
                yield mpi.recv(b1, dt, 1, source=0, tag=6)

            with pytest.raises(SimulationError, match="deadlock") as exc:
                env.world.run([rank0, rank1])
        msg = str(exc.value)
        assert "wait cycle" in msg and "r0 -> r1 -> r0" in msg
        viols = rep.by_code("verify.deadlock")
        assert len(viols) == 2
        assert any(
            "source=1" in v.message and "tag=5" in v.message for v in viols
        )
        assert all("comm=0" in v.message for v in viols)

    def test_rendezvous_head_to_head_diagnosed(self):
        """Both ranks blocking-send over the eager limit: each is parked
        in the CTS wait, neither can post the matching receive."""
        dt = contiguous(4096, DOUBLE).commit()  # 32 KB: rendezvous
        with _verify() as rep:
            env = make_env("cpu")
            b0, b1 = _host_bufs(env, dt.size)

            def rank0(mpi):
                yield mpi.send(b0, dt, 1, dest=1, tag=3)
                yield mpi.recv(b0, dt, 1, source=1, tag=4)

            def rank1(mpi):
                yield mpi.send(b1, dt, 1, dest=0, tag=4)
                yield mpi.recv(b1, dt, 1, source=0, tag=3)

            with pytest.raises(SimulationError, match="deadlock") as exc:
                env.world.run([rank0, rank1])
        msg = str(exc.value)
        assert "cts" in msg and "rendezvous send" in msg
        viols = rep.by_code("verify.deadlock")
        assert len(viols) == 2
        assert all("cts" in v.message for v in viols)

    def test_barrier_straggler_diagnosed(self):
        """One rank in the barrier, the other returned without entering."""
        with _verify() as rep:
            env = make_env("cpu")

            def rank0(mpi):
                yield mpi.barrier()

            def rank1(mpi):
                return
                yield  # pragma: no cover

            with pytest.raises(SimulationError, match="deadlock"):
                env.world.run([rank0, rank1])
            findings = env.world.finalize()
        assert any("barrier" in v.message for v in rep.by_code("verify.deadlock"))
        assert any(v.code == "verify.barrier_incomplete" for v in findings)

    def test_pure_sim_deadlock_records_nothing(self):
        """A non-MPI stuck process must not fabricate verify violations."""
        from repro.sim.core import Future, Simulator

        with _verify() as rep:
            sim = Simulator()

            def stuck():
                yield Future(sim, label="never")

            with pytest.raises(SimulationError, match="deadlock"):
                sim.run_until_complete(sim.spawn(stuck()))
        assert not rep.violations


# ---------------------------------------------------------------------------
# layer 2: finalize-time audit
# ---------------------------------------------------------------------------


class TestFinalizeAudit:
    def test_clean_world_audits_clean(self):
        dt = contiguous(512, DOUBLE).commit()
        with _verify() as rep:
            env = make_env("cpu")
            b0, b1 = _host_bufs(env, dt.size)

            def rank0(mpi):
                yield mpi.send(b0, dt, 1, dest=1, tag=1)

            def rank1(mpi):
                yield mpi.recv(b1, dt, 1, source=0, tag=1)

            env.world.run([rank0, rank1])
            assert env.world.finalize() == []
        assert not rep.violations

    def test_request_leak_flagged(self):
        """A rendezvous isend whose receive never comes parks forever;
        the world still 'succeeds' — finalize must name the zombie."""
        dt = contiguous(4096, DOUBLE).commit()
        with _verify():
            env = make_env("cpu")
            b0, _b1 = _host_bufs(env, dt.size)

            def rank0(mpi):
                mpi.isend(b0, dt, 1, dest=1, tag=9)
                return
                yield  # pragma: no cover

            def rank1(mpi):
                return
                yield  # pragma: no cover

            env.world.run([rank0, rank1])
            findings = env.world.finalize()
        leaks = [v for v in findings if v.code == "verify.request_leak"]
        assert len(leaks) == 1
        assert "rank 0 send to r1" in leaks[0].message
        assert "tag=9" in leaks[0].message and "comm=0" in leaks[0].message
        # the RTS reached rank 1 and nobody consumed it
        assert any(v.code == "verify.unexpected_message" for v in findings)

    def test_unmatched_posted_recv_flagged(self):
        dt = contiguous(64, DOUBLE).commit()
        with _verify():
            env = make_env("cpu")
            _b0, b1 = _host_bufs(env, dt.size)

            def rank1(mpi):
                mpi.irecv(b1, dt, 1, source=0, tag=7)
                return
                yield  # pragma: no cover

            env.world.run({1: rank1})
            findings = env.world.finalize()
        codes = {v.code for v in findings}
        assert "verify.recv_unmatched" in codes
        assert "verify.request_leak" in codes
        un = [v for v in findings if v.code == "verify.recv_unmatched"]
        assert "source=0" in un[0].message and "tag=7" in un[0].message

    def test_raise_mode_raises_at_finalize(self):
        dt = contiguous(64, DOUBLE).commit()
        with _verify(mode="raise"):
            env = make_env("cpu")
            _b0, b1 = _host_bufs(env, dt.size)

            def rank1(mpi):
                mpi.irecv(b1, dt, 1, source=0, tag=7)
                return
                yield  # pragma: no cover

            env.world.run({1: rank1})
            with pytest.raises(SanitizerError):
                env.world.finalize()

    def test_window_leak_flagged(self):
        from repro.mpi.rma import RmaWindow

        with _verify():
            env = make_env("sm-2gpu")
            bufs = [
                env.world.procs[r].ctx.malloc(4096, label=f"win-r{r}")
                for r in (0, 1)
            ]
            win = RmaWindow(env.world, bufs)
            findings = env.world.finalize()
            assert any(v.code == "verify.window_leak" for v in findings)
            assert any(f"w{win.win_id}" in v.message for v in findings)

    def test_freed_window_is_clean(self):
        from repro.mpi.rma import RmaWindow

        with _verify() as rep:
            env = make_env("sm-2gpu")
            bufs = [
                env.world.procs[r].ctx.malloc(4096, label=f"win-r{r}")
                for r in (0, 1)
            ]
            win = RmaWindow(env.world, bufs)
            win.free()
            assert env.world.finalize() == []
        assert not rep.violations

    def test_window_free_with_unfenced_ops_refused(self):
        from repro.mpi.rma import RmaWindow
        from repro.workloads.matrices import lower_triangular_type

        dt = lower_triangular_type(32)
        env = make_env("sm-2gpu")
        bufs = [env.world.procs[r].ctx.malloc(dt.extent) for r in (0, 1)]
        win = RmaWindow(env.world, bufs)
        src = env.world.procs[0].ctx.malloc(dt.extent)

        def rank0(mpi):
            win.put(mpi, src, dt, 1, target=1)
            with pytest.raises(RuntimeError, match="unfenced"):
                win.free()
            yield from win.fence(mpi)

        def rank1(mpi):
            yield from win.fence(mpi)

        env.world.run([rank0, rank1])
        win.free()  # all fenced now: legal

    def test_cache_pin_past_freed_comm_flagged(self):
        from repro.workloads.matrices import lower_triangular_type

        dt = lower_triangular_type(64)
        with _verify():
            env = make_env("sm-2gpu")
            proc = env.world.procs[0]
            comm = env.world.comm_world.dup()
            unit = proc.gpu.params.dev_unit_size
            proc.engine.cache.pin(dt, 1, unit, comm_id=comm.comm_id)
            comm.free()  # pin not released first: the seeded bug
            findings = env.world.finalize()
        pins = [v for v in findings if v.code == "verify.cache_pin_leak"]
        assert pins and "pinned past freed communicator" in pins[0].message

    def test_cache_unpin_before_free_is_clean(self):
        from repro.workloads.matrices import lower_triangular_type

        dt = lower_triangular_type(64)
        with _verify() as rep:
            env = make_env("sm-2gpu")
            proc = env.world.procs[0]
            comm = env.world.comm_world.dup()
            unit = proc.gpu.params.dev_unit_size
            proc.engine.cache.pin(dt, 1, unit, comm_id=comm.comm_id)
            assert proc.engine.cache.unpin_comm(comm.comm_id) == 1
            comm.free()
            assert env.world.finalize() == []
        assert not rep.violations

    def test_pinned_entries_survive_eviction_pressure(self):
        """A pinned descriptor must not leave via LRU eviction."""
        from repro.gpu_engine.cache import DevCache
        from repro.workloads.matrices import lower_triangular_type

        env = make_env("sm-2gpu")
        gpu = env.world.procs[0].gpu
        unit = gpu.params.dev_unit_size
        pinned_dt = lower_triangular_type(64)
        cache = DevCache(gpu, budget_bytes=8 * 1024)
        pinned_units = cache.pin(pinned_dt, 1, unit, comm_id=3)
        assert cache.pinned_entries()
        for n in (65, 66, 67, 68):
            cache.put(lower_triangular_type(n), 1, unit)
        # the pinned entry is still resident and identical
        assert cache.get(pinned_dt, 1, unit) is pinned_units

    def test_audit_metrics_bumped(self):
        dt = contiguous(64, DOUBLE).commit()
        with _verify():
            env = make_env("cpu")
            _b0, b1 = _host_bufs(env, dt.size)

            def rank1(mpi):
                mpi.irecv(b1, dt, 1, source=0, tag=7)
                return
                yield  # pragma: no cover

            env.world.run({1: rank1})
            env.world.finalize()
            snap = env.world.metrics.snapshot()
        assert snap.get("verify.audit.findings", 0) >= 2
        assert snap.get("verify.audit.recv_unmatched", 0) == 1


# ---------------------------------------------------------------------------
# matching invariants + instrumentation transparency
# ---------------------------------------------------------------------------


class TestMatchingInvariants:
    def test_overtaking_detected(self):
        """Feeding _deliver out of send order must record a violation."""
        with _verify() as rep:
            eng = MatchingEngine()
            eng._deliver(Envelope(0, 1, tag=1, comm_id=0, pair_seq=0), "a")
            eng._deliver(Envelope(0, 1, tag=1, comm_id=0, pair_seq=2), "c")
        (v,) = rep.by_code("verify.overtaking")
        assert "pair_seq=2" in v.message and "expects 1" in v.message

    def test_resequenced_arrivals_are_clean(self):
        """The engine's own re-sequencer (arrive) never trips the check."""
        with _verify() as rep:
            eng = MatchingEngine()
            eng.arrive(Envelope(0, 1, tag=1, comm_id=0, pair_seq=1), "b")
            eng.arrive(Envelope(0, 1, tag=1, comm_id=0, pair_seq=0), "a")
            eng.arrive(Envelope(0, 1, tag=1, comm_id=0, pair_seq=2), "c")
        assert not rep.violations
        assert eng.unexpected_count == 3

    def test_mid_run_enable_starts_from_engine_state(self):
        """Enabling the verifier mid-run must not flag old traffic."""
        eng = MatchingEngine()
        eng.arrive(Envelope(0, 1, tag=1, comm_id=0, pair_seq=0), "a")
        eng.arrive(Envelope(0, 1, tag=1, comm_id=0, pair_seq=1), "b")
        with _verify() as rep:
            eng.arrive(Envelope(0, 1, tag=1, comm_id=0, pair_seq=2), "c")
        assert not rep.violations


class TestLazyMaterialization:
    def test_verify_keeps_proctable_lazy(self, monkeypatch):
        """With every checker on (the REPRO_SANITIZE=all CI leg), a run
        touching ranks 0 and 2 — rank 2 only mid-run, via a one-sided
        move — must materialize exactly those ranks, and the finalize
        audit must not force the others into existence."""
        from repro.hw.node import Cluster
        from repro.mpi.config import MpiConfig
        from repro.mpi.rma import one_sided_move
        from repro.mpi.world import MpiWorld

        monkeypatch.setenv("REPRO_SANITIZE", "all")
        monkeypatch.setenv("REPRO_SANITIZE_MODE", "record")
        dt = contiguous(256, DOUBLE).commit()
        with sanitize.enabled(SanitizeOptions.all(mode="record")) as rep:
            cluster = Cluster(2, 2)
            # MpiConfig picks REPRO_SANITIZE=all from the env; the world
            # must defer to the already-live install instead of re-enabling
            world = MpiWorld(
                cluster, [(0, 0), (0, 1), (1, 0), (1, 1)], config=MpiConfig()
            )
            target_buf = cluster.gpu(1, 0).memory.alloc(dt.extent)
            src = cluster.gpu(0, 0).memory.alloc(dt.extent)
            src.fill(1)

            def rank0(mpi):
                assert mpi.world.procs._slots[2] is None
                yield from one_sided_move(
                    mpi.proc, src, dt, 1,
                    mpi.world.procs[2],  # materializes rank 2 mid-run
                    target_buf, dt, 1, "put",
                )

            world.run({0: rank0})
            built = [p is not None for p in world.procs._slots]
            assert built == [True, False, True, False]
            assert world.finalize() == []
            # the audit walked only materialized ranks
            assert [p is not None for p in world.procs._slots] == built
        assert not rep.violations
