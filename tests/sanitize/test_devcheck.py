"""Unit tests for the DEV/CUDA_DEV list validator."""

from __future__ import annotations

import numpy as np
import pytest

from repro import sanitize
from repro.gpu_engine.dev import to_devs
from repro.gpu_engine.work_units import WorkUnits, split_units
from repro.sanitize import SanitizeOptions, SanitizerError
from repro.sanitize.devcheck import DevValidator
from repro.sanitize.report import SanitizerReport
from repro.workloads.matrices import lower_triangular_type


@pytest.fixture
def val():
    rep = SanitizerReport(mode="record")
    return DevValidator(rep), rep


def fresh_units(dt, count=1, unit_size=512) -> WorkUnits:
    return split_units(to_devs(dt, count), unit_size)


class TestPartitionChecks:
    def test_clean_list_passes(self, val):
        check, rep = val
        dt = lower_triangular_type(64)
        check.check_job(dt, 1, 512, fresh_units(dt))
        assert not rep.violations

    def test_overlapping_dst_flagged(self, val):
        check, rep = val
        dt = lower_triangular_type(64)
        units = fresh_units(dt)
        bad = WorkUnits(
            units.src_disps.copy(),
            units.dst_disps.copy(),
            units.lens.copy(),
            units.unit_size,
        )
        bad.dst_disps[1] = bad.dst_disps[0]  # two units pack the same bytes
        check.check_job(dt, 1, 512, bad)
        assert rep.by_code("dev.overlap")

    def test_gap_flagged(self, val):
        check, rep = val
        dt = lower_triangular_type(64)
        units = fresh_units(dt)
        bad = WorkUnits(
            units.src_disps.copy(),
            units.dst_disps.copy() + np.int64(8),  # everything shifted: hole at 0
            units.lens.copy(),
            units.unit_size,
        )
        check.check_job(dt, 1, 512, bad)
        assert rep.by_code("dev.gap")

    def test_total_mismatch_flagged(self, val):
        check, rep = val
        dt = lower_triangular_type(64)
        units = fresh_units(dt)
        truncated = units.slice(0, units.count - 1)
        check.check_job(dt, 1, 512, truncated)
        assert rep.by_code("dev.total_mismatch")


class TestCacheCoherence:
    def test_poisoned_cache_entry_detected(self, cluster):
        """A corrupted cached DEV list must differ from a fresh build."""
        from repro.gpu_engine.engine import GpuDatatypeEngine

        dt = lower_triangular_type(64)
        with sanitize.enabled(SanitizeOptions.all(mode="raise")) as rep:
            engine = GpuDatatypeEngine(cluster.nodes[0].gpus[0])
            src = cluster.nodes[0].gpus[0].memory.alloc(dt.extent)
            job = engine.pack_job(dt, 1, src)  # warms the cache (clean)
            assert job.units is not None
            unit_size = job.unit_size
            good = engine.cache.get(dt, 1, unit_size)
            # "mutation of cached state": corrupt the resident entry in
            # place — the next hit replays the wrong displacements
            good.src_disps[:] = good.src_disps + 16
            with pytest.raises(SanitizerError) as exc:
                engine.pack_job(dt, 1, src)
            assert exc.value.violation.code == "dev.cache_mismatch"
        # the violation was recorded before raising
        assert rep.by_code("dev.cache_mismatch")
