"""Tests for the project lint pass (``python -m repro.sanitize.lint``)."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.sanitize.lint import LintViolation, lint_file, run_lint

SIM_PATH = "src/repro/sim/fake.py"
PROTO_PATH = "src/repro/mpi/protocols/fake.py"
OTHER_PATH = "src/repro/obs/fake.py"


def lint_src(path: str, source: str) -> list:
    sites: dict = {}
    return lint_file(path, source, sites)


class TestDeterminismRule:
    @pytest.mark.parametrize(
        "snippet",
        [
            "import time\nt = time.time()\n",
            "import time\nt = time.perf_counter()\n",
            "import random\nx = random.random()\n",
            "import numpy as np\nx = np.random.rand()\n",
            "import os\nx = os.urandom(8)\n",
            "for x in {1, 2, 3}:\n    pass\n",
            "for x in set(items):\n    pass\n",
        ],
    )
    def test_nondeterminism_flagged_in_sim_dirs(self, snippet):
        out = lint_src(SIM_PATH, snippet)
        assert [v.code for v in out] == ["SAN-L001"]

    def test_same_code_allowed_outside_sim_dirs(self):
        out = lint_src(OTHER_PATH, "import time\nt = time.time()\n")
        assert not out

    def test_sim_clock_is_legal(self):
        out = lint_src(SIM_PATH, "now = sim.now\nrng.integers(0, 10)\n")
        assert not out

    def test_sorted_set_iteration_is_legal(self):
        out = lint_src(SIM_PATH, "for x in sorted({1, 2}):\n    pass\n")
        assert not out


class TestBufferApiRule:
    def test_bytearray_flagged_in_protocols(self):
        out = lint_src(PROTO_PATH, "payload = bytearray(64)\n")
        assert [v.code for v in out] == ["SAN-L002"]

    def test_bytearray_allowed_elsewhere(self):
        assert not lint_src(OTHER_PATH, "payload = bytearray(64)\n")


class TestMetricIdentityRule:
    def test_one_name_two_kinds_flagged(self):
        sites: dict = {}
        lint_file(OTHER_PATH, "m.counter('pml.x').inc()\n", sites)
        lint_file(SIM_PATH, "m.gauge('pml.x').set(1)\n", sites)
        from repro.sanitize.lint import _metric_conflicts

        out = _metric_conflicts(sites)
        assert {v.code for v in out} == {"SAN-L003"}
        assert len(out) == 2  # one violation per conflicting site

    def test_one_name_one_kind_clean(self):
        sites: dict = {}
        lint_file(OTHER_PATH, "m.counter('pml.x').inc()\nm.counter('pml.x').inc()\n", sites)
        from repro.sanitize.lint import _metric_conflicts

        assert not _metric_conflicts(sites)


class TestCanonicalIdentityRule:
    DT_PATH = "src/repro/datatype/ddt.py"

    @pytest.mark.parametrize(
        "snippet",
        [
            "cache[dt.type_id] = units\n",
            "key = (dt.type_id, count)\n",
            "print(self.dt.type_id)\n",
        ],
    )
    def test_type_id_flagged_outside_datatype_package(self, snippet):
        out = lint_src(OTHER_PATH, snippet)
        assert [v.code for v in out] == ["SAN-L004"]
        assert "canonical_key" in out[0].message

    def test_type_id_allowed_inside_datatype_package(self):
        assert not lint_src(self.DT_PATH, "seen.add(dt.type_id)\n")

    def test_canonical_key_is_legal_everywhere(self):
        out = lint_src(
            OTHER_PATH,
            "key = canonical_key(dt, count, s)\nname = dt.display_id\n",
        )
        assert not out


class TestSyntaxRule:
    def test_unparsable_file_reported(self):
        out = lint_src(SIM_PATH, "def broken(:\n")
        assert [v.code for v in out] == ["SAN-L000"]


class TestRunLint:
    def test_directory_sweep(self, tmp_path):
        bad_dir = tmp_path / "src" / "repro" / "sim"
        bad_dir.mkdir(parents=True)
        (bad_dir / "bad.py").write_text("import time\nt = time.time()\n")
        out = run_lint([str(tmp_path)])
        assert len(out) == 1 and out[0].code == "SAN-L001"

    def test_violation_str_is_actionable(self):
        v = LintViolation("a/b.py", 7, "SAN-L001", "nondeterministic call")
        assert str(v) == "a/b.py:7: SAN-L001 nondeterministic call"


class TestSelfSendRule:
    def test_yield_send_to_own_rank_flagged(self):
        out = lint_src(
            OTHER_PATH,
            "def f(mpi, buf, dt):\n"
            "    yield mpi.send(buf, dt, 1, dest=mpi.rank, tag=0)\n",
        )
        assert [v.code for v in out] == ["SAN-L005"]

    def test_rank_alias_flagged(self):
        out = lint_src(
            OTHER_PATH,
            "def f(mpi, buf, dt):\n"
            "    me = mpi.rank\n"
            "    yield mpi.send(buf, dt, 1, dest=me, tag=0)\n",
        )
        assert [v.code for v in out] == ["SAN-L005"]

    def test_isend_to_self_is_legal(self):
        # the collectives' pattern: isend, recv, then wait the request
        out = lint_src(
            OTHER_PATH,
            "def f(mpi, buf, dt):\n"
            "    req = mpi.isend(buf, dt, 1, dest=mpi.rank, tag=0)\n"
            "    yield mpi.recv(buf, dt, 1, source=mpi.rank, tag=0)\n"
            "    yield req\n",
        )
        assert not out

    def test_send_to_peer_is_legal(self):
        out = lint_src(
            OTHER_PATH,
            "def f(mpi, buf, dt, peer):\n"
            "    yield mpi.send(buf, dt, 1, dest=peer, tag=0)\n",
        )
        assert not out


class TestDroppedRequestRule:
    def test_discarded_request_flagged(self):
        out = lint_src(
            OTHER_PATH,
            "def f(mpi, buf, dt):\n"
            "    mpi.isend(buf, dt, 1, dest=1, tag=0)\n",
        )
        assert [v.code for v in out] == ["SAN-L006"]

    def test_never_read_binding_flagged(self):
        out = lint_src(
            OTHER_PATH,
            "def f(mpi, buf, dt):\n"
            "    r = mpi.irecv(buf, dt, 1, source=0, tag=0)\n"
            "    yield mpi.barrier()\n",
        )
        assert [v.code for v in out] == ["SAN-L006"]

    def test_waited_request_is_legal(self):
        out = lint_src(
            OTHER_PATH,
            "def f(mpi, buf, dt):\n"
            "    r = mpi.irecv(buf, dt, 1, source=0, tag=0)\n"
            "    yield r\n",
        )
        assert not out

    def test_request_in_collection_is_legal(self):
        out = lint_src(
            OTHER_PATH,
            "def f(mpi, bufs, dt):\n"
            "    reqs = [mpi.irecv(b, dt, 1) for b in bufs]\n"
            "    yield mpi.wait_all(*reqs)\n",
        )
        assert not out

    def test_closure_wait_is_legal(self):
        out = lint_src(
            OTHER_PATH,
            "def f(mpi, buf, dt):\n"
            "    r = mpi.isend(buf, dt, 1, dest=1)\n"
            "    def waiter():\n"
            "        yield r\n"
            "    return waiter\n",
        )
        assert not out


class TestMissingPathRule:
    def test_nonexistent_path_is_a_violation(self):
        out = run_lint(["no/such/dir", "ghost.py"])
        assert [v.code for v in out] == ["SAN-L000", "SAN-L000"]

    def test_cli_exits_nonzero_on_missing_path(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.sanitize.lint", "no_such_path"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert "SAN-L000" in proc.stdout


class TestOutputFormats:
    def _violating_tree(self, tmp_path):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nt = time.time()\n")
        return tmp_path

    def test_json_format(self, tmp_path):
        import json

        root = self._violating_tree(tmp_path)
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.sanitize.lint",
                str(root), "--format", "json",
            ],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        doc = json.loads(proc.stdout)
        assert doc["count"] == 1 and doc["ok"] is False
        (v,) = doc["violations"]
        assert v["code"] == "SAN-L001" and v["line"] == 2

    def test_json_format_clean(self):
        import json

        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.sanitize.lint",
                "src", "--format", "json",
            ],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert json.loads(proc.stdout)["ok"] is True

    def test_github_format(self, tmp_path):
        root = self._violating_tree(tmp_path)
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.sanitize.lint",
                str(root), "--format", "github",
            ],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        line = proc.stdout.strip().splitlines()[0]
        assert line.startswith("::error file=")
        assert "title=SAN-L001" in line and ",line=2," in line


class TestRepoIsClean:
    def test_src_tree_passes_lint(self):
        """The CI gate: the whole src tree lints clean."""
        assert run_lint(["src"]) == []

    def test_cli_exit_codes(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.sanitize.lint", "src"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nt = time.time()\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.sanitize.lint", str(tmp_path)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert "SAN-L001" in proc.stdout
