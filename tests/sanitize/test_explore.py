"""Schedule-perturbation explorer tests (``repro.sanitize.verify.explore``).

The acceptance bar: >= 50 perturbed schedules of the eager and
rendezvous scenarios complete bit-identically to the unperturbed
baseline.  Plus harness self-tests — the perturbed simulator really
does reorder same-timestamp events (deterministically per seed), and
the explorer really does flag divergence when a scenario's result
depends on the schedule.
"""

from __future__ import annotations

import json

import pytest

from repro.sanitize.verify import explore as ex
from repro.sim.core import Simulator


class TestPerturbedSimulator:
    @staticmethod
    def _order(sim, n: int = 12) -> list:
        fired: list = []
        for i in range(n):
            sim.schedule_at(1.0, lambda i=i: fired.append(i))
        sim.run(until=2.0)
        return fired

    def test_reorders_same_timestamp_events(self):
        baseline = self._order(Simulator())
        assert baseline == list(range(12))  # FIFO by construction
        orders = {tuple(self._order(ex.PerturbedSimulator(s))) for s in range(8)}
        assert len(orders) > 1
        assert any(o != tuple(baseline) for o in orders)

    def test_deterministic_per_seed(self):
        a = self._order(ex.PerturbedSimulator(42))
        b = self._order(ex.PerturbedSimulator(42))
        assert a == b

    def test_distinct_timestamps_keep_time_order(self):
        sim = ex.PerturbedSimulator(7)
        fired: list = []
        for i, t in enumerate((3.0, 1.0, 2.0)):
            sim.schedule_at(t, lambda i=i: fired.append(i))
        sim.run(until=4.0)
        assert fired == [1, 2, 0]

    def test_timer_cancel_works_with_tuple_seqs(self):
        sim = ex.PerturbedSimulator(5)
        fired: list = []
        keep = sim.call_at(1.0, lambda: fired.append("keep"))
        kill = sim.call_at(1.0, lambda: fired.append("kill"))
        kill.cancel()
        sim.run(until=2.0)
        assert fired == ["keep"]
        assert not keep.cancelled and kill.cancelled


class TestScenarios:
    @pytest.mark.parametrize("name", ["eager", "rendezvous"])
    def test_fifty_schedules_bit_identical(self, name):
        """The ISSUE acceptance criterion, verbatim."""
        res = ex.explore(name, schedules=50, seed=0)
        assert res.ok, (res.divergent, res.errors)
        assert res.identical == 50

    @pytest.mark.parametrize(
        "name", ["smoke-sm-2gpu", "smoke-ib", "smoke-cpu", "coll_crossover"]
    )
    def test_remaining_scenarios_quick(self, name):
        res = ex.explore(name, schedules=3, seed=1)
        assert res.ok, (res.divergent, res.errors)

    def test_divergence_is_caught(self, monkeypatch):
        """A schedule-dependent 'scenario' must produce divergent digests
        — proof the harness can fail, not just pass."""

        def leaky(sim):
            # leaks the schedule into the "result": perturbed sims
            # consume rng draws, the baseline Simulator has no rng
            if isinstance(sim, ex.PerturbedSimulator):
                return f"{sim._rng.random():.6f}"
            return "baseline"

        monkeypatch.setitem(ex.SCENARIOS, "leaky", leaky)
        res = ex.explore("leaky", schedules=4, seed=0)
        assert not res.ok
        assert len(res.divergent) == 4


class TestCli:
    def test_list(self, capsys):
        assert ex.main(["--list"]) == 0
        out = capsys.readouterr().out.split()
        assert "eager" in out and "coll_crossover" in out

    def test_unknown_scenario_exits_2(self, capsys):
        assert ex.main(["no-such-scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_json_report(self, tmp_path, capsys):
        path = tmp_path / "explore.json"
        rc = ex.main(["eager", "--schedules", "2", "--json", str(path)])
        assert rc == 0
        doc = json.loads(path.read_text())
        assert doc["ok"] is True
        (r,) = doc["results"]
        assert r["scenario"] == "eager" and r["identical"] == 2

    def test_divergence_exits_nonzero(self, monkeypatch, capsys):
        monkeypatch.setitem(
            ex.SCENARIOS,
            "leaky",
            lambda sim: "x" if isinstance(sim, ex.PerturbedSimulator) else "y",
        )
        assert ex.main(["leaky", "--schedules", "2"]) == 1
        assert "DIVERGED" in capsys.readouterr().out

    def test_module_entry_point(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro.sanitize.explore", "--list"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "rendezvous" in proc.stdout
