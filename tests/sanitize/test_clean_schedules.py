"""Satellite guarantee: every protocol runs sanitizer-clean (no false
positives) with all checkers fully on, across smoke message sizes.

``sm-2gpu`` exercises ipc_rdma (GET and PUT ring pipelines), ``ib``
the host-staged pipeline with zero-copy, ``cpu`` the pure host path
(copyinout).  A single false positive here means an HB edge of the
model is missing from the detector — treat as a detector bug, not as
something to silence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import sanitize
from repro.datatype.ddt import vector
from repro.datatype.primitives import DOUBLE
from repro.mpi.config import MpiConfig
from repro.sanitize import SanitizeOptions
from tests.mpi.test_chaos import faulted_roundtrip

SMOKE_SIZES = {
    "tiny": (vector(8, 4, 6, DOUBLE).commit(), 1),
    "medium": (vector(64, 32, 48, DOUBLE).commit(), 1),
    "multi-count": (vector(32, 16, 24, DOUBLE).commit(), 3),
}


def clean_roundtrip(kind: str, config: MpiConfig, dt, count):
    with sanitize.enabled(SanitizeOptions.all(mode="raise")) as rep:
        want, got, world = faulted_roundtrip(kind, config, dt=dt, count=count)
        assert np.array_equal(want, got)
    assert not rep.violations, rep.summary()


@pytest.mark.parametrize("kind", ["sm-2gpu", "ib", "cpu"])
@pytest.mark.parametrize("size", sorted(SMOKE_SIZES))
def test_protocols_sanitizer_clean(kind, size):
    dt, count = SMOKE_SIZES[size]
    clean_roundtrip(
        kind, MpiConfig(frag_bytes=2048, eager_limit=0), dt, count
    )


@pytest.mark.parametrize("size", sorted(SMOKE_SIZES))
def test_put_mode_sanitizer_clean(size):
    dt, count = SMOKE_SIZES[size]
    clean_roundtrip(
        "sm-2gpu",
        MpiConfig(frag_bytes=2048, eager_limit=0, rdma_mode="put"),
        dt,
        count,
    )


def test_eager_path_sanitizer_clean():
    dt, count = SMOKE_SIZES["tiny"]
    clean_roundtrip("sm-2gpu", MpiConfig(), dt, count)
