"""Unit tests for the vector-clock happens-before race detector."""

from __future__ import annotations

import pytest

from repro import sanitize
from repro.hw.memory import Memory, MemoryKind
from repro.sanitize import SanitizeOptions, SanitizerError
from repro.sanitize.race import RaceDetector
from repro.sanitize.report import SanitizerReport


@pytest.fixture
def det():
    rep = SanitizerReport(mode="record")
    return RaceDetector(rep), rep


def buf(n=1024):
    return Memory("m", 1 << 20, MemoryKind.DEVICE).alloc(n)


class TestEpochChecking:
    def test_unordered_write_write_flagged(self, det):
        race, rep = det
        b = buf()
        race.enter("a")
        race.record(b, 0, 64, True, "wA")
        race.exit()
        race.enter("b")
        race.record(b, 0, 64, True, "wB")
        race.exit()
        (v,) = rep.by_code("race.unordered_access")
        assert "no happens-before edge" in v.message

    def test_read_read_never_flagged(self, det):
        race, rep = det
        b = buf()
        race.enter("a")
        race.record(b, 0, 64, False, "rA")
        race.exit()
        race.enter("b")
        race.record(b, 0, 64, False, "rB")
        race.exit()
        assert not rep.violations

    def test_disjoint_ranges_never_flagged(self, det):
        race, rep = det
        b = buf()
        race.enter("a")
        race.record(b, 0, 64, True, "wA")
        race.exit()
        race.enter("b")
        race.record(b, 64, 128, True, "wB")
        race.exit()
        assert not rep.violations

    def test_hb_edge_suppresses_report(self, det):
        race, rep = det
        b = buf()
        race.enter("a")
        race.record(b, 0, 64, True, "wA")
        snap = race.snapshot()
        race.exit()
        # actor b learns of a's access (e.g. via a resolved future)
        race.join_actor("b", snap)
        race.enter("b")
        race.record(b, 0, 64, True, "wB")
        race.exit()
        assert not rep.violations

    def test_aliasing_subbuffers_compared_absolutely(self, det):
        race, rep = det
        b = buf()
        lo_view = b[0:128]
        race.enter("a")
        race.record(lo_view, 0, 128, True, "wA")
        race.exit()
        race.enter("b")
        race.record(b, 200, 300, True, "wB")  # disjoint in absolute bytes
        race.exit()
        assert not rep.violations
        race.enter("c")
        race.record(b[64:256], 0, 32, True, "wC")  # absolute [64, 96)
        race.exit()
        assert rep.by_code("race.unordered_access")


class TestStreamOps:
    def test_two_streams_unsynchronized_race(self):
        """Overlapping writes from two streams with no event edge."""
        from repro.hw.node import Cluster

        with sanitize.enabled(SanitizeOptions.all(mode="record")) as rep:
            cluster = Cluster(n_nodes=1, gpus_per_node=2)
            gpu = cluster.nodes[0].gpus[0]
            b = gpu.memory.alloc(4096)
            s1 = gpu.default_stream
            s2 = gpu.stream("other")
            s1.enqueue(1e-6, label="w1", writes=((b, 0, 4096),))
            s2.enqueue(1e-6, label="w2", writes=((b, 0, 4096),))
            cluster.sim.run()
        assert rep.by_code("race.unordered_access")

    def test_same_stream_serializes(self):
        from repro.hw.node import Cluster

        with sanitize.enabled(SanitizeOptions.all(mode="raise")) as rep:
            cluster = Cluster(n_nodes=1, gpus_per_node=2)
            gpu = cluster.nodes[0].gpus[0]
            b = gpu.memory.alloc(4096)
            s1 = gpu.default_stream
            s1.enqueue(1e-6, label="w1", writes=((b, 0, 4096),))
            s1.enqueue(1e-6, label="w2", writes=((b, 0, 4096),))
            cluster.sim.run()
        assert not rep.violations

    def test_synchronize_orders_cross_stream(self):
        from repro.hw.node import Cluster

        with sanitize.enabled(SanitizeOptions.all(mode="raise")) as rep:
            cluster = Cluster(n_nodes=1, gpus_per_node=2)
            gpu = cluster.nodes[0].gpus[0]
            b = gpu.memory.alloc(4096)
            s1 = gpu.default_stream
            s2 = gpu.stream("other")

            def main():
                s1.enqueue(1e-6, label="w1", writes=((b, 0, 4096),))
                yield s1.synchronize()
                s2.enqueue(1e-6, label="w2", writes=((b, 0, 4096),))

            cluster.sim.run_until_complete(cluster.sim.spawn(main()))
        assert not rep.violations
