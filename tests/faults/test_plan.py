"""Unit tests for the fault model: spec parsing, seeding, determinism."""

from __future__ import annotations

import pytest

from repro.faults.plan import AmFault, FaultPlan, FaultSpec


class TestFaultSpec:
    def test_defaults_inactive(self):
        spec = FaultSpec()
        assert not spec.active

    def test_any_probability_activates(self):
        assert FaultSpec(am_drop=0.1).active
        assert FaultSpec(ipc_open_fail=0.1).active
        assert FaultSpec(staging_fail=0.1).active

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(am_drop=1.5)
        with pytest.raises(ValueError):
            FaultSpec(am_dup=-0.1)
        with pytest.raises(ValueError):
            FaultSpec(am_delay_s=-1.0)
        with pytest.raises(ValueError):
            FaultSpec(max_faults=-1)

    def test_parse_basic(self):
        spec = FaultSpec.parse("seed=3,am_drop=0.1,am_delay=0.25")
        assert spec.seed == 3
        assert spec.am_drop == 0.1
        assert spec.am_delay == 0.25
        assert spec.am_dup == 0.0

    def test_parse_targets(self):
        spec = FaultSpec.parse("targets=frag+ack+done")
        assert spec.targets == ("frag", "ack", "done")

    def test_parse_max_faults(self):
        assert FaultSpec.parse("max_faults=5").max_faults == 5

    def test_parse_empty_is_default(self):
        assert FaultSpec.parse("") == FaultSpec()

    def test_parse_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fault knob"):
            FaultSpec.parse("am_drp=0.1")

    def test_parse_bad_entry_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            FaultSpec.parse("am_drop")

    def test_parse_validates(self):
        with pytest.raises(ValueError):
            FaultSpec.parse("am_drop=2.0")


def _decisions(plan: FaultPlan, n: int = 60) -> list:
    return [plan.am_decision("x1.r.frag") for _ in range(n)]


class TestFaultPlan:
    def test_same_seed_same_plan(self):
        spec = FaultSpec(seed=42, am_drop=0.2, am_dup=0.2, am_delay=0.2)
        assert _decisions(FaultPlan(spec)) == _decisions(FaultPlan(spec))

    def test_different_seed_different_plan(self):
        a = FaultSpec(seed=1, am_drop=0.3, am_dup=0.3)
        b = FaultSpec(seed=2, am_drop=0.3, am_dup=0.3)
        assert _decisions(FaultPlan(a)) != _decisions(FaultPlan(b))

    def test_non_target_handlers_untouched_and_rng_free(self):
        """Control-plane messages never fault AND never perturb the plan."""
        spec = FaultSpec(seed=9, am_drop=0.5)
        a, b = FaultPlan(spec), FaultPlan(spec)
        for _ in range(20):
            assert a.am_decision("x1.r.cts") is None
            assert a.am_decision("pml.rts") is None
        # plan a consulted only control handlers so far: its data-plane
        # future must match a fresh plan's exactly
        assert _decisions(a) == _decisions(b)

    def test_drop_probability_one_always_drops(self):
        plan = FaultPlan(FaultSpec(seed=0, am_drop=1.0))
        for d in _decisions(plan, 10):
            assert d == AmFault(drop=True)

    def test_max_faults_caps_injection(self):
        plan = FaultPlan(FaultSpec(seed=0, am_drop=1.0, max_faults=3))
        decisions = _decisions(plan, 10)
        assert sum(d is not None for d in decisions) == 3
        assert plan.injected == 3

    def test_delay_carries_configured_duration(self):
        plan = FaultPlan(FaultSpec(seed=0, am_delay=1.0, am_delay_s=1e-3))
        d = plan.am_decision("x1.r.frag")
        assert d is not None and d.delay_s == 1e-3 and not d.drop

    def test_counters_track_injections(self):
        plan = FaultPlan(FaultSpec(seed=0, am_drop=1.0, max_faults=4))
        _decisions(plan, 10)
        snap = plan.metrics.snapshot()
        assert snap.get("faults.am_drop") == 4

    def test_staging_counter_carries_kind(self):
        plan = FaultPlan(FaultSpec(seed=0, staging_fail=1.0))
        assert plan.fail_staging("device")
        assert plan.metrics.snapshot().get("faults.staging_fail.device") == 1

    def test_ipc_open_fail(self):
        plan = FaultPlan(FaultSpec(seed=0, ipc_open_fail=1.0))
        assert plan.fail_ipc_open()
        assert not FaultPlan(FaultSpec(seed=0)).fail_ipc_open()
