"""Frozen pre-optimization event loop — the determinism reference.

This is a verbatim copy of the ``Simulator``/``TimerHandle`` pair as they
stood before the fast-path rewrite (PR 7): a binary heap of
``(when, seq, TimerHandle)`` tuples, cancelled timers skipped at pop
time, ties broken by insertion order.  The optimized loop in
:mod:`repro.sim.core` must produce bit-for-bit identical event sequences
on any workload; ``tests/sim/test_equivalence.py`` drives the same
seeded workloads through both and compares ``(time, label)`` traces.

Do **not** "improve" this file — its value is that it does not change.

The only additions are the thin adapter methods at the bottom
(``schedule_at``/``schedule_after``/``schedule_soon`` and the
``timers_cancelled``/``peak_queue_depth`` accessors) so that the current
``Future``/``Process``/``FifoLink`` code, which now uses the fast
no-handle scheduling primitives, runs unchanged on this reference clock.
They are expressed in terms of the original ``call_at`` so the event
sequence is exactly what the old loop produced.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Optional

from repro.obs import phases as _phases
from repro.sim.core import Future, Process, SimulationError

__all__ = ["ReferenceSimulator", "ReferenceTimerHandle"]


class ReferenceTimerHandle:
    """Original cancellable handle: ``cancel`` just drops the callback."""

    __slots__ = ("_fn",)

    def __init__(self, fn: Callable[[], None]) -> None:
        self._fn: Optional[Callable[[], None]] = fn

    def cancel(self) -> None:
        self._fn = None

    @property
    def cancelled(self) -> bool:
        return self._fn is None


class ReferenceSimulator:
    """The pre-optimization deterministic event loop, kept verbatim."""

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: list[tuple[float, int, ReferenceTimerHandle]] = []
        self._events_processed = 0

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    # -- scheduling primitives (original implementations) ------------------
    def call_at(self, when: float, fn: Callable[[], None]) -> ReferenceTimerHandle:
        if when < self._now - 1e-18:
            raise SimulationError(
                f"cannot schedule at {when} before current time {self._now}"
            )
        handle = ReferenceTimerHandle(fn)
        heapq.heappush(self._queue, (max(when, self._now), self._seq, handle))
        self._seq += 1
        return handle

    def call_after(self, delay: float, fn: Callable[[], None]) -> ReferenceTimerHandle:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self._now + delay, fn)

    def call_soon(self, fn: Callable[[], None]) -> ReferenceTimerHandle:
        return self.call_at(self._now, fn)

    # -- futures ------------------------------------------------------------
    def future(self, label: str = "") -> Future:
        return Future(self, label=label)

    def timeout(self, delay: float, value: Any = None, label: str = "") -> Future:
        fut = Future(self, label=label or f"timeout({delay:g})")
        self.call_after(delay, lambda: fut.resolve(value))
        return fut

    def spawn(self, gen: Generator[Any, Any, Any], label: str = "") -> Process:
        return Process(self, gen, label=label)

    # -- running -------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        with _phases.measure(_phases.SIM_RUN):
            return self._run(until)

    def _run(self, until: Optional[float] = None) -> float:
        while self._queue:
            when, _, handle = self._queue[0]
            if handle._fn is None:
                heapq.heappop(self._queue)
                continue
            if until is not None and when > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            self._now = when
            self._events_processed += 1
            handle._fn()
        return self._now

    def run_until_complete(self, proc: Future, limit: float = 1e9) -> Any:
        self.run(until=None if limit is None else self._now + limit)
        if not proc.done:
            raise SimulationError(
                f"deadlock: {proc.label!r} never completed "
                f"(queue empty at t={self._now:g})"
            )
        return proc.value

    # -- adapters for the post-rewrite scheduling API ----------------------
    # Everything below forwards to the original primitives so workloads
    # written against the new Simulator surface run on this clock too.
    def schedule_at(self, when: float, fn: Callable[[], None]) -> None:
        self.call_at(when, fn)

    def schedule_after(self, delay: float, fn: Callable[[], None]) -> None:
        self.call_after(delay, fn)

    def schedule_soon(self, fn: Callable[[], None]) -> None:
        self.call_soon(fn)

    @property
    def timers_cancelled(self) -> int:
        # the old loop never tracked cancellations; count live cancelled
        # heap entries so assertions about "some timers were cancelled"
        # can still run against the reference
        return sum(1 for _, _, h in self._queue if h._fn is None)

    @property
    def peak_queue_depth(self) -> int:
        return len(self._queue)
