"""Cancellable timers: the retransmit machinery's substrate."""

from __future__ import annotations


def test_cancelled_timer_never_fires(sim):
    fired = []
    sim.call_after(1.0, lambda: fired.append("event"))
    handle = sim.call_after(5.0, lambda: fired.append("timer"))
    handle.cancel()
    end = sim.run()
    assert fired == ["event"]
    # a cancelled entry must not drag the clock to its deadline
    assert end == 1.0


def test_cancelled_property(sim):
    handle = sim.call_after(1.0, lambda: None)
    assert not handle.cancelled
    handle.cancel()
    assert handle.cancelled


def test_cancel_after_fire_is_noop(sim):
    fired = []
    handle = sim.call_after(1.0, lambda: fired.append(1))
    sim.run()
    assert fired == [1]
    handle.cancel()  # must not raise
    assert handle.cancelled


def test_cancel_is_idempotent(sim):
    handle = sim.call_after(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert handle.cancelled
    assert sim.run() == 0.0
