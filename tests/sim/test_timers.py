"""Cancellable timers: the retransmit machinery's substrate."""

from __future__ import annotations


def test_cancelled_timer_never_fires(sim):
    fired = []
    sim.call_after(1.0, lambda: fired.append("event"))
    handle = sim.call_after(5.0, lambda: fired.append("timer"))
    handle.cancel()
    end = sim.run()
    assert fired == ["event"]
    # a cancelled entry must not drag the clock to its deadline
    assert end == 1.0


def test_cancelled_property(sim):
    handle = sim.call_after(1.0, lambda: None)
    assert not handle.cancelled
    handle.cancel()
    assert handle.cancelled


def test_cancel_after_fire_is_noop(sim):
    fired = []
    handle = sim.call_after(1.0, lambda: fired.append(1))
    sim.run()
    assert fired == [1]
    handle.cancel()  # must not raise
    assert handle.cancelled


def test_cancel_is_idempotent(sim):
    handle = sim.call_after(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert handle.cancelled
    assert sim.run() == 0.0


def test_stale_cancel_cannot_kill_recycled_slot(sim):
    """A handle whose entry was recycled must not cancel the new tenant."""
    fired = []
    stale = sim.call_after(1.0, lambda: fired.append("old"))
    sim.run()  # fires; its heap slot goes to the free list
    # the next timer reuses that slot (same list object, new seq)
    sim.call_after(1.0, lambda: fired.append("new"))
    stale.cancel()  # must be a no-op on the recycled entry
    sim.run()
    assert fired == ["old", "new"]


# -- backwards-time guard (relative tolerance at large clock values) --------


def test_call_at_tolerates_rounding_at_large_clock(sim):
    """A few-ulp-in-the-past deadline at t=1e9 clamps instead of raising.

    ``now + dt`` computed by a caller can round to just below ``now``
    once the clock is large; the guard is relative, so representational
    noise is forgiven while genuine backwards scheduling still fails.
    """
    fired = []
    sim.call_after(1e9, lambda: None)
    sim.run()
    now = sim.now
    assert now == 1e9
    # one ulp below now: far inside the relative tolerance
    just_past = now - now * 1e-16
    assert just_past < now
    sim.call_at(just_past, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [now], "clamped to now, not scheduled in the past"


def test_call_at_still_rejects_genuinely_past_times(sim):
    import pytest

    from repro.sim.core import SimulationError

    sim.call_after(1e9, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(sim.now - 1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_at(sim.now - 1.0, lambda: None)


# -- cancelled-timer accounting and heap compaction -------------------------


def test_timers_cancelled_counter(sim):
    handles = [sim.call_after(10.0 + i, lambda: None) for i in range(5)]
    assert sim.timers_cancelled == 0
    for h in handles[:3]:
        h.cancel()
    assert sim.timers_cancelled == 3
    handles[0].cancel()  # idempotent: must not double-count
    assert sim.timers_cancelled == 3
    sim.run()
    assert sim.timers_cancelled == 3


def test_mass_cancellation_compacts_heap(sim):
    """Cancelling a watchdog flood must shrink the live heap, not leak it."""
    n = 4096
    handles = [sim.call_after(100.0 + i, lambda: None) for i in range(n)]
    sim.call_after(1.0, lambda: None)
    assert len(sim._heap) == n + 1
    for h in handles:
        h.cancel()
    # lazy compaction triggers once cancelled entries dominate the heap
    assert len(sim._heap) < n // 2, (
        f"heap kept {len(sim._heap)} entries after cancelling {n}"
    )
    assert sim.timers_cancelled == n
    assert sim.run() == 1.0  # no cancelled deadline dragged the clock


def test_peak_queue_depth_and_reset(sim):
    for i in range(10):
        sim.call_after(1.0 + i, lambda: None)
    assert sim.peak_queue_depth == 10
    sim.run()
    assert sim.peak_queue_depth == 10
    sim.reset_peak_depth()
    assert sim.peak_queue_depth == 0
    sim.call_after(1.0, lambda: None)
    sim.run()
    assert sim.peak_queue_depth == 1
