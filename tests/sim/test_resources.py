"""Unit + property tests for FIFO links, semaphores, mailboxes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.core import Simulator
from repro.sim.resources import FifoLink, Mailbox, Resource, Semaphore
from repro.sim.trace import Tracer


class TestFifoLink:
    def test_single_transfer_time(self, sim):
        link = FifoLink(sim, "l", bandwidth=1e9, latency=1e-6, overhead=2e-6)
        fut = link.transfer(1000, payload="data")
        sim.run()
        # overhead + bytes/bw + latency
        assert sim.now == pytest.approx(2e-6 + 1e-6 + 1e-6)
        assert fut.value == "data"

    def test_fifo_no_reorder(self, sim):
        link = FifoLink(sim, "l", bandwidth=1e6)
        order = []
        for i, n in enumerate([100, 1, 1000, 5]):
            link.transfer(n).add_callback(lambda _f, i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3]

    def test_back_to_back_transfers_serialize(self, sim):
        link = FifoLink(sim, "l", bandwidth=1e9)
        link.transfer(1000)
        fut = link.transfer(1000)
        sim.run()
        assert sim.now == pytest.approx(2e-6)
        assert fut.done

    def test_latency_pipelines_across_transfers(self, sim):
        # occupancy serializes, latency overlaps: 2 transfers arrive
        # 1us apart, each late by the latency
        link = FifoLink(sim, "l", bandwidth=1e9, latency=5e-6)
        arrivals = []
        link.transfer(1000).add_callback(lambda _f: arrivals.append(sim.now))
        link.transfer(1000).add_callback(lambda _f: arrivals.append(sim.now))
        sim.run()
        assert arrivals[0] == pytest.approx(6e-6)
        assert arrivals[1] == pytest.approx(7e-6)

    def test_zero_byte_transfer_costs_overhead_only(self, sim):
        link = FifoLink(sim, "l", bandwidth=1e9, overhead=3e-6)
        link.transfer(0)
        sim.run()
        assert sim.now == pytest.approx(3e-6)

    def test_extra_overhead_charged(self, sim):
        link = FifoLink(sim, "l", bandwidth=1e9)
        link.transfer(0, extra_overhead=7e-6)
        sim.run()
        assert sim.now == pytest.approx(7e-6)

    def test_negative_size_rejected(self, sim):
        link = FifoLink(sim, "l", bandwidth=1e9)
        with pytest.raises(ValueError):
            link.transfer(-1)

    def test_bad_construction_rejected(self, sim):
        with pytest.raises(ValueError):
            FifoLink(sim, "l", bandwidth=0)
        with pytest.raises(ValueError):
            FifoLink(sim, "l", bandwidth=1.0, latency=-1)

    def test_counters(self, sim):
        link = FifoLink(sim, "l", bandwidth=1e9)
        link.transfer(100)
        link.transfer(200)
        sim.run()
        assert link.bytes_transferred == 300
        assert link.transfers == 2

    def test_occupy_until_extends_busy_horizon(self, sim):
        link = FifoLink(sim, "l", bandwidth=1e9)
        link.occupy_until(5e-6, nbytes=10)
        fut = link.transfer(0)
        sim.run()
        assert sim.now == pytest.approx(5e-6)
        assert fut.done

    @settings(max_examples=50, deadline=None)
    @given(sizes=st.lists(st.integers(0, 10_000), min_size=1, max_size=20))
    def test_throughput_never_exceeds_bandwidth(self, sizes):
        sim = Simulator()
        tracer = Tracer()
        bw = 1e6
        link = FifoLink(sim, "l", bandwidth=bw, tracer=tracer)
        for n in sizes:
            link.transfer(n)
        sim.run()
        busy = tracer.busy_time("l")
        assert busy * bw >= sum(sizes) - 1e-9
        # and the link never idles while work is queued: FIFO occupancy
        # equals the sum of individual occupancies
        assert busy == pytest.approx(sum(n / bw for n in sizes))


class TestResource:
    def test_capacity_respected(self, sim):
        res = Resource(sim, capacity=2)
        a = res.acquire()
        b = res.acquire()
        c = res.acquire()
        assert a.done and b.done and not c.done
        res.release()
        assert c.done

    def test_release_without_acquire_rejected(self, sim):
        res = Resource(sim, capacity=1)
        with pytest.raises(Exception):
            res.release()

    def test_fifo_handoff(self, sim):
        res = Resource(sim, capacity=1)
        res.acquire()
        waiters = [res.acquire() for _ in range(3)]
        got = []
        for i, w in enumerate(waiters):
            w.add_callback(lambda _f, i=i: got.append(i))
        for _ in range(3):
            res.release()
        assert got == [0, 1, 2]


class TestSemaphore:
    def test_initial_value_consumed(self, sim):
        sem = Semaphore(sim, value=2)
        assert sem.acquire().done
        assert sem.acquire().done
        assert not sem.acquire().done

    def test_release_wakes_fifo(self, sim):
        sem = Semaphore(sim, value=0)
        a, b = sem.acquire(), sem.acquire()
        sem.release()
        assert a.done and not b.done
        sem.release()
        assert b.done

    def test_release_n(self, sim):
        sem = Semaphore(sim, value=0)
        waiters = [sem.acquire() for _ in range(3)]
        sem.release(3)
        assert all(w.done for w in waiters)

    def test_negative_initial_rejected(self, sim):
        with pytest.raises(ValueError):
            Semaphore(sim, value=-1)


class TestMailbox:
    def test_put_then_get(self, sim):
        box = Mailbox(sim)
        box.put("x")
        assert box.get().value == "x"

    def test_get_then_put_wakes_getter(self, sim):
        box = Mailbox(sim)
        fut = box.get()
        assert not fut.done
        box.put("y")
        assert fut.value == "y"

    def test_fifo_order(self, sim):
        box = Mailbox(sim)
        for i in range(5):
            box.put(i)
        assert [box.get().value for _ in range(5)] == list(range(5))

    def test_try_get(self, sim):
        box = Mailbox(sim)
        ok, _ = box.try_get()
        assert not ok
        box.put(7)
        ok, v = box.try_get()
        assert ok and v == 7

    def test_len(self, sim):
        box = Mailbox(sim)
        box.put(1)
        box.put(2)
        assert len(box) == 2
