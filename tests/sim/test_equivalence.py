"""Fast loop vs frozen reference: bit-for-bit event-sequence equivalence.

The optimized ``Simulator`` (array-backed heap, slot recycling, lazy
compaction, fast-dispatch binding, eager process start) is only allowed
to be *faster* than the pre-rewrite loop — never *different*.  These
tests drive identical workloads through the current loop and through
:class:`tests.sim.reference_core.ReferenceSimulator` (a verbatim copy of
the old one) and require the ``(time, label)`` traces to match exactly,
including tie-breaking order and float timestamps.

A sanitized leg re-runs a workload under ``repro.sanitize`` and asserts
that (a) the dispatch binding actually swapped to the instrumented
forms, (b) the event sequence is unchanged, and (c) no violations are
reported — i.e. the fast-dispatch machinery still emits every
happens-before edge the race checker needs.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import sanitize
from repro.sanitize.options import SanitizeOptions
from repro.sim import core
from repro.sim.core import Future, Simulator, all_of, any_of
from repro.sim.resources import FifoLink

from .reference_core import ReferenceSimulator

Trace = list[tuple[float, str]]


# ---------------------------------------------------------------------------
# workloads (written against the surface both loops share)
# ---------------------------------------------------------------------------


def _timer_storm(sim, trace: Trace, seed: int, n: int = 200) -> None:
    """Seeded mix of plain, nested, tied and cancelled timers."""
    rng = random.Random(seed)
    handles = []

    def fire(i: int):
        def cb() -> None:
            trace.append((sim.now, f"t{i}"))
            # every third event schedules a nested follow-up
            if i % 3 == 0:
                sim.schedule_after(
                    rng.choice([0.0, 0.5, 1.0]),
                    lambda: trace.append((sim.now, f"n{i}")),
                )

        return cb

    for i in range(n):
        when = rng.randrange(20)  # integral: plenty of exact ties
        if i % 5 == 0:
            handles.append((i, sim.call_at(float(when), fire(i))))
        else:
            sim.schedule_at(float(when), fire(i))
    # cancel a deterministic subset of the cancellable ones
    for j, (i, h) in enumerate(handles):
        if j % 2 == 0:
            h.cancel()
            trace.append((sim.now, f"c{i}"))
    sim.run()


def _process_mesh(sim, trace: Trace) -> None:
    """Producer/consumer processes wired through futures and all_of/any_of."""
    box = Future(sim, label="box")

    def producer():
        trace.append((sim.now, "p.start"))
        yield sim.timeout(1.5)
        trace.append((sim.now, "p.mid"))
        box.resolve("payload")
        yield sim.timeout(0.5)
        trace.append((sim.now, "p.end"))
        return "prod"

    def consumer(k: int):
        trace.append((sim.now, f"c{k}.start"))
        v = yield box
        trace.append((sim.now, f"c{k}.got.{v}"))
        yield sim.timeout(0.25 * k)
        trace.append((sim.now, f"c{k}.end"))
        return k

    procs = [sim.spawn(producer(), label="prod")] + [
        sim.spawn(consumer(k), label=f"cons{k}") for k in range(3)
    ]
    done = all_of(sim, procs, label="mesh")
    race = any_of(sim, procs[1:], label="first-consumer")
    race.add_callback(
        lambda f: trace.append((sim.now, f"any.{f.value[0]}"))
    )
    sim.run_until_complete(done)
    trace.append((sim.now, f"done.{done.value}"))


def _link_traffic(sim, trace: Trace) -> None:
    """FifoLink serialization, payload delivery, and a zero-byte transfer."""
    link = FifoLink(sim, "wire", bandwidth=1e9, latency=1e-6, overhead=1e-7)

    def chatter():
        for i, nbytes in enumerate([4096, 0, 65536, 1, 12345]):
            fut = link.transfer(nbytes, payload=i, label=f"x{i}")
            got = yield fut
            trace.append((sim.now, f"x{got}"))
        return link.bytes_transferred

    p = sim.spawn(chatter(), label="chatter")
    # competing transfers issued outside the process serialize behind it
    link.transfer(1000, label="bg").add_callback(
        lambda f: trace.append((sim.now, "bg"))
    )
    sim.run_until_complete(p)
    trace.append((sim.now, f"total.{p.value}"))


def _run_both(workload, *args) -> tuple[Trace, Trace]:
    fast_trace: Trace = []
    workload(Simulator(), fast_trace, *args)
    ref_trace: Trace = []
    workload(ReferenceSimulator(), ref_trace, *args)
    return fast_trace, ref_trace


# ---------------------------------------------------------------------------
# equivalence
# ---------------------------------------------------------------------------


class TestEquivalence:
    def test_timer_storm_matches_reference(self):
        fast, ref = _run_both(_timer_storm, 7)
        assert fast == ref

    def test_process_mesh_matches_reference(self):
        fast, ref = _run_both(_process_mesh)
        assert fast == ref

    def test_link_traffic_matches_reference(self):
        fast, ref = _run_both(_link_traffic)
        assert fast == ref

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(1, 300))
    def test_random_storms_match_reference(self, seed: int, n: int):
        fast, ref = _run_both(_timer_storm, seed, n)
        assert fast == ref

    def test_reference_and_fast_count_same_events(self):
        """Same workload -> same number of *fired* events on both loops."""
        fast_trace: Trace = []
        fast = Simulator()
        _process_mesh(fast, fast_trace)
        ref_trace: Trace = []
        ref = ReferenceSimulator()
        _process_mesh(ref, ref_trace)
        assert fast.events_processed == ref.events_processed


class TestEagerStart:
    def test_eager_start_runs_first_step_inline(self, sim):
        order: list[str] = []

        def prog():
            order.append("step0")
            yield sim.timeout(1.0)
            order.append("step1")

        sim.spawn(prog(), label="eager", eager_start=True)
        assert order == ["step0"], "first step must run before any event"
        sim.run()
        assert order == ["step0", "step1"]

    def test_plain_spawn_keeps_deferred_start(self, sim):
        order: list[str] = []

        def prog():
            order.append("step0")
            yield sim.timeout(1.0)

        sim.spawn(prog(), label="deferred")
        assert order == [], "documented contract: plain spawn defers"
        sim.run()
        assert order == ["step0"]

    def test_eager_start_preserves_result_and_failure(self, sim):
        def ok():
            yield sim.timeout(0.5)
            return 42

        def boom():
            yield sim.timeout(0.5)
            raise RuntimeError("boom")

        p = sim.spawn(ok(), eager_start=True)
        q = sim.spawn(boom(), eager_start=True)
        sim.run()
        assert p.value == 42
        assert q.failed and isinstance(q.exception, RuntimeError)


class TestSanitizedDispatch:
    def test_binding_swaps_and_trace_is_unchanged(self):
        # uninstrumented run first
        plain: Trace = []
        _process_mesh(Simulator(), plain)
        assert Future.resolve is core._future_resolve_fast

        with sanitize.enabled(SanitizeOptions.all(mode="raise")) as rep:
            # the one-time binding swapped every hot dispatch method
            assert Future.resolve is core._future_resolve_san
            assert Future.fail is core._future_fail_san
            assert core.Process._step is core._process_step_san
            assert core.Process._resume_from is core._process_resume_san
            instrumented: Trace = []
            _process_mesh(Simulator(), instrumented)
        # mode="raise" would have thrown on any violation; the report
        # must also be clean — every cross-process wake carried its edge
        assert not rep.violations
        assert instrumented == plain
        # and the binding restored the fast forms on exit
        assert Future.resolve is core._future_resolve_fast
        assert core.Process._step is core._process_step_fast

    def test_sanitized_link_traffic_clean_and_identical(self):
        plain: Trace = []
        _link_traffic(Simulator(), plain)
        with sanitize.enabled(SanitizeOptions.all(mode="record")) as rep:
            instrumented: Trace = []
            _link_traffic(Simulator(), instrumented)
        assert not rep.violations
        assert instrumented == plain
