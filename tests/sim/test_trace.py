"""Tests for the timeline tracer and interval arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.trace import Span, Tracer, merge_intervals, union_length


class TestSpan:
    def test_duration(self):
        assert Span("r", 1.0, 3.0, "x").duration == 2.0

    def test_overlap_detection(self):
        a = Span("r", 0.0, 2.0, "a")
        b = Span("r", 1.0, 3.0, "b")
        c = Span("r", 2.0, 4.0, "c")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)  # touching is not overlapping


class TestIntervalMath:
    def test_merge_overlapping(self):
        assert merge_intervals([(0, 2), (1, 3), (5, 6)]) == [(0, 3), (5, 6)]

    def test_merge_adjacent(self):
        assert merge_intervals([(0, 1), (1, 2)]) == [(0, 2)]

    def test_union_length(self):
        assert union_length([(0, 2), (1, 3), (10, 11)]) == pytest.approx(4.0)

    @settings(max_examples=100, deadline=None)
    @given(
        ivs=st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)).map(
                lambda p: (min(p), max(p))
            ),
            max_size=20,
        )
    )
    def test_union_bounds(self, ivs):
        ivs = [(a, b) for a, b in ivs if b > a]
        total = union_length(ivs)
        assert total <= sum(b - a for a, b in ivs) + 1e-9
        if ivs:
            lo = min(a for a, _ in ivs)
            hi = max(b for _, b in ivs)
            assert total <= hi - lo + 1e-9


class TestTracer:
    def test_busy_time_merges(self):
        t = Tracer()
        t.record("gpu", 0.0, 2.0, "k1")
        t.record("gpu", 1.0, 3.0, "k2")
        assert t.busy_time("gpu") == pytest.approx(3.0)

    def test_overlap_time_between_resources(self):
        t = Tracer()
        t.record("gpu", 0.0, 4.0, "pack")
        t.record("pcie", 2.0, 6.0, "xfer")
        assert t.overlap_time("gpu", "pcie") == pytest.approx(2.0)

    def test_overlap_disjoint_is_zero(self):
        t = Tracer()
        t.record("a", 0.0, 1.0, "x")
        t.record("b", 2.0, 3.0, "y")
        assert t.overlap_time("a", "b") == 0.0

    def test_resources_listing(self):
        t = Tracer()
        t.record("b", 0, 1, "x")
        t.record("a", 0, 1, "x")
        t.record("b", 1, 2, "x")
        assert t.resources() == ["b", "a"]

    def test_makespan(self):
        t = Tracer()
        assert t.makespan() == 0.0
        t.record("a", 1.0, 2.0, "x")
        t.record("b", 4.0, 9.0, "y")
        assert t.makespan() == pytest.approx(8.0)

    def test_clear(self):
        t = Tracer()
        t.record("a", 0, 1, "x")
        t.clear()
        assert not t.spans


class TestNullTracer:
    def test_record_is_noop(self):
        from repro.sim.trace import NullTracer

        t = NullTracer()
        t.record("gpu", 0.0, 1.0, "k", nbytes=64)
        assert t.spans == []
        assert t.busy_time("gpu") == 0.0
        assert t.resources() == []

    def test_falsy_but_still_a_tracer(self):
        from repro.sim.trace import NullTracer

        t = NullTracer()
        assert not t and not t.enabled
        assert isinstance(t, Tracer)  # call sites need no isinstance checks

    def test_real_tracer_truthy(self):
        assert Tracer().enabled and bool(Tracer())


class TestGroupHelpers:
    def _tracer(self):
        t = Tracer()
        t.record("gpu0.dtengine.r0", 0.0, 4.0, "pack")
        t.record("gpu1.dtengine.r1", 3.0, 5.0, "pack")
        t.record("ib.node0->node1", 2.0, 6.0, "wire")
        return t

    def test_busy_time_group_unions(self):
        t = self._tracer()
        both = t.busy_time_group(["gpu0.dtengine.r0", "gpu1.dtengine.r1"])
        assert both == pytest.approx(5.0)  # [0,4] U [3,5]

    def test_overlap_time_group(self):
        t = self._tracer()
        ov = t.overlap_time_group(
            ["gpu0.dtengine.r0", "gpu1.dtengine.r1"], ["ib.node0->node1"]
        )
        assert ov == pytest.approx(3.0)  # [0,5] ^ [2,6]

    def test_overlap_fraction(self):
        t = Tracer()
        t.record("a", 0.0, 4.0, "x")
        t.record("b", 2.0, 10.0, "y")
        assert t.overlap_fraction("a", "b") == pytest.approx(0.5)
        assert t.overlap_fraction("missing", "b") == 0.0

    def test_empty_groups(self):
        t = self._tracer()
        assert t.busy_time_group([]) == 0.0
        assert t.overlap_time_group([], ["ib.node0->node1"]) == 0.0


spans_strategy = st.lists(
    st.tuples(
        st.sampled_from(["a", "b"]),
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    ),
    min_size=0,
    max_size=25,
)


class TestOverlapProperties:
    @given(spans=spans_strategy)
    @settings(max_examples=60, deadline=None)
    def test_overlap_symmetric_and_bounded(self, spans):
        t = Tracer()
        for res, start, dur in spans:
            t.record(res, start, start + dur, "x")
        ab = t.overlap_time("a", "b")
        ba = t.overlap_time("b", "a")
        assert ab == pytest.approx(ba)
        assert ab <= t.busy_time("a") + 1e-9
        assert ab <= t.busy_time("b") + 1e-9
        assert ab >= 0.0

    @given(spans=spans_strategy)
    @settings(max_examples=60, deadline=None)
    def test_group_matches_single_resource(self, spans):
        t = Tracer()
        for res, start, dur in spans:
            t.record(res, start, start + dur, "x")
        assert t.busy_time_group(["a"]) == pytest.approx(t.busy_time("a"))
        assert t.overlap_time_group(["a"], ["b"]) == pytest.approx(
            t.overlap_time("a", "b")
        )


class TestChromeExport:
    def test_save_and_load_roundtrip(self, tmp_path):
        from repro.sim.trace import load_chrome_trace, save_chrome_trace

        t = Tracer()
        t.record("gpu", 0.0, 1.5e-6, "kernel", nbytes=4096)
        t.record("ib.a->b", 1e-6, 3e-6, "frag")
        path = str(tmp_path / "trace.json")
        save_chrome_trace(t, path, metrics={"counters": {"x": 1}})
        doc = load_chrome_trace(path)
        assert len(doc["traceEvents"]) >= 2
        assert doc["metrics"] == {"counters": {"x": 1}}
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert "kernel" in names and "frag" in names

    def test_null_tracer_exports_empty(self, tmp_path):
        from repro.sim.trace import (
            NullTracer,
            load_chrome_trace,
            save_chrome_trace,
        )

        path = str(tmp_path / "empty.json")
        save_chrome_trace(NullTracer(), path)
        doc = load_chrome_trace(path)
        assert doc["traceEvents"] == []
