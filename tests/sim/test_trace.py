"""Tests for the timeline tracer and interval arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.trace import Span, Tracer, merge_intervals, union_length


class TestSpan:
    def test_duration(self):
        assert Span("r", 1.0, 3.0, "x").duration == 2.0

    def test_overlap_detection(self):
        a = Span("r", 0.0, 2.0, "a")
        b = Span("r", 1.0, 3.0, "b")
        c = Span("r", 2.0, 4.0, "c")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)  # touching is not overlapping


class TestIntervalMath:
    def test_merge_overlapping(self):
        assert merge_intervals([(0, 2), (1, 3), (5, 6)]) == [(0, 3), (5, 6)]

    def test_merge_adjacent(self):
        assert merge_intervals([(0, 1), (1, 2)]) == [(0, 2)]

    def test_union_length(self):
        assert union_length([(0, 2), (1, 3), (10, 11)]) == pytest.approx(4.0)

    @settings(max_examples=100, deadline=None)
    @given(
        ivs=st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)).map(
                lambda p: (min(p), max(p))
            ),
            max_size=20,
        )
    )
    def test_union_bounds(self, ivs):
        ivs = [(a, b) for a, b in ivs if b > a]
        total = union_length(ivs)
        assert total <= sum(b - a for a, b in ivs) + 1e-9
        if ivs:
            lo = min(a for a, _ in ivs)
            hi = max(b for _, b in ivs)
            assert total <= hi - lo + 1e-9


class TestTracer:
    def test_busy_time_merges(self):
        t = Tracer()
        t.record("gpu", 0.0, 2.0, "k1")
        t.record("gpu", 1.0, 3.0, "k2")
        assert t.busy_time("gpu") == pytest.approx(3.0)

    def test_overlap_time_between_resources(self):
        t = Tracer()
        t.record("gpu", 0.0, 4.0, "pack")
        t.record("pcie", 2.0, 6.0, "xfer")
        assert t.overlap_time("gpu", "pcie") == pytest.approx(2.0)

    def test_overlap_disjoint_is_zero(self):
        t = Tracer()
        t.record("a", 0.0, 1.0, "x")
        t.record("b", 2.0, 3.0, "y")
        assert t.overlap_time("a", "b") == 0.0

    def test_resources_listing(self):
        t = Tracer()
        t.record("b", 0, 1, "x")
        t.record("a", 0, 1, "x")
        t.record("b", 1, 2, "x")
        assert t.resources() == ["b", "a"]

    def test_makespan(self):
        t = Tracer()
        assert t.makespan() == 0.0
        t.record("a", 1.0, 2.0, "x")
        t.record("b", 4.0, 9.0, "y")
        assert t.makespan() == pytest.approx(8.0)

    def test_clear(self):
        t = Tracer()
        t.record("a", 0, 1, "x")
        t.clear()
        assert not t.spans
