"""Unit tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.sim.core import (
    Future,
    ProcessKilled,
    SimulationError,
    Simulator,
    all_of,
    any_of,
)


class TestClock:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_run_empty_queue_keeps_time(self, sim):
        assert sim.run() == 0.0

    def test_call_after_advances_clock(self, sim):
        seen = []
        sim.call_after(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]
        assert sim.now == 1.5

    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.call_after(2.0, lambda: order.append("b"))
        sim.call_after(1.0, lambda: order.append("a"))
        sim.call_after(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self, sim):
        order = []
        for name in "abc":
            sim.call_after(1.0, lambda n=name: order.append(n))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_cannot_schedule_in_the_past(self, sim):
        sim.call_after(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(0.5, lambda: None)

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.call_after(-1.0, lambda: None)

    def test_run_until_stops_at_boundary(self, sim):
        fired = []
        sim.call_after(5.0, lambda: fired.append(1))
        t = sim.run(until=2.0)
        assert t == 2.0 and not fired
        sim.run()
        assert fired == [1]

    def test_events_processed_counter(self, sim):
        for _ in range(5):
            sim.call_soon(lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestFuture:
    def test_resolve_delivers_value(self, sim):
        fut = sim.future()
        fut.resolve(42)
        assert fut.done and fut.value == 42

    def test_unresolved_value_raises(self, sim):
        with pytest.raises(SimulationError):
            _ = sim.future().value

    def test_double_resolve_rejected(self, sim):
        fut = sim.future()
        fut.resolve(1)
        with pytest.raises(SimulationError):
            fut.resolve(2)

    def test_fail_propagates_exception(self, sim):
        fut = sim.future()
        fut.fail(ValueError("boom"))
        assert fut.done and fut.failed
        with pytest.raises(ValueError, match="boom"):
            _ = fut.value

    def test_callback_after_resolution_runs_immediately(self, sim):
        fut = sim.future()
        fut.resolve("x")
        seen = []
        fut.add_callback(lambda f: seen.append(f.value))
        assert seen == ["x"]

    def test_timeout_resolves_at_deadline(self, sim):
        fut = sim.timeout(3.0, value="done")
        sim.run()
        assert fut.value == "done" and sim.now == 3.0


class TestProcess:
    def test_return_value_resolves_process(self, sim):
        def prog():
            yield sim.timeout(1.0)
            return "finished"

        proc = sim.spawn(prog())
        assert sim.run_until_complete(proc) == "finished"

    def test_yield_none_reschedules_same_time(self, sim):
        steps = []

        def prog():
            steps.append(sim.now)
            yield
            steps.append(sim.now)

        sim.run_until_complete(sim.spawn(prog()))
        assert steps == [0.0, 0.0]

    def test_sequential_timeouts_accumulate(self, sim):
        def prog():
            yield sim.timeout(1.0)
            yield sim.timeout(2.0)
            return sim.now

        assert sim.run_until_complete(sim.spawn(prog())) == 3.0

    def test_exception_fails_process(self, sim):
        def prog():
            yield sim.timeout(1.0)
            raise RuntimeError("inner")

        proc = sim.spawn(prog())
        sim.run()
        assert proc.failed
        with pytest.raises(RuntimeError, match="inner"):
            _ = proc.value

    def test_exception_propagates_through_yield(self, sim):
        def child():
            yield sim.timeout(1.0)
            raise ValueError("child died")

        def parent():
            try:
                yield sim.spawn(child())
            except ValueError:
                return "caught"
            return "missed"

        assert sim.run_until_complete(sim.spawn(parent())) == "caught"

    def test_non_generator_rejected(self, sim):
        with pytest.raises(TypeError):
            sim.spawn(lambda: None)  # type: ignore[arg-type]

    def test_yielding_garbage_fails_process(self, sim):
        def prog():
            yield 42  # not a Future

        proc = sim.spawn(prog())
        sim.run()
        assert proc.failed and isinstance(proc.exception, TypeError)

    def test_kill_injects_process_killed(self, sim):
        def prog():
            yield sim.timeout(100.0)

        proc = sim.spawn(prog())
        sim.run(until=1.0)
        proc.kill()
        sim.run()
        assert proc.failed and isinstance(proc.exception, ProcessKilled)

    def test_deadlock_detection(self, sim):
        def prog():
            yield sim.future()  # never resolved

        proc = sim.spawn(prog())
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_until_complete(proc)

    def test_waiting_on_another_process_gets_its_value(self, sim):
        def child():
            yield sim.timeout(2.0)
            return 99

        def parent():
            v = yield sim.spawn(child())
            return v + 1

        assert sim.run_until_complete(sim.spawn(parent())) == 100


class TestCombinators:
    def test_all_of_collects_values_in_order(self, sim):
        futs = [sim.timeout(3.0, "c"), sim.timeout(1.0, "a"), sim.timeout(2.0, "b")]
        combined = all_of(sim, futs)
        sim.run()
        assert combined.value == ["c", "a", "b"]
        assert sim.now == 3.0

    def test_all_of_empty_resolves_immediately(self, sim):
        assert all_of(sim, []).value == []

    def test_all_of_fails_fast(self, sim):
        good = sim.timeout(5.0)
        bad = sim.future()
        combined = all_of(sim, [good, bad])
        bad.fail(RuntimeError("x"))
        assert combined.failed

    def test_any_of_returns_first(self, sim):
        futs = [sim.timeout(3.0, "slow"), sim.timeout(1.0, "fast")]
        first = any_of(sim, futs)
        sim.run()
        assert first.value == (1, "fast")

    def test_any_of_empty_rejected(self, sim):
        with pytest.raises(ValueError):
            any_of(sim, [])


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def run_once():
            sim = Simulator()
            log = []

            def prog(name, delay):
                for i in range(3):
                    yield sim.timeout(delay)
                    log.append((sim.now, name, i))

            sim.spawn(prog("a", 0.3))
            sim.spawn(prog("b", 0.2))
            sim.run()
            return log

        assert run_once() == run_once()
