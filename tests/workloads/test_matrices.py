"""Tests for the matrix workload datatypes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datatype.convertor import pack_bytes, unpack_bytes
from repro.workloads.matrices import (
    MatrixWorkload,
    lower_triangular_type,
    stair_mask,
    stair_triangular_type,
    submatrix_type,
    transpose_type,
    triangular_mask,
)


class TestSubmatrix:
    def test_extracts_columns(self, rng):
        n, ld = 8, 16
        dt = submatrix_type(n, ld)
        mat = rng.random(ld * ld)
        packed = pack_bytes(dt, 1, mat.view(np.uint8)).view("f8")
        grid = mat.reshape(ld, ld).T  # column-major view
        assert np.array_equal(packed, grid[:n, :n].T.reshape(-1))

    def test_payload_and_footprint(self):
        wl = MatrixWorkload.submatrix(64, 128)
        assert wl.payload_bytes == 64 * 64 * 8
        assert wl.footprint_bytes == 128 * 128 * 8

    def test_ld_too_small_rejected(self):
        with pytest.raises(ValueError):
            submatrix_type(64, 32)


class TestTriangular:
    def test_mask_agrees_with_type(self, rng):
        n = 16
        dt = lower_triangular_type(n)
        mat = rng.random(n * n)
        packed = pack_bytes(dt, 1, mat.view(np.uint8)).view("f8")
        mask = triangular_mask(n, n)
        assert np.array_equal(packed, mat[mask])

    def test_size_is_half(self):
        n = 100
        dt = lower_triangular_type(n)
        assert dt.size == n * (n + 1) // 2 * 8

    def test_includes_diagonal(self, rng):
        n = 4
        dt = lower_triangular_type(n)
        mat = np.arange(16, dtype="f8")
        packed = pack_bytes(dt, 1, mat.view(np.uint8)).view("f8")
        # col-major: column c starts at c*n+c
        assert packed[0] == mat[0]
        assert packed[n] == mat[n + 1]  # second column's diagonal element


class TestStair:
    def test_block_lengths_multiples_of_nb(self):
        dt = stair_triangular_type(64, 16)
        assert all(l % (16 * 8) == 0 for l in dt.spans.lens.tolist())

    def test_superset_of_triangle(self):
        n, nb = 32, 8
        tri = triangular_mask(n, n)
        stair = stair_mask(n, nb, n)
        assert (stair | tri == stair).all()  # stair covers the triangle

    def test_non_divisible_rejected(self):
        with pytest.raises(ValueError):
            stair_triangular_type(30, 8)


class TestTranspose:
    def test_unpack_transposes(self, rng):
        n = 12
        dt = transpose_type(n)
        mat = rng.random(n * n)
        out = np.zeros(n * n)
        unpack_bytes(dt, 1, out.view(np.uint8), mat.view(np.uint8))
        assert np.array_equal(out.reshape(n, n), mat.reshape(n, n).T)

    def test_signature_matches_contiguous(self):
        from repro.datatype.ddt import contiguous
        from repro.datatype.primitives import DOUBLE

        n = 8
        assert transpose_type(n).signature == contiguous(n * n, DOUBLE).commit().signature

    def test_span_count_is_n_squared(self):
        n = 10
        assert transpose_type(n).spans.count == n * n
