"""Tests for the multi-tenant traffic generator (repro.workloads.traffic)."""

from __future__ import annotations

import pytest

from repro.mpi.config import MpiConfig
from repro.tune import Autotuner, DecisionTable
from repro.workloads.traffic import (
    TrafficDraws,
    TrafficSpec,
    replay_digest,
    run_traffic,
)

SMALL = TrafficSpec(rounds=2, tenants=2)


class TestSpec:
    @pytest.mark.parametrize(
        "kw",
        [
            dict(tenants=0),
            dict(rounds=0),
            dict(n_nodes=1, gpus_per_node=1),
            dict(size_mix=()),
            dict(size_mix=((0, 1.0),)),
            dict(size_mix=((1024, 0.0),)),
            dict(vector_frac=1.5),
            dict(vector_frac=-0.1),
            dict(host_tenants=5),
        ],
        ids=lambda kw: next(iter(kw.items()))[0],
    )
    def test_bad_spec_rejected(self, kw):
        with pytest.raises(ValueError):
            TrafficSpec(**kw)

    def test_world_size(self):
        assert TrafficSpec(n_nodes=2, gpus_per_node=2).world_size == 4


class TestDraws:
    def test_same_seed_same_draws(self):
        a = TrafficDraws.generate(SMALL)
        b = TrafficDraws.generate(SMALL)
        assert (a.shifts, a.kinds, a.sizes, a.vcounts, a.gaps) == (
            b.shifts, b.kinds, b.sizes, b.vcounts, b.gaps
        )

    def test_different_seed_different_draws(self):
        a = TrafficDraws.generate(SMALL)
        b = TrafficDraws.generate(TrafficSpec(rounds=2, tenants=2, seed=8))
        assert (a.shifts, a.sizes, a.gaps) != (b.shifts, b.sizes, b.gaps)

    def test_shapes(self):
        d = TrafficDraws.generate(SMALL)
        assert len(d.shifts) == SMALL.rounds
        assert all(len(row) == SMALL.tenants for row in d.kinds)
        assert all(1 <= s < SMALL.world_size for row in d.shifts for s in row)
        assert all(k in ("contig", "vector") for row in d.kinds for k in row)


class TestReplay:
    def test_run_is_deterministic(self):
        a = run_traffic(SMALL)
        b = run_traffic(SMALL)
        assert a == b
        assert a["elapsed_s"] > 0
        assert a["messages"] == SMALL.rounds * SMALL.tenants * SMALL.world_size

    def test_digest_is_deterministic(self):
        assert replay_digest(SMALL) == replay_digest(SMALL)

    def test_cross_tenant_cache_reuse(self):
        # structurally identical per-tenant datatypes must hit the
        # canonical-key DevCache across tenants — the generator's point
        metrics = run_traffic(TrafficSpec())
        assert metrics["cache_hits"] > 0
        assert metrics["cross_tenant_hit_rate"] > 0

    def test_config_is_honoured(self):
        # the tiny SMALL spec draws only eager-sized traffic; the default
        # spec includes 1 MB rendezvous sends the IPC knob actually steers
        spec = TrafficSpec()
        base = run_traffic(spec)["elapsed_s"]
        no_ipc = run_traffic(
            spec, config=MpiConfig(use_cuda_ipc=False)
        )["elapsed_s"]
        assert no_ipc != base  # forcing copy-in/out must change the timeline

    def test_tuned_run_applies_decisions_and_stays_correct(self):
        # rig a table so the tuned replay diverges from the static one,
        # then check data still arrives (digest exists) and decisions fire
        from repro.datatype.canonical import canonicalize
        from repro.datatype.ddt import contiguous, vector
        from repro.datatype.primitives import BYTE, DOUBLE

        spec = TrafficSpec()
        helper = Autotuner(DecisionTable(), mode="observe")
        table = helper.table
        vdt = vector(
            spec.vector_rows, spec.vector_bl, spec.vector_stride, DOUBLE
        ).commit()
        forms = [
            (canonicalize(vdt, c), vdt.size * c)
            for c in range(1, spec.vector_max_count + 1)
        ] + [
            (canonicalize(contiguous(n, BYTE).commit(), 1), n)
            for n, _w in spec.size_mix
        ]
        for form, n in forms:
            for intra in (True, False):
                for loc in ("host", "device"):
                    key = helper.p2p_key(form, n, intra, loc)
                    alt = "host" if loc == "host" else "copyinout"
                    table.observe(key, f"frag=65536,depth=2,proto={alt}", 1.0, 10**9)
        tuner = Autotuner(table, mode="on")
        digest = replay_digest(spec, tuner=tuner)
        assert len(digest) == 32
        assert tuner.decisions  # tuned decisions fired
        # same rig, fresh tuner: bit-identical digest incl. decisions
        tuner2 = Autotuner(table, mode="on")
        assert replay_digest(spec, tuner=tuner2) == digest

    def test_config_autotune_builds_world_tuner(self, tmp_path):
        # autotune="observe" without an explicit tuner records history
        path = str(tmp_path / "t.json")
        cfg = MpiConfig(autotune="observe", tuner_table=None)
        metrics = run_traffic(SMALL, config=cfg)
        assert metrics == run_traffic(SMALL, config=cfg)  # still deterministic
