"""Tests for stencil-halo and particle workload datatypes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datatype.convertor import pack_bytes
from repro.workloads.particles import (
    PARTICLE_FIELDS,
    particle_index_type,
    particle_record_type,
    random_particle_indices,
)
from repro.workloads.stencil import stencil_halo_types


class TestStencil:
    def test_shapes(self):
        halo = stencil_halo_types(rows=16, cols=12, halo=2)
        assert halo.north.size == 2 * 12 * 8
        assert halo.west.size == 16 * 2 * 8
        assert halo.north.is_contiguous
        assert not halo.west.is_contiguous

    def test_west_band_extraction(self, rng):
        rows, cols, h = 8, 6, 1
        halo = stencil_halo_types(rows, cols, h)
        grid = rng.random(rows * cols)
        packed = pack_bytes(halo.west, 1, grid.view(np.uint8)).view("f8")
        assert np.array_equal(packed, grid.reshape(rows, cols)[:, :h].reshape(-1))

    def test_east_offset(self, rng):
        rows, cols, h = 8, 6, 1
        halo = stencil_halo_types(rows, cols, h)
        grid = rng.random(rows * cols)
        off = halo.offsets()["east"]
        packed = pack_bytes(
            halo.east, 1, grid.view(np.uint8)[off:]
        ).view("f8")
        assert np.array_equal(
            packed, grid.reshape(rows, cols)[:, cols - h :].reshape(-1)
        )

    def test_halo_too_large_rejected(self):
        with pytest.raises(ValueError):
            stencil_halo_types(4, 4, 3)


class TestParticles:
    def test_record_size(self):
        assert particle_record_type().size == PARTICLE_FIELDS * 8

    def test_index_type_selects_records(self, rng):
        n_local, n_send = 50, 7
        idx = random_particle_indices(n_local, n_send, seed=9)
        dt = particle_index_type(idx)
        particles = rng.random(n_local * PARTICLE_FIELDS)
        packed = pack_bytes(dt, 1, particles.view(np.uint8)).view("f8")
        expect = np.concatenate(
            [
                particles[i * PARTICLE_FIELDS : (i + 1) * PARTICLE_FIELDS]
                for i in idx
            ]
        )
        assert np.array_equal(packed, expect)

    def test_indices_sorted_unique(self):
        idx = random_particle_indices(100, 30, seed=1)
        assert (np.diff(idx) > 0).all()

    def test_oversubscription_rejected(self):
        with pytest.raises(ValueError):
            random_particle_indices(10, 11)
