"""Tests for the structured stats records."""

from __future__ import annotations

import pytest

from repro.obs.stats import (
    CacheStats,
    EngineStats,
    TransferStats,
    WorldStats,
    classify_resource,
)


class TestTransferStats:
    def test_completeness_gate(self):
        t = TransferStats(tid="0.0", role="send")
        assert not t.is_complete()
        t.rank, t.peer, t.protocol = 0, 1, "host"
        t.total_bytes, t.fragments = 1024, 2
        t.start_s, t.end_s = 0.0, 1.0
        assert t.is_complete()

    def test_bandwidth(self):
        t = TransferStats(
            tid="x", role="send", total_bytes=1000, start_s=0.0, end_s=0.5
        )
        assert t.bandwidth == pytest.approx(2000.0)


class TestCacheStats:
    def test_hit_rate_no_lookups(self):
        assert CacheStats().hit_rate == 0.0

    def test_merge(self):
        a = CacheStats(hits=1, misses=2, bytes_cached=10, budget_bytes=100)
        b = CacheStats(hits=3, misses=0, bytes_cached=5, budget_bytes=100)
        m = a.merged(b)
        assert m.hits == 4 and m.lookups == 6
        assert m.bytes_cached == 15 and m.budget_bytes == 200


class TestClassifyResource:
    @pytest.mark.parametrize(
        "name,stage",
        [
            ("node0.gpu0.dtengine.r0", "pack"),
            ("node0.cpu_pack", "pack"),
            ("ib.node0->node1", "wire"),
            ("node0.pcie.p2p.gpu0->gpu1", "wire"),
            ("node0.shmem", "wire"),
            ("node0.pcie.h2d.gpu0", "pcie"),
            ("node0.pcie.d2h.gpu0", "pcie"),
            ("node0.cpu_prep", "prep"),
            ("node0.gpu0.ce", "other"),
        ],
    )
    def test_stages(self, name, stage):
        assert classify_resource(name) == stage


class TestWorldStats:
    def _ws(self):
        ws = WorldStats()
        ws.transfers.append(
            TransferStats(
                tid="0.0", role="send", rank=0, peer=1, protocol="host",
                total_bytes=100, fragments=1, start_s=0.0, end_s=1.0,
                credit_wait_s=0.25,
            )
        )
        ws.engine = EngineStats(cache=CacheStats(hits=3, misses=1))
        ws.pack_busy_s = 2.0
        ws.pack_wire_overlap_s = 1.0
        return ws

    def test_rollups(self):
        ws = self._ws()
        assert ws.cache_hit_rate == pytest.approx(0.75)
        assert ws.pack_wire_overlap_fraction == pytest.approx(0.5)
        assert ws.total_bytes == 100
        assert ws.credit_wait_s == pytest.approx(0.25)
        assert ws.is_complete()

    def test_overlap_fraction_clamped(self):
        ws = WorldStats(pack_busy_s=1.0, pack_wire_overlap_s=5.0)
        assert ws.pack_wire_overlap_fraction == 1.0
        assert WorldStats().pack_wire_overlap_fraction == 0.0

    def test_to_dict_json_friendly(self):
        import json

        doc = json.dumps(self._ws().to_dict())
        assert "pack_wire_overlap_fraction" in doc

    def test_summary_text(self):
        s = self._ws().summary()
        assert "transfers: 1" in s and "rate 0.75" in s
