"""Tests for the wall-clock phase accounting (repro.obs.phases)."""

from __future__ import annotations

from repro.obs import phases
from repro.obs.phases import PhaseTimer


class TestPhaseTimer:
    def test_add_accumulates(self):
        t = PhaseTimer()
        t.add("a", 0.5)
        t.add("a", 0.25)
        t.add("b", 1.0)
        assert t.seconds["a"] == 0.75
        assert t.counts["a"] == 2
        assert t.counts["b"] == 1

    def test_to_dict_sorted_and_json_friendly(self):
        t = PhaseTimer()
        t.add("z", 1.0)
        t.add("a", 2.0)
        d = t.to_dict()
        assert list(d) == ["a", "z"]
        assert d["z"] == {"seconds": 1.0, "count": 1}


class TestCollect:
    def test_no_collector_is_noop(self):
        assert phases.active() is None
        with phases.measure("anything"):
            pass  # must not raise and must not record anywhere
        assert phases.active() is None

    def test_measure_records_into_active_collector(self):
        with phases.collect() as timer:
            with phases.measure("work"):
                sum(range(1000))
        assert timer.counts["work"] == 1
        assert timer.seconds["work"] >= 0.0
        assert phases.active() is None

    def test_nested_phases_both_recorded(self):
        with phases.collect() as timer:
            with phases.measure("outer"):
                with phases.measure("inner"):
                    pass
        assert timer.counts == {"outer": 1, "inner": 1}

    def test_scopes_nest_and_restore(self):
        outer = PhaseTimer()
        with phases.collect(outer):
            with phases.collect() as inner:
                with phases.measure("p"):
                    pass
            # the inner scope swallowed the measurement
            assert phases.active() is outer
        assert inner.counts.get("p") == 1
        assert "p" not in outer.counts

    def test_collector_restored_on_exception(self):
        try:
            with phases.collect():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert phases.active() is None


class TestSimulatorHook:
    def test_sim_run_phase_recorded(self):
        from repro.sim.core import Simulator

        sim = Simulator()
        sim.call_after(1.0, lambda: None)
        with phases.collect() as timer:
            sim.run()
        assert timer.counts[phases.SIM_RUN] == 1

    def test_dev_build_and_unit_split_phases(self):
        from repro.datatype.ddt import vector
        from repro.datatype.primitives import DOUBLE
        from repro.gpu_engine.dev import to_devs
        from repro.gpu_engine.work_units import split_units

        dt = vector(8, 2, 4, DOUBLE).commit()
        with phases.collect() as timer:
            devs = to_devs(dt, 2)
            split_units(devs, 1024)
        assert timer.counts[phases.DEV_BUILD] == 1
        assert timer.counts[phases.UNIT_SPLIT] == 1
