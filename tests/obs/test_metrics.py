"""Tests for the metrics registry primitives."""

from __future__ import annotations

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, Timer


class TestInstruments:
    def test_counter(self):
        c = Counter("n")
        c.inc()
        c.inc(5)
        assert c.value == 6
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_tracks_high_water(self):
        g = Gauge("depth")
        g.set(3)
        g.inc()
        g.dec(2)
        assert g.value == 2 and g.max_value == 4

    def test_histogram(self):
        h = Histogram("lat")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == pytest.approx(6.0)
        assert h.min == 1.0 and h.max == 3.0
        assert h.mean == pytest.approx(2.0)

    def test_timer_is_histogram_of_seconds(self):
        t = Timer("busy")
        t.observe(0.5)
        t.observe(0.25)
        assert t.seconds == pytest.approx(0.75)


class TestRegistry:
    def test_get_or_create(self):
        r = MetricsRegistry()
        assert r.counter("x") is r.counter("x")
        with pytest.raises(TypeError):
            r.gauge("x")  # same name, different kind

    def test_scoped_shares_store(self):
        root = MetricsRegistry()
        a = root.scoped("r0.").scoped("engine.")
        a.counter("jobs").inc()
        assert root.get("r0.engine.jobs").value == 1
        assert "r0.engine.jobs" in root.names()

    def test_snapshot_and_reset(self):
        r = MetricsRegistry()
        r.counter("a").inc(2)
        r.timer("t").observe(1.5)
        snap = r.snapshot()
        assert snap["a"] == 2
        assert snap["t"]["sum"] == pytest.approx(1.5)
        r.reset()
        assert r.counter("a").value == 0
