"""Shared test fixtures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw.node import Cluster
from repro.sanitize.options import SanitizeOptions
from repro.sim.core import Simulator


@pytest.fixture(scope="session", autouse=True)
def _sanitizers_from_env():
    """Honour ``REPRO_SANITIZE`` for the whole pytest session.

    The CI sanitizer leg runs the suites with ``REPRO_SANITIZE=all``;
    checkers install once up front so even worlds built before the first
    ``MpiConfig`` (plain hw/sim tests) are covered.  Without the env var
    this fixture is a no-op and the suites run uninstrumented.
    """
    opts = SanitizeOptions.from_env()
    if not opts.any_enabled:
        yield
        return
    from repro import sanitize

    report = sanitize.enable(opts)
    yield
    sanitize.disable()
    assert not report.violations, "sanitizers found violations:\n" + report.summary()


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def cluster() -> Cluster:
    return Cluster(n_nodes=1, gpus_per_node=2, trace=True)


@pytest.fixture
def two_node_cluster() -> Cluster:
    return Cluster(n_nodes=2, gpus_per_node=1, trace=True)


@pytest.fixture
def gpu(cluster):
    return cluster.nodes[0].gpus[0]


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
