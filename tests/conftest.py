"""Shared test fixtures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw.node import Cluster
from repro.sim.core import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def cluster() -> Cluster:
    return Cluster(n_nodes=1, gpus_per_node=2, trace=True)


@pytest.fixture
def two_node_cluster() -> Cluster:
    return Cluster(n_nodes=2, gpus_per_node=1, trace=True)


@pytest.fixture
def gpu(cluster):
    return cluster.nodes[0].gpus[0]


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
