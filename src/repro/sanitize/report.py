"""Structured sanitizer findings: :class:`Violation` and :class:`SanitizerReport`.

Every checker funnels its findings through one shared report object so a
test (or CI leg) can make a single assertion — ``report.violations == []``
— regardless of which checkers ran.  In ``"raise"`` mode (the default) the
first violation also raises :class:`SanitizerError` at the faulty
operation, giving a stack trace that points at the bug, exactly like a
compiler sanitizer aborting at the bad access.  ``"record"`` mode collects
silently, which the intentionally-buggy fixture suite uses to inspect what
was caught.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Violation", "SanitizerError", "SanitizerReport"]

#: hard cap on recorded violations — a hot-loop bug in record mode must
#: not balloon memory; the counter keeps counting past the cap
MAX_RECORDED = 1000


class SanitizerError(AssertionError):
    """Raised at the faulting operation when the report is in raise mode."""

    def __init__(self, violation: "Violation") -> None:
        super().__init__(str(violation))
        self.violation = violation


@dataclass(frozen=True)
class Violation:
    """One sanitizer finding.

    ``checker`` is the subsystem (``mem`` / ``race`` / ``dev``), ``code``
    the violation class within it (e.g. ``mem.uninit_read``), ``where``
    the operation/object the finding is anchored to, and ``message`` the
    full human-actionable description (buffer, byte range, missing edge).
    """

    checker: str
    code: str
    message: str
    where: str = ""
    time_s: Optional[float] = None

    def __str__(self) -> str:
        at = f" @ t={self.time_s:g}s" if self.time_s is not None else ""
        loc = f" [{self.where}]" if self.where else ""
        return f"[{self.code}]{loc}{at} {self.message}"


@dataclass
class SanitizerReport:
    """Shared sink for every checker's violations.

    ``metrics`` may be a :class:`repro.obs.metrics.MetricsRegistry` (or
    any object with a ``counter(name)`` method); each violation bumps a
    ``violations.<code>`` counter plus the ``violations_total`` counter,
    so world-level snapshots surface sanitizer activity alongside every
    other metric.
    """

    mode: str = "raise"  # "raise" | "record"
    violations: list = field(default_factory=list)
    total: int = 0
    metrics: Optional[object] = None

    def record(
        self,
        checker: str,
        code: str,
        message: str,
        where: str = "",
        time_s: Optional[float] = None,
        force_record: bool = False,
    ) -> Violation:
        """Register a finding; raises in raise mode unless ``force_record``.

        ``force_record`` is for findings that already have a legacy
        exception attached to the faulting operation (e.g. the
        use-after-free ``ValueError`` in :class:`repro.hw.memory.Buffer`)
        — the violation is recorded and counted, and the original
        exception keeps its contract.
        """
        v = Violation(checker, code, message, where=where, time_s=time_s)
        self.total += 1
        if len(self.violations) < MAX_RECORDED:
            self.violations.append(v)
        if self.metrics is not None:
            try:
                self.metrics.counter("violations_total").inc()
                self.metrics.counter(f"violations.{code}").inc()
            except Exception:
                pass  # a broken metrics sink must never mask the finding
        if self.mode == "raise" and not force_record:
            raise SanitizerError(v)
        return v

    def by_checker(self, checker: str) -> list:
        """Recorded violations from one checker."""
        return [v for v in self.violations if v.checker == checker]

    def by_code(self, code: str) -> list:
        """Recorded violations of one class."""
        return [v for v in self.violations if v.code == code]

    def clear(self) -> None:
        """Forget every finding (counters in the metrics sink persist)."""
        self.violations.clear()
        self.total = 0

    def summary(self) -> str:
        """Human-readable digest, one line per violation class."""
        if not self.total:
            return "sanitize: clean (0 violations)"
        counts: dict[str, int] = {}
        for v in self.violations:
            counts[v.code] = counts.get(v.code, 0) + 1
        lines = [f"sanitize: {self.total} violation(s)"]
        for code in sorted(counts):
            lines.append(f"  {code}: {counts[code]}")
        if self.total > len(self.violations):
            lines.append(f"  ... {self.total - len(self.violations)} not recorded (cap)")
        return "\n".join(lines)
