"""Happens-before race detector over the simulator.

Every concurrent *actor* — a sim :class:`~repro.sim.core.Process`, a GPU
:class:`~repro.hw.gpu.Stream`, an active-message delivery context — owns a
**vector clock** (``dict[actor, int]``).  Happens-before edges are the
exact synchronization primitives of the model:

* resolving a :class:`~repro.sim.core.Future` stamps the resolver's clock
  onto it; a process resumed by that future *joins* the stamp (this covers
  ``Event.wait``, ``Stream.synchronize``, mailbox gets, semaphore
  acquires, link transfers, ...),
* ``Stream.enqueue`` joins the enqueuer's clock into the stream's clock
  (kernel launch ordering) and the completion future carries the stream's
  clock back out,
* active-message delivery joins the *send-time* snapshot of the sender
  into the destination's delivery actor (network ordering),
* queued :class:`~repro.sim.resources.Mailbox` items and banked
  :class:`~repro.sim.resources.Semaphore` tokens carry the snapshot of
  the putter/releaser, so a credit released by fragment *i*'s ACK orders
  the sender's reuse of slot ``i % depth``.

Accesses to :class:`~repro.hw.memory.Buffer` ranges are recorded per
allocation in **epoch** style: each record advances the acting actor's own
clock component; a later access by a *different* actor to an overlapping
byte range where at least one side writes is a race iff the later actor's
clock has not caught up to the earlier access's tick — i.e. no
happens-before chain connects them.  That is precisely the ring-slot
reuse-before-ACK and pack-kernel vs. RDMA-read overlap hazard from the
paper's asynchronous DEV pipeline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.sanitize.report import SanitizerReport

if TYPE_CHECKING:
    from repro.hw.memory import Buffer

__all__ = ["RaceDetector"]


class _Access:
    """One recorded range access (epoch: actor + that actor's tick)."""

    __slots__ = ("lo", "hi", "is_write", "actor", "tick", "label")

    def __init__(self, lo, hi, is_write, actor, tick, label):
        self.lo = lo
        self.hi = hi
        self.is_write = is_write
        self.actor = actor
        self.tick = tick
        self.label = label

    def describe(self) -> str:
        kind = "write" if self.is_write else "read"
        return f"{kind} [{self.lo}, {self.hi}) by {self.actor!r} ({self.label})"


class RaceDetector:
    """Vector-clock checker installed at :data:`repro.sanitize.runtime.RACE`."""

    def __init__(self, report: SanitizerReport, max_history: int = 128) -> None:
        self.report = report
        self.max_history = max_history
        #: actor name -> vector clock (dict[actor, int])
        self._clocks: dict[str, dict] = {"main": {}}
        #: current-actor stack; the bottom "main" context covers test-harness
        #: code running outside any Process/stream/AM delivery
        self._stack: list[str] = ["main"]
        #: alloc_id -> recent accesses (bounded)
        self._access: dict[int, list] = {}
        self._spawn_seq = 0

    # -- clock plumbing -------------------------------------------------------
    @property
    def current(self) -> str:
        return self._stack[-1]

    def _clock(self, actor: str) -> dict:
        c = self._clocks.get(actor)
        if c is None:
            c = {}
            self._clocks[actor] = c
        return c

    def snapshot(self) -> dict:
        """Copy of the current actor's clock (safe to stash on futures)."""
        return dict(self._clock(self.current))

    @staticmethod
    def merge(a: Optional[dict], b: Optional[dict]) -> Optional[dict]:
        """Pointwise max of two snapshots (either may be None)."""
        if not a:
            return dict(b) if b else a
        if not b:
            return dict(a)
        out = dict(a)
        for k, v in b.items():
            if out.get(k, 0) < v:
                out[k] = v
        return out

    def merge_with_context(self, snap: Optional[dict]) -> dict:
        """Join the resolver's current clock into a future's stamp."""
        return self.merge(snap, self._clock(self.current)) or {}

    def join_actor(self, actor: str, snap: Optional[dict]) -> None:
        """actor's clock := max(actor's clock, snap)."""
        if not snap:
            return
        clock = self._clock(actor)
        for k, v in snap.items():
            if clock.get(k, 0) < v:
                clock[k] = v

    # -- actor contexts -------------------------------------------------------
    def enter(self, actor: str) -> None:
        """Push ``actor`` as the current execution context (reentrant)."""
        self._stack.append(actor)

    def exit(self) -> None:
        """Pop the current execution context (the bottom 'main' stays)."""
        if len(self._stack) > 1:
            self._stack.pop()

    def on_spawn(self, label: str) -> str:
        """New Process actor; its clock starts at the spawner's snapshot
        (spawn is a happens-before edge)."""
        self._spawn_seq += 1
        actor = f"proc.{label or 'anon'}#{self._spawn_seq}"
        self._clocks[actor] = self.snapshot()
        return actor

    def on_resume(self, actor: str, snap: Optional[dict]) -> None:
        """A process woke on a resolved future: join the future's stamp."""
        self.join_actor(actor, snap)

    # -- hook: GPU streams ----------------------------------------------------
    def stream_op(
        self,
        actor: str,
        reads: Sequence,
        writes: Sequence,
        label: str = "",
    ) -> dict:
        """An operation enqueued on a stream.

        Joins the enqueuer's context into the stream's clock (launch
        order is an HB edge), records the accesses under the stream
        actor, and returns a snapshot of the stream clock for the
        completion future.
        """
        self.join_actor(actor, self.snapshot())
        self.enter(actor)
        try:
            for item in reads:
                self._record_item(item, False, label)
            for item in writes:
                self._record_item(item, True, label)
        finally:
            self.exit()
        return dict(self._clock(actor))

    def actor_snapshot(self, actor: str) -> dict:
        """Copy of an arbitrary actor's clock (e.g. for synchronize())."""
        return dict(self._clock(actor))

    # -- hook: active messages ------------------------------------------------
    def deliver_am(self, actor: str, snap: Optional[dict], fn) -> None:
        """Run an AM dispatch under the destination's delivery actor,
        joined with the sender's send-time snapshot."""
        self.join_actor(actor, snap)
        self.enter(actor)
        try:
            fn()
        finally:
            self.exit()

    # -- access recording -----------------------------------------------------
    def _record_item(self, item, is_write: bool, label: str) -> None:
        if isinstance(item, tuple):
            buf, lo, hi = item
        else:
            buf, lo, hi = item, 0, item.nbytes
        self.record(buf, lo, hi, is_write, label)

    def record(
        self, buf: "Buffer", lo: int, hi: int, is_write: bool, label: str = ""
    ) -> None:
        """Record an access to ``buf[lo:hi)`` by the current actor and
        check it against recent accesses to the same allocation."""
        if hi <= lo:
            return
        actor = self.current
        clock = self._clock(actor)
        # allocation-absolute range so aliasing sub-buffers (IPC-mapped
        # views share the Allocation object) are compared correctly
        a, b = buf.offset + lo, buf.offset + hi
        history = self._access.setdefault(buf.allocation.alloc_id, [])
        for prior in history:
            if prior.actor == actor:
                continue
            if not (is_write or prior.is_write):
                continue
            if prior.hi <= a or b <= prior.lo:
                continue
            if clock.get(prior.actor, 0) >= prior.tick:
                continue  # ordered: we have seen that access happen
            cur = _Access(a, b, is_write, actor, clock.get(actor, 0) + 1, label)
            self.report.record(
                "race",
                "race.unordered_access",
                f"unsynchronized overlapping access to "
                f"{buf.memory.name}#{buf.allocation.alloc_id} "
                f"{buf.allocation.label!r}: earlier {prior.describe()} vs "
                f"later {cur.describe()}; no happens-before edge orders "
                f"them (missing event/ACK/synchronize between the two)",
                where=label or actor,
            )
            break  # one report per access is enough to be actionable
        # advance our own epoch and append
        tick = clock.get(actor, 0) + 1
        clock[actor] = tick
        history.append(_Access(a, b, is_write, actor, tick, label))
        if len(history) > self.max_history:
            del history[: len(history) - self.max_history]
