"""``python -m repro.sanitize.explore`` — schedule-perturbation explorer.

Thin entry point; the implementation lives in
:mod:`repro.sanitize.verify.explore`.
"""

from repro.sanitize.verify.explore import main

if __name__ == "__main__":
    raise SystemExit(main())
