"""DEV/CUDA_DEV work-list validator.

The paper's GPU datatype engine compiles a datatype's typemap into a DEV
list — (source displacement, packed destination offset, length) triples
split into bounded work units — that pack kernels consume asynchronously.
A malformed list corrupts data silently: overlapping destination ranges
make later units clobber earlier ones, gaps leave ghost bytes, and a
stale cache entry replays the wrong list for a new (datatype, count)
shape.

This validator asserts every list **partitions the packed buffer**:

* destination offsets start at 0 and each unit begins exactly where the
  previous one ended (no overlap, no gap),
* every unit length is positive and bounded by the configured unit size,
* the total packed length equals ``datatype.size * count``,
* a cache *hit* yields a list identical to one freshly built from the
  datatype (guards against cache-key collisions / mutation of cached
  state).
"""

from __future__ import annotations

from typing import Optional

from repro.sanitize.report import SanitizerReport

__all__ = ["DevValidator"]


class DevValidator:
    """Work-list checker installed at :data:`repro.sanitize.runtime.DEV`."""

    def __init__(self, report: SanitizerReport) -> None:
        self.report = report

    def check_job(self, dt, count, unit_size, units, cache_hit=False) -> None:
        """Validate the WorkUnits a PackJob is about to hand to kernels."""
        where = f"DEV({dt.kind}x{count}, unit={unit_size})"
        n = len(units.src_disps)
        if n == 0:
            if dt.size * count != 0:
                self.report.record(
                    "dev",
                    "dev.total_mismatch",
                    f"empty DEV list for non-empty datatype: expected "
                    f"{dt.size * count} packed bytes, list covers 0",
                    where=where,
                )
            return
        dst = units.dst_disps
        lens = units.lens
        if dst[0] != 0:
            self.report.record(
                "dev",
                "dev.gap",
                f"DEV list does not start at packed offset 0 (first unit "
                f"dst={dst[0]}); bytes [0, {dst[0]}) are never written",
                where=where,
            )
            return
        expected = 0
        for k in range(n):
            if not (0 < lens[k] <= unit_size):
                self.report.record(
                    "dev",
                    "dev.bad_len",
                    f"unit {k} has length {lens[k]} outside (0, "
                    f"{unit_size}] — zero/negative units are ghosts, "
                    f"oversized units overflow the kernel's staging tile",
                    where=where,
                )
                return
            if dst[k] < expected:
                self.report.record(
                    "dev",
                    "dev.overlap",
                    f"unit {k} dst range [{dst[k]}, {dst[k] + lens[k]}) "
                    f"overlaps unit {k - 1} which ends at {expected}; "
                    f"later kernels would clobber already-packed bytes",
                    where=where,
                )
                return
            if dst[k] > expected:
                self.report.record(
                    "dev",
                    "dev.gap",
                    f"gap in DEV list before unit {k}: packed bytes "
                    f"[{expected}, {dst[k]}) are never written",
                    where=where,
                )
                return
            expected = dst[k] + lens[k]
        total = dt.size * count
        if expected != total:
            self.report.record(
                "dev",
                "dev.total_mismatch",
                f"DEV list covers {expected} packed bytes but "
                f"datatype.size * count = {total}",
                where=where,
            )
            return
        if cache_hit:
            self._check_cache(dt, count, unit_size, units, where)

    def _check_cache(self, dt, count, unit_size, units, where) -> None:
        """Rebuild the list from scratch and compare with the cached one."""
        from repro.gpu_engine.dev import to_devs
        from repro.gpu_engine.work_units import split_units

        fresh = split_units(to_devs(dt, count), unit_size)
        if (
            list(units.src_disps) != list(fresh.src_disps)
            or list(units.dst_disps) != list(fresh.dst_disps)
            or list(units.lens) != list(fresh.lens)
        ):
            self.report.record(
                "dev",
                "dev.cache_mismatch",
                f"cached DEV list differs from a freshly-built one for "
                f"({dt.kind}, count={count}, unit={unit_size}): cached "
                f"{len(units.src_disps)} unit(s), fresh "
                f"{len(fresh.src_disps)} — cache key collision or "
                f"mutation of cached state",
                where=where,
            )
