"""Global sanitizer hook registry — the only sanitize module hot paths import.

The instrumented core modules (:mod:`repro.hw.memory`, :mod:`repro.hw.gpu`,
:mod:`repro.sim.core`, ...) do::

    from repro.sanitize import runtime as _san
    ...
    if _san.MEM is not None:
        _san.MEM.on_alloc(allocation)

With every checker disabled (the default) the cost of instrumentation is a
single module-attribute load and ``is not None`` test per hook site — no
allocation, no call.  :func:`repro.sanitize.enable` installs checker
instances here; :func:`repro.sanitize.disable` resets them to ``None``.

This module must stay dependency-free (it is imported by the lowest layers
of the package) — it holds only the three slots and trivial accessors.
"""

from __future__ import annotations

from typing import Optional

#: ASan-style device/host memory sanitizer (:class:`repro.sanitize.memsan.MemorySanitizer`)
MEM: Optional[object] = None
#: vector-clock happens-before race detector (:class:`repro.sanitize.race.RaceDetector`)
RACE: Optional[object] = None
#: DEV/CUDA_DEV work-list validator (:class:`repro.sanitize.devcheck.DevValidator`)
DEV: Optional[object] = None
#: MPI-semantics verifier (:class:`repro.sanitize.verify.Verifier`):
#: wait-for-graph deadlock detection, non-overtaking asserts, and the
#: finalize-time resource audit
VERIFY: Optional[object] = None

#: callbacks invoked with ``RACE is not None`` on every install/clear —
#: lets hot modules swap between fast and instrumented method bindings
#: once per enable/disable instead of branching per event
_listeners: list = []


def active() -> bool:
    """True when any checker is installed."""
    return (
        MEM is not None
        or RACE is not None
        or DEV is not None
        or VERIFY is not None
    )


def subscribe(fn) -> None:
    """Register ``fn(race_active: bool)``; called now and on every change.

    The immediate call lets subscribers establish their initial binding
    at import time (checkers may already be installed via the env var).
    """
    _listeners.append(fn)
    fn(RACE is not None)


def install(mem=None, race=None, dev=None, verify=None) -> None:
    """Install checker instances (None leaves a slot empty)."""
    global MEM, RACE, DEV, VERIFY
    MEM, RACE, DEV, VERIFY = mem, race, dev, verify
    race_active = race is not None
    for fn in _listeners:
        fn(race_active)


def clear() -> None:
    """Remove every installed checker."""
    install(None, None, None, None)


def snapshot() -> tuple:
    """The current (MEM, RACE, DEV, VERIFY) tuple — for save/restore in tests."""
    return (MEM, RACE, DEV, VERIFY)


def restore(saved: tuple) -> None:
    """Restore a triple captured by :func:`snapshot`."""
    install(*saved)
