"""Sanitizer configuration: which checkers run, and how violations surface.

Kept dependency-free so :mod:`repro.mpi.config` can embed a
:class:`SanitizeOptions` in the frozen :class:`~repro.mpi.config.MpiConfig`
without an import cycle.  The environment contract:

``REPRO_SANITIZE``
    ``all`` / ``1`` — every checker on; a comma list of ``mem``, ``race``,
    ``dev``, ``verify`` — that subset; empty / ``0`` / ``off`` — disabled
    (default).

``REPRO_SANITIZE_MODE``
    ``raise`` (default) — the first violation raises
    :class:`~repro.sanitize.report.SanitizerError` at the faulting
    operation; ``record`` — violations collect silently in the report.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["SanitizeOptions", "ENV_VAR", "ENV_MODE_VAR"]

ENV_VAR = "REPRO_SANITIZE"
ENV_MODE_VAR = "REPRO_SANITIZE_MODE"

_NAMES = {
    "mem": "memory",
    "memory": "memory",
    "race": "race",
    "dev": "dev",
    "verify": "verify",
}


@dataclass(frozen=True)
class SanitizeOptions:
    """Per-checker toggles (all off by default — zero overhead)."""

    memory: bool = False
    race: bool = False
    dev: bool = False
    verify: bool = False
    mode: str = "raise"  # "raise" | "record"

    def __post_init__(self) -> None:
        if self.mode not in ("raise", "record"):
            raise ValueError(
                f"sanitize mode must be 'raise' or 'record', got {self.mode!r}"
            )

    @property
    def any_enabled(self) -> bool:
        return self.memory or self.race or self.dev or self.verify

    @classmethod
    def all(cls, mode: str = "raise") -> "SanitizeOptions":
        """Every checker on."""
        return cls(memory=True, race=True, dev=True, verify=True, mode=mode)

    @classmethod
    def parse(cls, spec: str, mode: str = "raise") -> "SanitizeOptions":
        """Parse a checker spec: 'all'/'1', 'off'/'0'/'', or 'mem,race,dev,verify'."""
        raw = spec.strip().lower()
        if not raw or raw in ("0", "off", "none", "false"):
            return cls(mode=mode)
        if raw in ("all", "1", "on", "true"):
            return cls.all(mode=mode)
        fields = {"memory": False, "race": False, "dev": False, "verify": False}
        for part in raw.split(","):
            part = part.strip()
            if not part:
                continue
            name = _NAMES.get(part)
            if name is None:
                raise ValueError(
                    f"sanitize spec {raw!r}: unknown checker {part!r} "
                    f"(expected mem, race, dev, verify, or all)"
                )
            fields[name] = True
        return cls(mode=mode, **fields)

    @classmethod
    def from_env(cls) -> "SanitizeOptions":
        """Parse ``REPRO_SANITIZE`` / ``REPRO_SANITIZE_MODE``."""
        raw = os.environ.get(ENV_VAR, "")
        mode = os.environ.get(ENV_MODE_VAR, "raise").strip().lower() or "raise"
        return cls.parse(raw, mode=mode)
