"""Project lint pass — stdlib ``ast`` only, no third-party dependencies.

Three rules, each guarding an invariant the simulation depends on:

``SAN-L001`` **determinism** (``repro/sim``, ``repro/mpi``,
    ``repro/gpu_engine``): no wall-clock reads (``time.time`` /
    ``time_ns`` / ``monotonic`` / ``perf_counter``, ``datetime.now`` /
    ``utcnow``), no ambient randomness (``random.*``, ``np.random.*``,
    ``os.urandom``, ``uuid.uuid4``), and no iteration over ``set``
    expressions (set iteration order varies with hash seeding).  The
    simulator's virtual clock and seeded RNGs are the only legal sources;
    a single wall-clock read makes every schedule — and therefore every
    race/HB verdict — unreproducible.

``SAN-L002`` **Buffer API** (``repro/mpi/protocols``): no raw
    ``bytearray(...)`` construction.  Protocol code must move payload
    through :class:`repro.hw.memory.Buffer` views so the memory
    sanitizer's shadow state (and in-use accounting) sees every copy.

``SAN-L003`` **metric identity** (everywhere scanned): a metric name
    string must not be registered under two different instrument kinds
    (``counter`` vs ``gauge`` vs ``histogram`` vs ``timer``).  The
    registry raises at runtime only if the two registrations actually
    execute in one process; the lint catches the conflict statically.

``SAN-L004`` **canonical identity** (everywhere scanned except
    ``repro/datatype`` internals): no ``.type_id`` access.  ``type_id``
    is a per-construction global counter — keying a cache or dict on it
    makes structurally identical datatypes look distinct (the
    identity-keyed DevCache bug) and leaks construction order into
    output.  Use :func:`repro.datatype.canonical.canonical_key` for
    cache identity and ``display_id`` for human-readable ids.

``SAN-L005`` **blocking self-send** (everywhere scanned): no
    ``yield x.send(..., dest=<own rank>)`` (or directly-yielded
    ``isend``).  A blocking send to yourself is a wait-for self-cycle:
    over the eager limit the rendezvous CTS never comes, because the
    rank that must post the matching receive is blocked in the send —
    the runtime verifier reports it as a one-rank deadlock cycle.
    Issue the isend first, post the receive, then wait the request
    (cf. ``_gather_linear`` / ``_allgather_ring`` in
    ``repro/mpi/collectives.py``).

``SAN-L006`` **dropped request** (everywhere scanned): the
    :class:`~repro.mpi.requests.Request` returned by ``isend`` /
    ``irecv`` must be waited.  A request discarded as a bare expression
    statement, or bound to a name that is never read again, can never
    be completed-checked — exactly the leak the finalize-time audit
    (``MpiWorld.finalize``) flags at runtime as
    ``verify.request_leak``; this rule catches the shape statically.
"""

from __future__ import annotations

import ast
import os
from typing import NamedTuple

__all__ = ["LintViolation", "run_lint", "lint_file", "iter_py_files"]

#: directories (path fragments) where SAN-L001 determinism rules apply
DETERMINISM_DIRS = ("repro/sim", "repro/mpi", "repro/gpu_engine")
#: path fragment where SAN-L002 applies
PROTOCOL_DIR = "repro/mpi/protocols"
#: path fragment exempt from SAN-L004 (type_id's owning package)
DATATYPE_DIR = "repro/datatype"

#: dotted-call prefixes that read wall clocks or ambient entropy
_NONDET_CALLS = (
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "os.urandom",
    "uuid.uuid4",
)
_NONDET_PREFIXES = (
    "random.",
    "np.random.",
    "numpy.random.",
)
_METRIC_KINDS = ("counter", "gauge", "histogram", "timer")


class LintViolation(NamedTuple):
    path: str
    line: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def _dotted(node: ast.AST) -> str:
    """Flatten an attribute chain rooted at a Name into 'a.b.c' ('' if not)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _norm(path: str) -> str:
    return path.replace(os.sep, "/")


def _call_attr(node: ast.AST) -> str:
    """The method name of an ``x.method(...)`` call ('' otherwise)."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr
    return ""


def _call_arg(call: ast.Call, kw: str, pos: int):
    """Keyword ``kw`` of ``call``, falling back to positional ``pos``."""
    for k in call.keywords:
        if k.arg == kw:
            return k.value
    if len(call.args) > pos:
        return call.args[pos]
    return None


def _own_nodes(fn: ast.AST):
    """Every node of ``fn``'s body excluding nested function/lambda bodies."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            stack.extend(ast.iter_child_nodes(node))


def _lint_requests(path: str, tree: ast.AST) -> list:
    """SAN-L005 / SAN-L006: per-function request-discipline checks."""
    out: list = []
    for fn in ast.walk(tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        # names bound from ``<x>.rank`` count as "own rank" for SAN-L005
        self_ranks = set()
        for node in _own_nodes(fn):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Attribute)
                and node.value.attr == "rank"
            ):
                self_ranks.add(node.targets[0].id)
        #: (name, line) of requests bound to a never-read name
        pending: list = []
        for node in _own_nodes(fn):
            if isinstance(node, ast.Expr):
                val = node.value
                if _call_attr(val) in ("isend", "irecv"):
                    out.append(
                        LintViolation(
                            path,
                            node.lineno,
                            "SAN-L006",
                            f"the Request returned by .{val.func.attr}() is "
                            f"discarded — it can never be waited or "
                            f"completion-checked (the finalize audit flags "
                            f"this at runtime as verify.request_leak); bind "
                            f"it and yield/wait_all it",
                        )
                    )
                elif isinstance(val, ast.Yield) and _call_attr(val.value) in (
                    "send",
                    "isend",
                ):
                    dest = _call_arg(val.value, "dest", 3)
                    is_self = (
                        isinstance(dest, ast.Attribute) and dest.attr == "rank"
                    ) or (isinstance(dest, ast.Name) and dest.id in self_ranks)
                    if is_self:
                        out.append(
                            LintViolation(
                                path,
                                node.lineno,
                                "SAN-L005",
                                "blocking send to own rank: a rendezvous "
                                "self-send deadlocks — the rank that must "
                                "post the matching receive is blocked in "
                                "this send (a wait-for self-cycle); isend "
                                "first, recv, then wait the request (cf. "
                                "repro/mpi/collectives.py _gather_linear)",
                            )
                        )
            elif (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and _call_attr(node.value) in ("isend", "irecv")
            ):
                pending.append(
                    (node.targets[0].id, node.lineno, node.value.func.attr)
                )
        if pending:
            # loads anywhere in the function (closures included) count
            loads = {
                n.id
                for n in ast.walk(fn)
                if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
            }
            for name, line, attr in pending:
                if name not in loads:
                    out.append(
                        LintViolation(
                            path,
                            line,
                            "SAN-L006",
                            f"Request {name!r} from .{attr}() is never read "
                            f"again — it can never be waited or "
                            f"completion-checked (the finalize audit flags "
                            f"this at runtime as verify.request_leak)",
                        )
                    )
    return out


def lint_file(path: str, source: str, metric_sites: dict) -> list:
    """Lint one file; appends metric registrations into ``metric_sites``
    (name -> list of (kind, path, line)) for the cross-file SAN-L003 pass."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [LintViolation(path, exc.lineno or 0, "SAN-L000", f"syntax error: {exc.msg}")]

    norm = _norm(path)
    check_determinism = any(frag in norm for frag in DETERMINISM_DIRS)
    check_protocol = PROTOCOL_DIR in norm
    check_type_id = DATATYPE_DIR not in norm
    out: list = []

    for node in ast.walk(tree):
        if (
            check_type_id
            and isinstance(node, ast.Attribute)
            and node.attr == "type_id"
        ):
            out.append(
                LintViolation(
                    path,
                    node.lineno,
                    "SAN-L004",
                    "type_id is a per-construction counter, not an "
                    "identity: keying on it makes structurally identical "
                    "datatypes look distinct and leaks construction order "
                    "into output; use repro.datatype.canonical."
                    "canonical_key (caches) or .display_id (display)",
                )
            )
        if isinstance(node, ast.Call):
            name = _dotted(node.func)
            if check_determinism and name:
                if name in _NONDET_CALLS or any(
                    name.startswith(p) for p in _NONDET_PREFIXES
                ):
                    out.append(
                        LintViolation(
                            path,
                            node.lineno,
                            "SAN-L001",
                            f"nondeterministic call {name}() in simulation "
                            f"code; use the simulator clock / a seeded "
                            f"numpy Generator threaded through config",
                        )
                    )
            if (
                check_protocol
                and isinstance(node.func, ast.Name)
                and node.func.id == "bytearray"
            ):
                out.append(
                    LintViolation(
                        path,
                        node.lineno,
                        "SAN-L002",
                        "raw bytearray() in protocol code bypasses the "
                        "Buffer API (shadow memory and accounting cannot "
                        "see the copy); stage through Buffer views",
                    )
                )
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _METRIC_KINDS
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                metric_sites.setdefault(node.args[0].value, []).append(
                    (node.func.attr, path, node.lineno)
                )
        elif check_determinism and isinstance(node, (ast.For, ast.AsyncFor)):
            it = node.iter
            is_set = isinstance(it, (ast.Set, ast.SetComp)) or (
                isinstance(it, ast.Call)
                and isinstance(it.func, ast.Name)
                and it.func.id in ("set", "frozenset")
            )
            if is_set:
                out.append(
                    LintViolation(
                        path,
                        node.lineno,
                        "SAN-L001",
                        "iteration over a set expression in simulation "
                        "code; set order depends on hash seeding — "
                        "iterate a sorted() or list/dict instead",
                    )
                )
    out.extend(_lint_requests(path, tree))
    return out


def _metric_conflicts(metric_sites: dict) -> list:
    """Cross-file pass: one metric name, two instrument kinds."""
    out = []
    for name, sites in sorted(metric_sites.items()):
        kinds = sorted({kind for kind, _, _ in sites})
        if len(kinds) <= 1:
            continue
        for kind, path, line in sites:
            out.append(
                LintViolation(
                    path,
                    line,
                    "SAN-L003",
                    f"metric {name!r} registered as .{kind}() here but "
                    f"also as {', '.join('.' + k + '()' for k in kinds if k != kind)} "
                    f"elsewhere; one name must map to one instrument kind",
                )
            )
    return out


def iter_py_files(paths) -> list:
    """Expand files/directories into a sorted list of .py files.

    Nonexistent paths are passed through rather than dropped, so
    :func:`run_lint` reports them as ``SAN-L000`` and the CLI exits
    non-zero — a typo'd path must not read as a clean scan.
    """
    files = []
    for p in paths:
        if os.path.isdir(p):
            for root, dirs, names in os.walk(p):
                dirs.sort()
                for n in sorted(names):
                    if n.endswith(".py"):
                        files.append(os.path.join(root, n))
        elif p.endswith(".py") or not os.path.exists(p):
            files.append(p)
    return files


def run_lint(paths) -> list:
    """Lint every .py file under ``paths``; returns all violations."""
    metric_sites: dict = {}
    out: list = []
    for path in iter_py_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            out.append(LintViolation(path, 0, "SAN-L000", f"unreadable: {exc}"))
            continue
        out.extend(lint_file(path, source, metric_sites))
    out.extend(_metric_conflicts(metric_sites))
    out.sort(key=lambda v: (v.path, v.line, v.code))
    return out
