"""CLI: ``python -m repro.sanitize.lint [paths...]`` (default: ``src``).

Exits 1 if any violation was found — suitable as a CI gate.  Output
formats (``--format``):

* ``text`` (default) — one ``path:line: CODE message`` per violation;
* ``json`` — a machine-readable report on stdout;
* ``github`` — GitHub Actions workflow annotations
  (``::error file=...,line=...``), so violations surface inline on the
  pull-request diff.

Nonexistent or unreadable paths surface as ``SAN-L000`` violations and
fail the run — a typo'd path must not read as a clean scan.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.sanitize.lint import run_lint


def _emit_text(violations) -> None:
    for v in violations:
        print(v)


def _emit_json(violations, paths) -> None:
    json.dump(
        {
            "paths": list(paths),
            "violations": [
                {
                    "path": v.path,
                    "line": v.line,
                    "code": v.code,
                    "message": v.message,
                }
                for v in violations
            ],
            "count": len(violations),
            "ok": not violations,
        },
        sys.stdout,
        indent=2,
    )
    print()


def _emit_github(violations) -> None:
    for v in violations:
        # annotation message text must be single-line; %0A encodes '\n'
        msg = v.message.replace("%", "%25").replace("\n", "%0A")
        print(
            f"::error file={v.path},line={v.line},title={v.code}::{msg}"
        )


def main(argv=None) -> int:
    """Run the lint over the given paths (default ``src``); 0 = clean."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitize.lint",
        description="Project AST lint (stdlib-only); see docs/SANITIZERS.md.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files/dirs (default: src)"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="output format (default: text)",
    )
    args = parser.parse_args(argv)
    violations = run_lint(args.paths)

    if args.format == "json":
        _emit_json(violations, args.paths)
    elif args.format == "github":
        _emit_github(violations)
    else:
        _emit_text(violations)

    if violations:
        print(
            f"repro.sanitize.lint: {len(violations)} violation(s)",
            file=sys.stderr,
        )
        return 1
    if args.format == "text":
        print(
            f"repro.sanitize.lint: clean ({len(args.paths)} path(s) scanned)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
