"""CLI: ``python -m repro.sanitize.lint [paths...]`` (default: ``src``).

Prints one ``path:line: CODE message`` line per violation and exits 1 if
any were found — suitable as a CI gate.
"""

from __future__ import annotations

import sys

from repro.sanitize.lint import run_lint


def main(argv=None) -> int:
    """Run the lint over ``argv`` paths (default ``src``); 0 = clean."""
    args = list(sys.argv[1:] if argv is None else argv)
    paths = args or ["src"]
    violations = run_lint(paths)
    for v in violations:
        print(v)
    if violations:
        print(f"repro.sanitize.lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print(f"repro.sanitize.lint: clean ({len(paths)} path(s) scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
