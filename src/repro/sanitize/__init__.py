"""``repro.sanitize`` — correctness tooling for the simulated GPU/MPI stack.

Five coordinated checkers, all **off by default** (the instrumented hot
paths test a single module global and do nothing):

* :class:`~repro.sanitize.memsan.MemorySanitizer` — ASan-style shadow
  state per allocation: poisoned (unwritten) bytes, redzone / OOB
  sub-buffers, use-after-free, host/device memory-space confusion.
* :class:`~repro.sanitize.race.RaceDetector` — vector-clock
  happens-before tracking across sim processes, GPU streams, and active
  messages; flags overlapping buffer accesses with no HB edge.
* :class:`~repro.sanitize.devcheck.DevValidator` — every DEV/CUDA_DEV
  work list must partition the packed typemap; cache hits must match a
  fresh build.
* :class:`~repro.sanitize.verify.Verifier` — MPI-semantics verifier:
  wait-for-graph deadlock diagnosis when the event loop goes idle,
  pair_seq non-overtaking asserts at the matching engine, and the
  finalize-time resource audit (``MpiWorld.finalize``).
* :mod:`repro.sanitize.lint` — standalone AST lint
  (``python -m repro.sanitize.lint``) for project invariants.

Enable via :func:`enable` (or ``REPRO_SANITIZE=all`` in the environment —
:class:`~repro.mpi.config.MpiConfig` picks it up automatically).  See
``docs/SANITIZERS.md``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from repro.sanitize import runtime
from repro.sanitize.options import SanitizeOptions
from repro.sanitize.report import SanitizerError, SanitizerReport, Violation

__all__ = [
    "SanitizeOptions",
    "SanitizerError",
    "SanitizerReport",
    "Violation",
    "enable",
    "disable",
    "is_enabled",
    "report",
    "enabled",
]

#: the process-wide report every installed checker writes into
_report = SanitizerReport()


def report() -> SanitizerReport:
    """The shared :class:`SanitizerReport` (live even while disabled)."""
    return _report


def is_enabled() -> bool:
    """True when any checker is currently installed."""
    return runtime.active()


def enable(
    options: Optional[SanitizeOptions] = None,
    metrics=None,
    mode: Optional[str] = None,
) -> SanitizerReport:
    """Install the checkers selected by ``options`` (default: all).

    Idempotent: re-enabling keeps already-installed checker instances
    (and their shadow state / clocks) and only fills in missing ones.
    ``metrics`` (a :class:`repro.obs.metrics.MetricsRegistry`, typically
    scoped ``"sanitize."``) attaches a counter sink; ``mode`` overrides
    the report's raise/record behaviour.
    """
    if options is None:
        options = SanitizeOptions.all()
    if mode is not None:
        _report.mode = mode
    else:
        _report.mode = options.mode
    if metrics is not None:
        _report.metrics = metrics

    mem, race, dev = runtime.MEM, runtime.RACE, runtime.DEV
    verify = runtime.VERIFY
    if options.memory and mem is None:
        from repro.sanitize.memsan import MemorySanitizer

        mem = MemorySanitizer(_report)
    if options.race and race is None:
        from repro.sanitize.race import RaceDetector

        race = RaceDetector(_report)
    if options.dev and dev is None:
        from repro.sanitize.devcheck import DevValidator

        dev = DevValidator(_report)
    if options.verify and verify is None:
        from repro.sanitize.verify import Verifier

        verify = Verifier(_report)
    if verify is not None:
        # the report can be swapped by enabled(); keep the verifier's sink
        # pointed at whichever report is current
        verify.report = _report
    runtime.install(mem=mem, race=race, dev=dev, verify=verify)
    return _report


def disable() -> None:
    """Uninstall every checker (the report keeps its findings)."""
    runtime.clear()


@contextmanager
def enabled(
    options: Optional[SanitizeOptions] = None,
    metrics=None,
    mode: Optional[str] = None,
):
    """Context manager: fresh checkers + isolated report for the block.

    Saves and restores whatever was installed before (including nothing),
    so tests can seed bugs in ``record`` mode without polluting — or
    inheriting — the process-wide report used by an env-driven run.
    """
    global _report
    saved_hooks = runtime.snapshot()
    saved_report = _report
    runtime.clear()
    _report = SanitizerReport()
    try:
        yield enable(options, metrics=metrics, mode=mode)
    finally:
        _report = saved_report
        runtime.restore(saved_hooks)
