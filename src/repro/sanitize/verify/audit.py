"""Finalize-time resource audit — layer 2 of the MPI verifier.

:meth:`repro.mpi.world.MpiWorld.finalize` calls :func:`audit_world` when
the verifier is installed.  Like ``MPI_Finalize``'s "all pending
communication must be completed" rule, a clean program reaches teardown
with nothing outstanding; everything still live is a finding:

``verify.request_leak``
    A tracked isend/irecv request that never completed (e.g. a
    rendezvous send whose matching receive was never posted — the CTS
    never comes, but the world's root process can still finish, so the
    run "succeeds" with a zombie send parked forever).
``verify.recv_unmatched``
    A posted receive still sitting in a matching engine.
``verify.unexpected_message``
    A delivered message no receive ever consumed.
``verify.seq_gap``
    Out-of-order arrivals still held by the re-sequencer — the gap
    (a dropped or never-sent pair_seq) never closed.
``verify.window_leak``
    An :class:`~repro.mpi.rma.RmaWindow` never freed.
``verify.barrier_incomplete``
    Ranks left waiting inside the scaffolding barrier.
``verify.cache_pin_leak``
    DevCache entries still pinned at teardown — including pins whose
    communicator was already freed (pinned *past* their communicator).

Every finding also bumps a ``verify.audit.<kind>`` counter (plus
``verify.audit.findings``) in ``world.metrics``, so the audit surfaces
in :meth:`~repro.mpi.world.MpiWorld.stats` snapshots and the Perfetto
export alongside every other world metric.
"""

from __future__ import annotations

import hashlib

__all__ = ["audit_world"]


def _key_label(key: tuple) -> str:
    """Short stable label for a DevCache canonical key: ``kind/1a2b3c4d``."""
    digest = hashlib.blake2b(repr(key).encode(), digest_size=4).hexdigest()
    kind = key[0][0] if key and key[0] else "?"
    return f"{kind}/{digest}"


def _count(world, kind: str) -> None:
    world.metrics.counter("verify.audit.findings").inc()
    world.metrics.counter(f"verify.audit.{kind}").inc()


def audit_world(world, verifier) -> list:
    """Audit one world at teardown; records and returns the findings.

    In ``raise`` mode the first finding raises
    :class:`~repro.sanitize.report.SanitizerError` (finalize acts as an
    assertion); in ``record`` mode everything is collected and returned.
    """
    found: list = []
    report = verifier.report
    now = getattr(world.sim, "now", None)

    def rec(code: str, kind: str, message: str, where: str) -> None:
        _count(world, kind)
        found.append(
            report.record("verify", code, message, where=where, time_s=now)
        )

    # -- never-completed requests -----------------------------------------
    for req in world._verify_requests:
        if req.done:
            continue
        info = getattr(req, "_verify_info", None)
        if info is None:
            rec(
                "verify.request_leak",
                "request_leak",
                f"{req!r} never completed",
                "finalize",
            )
            continue
        rank, kind, peer, tag, comm_id, nbytes = info
        direction = "to" if kind == "send" else "from"
        rec(
            "verify.request_leak",
            "request_leak",
            f"rank {rank} {kind} {direction} r{peer} (tag={tag}, "
            f"comm={comm_id}, {nbytes}B) never completed",
            f"r{rank}",
        )

    # -- matching-engine residue -------------------------------------------
    for proc in world.procs.materialized():
        eng = proc.matching
        for post in eng._posted:
            src = "ANY" if post.source < 0 else post.source
            rec(
                "verify.recv_unmatched",
                "recv_unmatched",
                f"rank {proc.rank} posted receive (source={src}, "
                f"tag={post.tag}, comm={post.comm_id}) never matched",
                f"r{proc.rank}",
            )
        for env, _arrival in eng._unexpected:
            rec(
                "verify.unexpected_message",
                "unexpected_message",
                f"rank {proc.rank} holds an unexpected message from "
                f"r{env.source} (tag={env.tag}, comm={env.comm_id}, "
                f"pair_seq={env.pair_seq}) no receive consumed",
                f"r{proc.rank}",
            )
        for (src, comm_id), pending in eng._held.items():
            if not pending:
                continue
            want = eng._next_pair.get((src, comm_id), 0)
            rec(
                "verify.seq_gap",
                "seq_gap",
                f"rank {proc.rank} held out-of-order arrivals from r{src} "
                f"(comm={comm_id}): have pair_seq {sorted(pending)}, the "
                f"gap at {want} never closed",
                f"r{proc.rank}",
            )

    # -- RMA windows --------------------------------------------------------
    for ref in world._rma_windows:
        win = ref()
        if win is not None and not win.freed:
            pending = sum(len(v) for v in win._pending.values())
            extra = f", {pending} unfenced op(s)" if pending else ""
            rec(
                "verify.window_leak",
                "window_leak",
                f"RMA window w{win.win_id} ({len(win.buffers)} buffers"
                f"{extra}) never freed",
                f"w{win.win_id}",
            )

    # -- barrier ------------------------------------------------------------
    if world._barrier_arrived:
        rec(
            "verify.barrier_incomplete",
            "barrier_incomplete",
            f"{world._barrier_arrived} rank(s) still waiting inside a "
            f"barrier ({world.size - world._barrier_arrived} never arrived)",
            "barrier",
        )

    # -- DevCache pins -------------------------------------------------------
    for proc in world.procs.materialized():
        engine = proc._engine
        if engine is None:
            continue
        for key, comm_ids in engine.cache.pinned_entries():
            label = _key_label(key)
            past = sorted(c for c in comm_ids if c in world._freed_comms)
            live = sorted(c for c in comm_ids if c not in world._freed_comms)
            if past:
                rec(
                    "verify.cache_pin_leak",
                    "cache_pin_leak",
                    f"rank {proc.rank} DevCache entry {label} pinned past "
                    f"freed communicator(s) {past}",
                    f"r{proc.rank}",
                )
            if live:
                rec(
                    "verify.cache_pin_leak",
                    "cache_pin_leak",
                    f"rank {proc.rank} DevCache entry {label} still pinned "
                    f"at finalize by communicator(s) {live}",
                    f"r{proc.rank}",
                )
    return found
