"""``repro.sanitize.verify`` — opt-in MPI-semantics verifier.

Three coordinated layers (enable with ``REPRO_SANITIZE=verify`` or
``SanitizeOptions(verify=True)``):

1. **Deadlock detector** — blocking MPI operations (rendezvous CTS
   waits, posted receives, barrier phases, RMA fences) register a
   :class:`~repro.sanitize.verify.waitgraph.WaitInfo` here while parked;
   when the event loop drains with the root process unfinished,
   :meth:`Verifier.on_stuck` turns the live waits into a wait-for-graph
   diagnosis (per-rank blocked call site, peer, tag, communicator, and
   the cycle, if any) recorded as ``verify.deadlock`` violations and
   folded into the :class:`~repro.sim.core.SimulationError` message.

2. **Finalize-time resource audit** — :meth:`repro.mpi.world.MpiWorld.finalize`
   calls :func:`repro.sanitize.verify.audit.audit_world` to flag
   unmatched posted receives, never-completed requests, unfreed RMA
   windows, and DevCache entries pinned past their communicator.

3. **Schedule-perturbation explorer** —
   ``python -m repro.sanitize.explore`` (see
   :mod:`repro.sanitize.verify.explore`) re-runs scenarios under a
   seeded :class:`~repro.sanitize.verify.explore.PerturbedSimulator`
   and randomized wildcard-match choices, asserting bit-identical
   application-visible results across schedules.

The verifier also asserts the pair_seq **non-overtaking invariant** at
every :meth:`~repro.mpi.matching.MatchingEngine._deliver` — matching
must see send order per (source, communicator) regardless of wire
reordering.

All hooks follow the sanitizer contract: hot paths test
``_san.VERIFY is not None`` and pay nothing when the verifier is off.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sanitize.verify.waitgraph import WaitInfo, diagnose

__all__ = ["Verifier", "WaitInfo"]


class Verifier:
    """MPI-semantics verifier: wait bookkeeping + matching invariants.

    One instance is installed at :data:`repro.sanitize.runtime.VERIFY`
    by :func:`repro.sanitize.enable`.  Per-world state (tracked
    requests, RMA windows) lives on the world objects themselves and
    per-engine state (delivery counters) on the matching engines, so a
    session-long verifier holds no references that outlive the worlds
    it watched.
    """

    def __init__(self, report) -> None:
        self.report = report
        self._tokens = 0
        #: token -> WaitInfo for every currently-blocked MPI operation
        self.waits: dict[int, WaitInfo] = {}
        #: per-rank stack of (op, seq, algo) collective frames, keyed
        #: (id(world), rank) so concurrent worlds don't collide
        self._coll: dict[tuple, list] = {}
        #: explorer hook — given the candidate unexpected-queue indices
        #: for a wildcard receive (first eligible per source), return the
        #: chosen index.  None = deterministic first match.
        self.match_choice: Optional[Callable[[list], int]] = None

    # -- wait-for bookkeeping --------------------------------------------
    def wait_begin(
        self,
        kind: str,
        rank: int,
        sim,
        peer: Optional[int] = None,
        tag: Optional[int] = None,
        comm_id: Optional[int] = None,
        detail: str = "",
        world=None,
    ) -> int:
        """Register a blocking operation; returns a token for wait_end."""
        self._tokens += 1
        tok = self._tokens
        if not detail:
            frame = self._coll.get((id(world), rank))
            if frame:
                op, seq, algo = frame[-1]
                detail = f"{op}#{seq}/{algo}"
        self.waits[tok] = WaitInfo(
            token=tok,
            kind=kind,
            rank=rank,
            sim=sim,
            peer=peer,
            tag=tag,
            comm_id=comm_id,
            detail=detail,
            since=getattr(sim, "now", 0.0),
            world=world,
        )
        return tok

    def wait_end(self, token: Optional[int]) -> None:
        """Unregister (idempotent — safe in ``finally`` blocks)."""
        if token is not None:
            self.waits.pop(token, None)

    # -- collective context ----------------------------------------------
    def coll_begin(self, world, rank: int, op: str, seq: int, algo: str) -> tuple:
        """Push a collective frame; waits inside inherit it as detail."""
        key = (id(world), rank)
        self._coll.setdefault(key, []).append((op, seq, algo))
        return key

    def coll_end(self, key: tuple) -> None:
        """Pop the frame pushed by :meth:`coll_begin` (idempotent)."""
        frames = self._coll.get(key)
        if frames:
            frames.pop()
            if not frames:
                del self._coll[key]

    # -- request tracking -------------------------------------------------
    def track_request(
        self,
        world,
        req,
        rank: int,
        kind: str,
        peer: int,
        tag: int,
        comm_id: int,
        nbytes: int,
    ) -> None:
        """Remember a request for the finalize-time leak audit.

        Metadata rides on the request object (no ``__slots__`` there);
        the per-world list dies with the world.
        """
        req._verify_info = (rank, kind, peer, tag, comm_id, nbytes)
        world._verify_requests.append(req)

    # -- matching-engine invariants ---------------------------------------
    def on_deliver(self, engine, env) -> None:
        """Assert pair_seq non-overtaking at the point of matching.

        Stamped arrivals must reach :meth:`MatchingEngine._deliver` in
        exactly send order per (source, comm) — the engine's re-sequencer
        guarantees it, and this is the runtime proof.  Counters start
        from the engine's own ``_next_pair`` so enabling the verifier
        mid-run never raises a false alarm.
        """
        if env.pair_seq < 0:
            return
        pairs = getattr(engine, "_verify_next_pair", None)
        if pairs is None:
            pairs = engine._verify_next_pair = {}
        key = (env.source, env.comm_id)
        want = pairs.get(key)
        if want is None:
            want = engine._next_pair.get(key, 0)
        if env.pair_seq != want:
            self.report.record(
                "verify",
                "verify.overtaking",
                f"matching saw pair_seq={env.pair_seq} from r{env.source} "
                f"(comm={env.comm_id}, tag={env.tag}) but send order expects "
                f"{want} — non-overtaking violated",
                where=f"matching r{env.dest}",
            )
            # keep counting from the observed point so record mode does
            # not cascade one reorder into a violation per message
            pairs[key] = env.pair_seq + 1
            return
        pairs[key] = want + 1

    def on_match_choice(self, engine, post, candidates: list) -> int:
        """Explorer choice point: pick among eligible unexpected messages.

        ``candidates`` holds the index of the first eligible message per
        distinct source (per-source FIFO is mandatory; *between* sources
        MPI leaves the choice open — exactly the race the explorer
        perturbs).  Default: the deterministic first match.
        """
        if self.match_choice is None or len(candidates) == 1:
            return candidates[0]
        return self.match_choice(candidates)

    # -- deadlock diagnosis ------------------------------------------------
    def on_stuck(self, sim, proc, queue_empty: bool) -> str:
        """Called by ``run_until_complete`` when the loop gives up.

        Records one ``verify.deadlock`` (queue drained — certain) or
        ``verify.stall`` (event-limit hit — possible livelock) violation
        per blocked rank, then returns the full diagnosis for the
        :class:`~repro.sim.core.SimulationError` message.  Findings use
        ``force_record`` — the simulator raises its own error anyway,
        and a raise here would mask the call-site context.
        """
        summary, per_rank = diagnose(
            list(self.waits.values()), sim, queue_empty=queue_empty
        )
        code = "verify.deadlock" if queue_empty else "verify.stall"
        for rank, line in per_rank:
            self.report.record(
                "verify",
                code,
                line,
                where=f"r{rank}",
                time_s=getattr(sim, "now", None),
                force_record=True,
            )
        return summary
