"""Schedule-perturbation explorer: ``python -m repro.sanitize.explore``.

A DPOR-lite harness for the simulated MPI stack.  The discrete-event
simulator is deterministic: same-timestamp events pop in scheduling
order (FIFO via the ``seq`` tiebreaker).  Real MPI makes no such
promise — progress threads, NIC completion order and kernel scheduling
interleave concurrent work arbitrarily.  The explorer re-runs a
scenario many times under a :class:`PerturbedSimulator` whose
same-timestamp tiebreaker is seeded-random, plus randomized
wildcard-receive match choices (the one *semantic* nondeterminism MPI
allows — see :meth:`repro.mpi.matching.MatchingEngine.post`), and
asserts that every application-visible result is **bit-identical** to
the unperturbed baseline:

* received buffer contents (packed through the datatype, so only the
  typemap-covered bytes count);
* every ``Status`` (source, tag, byte count);
* no sanitizer violation and a clean ``MpiWorld.finalize()`` audit.

Each run executes inside ``sanitize.enabled(verify=True, mode="raise")``
so the non-overtaking assert, the deadlock detector and the
finalize-time leak audit are armed — a schedule that deadlocks, leaks
or overtakes fails loudly instead of hanging silently.

Scenarios cover the protocol matrix: ``eager`` (single-AM path, with a
wildcard receive), ``rendezvous`` (pipelined RTS/CTS with small
fragments), the three ``smoke-*`` environments of
:mod:`repro.bench.smoke` (ipc_rdma / copyinout / host), and
``coll_crossover`` (alltoall over a 2x2 world on both sides of the
staged/direct crossover).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import random
import sys
from dataclasses import dataclass, field
from heapq import heappush
from typing import Callable, Optional

import numpy as np

from repro import sanitize
from repro.sanitize import runtime as _san
from repro.sanitize.options import SanitizeOptions
from repro.sanitize.report import SanitizerError
from repro.sim.core import (
    _PAST_ABS_TOL,
    _PAST_REL_TOL,
    SimulationError,
    Simulator,
    TimerHandle,
)

__all__ = [
    "PerturbedSimulator",
    "ExploreResult",
    "SCENARIOS",
    "explore",
    "main",
]

#: schedules per scenario: default and ``--quick`` (the CI verify leg)
DEFAULT_SCHEDULES = 50
QUICK_SCHEDULES = 8


class PerturbedSimulator(Simulator):
    """A :class:`Simulator` with seeded-random same-timestamp ordering.

    The base heap orders entries by ``(when, seq)`` with ``seq`` a
    monotonic integer — concurrent events fire FIFO.  Here ``seq`` is
    the tuple ``(rng.random(), n)``: events at the same timestamp pop
    in seeded-random order instead, modelling the arbitrary progress
    interleaving of a real MPI library.  ``n`` keeps keys unique so
    heap comparison never reaches the (uncomparable) callback.

    Only the three primitives that push heap entries are overridden —
    ``schedule_after`` delegates to :meth:`schedule_at` and
    ``call_after``/``call_soon`` to :meth:`call_at` in the base class.
    :class:`TimerHandle` cancellation compares ``entry[1]`` by
    equality, which works for tuples as well as ints.
    """

    def __init__(self, seed: int) -> None:
        super().__init__()
        self._rng = random.Random(seed)

    def _push(self, when: float, fn) -> list:
        seq = (self._rng.random(), self._seq)
        self._seq += 1
        free = self._free
        if free:
            entry = free.pop()
            entry[0] = when
            entry[1] = seq
            entry[2] = fn
        else:
            entry = [when, seq, fn]
        heappush(self._heap, entry)
        return entry

    def _clamp(self, when: float) -> float:
        now = self._now
        if when < now:
            if now - when > _PAST_REL_TOL * now + _PAST_ABS_TOL:
                raise SimulationError(
                    f"cannot schedule at {when} before current time {now}"
                )
            return now
        return when

    def schedule_at(self, when: float, fn) -> None:
        """Schedule ``fn`` at ``when`` with a randomized tie-break key."""
        self._push(self._clamp(when), fn)

    def schedule_soon(self, fn) -> None:
        """Schedule ``fn`` at the current time (randomized tie-break)."""
        self._push(self._now, fn)

    def call_at(self, when: float, fn) -> TimerHandle:
        """Schedule a cancellable timer at ``when`` (randomized tie-break)."""
        return TimerHandle(self, self._push(self._clamp(when), fn))


# ---------------------------------------------------------------------------
# scenarios: each builds a world on the supplied simulator, runs it, and
# returns a digest of everything the application could observe
# ---------------------------------------------------------------------------


def _hasher():
    return hashlib.blake2b(digest_size=16)


def _add_status(h, tag: str, st) -> None:
    h.update(
        f"{tag}:source={st.source},tag={st.tag},"
        f"count={st.count_bytes};".encode()
    )


def _pingpong_scenario(
    sim: Simulator, kind: str, n: int, iters: int, frag_bytes: int
) -> str:
    """Triangular-matrix ping-pong on one smoke environment."""
    from repro.bench.harness import make_env, matrix_buffers
    from repro.datatype.convertor import pack_bytes
    from repro.mpi.config import MpiConfig
    from repro.workloads.matrices import MatrixWorkload

    env = make_env(kind, config=MpiConfig(frag_bytes=frag_bytes), sim=sim)
    wl = MatrixWorkload.triangular(n=n)
    b0, b1 = matrix_buffers(env, wl, seed=7)
    dt = wl.datatype
    statuses: list = []

    def rank0(mpi):
        for i in range(iters):
            yield mpi.send(b0, dt, 1, dest=1, tag=10 + i)
            st = yield mpi.recv(b0, dt, 1, source=1, tag=20 + i)
            statuses.append(("r0", st))

    def rank1(mpi):
        for i in range(iters):
            st = yield mpi.recv(b1, dt, 1, source=0, tag=10 + i)
            statuses.append(("r1", st))
            yield mpi.send(b1, dt, 1, dest=0, tag=20 + i)

    env.world.run([rank0, rank1])
    env.world.finalize()

    h = _hasher()
    # per-rank status order is deterministic; inter-rank order is not —
    # sort by the (rank, append-index-within-rank) implied by grouping
    for who in ("r0", "r1"):
        for w, st in statuses:
            if w == who:
                _add_status(h, who, st)
    h.update(pack_bytes(dt, 1, b0.bytes).tobytes())
    h.update(pack_bytes(dt, 1, b1.bytes).tobytes())
    return h.hexdigest()


def _eager_scenario(sim: Simulator) -> str:
    """Small contiguous messages (single-AM eager path), multi-tag,
    finishing with a wildcard (ANY_SOURCE/ANY_TAG) receive — the match
    choice the explorer randomizes (one peer, so the result is still
    deterministic)."""
    from repro.bench.harness import make_env
    from repro.datatype.ddt import contiguous
    from repro.datatype.primitives import DOUBLE
    from repro.mpi.config import MpiConfig

    env = make_env("sm-2gpu", config=MpiConfig(), sim=sim)
    dt = contiguous(64, DOUBLE).commit()  # 512 B: far under eager_limit
    ctx0, ctx1 = env.world.procs[0].ctx, env.world.procs[1].ctx
    rng = np.random.default_rng(11)
    sends = [ctx0.malloc(dt.size, label=f"eager-s{i}") for i in range(4)]
    recvs = [ctx1.malloc(dt.size, label=f"eager-r{i}") for i in range(4)]
    for b in sends:
        b.bytes[:] = rng.integers(0, 255, dt.size, dtype=np.uint8)
    for b in recvs:
        b.fill(0)
    statuses: list = []

    def rank0(mpi):
        reqs = [
            mpi.isend(sends[i], dt, 1, dest=1, tag=30 + i) for i in range(3)
        ]
        yield mpi.wait_all(*reqs)
        yield mpi.send(sends[3], dt, 1, dest=1, tag=40)

    def rank1(mpi):
        for i in range(3):
            st = yield mpi.recv(recvs[i], dt, 1, source=0, tag=30 + i)
            statuses.append(st)
        # wildcard: exercises the explorer's match-choice hook
        st = yield mpi.recv(recvs[3], dt, 1)
        statuses.append(st)

    env.world.run([rank0, rank1])
    env.world.finalize()

    h = _hasher()
    for st in statuses:
        _add_status(h, "r1", st)
    for b in recvs:
        h.update(b.bytes.tobytes())
    return h.hexdigest()


def _coll_scenario(sim: Simulator) -> str:
    """Alltoall over a 2x2 world on both sides of the staged/direct
    crossover (the ``coll_crossover`` bench scenario's protagonists)."""
    from repro.hw.node import Cluster
    from repro.datatype.ddt import contiguous
    from repro.datatype.primitives import DOUBLE
    from repro.mpi.collectives import CollAlgorithm, alltoall
    from repro.mpi.config import MpiConfig
    from repro.mpi.world import MpiWorld

    cluster = Cluster(2, 2, sim=sim)
    placements = [(n, g) for n in range(2) for g in range(2)]
    world = MpiWorld(cluster, placements, config=MpiConfig())
    size = 4
    dt = contiguous(256, DOUBLE).commit()  # 2 KB per peer block
    rng = np.random.default_rng(13)
    sendbufs, recvbufs = [], []
    for r in range(size):
        ctx = world.procs[r].ctx
        srow, rrow = [], []
        for _ in range(size):
            sb = ctx.malloc(dt.size)
            sb.bytes[:] = rng.integers(0, 255, dt.size, dtype=np.uint8)
            rb = ctx.malloc(dt.size)
            rb.fill(0)
            srow.append(sb)
            rrow.append(rb)
        sendbufs.append(srow)
        recvbufs.append(rrow)

    def program(rank):
        def run(mpi):
            for algo in (CollAlgorithm.STAGED, CollAlgorithm.DIRECT):
                yield from alltoall(
                    mpi, sendbufs[rank], dt, 1, recvbufs[rank], dt, 1,
                    algorithm=algo,
                )
                yield mpi.barrier()
        return run

    world.run({r: program(r) for r in range(size)})
    world.finalize()

    h = _hasher()
    for r in range(size):
        for b in recvbufs[r]:
            h.update(b.bytes.tobytes())
    return h.hexdigest()


def _traffic_scenario(sim: Simulator) -> str:
    """Tuned multi-tenant traffic replay (autotuner + generator).

    The decision table is *synthetic* — fixed costs written directly,
    no measurement — so every run derives identical frozen decisions
    regardless of event ordering.  The digest covers all received bytes
    plus the tuner's applied-decision digest: data integrity and
    reproducible tuned (frag, depth, protocol, plan) selection per size
    band in one check.  Costs are rigged so the tuned choices *differ*
    from the static defaults (small fragments, copy-in/out preference,
    gather plan) — the perturbed schedules must agree while actually
    running the tuned paths.
    """
    from repro.datatype.canonical import canonicalize
    from repro.datatype.ddt import contiguous, vector
    from repro.datatype.primitives import BYTE, DOUBLE
    from repro.tune import Autotuner, DecisionTable
    from repro.workloads.traffic import TrafficSpec, replay_digest

    # default spec size: large enough that vector, plan, and intra-node
    # rigged decisions all fire (17 applied decisions), not just contig
    spec = TrafficSpec(rounds=4, tenants=3)
    table = DecisionTable()
    helper = Autotuner(table, mode="observe")
    vdt = vector(
        spec.vector_rows, spec.vector_bl, spec.vector_stride, DOUBLE
    ).commit()
    forms = [
        (canonicalize(vdt, c), vdt.size * c)
        for c in range(1, spec.vector_max_count + 1)
    ] + [
        (canonicalize(contiguous(n, BYTE).commit(), 1), n)
        for n, _w in spec.size_mix
    ]
    for form, nbytes in forms:
        for intra in (True, False):
            for loc in ("host", "device"):
                key = helper.p2p_key(form, nbytes, intra, loc)
                alt = "host" if loc == "host" else "copyinout"
                # rigged: small fragments + the fallback protocol win
                table.observe(key, f"frag=262144,depth=2,proto={alt}", 1.0, 10**9)
                table.observe(key, "frag=1048576,depth=4,proto=-", 2.0, 10**9)
        if form.kind == "vector":
            pkey = helper.plan_key(form, nbytes)
            table.observe(pkey, "gather", 1.0, 10**9)
            table.observe(pkey, "vector_kernel", 2.0, 10**9)
    tuner = Autotuner(table, mode="on")
    return replay_digest(spec, tuner=tuner, sim=sim)


#: scenario name -> callable(sim) -> result digest
SCENARIOS: dict[str, Callable[[Simulator], str]] = {
    # protocol paths
    "eager": _eager_scenario,
    "rendezvous": lambda sim: _pingpong_scenario(
        sim, "ib", n=96, iters=2, frag_bytes=8 * 1024
    ),
    # the three smoke environments (repro.bench.smoke SMOKE_CASES)
    "smoke-sm-2gpu": lambda sim: _pingpong_scenario(
        sim, "sm-2gpu", n=128, iters=1, frag_bytes=16 * 1024
    ),
    "smoke-ib": lambda sim: _pingpong_scenario(
        sim, "ib", n=128, iters=1, frag_bytes=16 * 1024
    ),
    "smoke-cpu": lambda sim: _pingpong_scenario(
        sim, "cpu", n=128, iters=1, frag_bytes=16 * 1024
    ),
    # collective crossover: staged + direct alltoall on a 2x2 world
    "coll_crossover": _coll_scenario,
    # tuned multi-tenant traffic replay (frozen synthetic decision table)
    "traffic": _traffic_scenario,
}


# ---------------------------------------------------------------------------
# the exploration loop
# ---------------------------------------------------------------------------


@dataclass
class ExploreResult:
    """Outcome of exploring one scenario."""

    scenario: str
    baseline_digest: str = ""
    schedules: int = 0
    identical: int = 0
    #: (seed, digest) of every schedule whose digest diverged
    divergent: list = field(default_factory=list)
    #: "seed=N: message" for every schedule that raised
    errors: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            not self.divergent
            and not self.errors
            and self.identical == self.schedules
        )

    def to_dict(self) -> dict:
        """JSON-serializable form for the ``--json`` report."""
        return {
            "scenario": self.scenario,
            "baseline_digest": self.baseline_digest,
            "schedules": self.schedules,
            "identical": self.identical,
            "divergent": [list(d) for d in self.divergent],
            "errors": self.errors,
            "ok": self.ok,
        }


def _run_once(
    fn: Callable[[Simulator], str],
    sim: Simulator,
    match_rng: Optional[random.Random],
) -> str:
    """One scenario execution under a fresh raise-mode verifier."""
    with sanitize.enabled(SanitizeOptions(verify=True), mode="raise"):
        if match_rng is not None:
            _san.VERIFY.match_choice = match_rng.choice
        return fn(sim)


def explore(
    name: str,
    schedules: int = DEFAULT_SCHEDULES,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> ExploreResult:
    """Explore ``schedules`` perturbed schedules of scenario ``name``.

    The baseline runs on an unperturbed :class:`Simulator` with
    deterministic matching; every perturbed run must reproduce its
    digest bit-for-bit.  Deadlocks, sanitizer violations and audit
    findings surface as errors rather than divergences.
    """
    fn = SCENARIOS[name]
    res = ExploreResult(scenario=name, schedules=schedules)
    res.baseline_digest = _run_once(fn, Simulator(), None)
    for i in range(schedules):
        run_seed = seed * 1_000_003 + i
        try:
            digest = _run_once(
                fn,
                PerturbedSimulator(run_seed),
                random.Random(run_seed ^ 0x5EED),
            )
        except (SanitizerError, SimulationError) as exc:
            res.errors.append(f"seed={run_seed}: {exc}")
            continue
        if digest == res.baseline_digest:
            res.identical += 1
        else:
            res.divergent.append((run_seed, digest))
        if progress is not None and (i + 1) % 10 == 0:
            progress(f"  {name}: {i + 1}/{schedules} schedules")
    return res


def main(argv: Optional[list] = None) -> int:
    """CLI: explore scenarios, report, exit non-zero on any divergence."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitize.explore",
        description=(
            "Re-run MPI scenarios under seeded schedule perturbation and "
            "assert bit-identical application-visible results."
        ),
    )
    parser.add_argument(
        "scenarios",
        nargs="*",
        metavar="SCENARIO",
        help="scenario names (default: all); see --list",
    )
    parser.add_argument(
        "--schedules",
        type=int,
        default=None,
        help=f"perturbed schedules per scenario (default {DEFAULT_SCHEDULES})",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base seed (default 0)"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI mode: {QUICK_SCHEDULES} schedules per scenario",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write the full report as JSON ('-' for stdout)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in SCENARIOS:
            print(name)
        return 0
    names = args.scenarios or list(SCENARIOS)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        print(
            f"error: unknown scenario(s) {', '.join(unknown)} "
            f"(choose from: {', '.join(SCENARIOS)})",
            file=sys.stderr,
        )
        return 2
    schedules = args.schedules
    if schedules is None:
        schedules = QUICK_SCHEDULES if args.quick else DEFAULT_SCHEDULES

    results = []
    failed = False
    for name in names:
        print(f"== {name} ({schedules} schedules, seed {args.seed})")
        res = explore(name, schedules=schedules, seed=args.seed, progress=print)
        results.append(res)
        if res.ok:
            print(
                f"  ok: {res.identical}/{res.schedules} schedules "
                f"bit-identical ({res.baseline_digest})"
            )
        else:
            failed = True
            for s, d in res.divergent:
                print(f"  DIVERGED seed={s}: {d} != {res.baseline_digest}")
            for line in res.errors:
                print(f"  ERROR {line}")

    if args.json:
        doc = {
            "schedules": schedules,
            "seed": args.seed,
            "results": [r.to_dict() for r in results],
            "ok": not failed,
        }
        if args.json == "-":
            json.dump(doc, sys.stdout, indent=2)
            print()
        else:
            parent = os.path.dirname(args.json)
            if parent:
                os.makedirs(parent, exist_ok=True)
            with open(args.json, "w") as f:
                json.dump(doc, f, indent=2)
            print(f"report -> {args.json}")

    total = sum(r.schedules for r in results)
    good = sum(r.identical for r in results)
    print(
        f"explore: {good}/{total} schedules bit-identical across "
        f"{len(results)} scenario(s)"
        + ("" if not failed else " — FAILURES above")
    )
    return 1 if failed else 0
