"""Wait-for-graph records and deadlock diagnosis for the MPI verifier.

Every blocking MPI operation registers a :class:`WaitInfo` with the
installed :class:`~repro.sanitize.verify.Verifier` while it is parked on
the event loop (``wait_begin``/``wait_end``).  When
:meth:`repro.sim.core.Simulator.run_until_complete` finds the queue
drained with the root process unfinished, :func:`diagnose` turns the set
of live waits into a per-rank report plus a wait-for-graph cycle
analysis:

* ``recv(source=s)`` / rendezvous ``cts`` waits add an **AND** edge
  ``rank -> s`` (progress requires exactly that peer).
* ``recv(source=ANY)`` adds **OR** edges to every other rank in the
  world (any sender would unblock it).
* ``barrier`` waits add AND edges to every world rank that has *not*
  arrived at the barrier.
* ``fence`` waits have no remote edge — they wait on the local RMA
  pending set — but still mark the rank as blocked.

Because the simulator is a discrete-event loop, "queue empty with a wait
outstanding" is an exact deadlock certificate: nothing can ever fire
again, so every registered wait is permanently stuck.  The graph/SCC
analysis exists to *explain* the hang (name the cycle vs. the ranks
merely blocked behind it), not to decide whether it is one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["WaitInfo", "build_edges", "find_cycles", "diagnose"]


@dataclass
class WaitInfo:
    """One blocked MPI operation, live while its process is parked."""

    token: int
    kind: str  # "recv" | "cts" | "barrier" | "fence"
    rank: int
    sim: object
    #: peer rank; ``None`` means MPI_ANY_SOURCE (recv) or not applicable
    peer: Optional[int] = None
    tag: Optional[int] = None
    comm_id: Optional[int] = None
    #: free-form context, e.g. "rendezvous isend 65536B" or "alltoall#3/staged"
    detail: str = ""
    since: float = 0.0
    #: the owning MpiWorld (plain reference; waits die with their op)
    world: Optional[object] = None

    def describe(self) -> str:
        """Human line: ``recv(source=ANY, tag=3, comm=0)`` etc."""
        args = []
        if self.kind in ("recv", "cts"):
            src = "ANY" if self.peer is None else str(self.peer)
            key = "source" if self.kind == "recv" else "peer"
            args.append(f"{key}={src}")
        elif self.peer is not None:
            args.append(f"peer={self.peer}")
        if self.tag is not None:
            args.append(f"tag={self.tag}")
        if self.comm_id is not None:
            args.append(f"comm={self.comm_id}")
        inner = ", ".join(args)
        text = f"{self.kind}({inner})"
        if self.detail:
            text += f" [{self.detail}]"
        return text


def _world_ranks(world, waits) -> list:
    """Rank ids known to participate in ``world`` (size if available)."""
    size = getattr(world, "size", None)
    if isinstance(size, int) and size > 0:
        return list(range(size))
    return sorted({w.rank for w in waits})


def build_edges(waits: list) -> dict:
    """Wait-for edges ``rank -> set(ranks)`` for one world's waits.

    OR waits (ANY-source recv) contribute edges to every other rank;
    in the drained-queue state OR/AND makes no liveness difference
    (no edge can ever be satisfied), so both feed the same graph and
    the distinction survives only in the per-wait description.
    """
    if not waits:
        return {}
    world = waits[0].world
    ranks = _world_ranks(world, waits)
    barrier_arrived = {w.rank for w in waits if w.kind == "barrier"}
    edges: dict = {}
    for w in waits:
        out = edges.setdefault(w.rank, set())
        if w.kind in ("recv", "cts"):
            if w.peer is not None:
                out.add(w.peer)
            else:
                out.update(r for r in ranks if r != w.rank)
        elif w.kind == "barrier":
            out.update(r for r in ranks if r not in barrier_arrived)
        # "fence": local wait, no remote edge
    return edges


def find_cycles(edges: dict) -> list:
    """Strongly connected components with >1 node (or a self-loop).

    Iterative Kosaraju — the graphs are tiny (one node per rank) but the
    verifier must not rely on recursion depth.
    """
    nodes = set(edges)
    for outs in edges.values():
        nodes.update(outs)
    order: list = []
    seen: set = set()
    for start in sorted(nodes):
        if start in seen:
            continue
        stack = [(start, iter(sorted(edges.get(start, ()))))]
        seen.add(start)
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, iter(sorted(edges.get(nxt, ())))))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()
    rev: dict = {}
    for src, outs in edges.items():
        for dst in outs:
            rev.setdefault(dst, set()).add(src)
    assigned: set = set()
    sccs: list = []
    for start in reversed(order):
        if start in assigned:
            continue
        comp = []
        stack = [start]
        assigned.add(start)
        while stack:
            node = stack.pop()
            comp.append(node)
            for nxt in rev.get(node, ()):
                if nxt not in assigned:
                    assigned.add(nxt)
                    stack.append(nxt)
        if len(comp) > 1 or start in edges.get(start, ()):
            sccs.append(sorted(comp))
    return sccs


def _matching_state_lines(world) -> list:
    """Posted/unexpected/held queue state per materialized rank."""
    lines: list = []
    procs = getattr(world, "procs", None)
    materialized = getattr(procs, "materialized", None)
    if materialized is None:
        return lines
    for proc in materialized():
        eng = getattr(proc, "matching", None)
        if eng is None:
            continue
        posted = getattr(eng, "_posted", ())
        unexpected = getattr(eng, "_unexpected", ())
        held = getattr(eng, "_held", {})
        for post in posted:
            src = "ANY" if post.source < 0 else post.source
            lines.append(
                f"  r{proc.rank}: posted recv(source={src}, tag={post.tag}, "
                f"comm={post.comm_id}) unmatched"
            )
        for env, _arrival in unexpected:
            lines.append(
                f"  r{proc.rank}: unexpected message from r{env.source} "
                f"(tag={env.tag}, comm={env.comm_id}, pair_seq={env.pair_seq})"
            )
        for (src, comm_id), pending in held.items():
            if pending:
                have = sorted(pending)
                want = eng._next_pair.get((src, comm_id), 0)
                lines.append(
                    f"  r{proc.rank}: held out-of-order arrivals from r{src} "
                    f"(comm={comm_id}): have pair_seq {have}, waiting for {want}"
                )
    return lines


def diagnose(waits: list, sim, queue_empty: bool = True) -> tuple:
    """Explain a stuck event loop.

    Returns ``(summary, per_rank)`` where ``summary`` is a multi-line
    human report and ``per_rank`` is ``[(rank, line)]`` — one structured
    finding per blocked rank — for :class:`SanitizerReport` records.
    """
    live = [w for w in waits if w.sim is sim]
    if not live:
        return ("no instrumented MPI waits registered on this simulator", [])
    by_world: dict = {}
    for w in live:
        by_world.setdefault(id(w.world), []).append(w)
    header = "deadlock" if queue_empty else "stall"
    lines = [f"{header}: {len(live)} blocked MPI operation(s)"]
    per_rank: list = []
    for group in by_world.values():
        edges = build_edges(group)
        cycles = find_cycles(edges)
        cycle_ranks = {r for comp in cycles for r in comp}
        for w in sorted(group, key=lambda w: (w.rank, w.token)):
            role = "in cycle" if w.rank in cycle_ranks else "blocked"
            line = (
                f"rank {w.rank} {role}: {w.describe()} "
                f"since t={w.since:g}s"
            )
            lines.append("  " + line)
            per_rank.append((w.rank, line))
        for comp in cycles:
            path = " -> ".join(f"r{r}" for r in comp)
            lines.append(f"  wait cycle: {path} -> r{comp[0]}")
        world = group[0].world
        if world is not None:
            state = _matching_state_lines(world)
            if state:
                lines.append("  matching-engine state:")
                lines.extend("  " + s for s in state)
    return ("\n".join(lines), per_rank)
