"""ASan-style memory sanitizer for the simulated arenas.

Shadow state per :class:`~repro.hw.memory.Allocation`:

* a **validity bitmap** over the allocation's (rounded) bytes — freshly
  allocated memory is *poisoned* (unwritten); any access through the
  :attr:`Buffer.bytes` view conservatively marks the range valid (test
  harnesses initialize buffers that way), while the explicitly
  instrumented *read* sites — memcpy sources, the contiguous source of an
  unpack kernel, CPU-side unpack staging — call :meth:`check_read` first
  and flag reads of still-poisoned bytes.  This catches the ghost-slot
  class of bug: unpacking a ring segment no pack kernel ever filled.
* a **redzone**: the alignment slack between the requested size and the
  rounded allocation size.  Constructing a :class:`Buffer` that extends
  into the redzone is an out-of-bounds sub-buffer (the arena would let it
  slide silently — the bytes exist, they just were never yours).
* **use-after-free** tracking: accesses through freed allocations are
  recorded as violations (the legacy ``ValueError`` contract of
  :attr:`Buffer.bytes` is preserved — the violation is force-recorded).
* **memory-space confusion**: a ``MemoryKind``-tagged buffer handed to
  the wrong engine — a device buffer driven through the CPU convertor
  path, or an unmapped host buffer handed to a GPU pack kernel.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.sanitize.report import SanitizerReport

if TYPE_CHECKING:
    from repro.hw.memory import Allocation, Buffer

__all__ = ["MemorySanitizer"]


class MemorySanitizer:
    """Shadow-memory checker installed at :data:`repro.sanitize.runtime.MEM`."""

    def __init__(self, report: SanitizerReport) -> None:
        self.report = report
        #: alloc_id -> validity bitmap over the rounded allocation
        self._valid: dict[int, np.ndarray] = {}
        #: alloc_id -> requested size (redzone starts here)
        self._requested: dict[int, int] = {}

    # -- allocation lifecycle -------------------------------------------------
    def on_alloc(self, allocation: "Allocation") -> None:
        """New allocation: everything poisoned, redzone never unpoisons."""
        self._valid[allocation.alloc_id] = np.zeros(allocation.nbytes, dtype=bool)
        self._requested[allocation.alloc_id] = allocation.requested_nbytes

    def on_free(self, allocation: "Allocation") -> None:
        """Drop the shadow — later accesses are use-after-free."""
        self._valid.pop(allocation.alloc_id, None)
        self._requested.pop(allocation.alloc_id, None)

    def repoison(self, buf: "Buffer") -> None:
        """Re-poison a buffer's range (staging-pool reuse hands out
        logically-fresh memory whose previous contents must not leak
        through as 'initialized')."""
        shadow = self._valid.get(buf.allocation.alloc_id)
        if shadow is not None:
            shadow[buf.offset : buf.offset + buf.nbytes] = False

    # -- buffer construction / access ----------------------------------------
    def on_buffer(self, buf: "Buffer") -> None:
        """A new Buffer handle: flag ranges that reach into the redzone."""
        requested = self._requested.get(
            buf.allocation.alloc_id, buf.allocation.requested_nbytes
        )
        end = buf.offset + buf.nbytes
        if end > requested:
            self.report.record(
                "mem",
                "mem.oob_subbuffer",
                f"buffer [{buf.offset}, {end}) of "
                f"{buf.memory.name}#{buf.allocation.alloc_id} "
                f"{buf.allocation.label!r} extends {end - requested} byte(s) "
                f"into the alignment redzone (requested size {requested}, "
                f"rounded {buf.allocation.nbytes})",
                where=f"Buffer({buf.memory.name}#{buf.allocation.alloc_id})",
            )

    def on_touch(self, buf: "Buffer") -> None:
        """A live ``.bytes`` view was taken: conservatively mark valid."""
        shadow = self._valid.get(buf.allocation.alloc_id)
        if shadow is not None:
            shadow[buf.offset : buf.offset + buf.nbytes] = True

    def on_use_after_free(self, buf: "Buffer") -> None:
        """Access through a freed allocation (ValueError still raised)."""
        self.report.record(
            "mem",
            "mem.use_after_free",
            f"access to bytes [{buf.offset}, {buf.offset + buf.nbytes}) of "
            f"freed allocation {buf.memory.name}#{buf.allocation.alloc_id} "
            f"{buf.allocation.label!r}",
            where=repr(buf),
            force_record=True,
        )

    def check_read(self, buf: "Buffer", lo: int, hi: int, what: str = "") -> None:
        """Instrumented read of ``buf[lo:hi)``: flag poisoned bytes.

        Must run *before* the caller takes the ``.bytes`` view (which
        would mark the range valid).
        """
        if buf.allocation.freed:
            self.on_use_after_free(buf)
            return
        shadow = self._valid.get(buf.allocation.alloc_id)
        if shadow is None:
            return  # allocated before the sanitizer was enabled
        a, b = buf.offset + lo, buf.offset + hi
        window = shadow[a:b]
        if window.all():
            return
        first = a + int(np.argmin(window))
        n_bad = int((~window).sum())
        self.report.record(
            "mem",
            "mem.uninit_read",
            f"{what or 'read'} of {n_bad} uninitialized byte(s) in "
            f"{buf.memory.name}#{buf.allocation.alloc_id} "
            f"{buf.allocation.label!r} bytes [{a}, {b}) "
            f"(first poisoned byte at offset {first}); no writer ever "
            f"filled this range",
            where=what or repr(buf),
        )

    # -- memory-space confusion ----------------------------------------------
    def check_cpu_path(self, buf: "Buffer", what: str = "CpuSideJob") -> None:
        """A buffer entered the CPU convertor path: must be host memory."""
        if buf.is_device:
            self.report.record(
                "mem",
                "mem.space_confusion",
                f"device buffer {buf!r} handed to the host-side datatype "
                f"engine ({what}); device-resident data must go through "
                f"the GPU engine or an explicit memcpy",
                where=what,
            )

    def check_gpu_path(self, buf: "Buffer", mapped: bool, what: str = "PackJob") -> None:
        """A user buffer entered the GPU engine: host memory must be mapped."""
        if buf.is_host and not mapped:
            self.report.record(
                "mem",
                "mem.space_confusion",
                f"unmapped host buffer {buf!r} handed to the GPU datatype "
                f"engine ({what}); a pack kernel cannot reach host memory "
                f"without map_host_buffer() (zero-copy registration)",
                where=what,
            )
