"""Core discrete-event simulation engine.

The engine is deliberately small and deterministic:

* :class:`Simulator` owns a monotonically non-decreasing clock and a binary
  heap of scheduled callbacks.  Ties are broken by insertion order so runs
  are bit-for-bit reproducible.
* :class:`Future` is a one-shot completion token.  Hardware models resolve
  futures when an operation's modeled duration elapses.
* :class:`Process` wraps a generator coroutine.  A process ``yield``\\ s
  futures (or other processes — a :class:`Process` *is* a future) and is
  resumed with the future's value once it resolves.  Exceptions propagate
  into the generator via ``throw`` so protocol code can use ordinary
  ``try/except``.

Time is measured in **seconds** as floats; bandwidths elsewhere in the
package are bytes/second.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.obs import phases as _phases
from repro.sanitize import runtime as _san

__all__ = [
    "SimulationError",
    "ProcessKilled",
    "Future",
    "Process",
    "Simulator",
    "TimerHandle",
    "all_of",
    "any_of",
]


class SimulationError(RuntimeError):
    """Raised for scheduling misuse (running backwards, double-resolve...)."""


class ProcessKilled(Exception):
    """Injected into a process generator when :meth:`Process.kill` is called."""


_PENDING = object()


class Future:
    """A one-shot value container that processes can wait on.

    A future is resolved exactly once, either with a value
    (:meth:`resolve`) or an exception (:meth:`fail`).  Callbacks added
    after resolution run immediately.
    """

    __slots__ = ("sim", "_value", "_exception", "_callbacks", "label", "_san_snap")

    def __init__(self, sim: "Simulator", label: str = "") -> None:
        self.sim = sim
        self._value: Any = _PENDING
        self._exception: Optional[BaseException] = None
        self._callbacks: list[Callable[["Future"], None]] = []
        self.label = label
        #: race-detector vector-clock snapshot carried resolver -> waiters;
        #: producers with a stronger ordering source (stream completion,
        #: mailbox put, banked semaphore token) pre-stamp it
        self._san_snap: Optional[dict] = None

    # -- state ----------------------------------------------------------
    @property
    def done(self) -> bool:
        return self._value is not _PENDING or self._exception is not None

    @property
    def failed(self) -> bool:
        return self._exception is not None

    @property
    def value(self) -> Any:
        if self._exception is not None:
            raise self._exception
        if self._value is _PENDING:
            raise SimulationError(f"future {self.label!r} not resolved yet")
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    # -- transitions ----------------------------------------------------
    def resolve(self, value: Any = None) -> None:
        """Complete the future with a value (exactly once)."""
        if self.done:
            raise SimulationError(f"future {self.label!r} resolved twice")
        self._value = value
        if _san.RACE is not None:
            self._san_snap = _san.RACE.merge_with_context(self._san_snap)
        self._dispatch()

    def fail(self, exc: BaseException) -> None:
        """Complete the future with an exception (exactly once)."""
        if self.done:
            raise SimulationError(f"future {self.label!r} resolved twice")
        self._exception = exc
        if _san.RACE is not None:
            self._san_snap = _san.RACE.merge_with_context(self._san_snap)
        self._dispatch()

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)

    def add_callback(self, cb: Callable[["Future"], None]) -> None:
        """Run ``cb(self)`` when resolved (immediately if already done)."""
        if self.done:
            cb(self)
        else:
            self._callbacks.append(cb)


class Process(Future):
    """A generator-based coroutine driven by the simulator.

    The wrapped generator may ``yield``:

    * a :class:`Future` (including another :class:`Process`) — the process
      sleeps until it resolves and is resumed with its value;
    * ``None`` — the process is rescheduled at the current time, after any
      already-queued callbacks (a cooperative yield point).

    The process itself is a future resolving with the generator's return
    value, or failing with its uncaught exception.
    """

    __slots__ = ("_gen", "_killed", "_san_actor")

    def __init__(
        self,
        sim: "Simulator",
        gen: Generator[Any, Any, Any],
        label: str = "",
    ) -> None:
        super().__init__(sim, label=label or getattr(gen, "__name__", "process"))
        if not hasattr(gen, "send"):
            raise TypeError(
                f"Process needs a generator, got {type(gen).__name__}; "
                "did you forget to call the generator function?"
            )
        self._gen = gen
        self._killed = False
        self._san_actor: Optional[str] = None
        if _san.RACE is not None:
            # spawning is a happens-before edge from spawner to child
            self._san_actor = _san.RACE.on_spawn(self.label)
        sim.call_soon(lambda: self._step(None, None))

    def kill(self, reason: str = "killed") -> None:
        """Throw :class:`ProcessKilled` into the coroutine at the next step."""
        if self.done:
            return
        self._killed = True
        self.sim.call_soon(lambda: self._step(None, ProcessKilled(reason)))

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if self.done:
            return
        race = _san.RACE
        if race is not None:
            if self._san_actor is None:
                self._san_actor = race.on_spawn(self.label)
            race.enter(self._san_actor)
        try:
            try:
                if exc is not None:
                    target = self._gen.throw(exc)
                else:
                    target = self._gen.send(value)
            except StopIteration as stop:
                self.resolve(stop.value)
                return
            except ProcessKilled as killed:
                self.fail(killed)
                return
            except BaseException as err:  # propagate into waiters
                self.fail(err)
                return
        finally:
            if race is not None:
                race.exit()

        if target is None:
            self.sim.call_soon(lambda: self._step(None, None))
        elif isinstance(target, Future) or hasattr(target, "add_callback"):
            # duck-typed awaitables (e.g. repro.mpi.requests.Request) are
            # accepted as long as they follow the Future callback protocol
            target.add_callback(self._resume_from)
        else:
            self.sim.call_soon(
                lambda: self._step(
                    None,
                    TypeError(
                        f"process {self.label!r} yielded "
                        f"{type(target).__name__}; expected Future or None"
                    ),
                )
            )

    def _resume_from(self, fut: Future) -> None:
        if _san.RACE is not None and self._san_actor is not None:
            # waking on a resolved future is a happens-before edge: the
            # resolver's (or pre-stamped producer's) clock joins ours
            # getattr: duck-typed awaitables (e.g. mpi.requests.Request)
            # are legal yield targets but carry no snapshot
            _san.RACE.on_resume(self._san_actor, getattr(fut, "_san_snap", None))
        if fut.failed:
            self._step(None, fut.exception)
        else:
            self._step(fut._value, None)


class TimerHandle:
    """A cancellable scheduled callback.

    Returned by :meth:`Simulator.call_at` / :meth:`call_after`.  A
    cancelled entry is skipped when it surfaces on the heap *without*
    advancing the clock, so short-lived watchdog timers (retransmit
    timeouts that are almost always cancelled by an ACK) leave the
    simulated timeline untouched.
    """

    __slots__ = ("_fn",)

    def __init__(self, fn: Callable[[], None]) -> None:
        self._fn: Optional[Callable[[], None]] = fn

    def cancel(self) -> None:
        """Prevent the callback from firing (idempotent)."""
        self._fn = None

    @property
    def cancelled(self) -> bool:
        return self._fn is None


class Simulator:
    """Deterministic event loop with a floating-point clock."""

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: list[tuple[float, int, TimerHandle]] = []
        self._events_processed = 0

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    # -- scheduling primitives ---------------------------------------------
    def call_at(self, when: float, fn: Callable[[], None]) -> TimerHandle:
        """Schedule a callback at an absolute simulated time (cancellable)."""
        if when < self._now - 1e-18:
            raise SimulationError(
                f"cannot schedule at {when} before current time {self._now}"
            )
        handle = TimerHandle(fn)
        heapq.heappush(self._queue, (max(when, self._now), self._seq, handle))
        self._seq += 1
        return handle

    def call_after(self, delay: float, fn: Callable[[], None]) -> TimerHandle:
        """Schedule a callback ``delay`` seconds from now (cancellable)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self._now + delay, fn)

    def call_soon(self, fn: Callable[[], None]) -> TimerHandle:
        """Schedule a callback at the current time (after queued events)."""
        return self.call_at(self._now, fn)

    # -- futures ------------------------------------------------------------
    def future(self, label: str = "") -> Future:
        """Create an unresolved future on this clock."""
        return Future(self, label=label)

    def timeout(self, delay: float, value: Any = None, label: str = "") -> Future:
        """A future resolving ``delay`` seconds from now."""
        fut = Future(self, label=label or f"timeout({delay:g})")
        self.call_after(delay, lambda: fut.resolve(value))
        return fut

    def spawn(self, gen: Generator[Any, Any, Any], label: str = "") -> Process:
        """Start a coroutine; returns the :class:`Process` (itself a future)."""
        return Process(self, gen, label=label)

    # -- running -------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Execute events until the queue drains or ``until`` is reached.

        Returns the simulated time when execution stopped.
        """
        with _phases.measure(_phases.SIM_RUN):
            return self._run(until)

    def _run(self, until: Optional[float] = None) -> float:
        while self._queue:
            when, _, handle = self._queue[0]
            if handle._fn is None:
                # cancelled: discard without touching the clock
                heapq.heappop(self._queue)
                continue
            if until is not None and when > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            self._now = when
            self._events_processed += 1
            handle._fn()
        return self._now

    def run_until_complete(self, proc: Future, limit: float = 1e9) -> Any:
        """Run until ``proc`` resolves; raise if the queue drains first."""
        self.run(until=None if limit is None else self._now + limit)
        if not proc.done:
            raise SimulationError(
                f"deadlock: {proc.label!r} never completed "
                f"(queue empty at t={self._now:g})"
            )
        return proc.value


def all_of(sim: Simulator, futures: Iterable[Future], label: str = "") -> Future:
    """A future resolving with the list of all values once every input resolves.

    Fails as soon as any input fails.
    """
    futures = list(futures)
    result = Future(sim, label=label or f"all_of[{len(futures)}]")
    if not futures:
        result.resolve([])
        return result
    remaining = [len(futures)]
    values: list[Any] = [None] * len(futures)

    def make_cb(i: int) -> Callable[[Future], None]:
        def cb(fut: Future) -> None:
            if result.done:
                return
            if fut.failed:
                result.fail(fut.exception)
                return
            values[i] = fut._value
            if _san.RACE is not None:
                result._san_snap = _san.RACE.merge(result._san_snap, fut._san_snap)
            remaining[0] -= 1
            if remaining[0] == 0:
                result.resolve(values)

        return cb

    for i, fut in enumerate(futures):
        fut.add_callback(make_cb(i))
    return result


def any_of(sim: Simulator, futures: Iterable[Future], label: str = "") -> Future:
    """A future resolving with ``(index, value)`` of the first input to resolve."""
    futures = list(futures)
    if not futures:
        raise ValueError("any_of needs at least one future")
    result = Future(sim, label=label or f"any_of[{len(futures)}]")

    def make_cb(i: int) -> Callable[[Future], None]:
        def cb(fut: Future) -> None:
            if result.done:
                return
            if fut.failed:
                result.fail(fut.exception)
            else:
                if _san.RACE is not None:
                    result._san_snap = _san.RACE.merge(result._san_snap, fut._san_snap)
                result.resolve((i, fut._value))

        return cb

    for i, fut in enumerate(futures):
        fut.add_callback(make_cb(i))
    return result
