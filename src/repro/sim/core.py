"""Core discrete-event simulation engine.

The engine is deliberately small and deterministic:

* :class:`Simulator` owns a monotonically non-decreasing clock and a binary
  heap of scheduled callbacks.  Ties are broken by insertion order so runs
  are bit-for-bit reproducible.
* :class:`Future` is a one-shot completion token.  Hardware models resolve
  futures when an operation's modeled duration elapses.
* :class:`Process` wraps a generator coroutine.  A process ``yield``\\ s
  futures (or other processes — a :class:`Process` *is* a future) and is
  resumed with the future's value once it resolves.  Exceptions propagate
  into the generator via ``throw`` so protocol code can use ordinary
  ``try/except``.

Time is measured in **seconds** as floats; bandwidths elsewhere in the
package are bytes/second.

Performance notes (see ``docs/SIM_PERF.md``):

* Heap entries are mutable ``[when, seq, fn]`` lists recycled through a
  free list, so steady-state event traffic allocates no per-event
  containers.  ``seq`` is unique, so comparison never reaches ``fn`` and
  pop order is a pure function of ``(when, seq)`` — insertion order still
  breaks ties bit-for-bit identically to the original tuple heap
  (``tests/sim/reference_core.py`` keeps that loop frozen and
  ``tests/sim/test_equivalence.py`` proves the sequences match).
* ``schedule_at``/``schedule_after``/``schedule_soon`` are the no-handle
  fast primitives for fire-and-forget events (future resolution, process
  steps); ``call_*`` returns a cancellable :class:`TimerHandle` backed by
  the same entries, guarded by ``seq`` against slot recycling.
* Cancelled timers are normally discarded when they surface at the top of
  the heap, but a long-running world that arms and cancels millions of
  retransmit watchdogs would otherwise accumulate dead entries — the heap
  is compacted when the cancelled fraction crosses a threshold
  (:attr:`Simulator.timers_cancelled` counts all cancellations).
* The race-detector hooks in ``Future.resolve``/``Process._step`` are not
  per-event branches: :func:`repro.sanitize.runtime.subscribe` swaps fast
  vs. instrumented method bindings once at ``sanitize.enable``/``disable``
  time, so the uninstrumented hot path pays zero sanitizer cost.
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

from repro.obs import phases as _phases
from repro.sanitize import runtime as _san

__all__ = [
    "SimulationError",
    "ProcessKilled",
    "Future",
    "Process",
    "Simulator",
    "TimerHandle",
    "all_of",
    "any_of",
]


class SimulationError(RuntimeError):
    """Raised for scheduling misuse (running backwards, double-resolve...)."""


class ProcessKilled(Exception):
    """Injected into a process generator when :meth:`Process.kill` is called."""


_PENDING = object()

#: recycled-entry free list cap — bounds idle memory, large enough that a
#: steady-state world never allocates entry lists after warmup
_FREE_MAX = 4096
#: compact the heap only once this many cancelled entries are live in it
_COMPACT_MIN = 64
#: relative slack for the backwards-scheduling guard: float arithmetic on
#: absolute deadlines legitimately lands a few ulps below ``now`` once the
#: clock grows (1 ulp at t=1000 is ~1.1e-13, far above the old absolute
#: 1e-18); such events are clamped to ``now``, only genuinely backwards
#: times raise
_PAST_REL_TOL = 1e-12
_PAST_ABS_TOL = 1e-18


class Future:
    """A one-shot value container that processes can wait on.

    A future is resolved exactly once, either with a value
    (:meth:`resolve`) or an exception (:meth:`fail`).  Callbacks added
    after resolution run immediately.
    """

    __slots__ = (
        "sim",
        "_value",
        "_exception",
        "_callbacks",
        "label",
        "_san_snap",
        "_fire_value",
    )

    def __init__(self, sim: "Simulator", label: str = "") -> None:
        self.sim = sim
        self._value: Any = _PENDING
        self._exception: Optional[BaseException] = None
        # lazily allocated: most futures get exactly one callback, many none
        self._callbacks: Optional[list[Callable[["Future"], None]]] = None
        self.label = label
        #: race-detector vector-clock snapshot carried resolver -> waiters;
        #: producers with a stronger ordering source (stream completion,
        #: mailbox put, banked semaphore token) pre-stamp it
        self._san_snap: Optional[dict] = None

    # -- state ----------------------------------------------------------
    @property
    def done(self) -> bool:
        return self._value is not _PENDING or self._exception is not None

    @property
    def failed(self) -> bool:
        return self._exception is not None

    @property
    def value(self) -> Any:
        if self._exception is not None:
            raise self._exception
        if self._value is _PENDING:
            raise SimulationError(f"future {self.label!r} not resolved yet")
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    # -- transitions ----------------------------------------------------
    # resolve/fail are rebound between the fast and the race-instrumented
    # implementations below by _bind_dispatch (via sanitize install/clear)
    def resolve(self, value: Any = None) -> None:
        """Complete the future with a value (exactly once)."""
        raise NotImplementedError  # pragma: no cover - replaced at import

    def fail(self, exc: BaseException) -> None:
        """Complete the future with an exception (exactly once)."""
        raise NotImplementedError  # pragma: no cover - replaced at import

    def _dispatch(self) -> None:
        callbacks = self._callbacks
        if callbacks is not None:
            self._callbacks = None
            for cb in callbacks:
                cb(self)

    def _resolve_scheduled(self) -> None:
        """Timer thunk: resolve with the value stashed at schedule time.

        Lets ``FifoLink``/``timeout`` deliver a payload through the fast
        no-handle scheduling primitives without a per-event closure.
        """
        self.resolve(self._fire_value)

    def add_callback(self, cb: Callable[["Future"], None]) -> None:
        """Run ``cb(self)`` when resolved (immediately if already done)."""
        if self._value is not _PENDING or self._exception is not None:
            cb(self)
        elif self._callbacks is None:
            self._callbacks = [cb]
        else:
            self._callbacks.append(cb)


def _future_resolve_fast(self: Future, value: Any = None) -> None:
    """Complete the future with a value (exactly once)."""
    if self._value is not _PENDING or self._exception is not None:
        raise SimulationError(f"future {self.label!r} resolved twice")
    self._value = value
    callbacks = self._callbacks
    if callbacks is not None:
        self._callbacks = None
        for cb in callbacks:
            cb(self)


def _future_resolve_san(self: Future, value: Any = None) -> None:
    """Complete the future with a value (exactly once) — instrumented."""
    if self._value is not _PENDING or self._exception is not None:
        raise SimulationError(f"future {self.label!r} resolved twice")
    self._value = value
    if _san.RACE is not None:
        self._san_snap = _san.RACE.merge_with_context(self._san_snap)
    self._dispatch()


def _future_fail_fast(self: Future, exc: BaseException) -> None:
    """Complete the future with an exception (exactly once)."""
    if self._value is not _PENDING or self._exception is not None:
        raise SimulationError(f"future {self.label!r} resolved twice")
    self._exception = exc
    callbacks = self._callbacks
    if callbacks is not None:
        self._callbacks = None
        for cb in callbacks:
            cb(self)


def _future_fail_san(self: Future, exc: BaseException) -> None:
    """Complete the future with an exception (exactly once) — instrumented."""
    if self._value is not _PENDING or self._exception is not None:
        raise SimulationError(f"future {self.label!r} resolved twice")
    self._exception = exc
    if _san.RACE is not None:
        self._san_snap = _san.RACE.merge_with_context(self._san_snap)
    self._dispatch()


class Process(Future):
    """A generator-based coroutine driven by the simulator.

    The wrapped generator may ``yield``:

    * a :class:`Future` (including another :class:`Process`) — the process
      sleeps until it resolves and is resumed with its value;
    * ``None`` — the process is rescheduled at the current time, after any
      already-queued callbacks (a cooperative yield point).

    The process itself is a future resolving with the generator's return
    value, or failing with its uncaught exception.
    """

    __slots__ = ("_gen", "_killed", "_san_actor", "_step0", "_resume")

    def __init__(
        self,
        sim: "Simulator",
        gen: Generator[Any, Any, Any],
        label: str = "",
        eager_start: bool = False,
    ) -> None:
        super().__init__(sim, label=label or getattr(gen, "__name__", "process"))
        if not hasattr(gen, "send"):
            raise TypeError(
                f"Process needs a generator, got {type(gen).__name__}; "
                "did you forget to call the generator function?"
            )
        self._gen = gen
        self._killed = False
        self._san_actor: Optional[str] = None
        if _san.RACE is not None:
            # spawning is a happens-before edge from spawner to child
            self._san_actor = _san.RACE.on_spawn(self.label)
        # one closure each for the whole process lifetime (reused on every
        # cooperative yield / wait) instead of a fresh lambda per step;
        # late-bound attribute lookup so dispatch rebinding still applies
        self._step0 = lambda: self._step(None, None)
        self._resume = lambda fut: self._resume_from(fut)
        if eager_start:
            # run the first step synchronously inside the spawner's turn
            # instead of through the heap — one event and one deferral
            # cheaper.  Opt in only where the caller immediately waits on
            # the process (so nothing can observe the reordering); plain
            # spawn() keeps the deferred start the determinism contract
            # documents.
            self._step(None, None)
        else:
            sim.schedule_soon(self._step0)

    def kill(self, reason: str = "killed") -> None:
        """Throw :class:`ProcessKilled` into the coroutine at the next step."""
        if self.done:
            return
        self._killed = True
        self.sim.schedule_soon(lambda: self._step(None, ProcessKilled(reason)))

    # _step/_resume_from are rebound between the fast and instrumented
    # implementations below by _bind_dispatch (via sanitize install/clear)
    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        raise NotImplementedError  # pragma: no cover - replaced at import

    def _resume_from(self, fut: Future) -> None:
        raise NotImplementedError  # pragma: no cover - replaced at import


def _process_step_fast(
    self: Process, value: Any, exc: Optional[BaseException]
) -> None:
    if self._value is not _PENDING or self._exception is not None:
        return
    try:
        if exc is not None:
            target = self._gen.throw(exc)
        else:
            target = self._gen.send(value)
    except StopIteration as stop:
        self.resolve(stop.value)
        return
    except ProcessKilled as killed:
        self.fail(killed)
        return
    except BaseException as err:  # propagate into waiters
        self.fail(err)
        return

    if target is None:
        self.sim.schedule_soon(self._step0)
    elif isinstance(target, Future) or hasattr(target, "add_callback"):
        # duck-typed awaitables (e.g. repro.mpi.requests.Request) are
        # accepted as long as they follow the Future callback protocol
        target.add_callback(self._resume)
    else:
        self.sim.schedule_soon(
            lambda: self._step(
                None,
                TypeError(
                    f"process {self.label!r} yielded "
                    f"{type(target).__name__}; expected Future or None"
                ),
            )
        )


def _process_step_san(
    self: Process, value: Any, exc: Optional[BaseException]
) -> None:
    if self._value is not _PENDING or self._exception is not None:
        return
    race = _san.RACE
    if race is not None:
        if self._san_actor is None:
            self._san_actor = race.on_spawn(self.label)
        race.enter(self._san_actor)
    try:
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self.resolve(stop.value)
            return
        except ProcessKilled as killed:
            self.fail(killed)
            return
        except BaseException as err:  # propagate into waiters
            self.fail(err)
            return
    finally:
        if race is not None:
            race.exit()

    if target is None:
        self.sim.schedule_soon(self._step0)
    elif isinstance(target, Future) or hasattr(target, "add_callback"):
        target.add_callback(self._resume)
    else:
        self.sim.schedule_soon(
            lambda: self._step(
                None,
                TypeError(
                    f"process {self.label!r} yielded "
                    f"{type(target).__name__}; expected Future or None"
                ),
            )
        )


def _process_resume_fast(self: Process, fut: Future) -> None:
    # callbacks are always invoked with the concrete Future that resolved
    # (Request.add_callback delegates to its inner Process), so direct
    # slot access is safe here
    if fut._exception is not None:
        self._step(None, fut._exception)
    else:
        self._step(fut._value, None)


def _process_resume_san(self: Process, fut: Future) -> None:
    if _san.RACE is not None and self._san_actor is not None:
        # waking on a resolved future is a happens-before edge: the
        # resolver's (or pre-stamped producer's) clock joins ours
        # getattr: duck-typed awaitables (e.g. mpi.requests.Request)
        # are legal yield targets but carry no snapshot
        _san.RACE.on_resume(self._san_actor, getattr(fut, "_san_snap", None))
    if fut.failed:
        self._step(None, fut.exception)
    else:
        self._step(fut._value, None)


class TimerHandle:
    """A cancellable scheduled callback.

    Returned by :meth:`Simulator.call_at` / :meth:`call_after`.  A
    cancelled entry is skipped when it surfaces on the heap *without*
    advancing the clock, so short-lived watchdog timers (retransmit
    timeouts that are almost always cancelled by an ACK) leave the
    simulated timeline untouched.

    The handle points at a recyclable heap entry; ``_hseq`` guards
    against the slot having been reused for a later timer, so a stale
    ``cancel()`` can never kill someone else's event.
    """

    __slots__ = ("_sim", "_entry", "_hseq", "_cancelled")

    def __init__(self, sim: "Simulator", entry: list) -> None:
        self._sim = sim
        self._entry = entry
        self._hseq = entry[1]
        self._cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing (idempotent)."""
        if self._cancelled:
            return
        self._cancelled = True
        entry = self._entry
        if entry[1] == self._hseq and entry[2] is not None:
            # still ours and not yet fired: kill it in place
            entry[2] = None
            sim = self._sim
            sim._timers_cancelled += 1
            live = sim._cancelled_live + 1
            sim._cancelled_live = live
            if live >= _COMPACT_MIN and 2 * live >= len(sim._heap):
                sim._compact()

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class Simulator:
    """Deterministic event loop with a floating-point clock.

    Heap entries are ``[when, seq, fn]`` lists recycled through
    ``_free``; ``fn is None`` marks a fired or cancelled entry.  See the
    module docstring for the full fast-path design.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: list[list] = []
        self._free: list[list] = []
        self._events_processed = 0
        self._timers_cancelled = 0
        self._cancelled_live = 0  # cancelled entries still in the heap
        self._peak_depth = 0

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def timers_cancelled(self) -> int:
        """Total timers cancelled before firing (monotonic)."""
        return self._timers_cancelled

    @property
    def peak_queue_depth(self) -> int:
        """High-water mark of the event queue (sampled per event)."""
        n = len(self._heap)
        return n if n > self._peak_depth else self._peak_depth

    def reset_peak_depth(self) -> None:
        """Restart the high-water tracking from the current depth.

        Lets observers (``MpiWorld.reset_stats``) report a peak per
        measurement window instead of one monotonic global maximum.
        """
        self._peak_depth = len(self._heap)

    # -- scheduling primitives ---------------------------------------------
    # schedule_* are the no-handle fast paths used by the engine itself
    # (future resolution, process steps, link deliveries); call_* return a
    # cancellable TimerHandle for watchdog-style use.

    def schedule_at(self, when: float, fn: Callable[[], None]) -> None:
        """Schedule a fire-and-forget callback at an absolute time."""
        now = self._now
        if when < now:
            if now - when > _PAST_REL_TOL * now + _PAST_ABS_TOL:
                raise SimulationError(
                    f"cannot schedule at {when} before current time {now}"
                )
            when = now
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        if free:
            entry = free.pop()
            entry[0] = when
            entry[1] = seq
            entry[2] = fn
        else:
            entry = [when, seq, fn]
        heappush(self._heap, entry)

    def schedule_after(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule a fire-and-forget callback ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.schedule_at(self._now + delay, fn)

    def schedule_soon(self, fn: Callable[[], None]) -> None:
        """Schedule a fire-and-forget callback at the current time."""
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        if free:
            entry = free.pop()
            entry[0] = self._now
            entry[1] = seq
            entry[2] = fn
        else:
            entry = [self._now, seq, fn]
        heappush(self._heap, entry)

    def call_at(self, when: float, fn: Callable[[], None]) -> TimerHandle:
        """Schedule a callback at an absolute simulated time (cancellable)."""
        now = self._now
        if when < now:
            if now - when > _PAST_REL_TOL * now + _PAST_ABS_TOL:
                raise SimulationError(
                    f"cannot schedule at {when} before current time {now}"
                )
            when = now
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        if free:
            entry = free.pop()
            entry[0] = when
            entry[1] = seq
            entry[2] = fn
        else:
            entry = [when, seq, fn]
        heappush(self._heap, entry)
        return TimerHandle(self, entry)

    def call_after(self, delay: float, fn: Callable[[], None]) -> TimerHandle:
        """Schedule a callback ``delay`` seconds from now (cancellable)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self._now + delay, fn)

    def call_soon(self, fn: Callable[[], None]) -> TimerHandle:
        """Schedule a callback at the current time (after queued events)."""
        return self.call_at(self._now, fn)

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        Pop order is a pure function of the ``(when, seq)`` keys (``seq``
        is unique), so rebuilding the heap cannot change the event
        sequence.
        """
        free = self._free
        live = []
        for entry in self._heap:
            if entry[2] is None:
                if len(free) < _FREE_MAX:
                    free.append(entry)
            else:
                live.append(entry)
        self._heap = live
        heapq.heapify(live)
        self._cancelled_live = 0

    # -- futures ------------------------------------------------------------
    def future(self, label: str = "") -> Future:
        """Create an unresolved future on this clock."""
        return Future(self, label=label)

    def timeout(self, delay: float, value: Any = None, label: str = "") -> Future:
        """A future resolving ``delay`` seconds from now."""
        fut = Future(self, label=label or f"timeout({delay:g})")
        fut._fire_value = value
        self.schedule_after(delay, fut._resolve_scheduled)
        return fut

    def spawn(
        self,
        gen: Generator[Any, Any, Any],
        label: str = "",
        eager_start: bool = False,
    ) -> Process:
        """Start a coroutine; returns the :class:`Process` (itself a future).

        ``eager_start=True`` runs the first step inline instead of via the
        event queue — see :class:`Process`.
        """
        return Process(self, gen, label=label, eager_start=eager_start)

    # -- running -------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Execute events until the queue drains or ``until`` is reached.

        Returns the simulated time when execution stopped.
        """
        with _phases.measure(_phases.SIM_RUN):
            return self._run(until)

    def _run(self, until: Optional[float] = None) -> float:
        heap = self._heap
        free = self._free
        processed = 0
        peak = self._peak_depth
        # local aliases + deferred counter writeback keep the per-event
        # cost to: one len, one peek, one pop, one recycle, one call
        try:
            while heap:
                depth = len(heap)
                if depth > peak:
                    # callbacks only push (pops happen only here), so the
                    # queue is deepest when an event surfaces — sampling
                    # per event tracks the exact high-water mark
                    peak = depth
                entry = heap[0]
                fn = entry[2]
                if fn is None:
                    # fired slot can't be on the heap; this is a cancelled
                    # timer: discard without touching the clock
                    heappop(heap)
                    self._cancelled_live -= 1
                    if len(free) < _FREE_MAX:
                        free.append(entry)
                    continue
                when = entry[0]
                if until is not None and when > until:
                    self._now = until
                    return until
                heappop(heap)
                entry[2] = None
                if len(free) < _FREE_MAX:
                    free.append(entry)
                self._now = when
                processed += 1
                fn()
            return self._now
        finally:
            self._events_processed += processed
            if peak > self._peak_depth:
                self._peak_depth = peak

    def run_until_complete(self, proc: Future, limit: float = 1e9) -> Any:
        """Run until ``proc`` resolves; raise if the queue drains first.

        With the MPI verifier installed (``REPRO_SANITIZE=verify``/
        ``all``) a stuck run is first handed to
        :meth:`repro.sanitize.verify.Verifier.on_stuck`, which records
        per-rank ``verify.deadlock``/``verify.stall`` violations and
        returns a wait-for-graph diagnosis that is appended to the
        exception message — naming each blocked rank's call, peer, tag
        and communicator instead of a bare "queue empty".
        """
        self.run(until=None if limit is None else self._now + limit)
        if not proc.done:
            queue_empty = not self._heap
            state = (
                f"queue empty at t={self._now:g}"
                if queue_empty
                else f"event limit hit at t={self._now:g}"
            )
            msg = f"deadlock: {proc.label!r} never completed ({state})"
            if _san.VERIFY is not None:
                detail = _san.VERIFY.on_stuck(
                    self, proc, queue_empty=queue_empty
                )
                if detail:
                    msg = f"{msg}\n{detail}"
            raise SimulationError(msg)
        return proc.value


def all_of(sim: Simulator, futures: Iterable[Future], label: str = "") -> Future:
    """A future resolving with the list of all values once every input resolves.

    Fails as soon as any input fails.
    """
    futures = list(futures)
    result = Future(sim, label=label or f"all_of[{len(futures)}]")
    if not futures:
        result.resolve([])
        return result
    remaining = [len(futures)]
    values: list[Any] = [None] * len(futures)

    def make_cb(i: int) -> Callable[[Future], None]:
        def cb(fut: Future) -> None:
            if result.done:
                return
            if fut.failed:
                result.fail(fut.exception)
                return
            values[i] = fut._value
            if _san.RACE is not None:
                result._san_snap = _san.RACE.merge(result._san_snap, fut._san_snap)
            remaining[0] -= 1
            if remaining[0] == 0:
                result.resolve(values)

        return cb

    for i, fut in enumerate(futures):
        fut.add_callback(make_cb(i))
    return result


def any_of(sim: Simulator, futures: Iterable[Future], label: str = "") -> Future:
    """A future resolving with ``(index, value)`` of the first input to resolve."""
    futures = list(futures)
    if not futures:
        raise ValueError("any_of needs at least one future")
    result = Future(sim, label=label or f"any_of[{len(futures)}]")

    def make_cb(i: int) -> Callable[[Future], None]:
        def cb(fut: Future) -> None:
            if result.done:
                return
            if fut.failed:
                result.fail(fut.exception)
            else:
                if _san.RACE is not None:
                    result._san_snap = _san.RACE.merge(result._san_snap, fut._san_snap)
                result.resolve((i, fut._value))

        return cb

    for i, fut in enumerate(futures):
        fut.add_callback(make_cb(i))
    return result


def _bind_dispatch(instrumented: bool) -> None:
    """Swap the hot dispatch methods between fast and instrumented forms.

    Called once per :func:`repro.sanitize.runtime.install`/``clear`` (not
    per event), so with sanitizers off the hot path carries no
    ``_san.RACE`` branches at all.  The instrumented forms also tolerate
    ``RACE is None``, so correctness never depends on the binding — only
    speed does.
    """
    if instrumented:
        Future.resolve = _future_resolve_san
        Future.fail = _future_fail_san
        Process._step = _process_step_san
        Process._resume_from = _process_resume_san
    else:
        Future.resolve = _future_resolve_fast
        Future.fail = _future_fail_fast
        Process._step = _process_step_fast
        Process._resume_from = _process_resume_fast


_san.subscribe(_bind_dispatch)
