"""Timeline tracing for simulated resources.

A :class:`Tracer` collects ``(resource, start, end, label, nbytes)`` spans.
Benchmarks use it to report overlap factors (how much of the pack time hid
under the wire time) and tests use it to assert that pipelining actually
pipelines — e.g. that with pipelining enabled the sender's pack spans
overlap the link's transfer spans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = ["Span", "Tracer"]


@dataclass(frozen=True)
class Span:
    """One occupancy interval on a named resource."""

    resource: str
    start: float
    end: float
    label: str
    nbytes: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "Span") -> bool:
        """True when the two spans share a positive-length interval."""
        return self.start < other.end and other.start < self.end


class Tracer:
    """Accumulates spans; cheap no-op friendly (pass ``None`` to disable)."""

    def __init__(self) -> None:
        self.spans: list[Span] = []

    def record(
        self, resource: str, start: float, end: float, label: str, nbytes: int = 0
    ) -> None:
        """Append one occupancy span."""
        self.spans.append(Span(resource, start, end, label, nbytes))

    def clear(self) -> None:
        """Drop all recorded spans."""
        self.spans.clear()

    def for_resource(self, resource: str) -> list[Span]:
        """All spans recorded for one resource name."""
        return [s for s in self.spans if s.resource == resource]

    def resources(self) -> list[str]:
        """Resource names in first-seen order."""
        seen: dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.resource, None)
        return list(seen)

    def busy_time(self, resource: str) -> float:
        """Union length of the resource's spans (overlaps merged)."""
        return union_length((s.start, s.end) for s in self.for_resource(resource))

    def overlap_time(self, resource_a: str, resource_b: str) -> float:
        """Total time during which both resources were simultaneously busy."""
        a = merge_intervals((s.start, s.end) for s in self.for_resource(resource_a))
        b = merge_intervals((s.start, s.end) for s in self.for_resource(resource_b))
        return _intersection_length(a, b)

    def makespan(self) -> float:
        """End-to-end extent of the whole trace."""
        if not self.spans:
            return 0.0
        return max(s.end for s in self.spans) - min(s.start for s in self.spans)


def merge_intervals(
    intervals: Iterable[tuple[float, float]]
) -> list[tuple[float, float]]:
    """Sort and merge overlapping/adjacent intervals."""
    ivs = sorted(intervals)
    merged: list[tuple[float, float]] = []
    for lo, hi in ivs:
        if merged and lo <= merged[-1][1]:
            prev_lo, prev_hi = merged[-1]
            merged[-1] = (prev_lo, max(prev_hi, hi))
        else:
            merged.append((lo, hi))
    return merged


def union_length(intervals: Iterable[tuple[float, float]]) -> float:
    """Total length of the union of possibly-overlapping intervals."""
    return sum(hi - lo for lo, hi in merge_intervals(intervals))


def _intersection_length(
    a: list[tuple[float, float]], b: list[tuple[float, float]]
) -> float:
    """Length of the intersection of two merged interval lists."""
    total = 0.0
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            total += hi - lo
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return total


def _iter_pairs(spans: list[Span]) -> Iterator[tuple[Span, Span]]:
    for i, s in enumerate(spans):
        for t in spans[i + 1 :]:
            yield s, t


def to_chrome_trace(tracer: Tracer) -> list[dict]:
    """Convert spans to Chrome trace-event JSON (``chrome://tracing``).

    Each resource becomes a thread; spans become complete ('X') events
    with microsecond timestamps.  Load the saved file in Chrome's tracer
    or Perfetto to see exactly how a protocol pipelined.
    """
    tids = {name: i for i, name in enumerate(tracer.resources())}
    events: list[dict] = [
        {
            "name": name,
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": name},
            "cat": "__metadata",
        }
        for name, tid in tids.items()
    ]
    # thread_name metadata uses a dedicated event name
    for ev in events:
        ev["name"] = "thread_name"
    for s in tracer.spans:
        events.append(
            {
                "name": s.label,
                "cat": "sim",
                "ph": "X",
                "pid": 0,
                "tid": tids[s.resource],
                "ts": s.start * 1e6,
                "dur": s.duration * 1e6,
                "args": {"bytes": s.nbytes},
            }
        )
    return events


def save_chrome_trace(tracer: Tracer, path: str) -> None:
    """Write a ``chrome://tracing``-loadable JSON file."""
    import json

    with open(path, "w") as f:
        json.dump({"traceEvents": to_chrome_trace(tracer)}, f)
