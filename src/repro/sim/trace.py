"""Timeline tracing for simulated resources.

A :class:`Tracer` collects ``(resource, start, end, label, nbytes)`` spans.
Benchmarks use it to report overlap factors (how much of the pack time hid
under the wire time) and tests use it to assert that pipelining actually
pipelines — e.g. that with pipelining enabled the sender's pack spans
overlap the link's transfer spans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

__all__ = ["Span", "Tracer", "NullTracer"]


@dataclass(frozen=True)
class Span:
    """One occupancy interval on a named resource."""

    resource: str
    start: float
    end: float
    label: str
    nbytes: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "Span") -> bool:
        """True when the two spans share a positive-length interval."""
        return self.start < other.end and other.start < self.end


class Tracer:
    """Accumulates spans.

    To disable tracing use :class:`NullTracer` — the same interface with
    every method a no-op — so call sites never have to guard; code that
    wants to skip work when tracing is off can test truthiness
    (``if tracer: ...``), which also accepts a legacy ``None``.
    """

    #: real tracers record; :class:`NullTracer` overrides this to False
    enabled = True

    def __init__(self) -> None:
        self.spans: list[Span] = []

    def __bool__(self) -> bool:
        return self.enabled

    def record(
        self, resource: str, start: float, end: float, label: str, nbytes: int = 0
    ) -> None:
        """Append one occupancy span."""
        self.spans.append(Span(resource, start, end, label, nbytes))

    def clear(self) -> None:
        """Drop all recorded spans."""
        self.spans.clear()

    def for_resource(self, resource: str) -> list[Span]:
        """All spans recorded for one resource name."""
        return [s for s in self.spans if s.resource == resource]

    def resources(self) -> list[str]:
        """Resource names in first-seen order."""
        seen: dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.resource, None)
        return list(seen)

    def busy_time(self, resource: str) -> float:
        """Union length of the resource's spans (overlaps merged)."""
        return union_length((s.start, s.end) for s in self.for_resource(resource))

    def overlap_time(self, resource_a: str, resource_b: str) -> float:
        """Total time during which both resources were simultaneously busy."""
        a = merge_intervals((s.start, s.end) for s in self.for_resource(resource_a))
        b = merge_intervals((s.start, s.end) for s in self.for_resource(resource_b))
        return _intersection_length(a, b)

    def makespan(self) -> float:
        """End-to-end extent of the whole trace."""
        if not self.spans:
            return 0.0
        return max(s.end for s in self.spans) - min(s.start for s in self.spans)

    # -- resource groups (overlap-factor helpers) ----------------------------
    def group_intervals(
        self, resources: Iterable[str]
    ) -> list[tuple[float, float]]:
        """Merged busy intervals over the union of several resources."""
        names = set(resources)
        return merge_intervals(
            (s.start, s.end) for s in self.spans if s.resource in names
        )

    def busy_time_group(self, resources: Iterable[str]) -> float:
        """Union busy time of a set of resources (overlaps merged)."""
        return sum(hi - lo for lo, hi in self.group_intervals(resources))

    def overlap_time_group(
        self, resources_a: Iterable[str], resources_b: Iterable[str]
    ) -> float:
        """Time during which both resource *groups* were busy at once."""
        return _intersection_length(
            self.group_intervals(resources_a), self.group_intervals(resources_b)
        )

    def overlap_fraction(self, resource_a: str, resource_b: str) -> float:
        """Overlap as a fraction of ``resource_a``'s busy time (0..1)."""
        busy = self.busy_time(resource_a)
        if busy <= 0.0:
            return 0.0
        return min(1.0, self.overlap_time(resource_a, resource_b) / busy)


class NullTracer(Tracer):
    """The promised no-op tracer: same interface, records nothing.

    Every query answers as an empty trace would; :meth:`record` discards
    its span.  ``bool(NullTracer())`` is False so hot paths can skip even
    the argument evaluation of a ``record`` call.
    """

    enabled = False

    def record(
        self, resource: str, start: float, end: float, label: str, nbytes: int = 0
    ) -> None:
        """Discard the span (no-op)."""

    def __repr__(self) -> str:
        return "NullTracer()"


def merge_intervals(
    intervals: Iterable[tuple[float, float]]
) -> list[tuple[float, float]]:
    """Sort and merge overlapping/adjacent intervals."""
    ivs = sorted(intervals)
    merged: list[tuple[float, float]] = []
    for lo, hi in ivs:
        if merged and lo <= merged[-1][1]:
            prev_lo, prev_hi = merged[-1]
            merged[-1] = (prev_lo, max(prev_hi, hi))
        else:
            merged.append((lo, hi))
    return merged


def union_length(intervals: Iterable[tuple[float, float]]) -> float:
    """Total length of the union of possibly-overlapping intervals."""
    return sum(hi - lo for lo, hi in merge_intervals(intervals))


def _intersection_length(
    a: list[tuple[float, float]], b: list[tuple[float, float]]
) -> float:
    """Length of the intersection of two merged interval lists."""
    total = 0.0
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            total += hi - lo
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return total


def _iter_pairs(spans: list[Span]) -> Iterator[tuple[Span, Span]]:
    for i, s in enumerate(spans):
        for t in spans[i + 1 :]:
            yield s, t


def to_chrome_trace(tracer: Tracer) -> list[dict]:
    """Convert spans to Chrome trace-event JSON (``chrome://tracing``).

    Each resource becomes a thread; spans become complete ('X') events
    with microsecond timestamps.  Load the saved file in Chrome's tracer
    or Perfetto to see exactly how a protocol pipelined.
    """
    return _chrome_events(tracer)


def _chrome_events(tracer: Tracer) -> list[dict]:
    tids = {name: i for i, name in enumerate(tracer.resources())}
    events: list[dict] = [
        {
            "name": name,
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": name},
            "cat": "__metadata",
        }
        for name, tid in tids.items()
    ]
    # thread_name metadata uses a dedicated event name
    for ev in events:
        ev["name"] = "thread_name"
    for s in tracer.spans:
        events.append(
            {
                "name": s.label,
                "cat": "sim",
                "ph": "X",
                "pid": 0,
                "tid": tids[s.resource],
                "ts": s.start * 1e6,
                "dur": s.duration * 1e6,
                "args": {"bytes": s.nbytes},
            }
        )
    return events


def save_chrome_trace(tracer: Tracer, path: str, metrics=None) -> None:
    """Write a ``chrome://tracing``/Perfetto-loadable JSON file.

    ``metrics`` may be a :class:`repro.obs.metrics.MetricsRegistry` (its
    snapshot is embedded), an already-flat snapshot dict, or an object
    with a ``to_dict``/``snapshot`` method (e.g. a
    :class:`repro.obs.stats.WorldStats`).  Perfetto ignores unknown
    top-level keys, so the file stays loadable while carrying the metric
    snapshot next to the timeline.
    """
    import json

    doc: dict = {"traceEvents": to_chrome_trace(tracer)}
    if metrics is not None:
        for attr in ("snapshot", "to_dict"):
            fn = getattr(metrics, attr, None)
            if callable(fn):
                metrics = fn()
                break
        doc["metrics"] = metrics
    with open(path, "w") as f:
        json.dump(doc, f)


def load_chrome_trace(path: str) -> dict:
    """Read back a file written by :func:`save_chrome_trace`."""
    import json

    with open(path) as f:
        return json.load(f)
