"""Shared simulated resources: FIFO bandwidth links, mailboxes, semaphores.

These are the building blocks the hardware models are assembled from.  A
:class:`FifoLink` is the canonical model for anything with a (bandwidth,
latency) pair — a PCIe direction, an InfiniBand port, a DMA engine, a GPU
copy queue.  Transfers issued on a link serialize in issue order (store and
forward), so a link's throughput can never exceed its bandwidth — a property
the test suite checks.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.sanitize import runtime as _san
from repro.sim.core import Future, SimulationError, Simulator
from repro.sim.trace import Tracer

__all__ = ["FifoLink", "Resource", "Semaphore", "Mailbox"]


class FifoLink:
    """A serialized bandwidth/latency pipe.

    ``transfer(nbytes)`` occupies the link for ``nbytes / bandwidth``
    seconds starting no earlier than the previous transfer's completion,
    then delivers (resolves the returned future) ``latency`` seconds later.
    Latency therefore pipelines — back-to-back transfers pay it once each
    but it overlaps with the next transfer's occupancy, as on real links.

    A per-operation fixed ``overhead`` (e.g. the cost of a ``cudaMemcpy``
    call or a DMA descriptor) is charged as occupancy before the bytes.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        bandwidth: float,
        latency: float = 0.0,
        overhead: float = 0.0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"link {name!r}: bandwidth must be positive")
        if latency < 0 or overhead < 0:
            raise ValueError(f"link {name!r}: negative latency/overhead")
        self.sim = sim
        self.name = name
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.overhead = float(overhead)
        # normalize falsy tracers (NullTracer) to None so the per-transfer
        # check is a C-level identity test, not a __bool__ call
        self.tracer = tracer if tracer else None
        self._busy_until = 0.0
        self.bytes_transferred = 0
        self.transfers = 0

    def occupancy_time(self, nbytes: int) -> float:
        """Occupancy (not including delivery latency) for a payload."""
        return self.overhead + nbytes / self.bandwidth

    def transfer(
        self,
        nbytes: int,
        payload: Any = None,
        label: str = "",
        extra_overhead: float = 0.0,
    ) -> Future:
        """Queue a transfer; the future resolves with ``payload`` at delivery."""
        if nbytes < 0:
            raise ValueError(f"link {self.name!r}: negative transfer size")
        sim = self.sim
        start = self._busy_until
        now = sim._now
        if start < now:
            start = now
        # parenthesized: identical float association to the original
        # `start + occupy` so modeled times never shift by an ulp
        end = start + (self.overhead + extra_overhead + nbytes / self.bandwidth)
        self._busy_until = end
        self.bytes_transferred += nbytes
        self.transfers += 1
        if self.tracer is not None:
            self.tracer.record(self.name, start, end, label or "xfer", nbytes)
        fut = Future(sim, label=label or self.name)
        if _san.RACE is not None:
            # delivery resolves from a bare timer; the HB edge is from the
            # *issuer*, so stamp its clock at issue time
            fut._san_snap = _san.RACE.snapshot()
        fut._fire_value = payload
        sim.schedule_at(end + self.latency, fut._resolve_scheduled)
        return fut

    def transfer_many(
        self,
        sizes,
        payload: Any = None,
        label: str = "",
        extra_overhead: float = 0.0,
    ) -> Future:
        """Fold N back-to-back transfers into one delivery event.

        Busy-time and byte accounting are bit-identical to issuing
        :meth:`transfer` once per entry of ``sizes`` (the occupancy fold
        uses the same per-op float arithmetic), but only a single future
        and a single timer event are created, resolving with ``payload``
        at the delivery time of the *last* chunk.  Use when the issue
        order allows the caller to wait on the batch as a whole — e.g.
        staging all blocks of a collective through one engine.

        With a tracer installed the per-chunk spans are still recorded
        individually so traces stay comparable.
        """
        sim = self.sim
        start = self._busy_until
        now = sim._now
        if start < now:
            start = now
        bw = self.bandwidth
        per_op = self.overhead + extra_overhead
        total = 0
        end = start
        tracer = self.tracer
        for nbytes in sizes:
            if nbytes < 0:
                raise ValueError(f"link {self.name!r}: negative transfer size")
            # parenthesized to match transfer()'s `start + occupy` float
            # association exactly, keeping the fold bit-identical
            chunk_end = end + (per_op + nbytes / bw)
            if tracer is not None:
                tracer.record(self.name, end, chunk_end, label or "xfer", nbytes)
            end = chunk_end
            total += nbytes
            self.transfers += 1
        self._busy_until = end
        self.bytes_transferred += total
        fut = Future(sim, label=label or self.name)
        if _san.RACE is not None:
            fut._san_snap = _san.RACE.snapshot()
        fut._fire_value = payload
        if end == start:  # empty batch: still deliver asynchronously
            sim.schedule_soon(fut._resolve_scheduled)
        else:
            sim.schedule_at(end + self.latency, fut._resolve_scheduled)
        return fut

    @property
    def busy_until(self) -> float:
        return self._busy_until

    def occupy_until(self, t: float, nbytes: int = 0, label: str = "") -> None:
        """Extend the busy horizon without scheduling a delivery.

        Used when another timeline co-occupies this link — e.g. a
        zero-copy GPU kernel streaming over PCIe while it computes.
        """
        start = max(self.sim.now, self._busy_until)
        if t > self._busy_until:
            self._busy_until = t
        self.bytes_transferred += nbytes
        if self.tracer and t > start:
            self.tracer.record(self.name, start, t, label or "co-occupy", nbytes)


class Resource:
    """Counted resource with FIFO acquire semantics (like simpy.Resource)."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._acq_label = name + ".acquire"
        self._in_use = 0
        self._waiters: deque[Future] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    def acquire(self) -> Future:
        """Request a slot; resolves immediately if capacity remains."""
        fut = Future(self.sim, label=self._acq_label)
        if self._in_use < self.capacity:
            self._in_use += 1
            fut.resolve(self)
        else:
            self._waiters.append(fut)
        return fut

    def release(self) -> None:
        """Free a slot, handing it to the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"{self.name}: release without acquire")
        if self._waiters:
            fut = self._waiters.popleft()
            fut.resolve(self)  # hand the slot over; _in_use unchanged
        else:
            self._in_use -= 1


class Semaphore:
    """Counting semaphore with FIFO wakeup."""

    def __init__(self, sim: Simulator, value: int = 0, name: str = "sem"):
        if value < 0:
            raise ValueError("initial value must be >= 0")
        self.sim = sim
        self.name = name
        self._value = value
        self._p_label = name + ".P"
        self._waiters: deque[Future] = deque()
        #: release-time clock snapshots for banked tokens (parallel FIFO);
        #: a token banked by fragment i's ACK carries the ACK context, so
        #: the acquirer of slot i+depth inherits the reuse-ordering edge
        self._san_bank: deque[Any] = deque()

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> Future:
        """P operation: resolves when a token is available."""
        fut = Future(self.sim, label=self._p_label)
        if self._value > 0:
            self._value -= 1
            if _san.RACE is not None and self._san_bank:
                fut._san_snap = self._san_bank.popleft()
            fut.resolve(None)
        else:
            self._waiters.append(fut)
        return fut

    def release(self, n: int = 1) -> None:
        """V operation: wake waiters FIFO or bank tokens."""
        for _ in range(n):
            if self._waiters:
                self._waiters.popleft().resolve(None)
            else:
                self._value += 1
                if _san.RACE is not None:
                    self._san_bank.append(_san.RACE.snapshot())


class Mailbox:
    """An unbounded FIFO message queue with blocking ``get``.

    Used for Active Message delivery into protocol coroutines and for
    rank-to-rank control synchronization in tests.
    """

    def __init__(self, sim: Simulator, name: str = "mailbox"):
        self.sim = sim
        self.name = name
        self._get_label = name + ".get"
        self._items: deque[Any] = deque()
        self._getters: deque[Future] = deque()
        #: putter-context snapshots for queued items (parallel FIFO) — a
        #: getter that pops a queued item still inherits the putter's edge
        self._san_snaps: deque[Any] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Enqueue an item, waking the oldest blocked getter."""
        if self._getters:
            self._getters.popleft().resolve(item)
        else:
            self._items.append(item)
            if _san.RACE is not None:
                self._san_snaps.append(_san.RACE.snapshot())

    def get(self) -> Future:
        """Future resolving with the next item (FIFO)."""
        fut = Future(self.sim, label=self._get_label)
        if self._items:
            item = self._items.popleft()
            if self._san_snaps:
                fut._san_snap = self._san_snaps.popleft()
            fut.resolve(item)
        else:
            self._getters.append(fut)
        return fut

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking ``(ok, item)`` pop."""
        if self._items:
            item = self._items.popleft()
            if self._san_snaps:
                snap = self._san_snaps.popleft()
                if _san.RACE is not None:
                    _san.RACE.join_actor(_san.RACE.current, snap)
            return True, item
        return False, None
