"""Discrete-event simulation kernel.

Everything in :mod:`repro` that "takes time" — GPU kernels, PCIe copies,
network messages, CPU packing — is an operation scheduled on a
:class:`~repro.sim.core.Simulator`.  MPI ranks and protocol state machines
run as generator-based :class:`~repro.sim.core.Process` coroutines that
``yield`` :class:`~repro.sim.core.Future` objects, so sender-side packing,
wire transfer and receiver-side unpacking genuinely overlap (or fail to)
on the simulated clock.
"""

from repro.sim.core import (
    Future,
    Process,
    ProcessKilled,
    SimulationError,
    Simulator,
    all_of,
    any_of,
)
from repro.sim.resources import FifoLink, Mailbox, Resource, Semaphore
from repro.sim.trace import NullTracer, Span, Tracer

__all__ = [
    "Future",
    "Process",
    "ProcessKilled",
    "SimulationError",
    "Simulator",
    "all_of",
    "any_of",
    "FifoLink",
    "Mailbox",
    "Resource",
    "Semaphore",
    "Span",
    "Tracer",
    "NullTracer",
]
