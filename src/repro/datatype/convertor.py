"""Pack/unpack convertors: the vectorized fast path and helpers.

Two interchangeable engines exist:

* :class:`repro.datatype.stack.StackMachine` — the faithful Open MPI
  stack walk, resumable at any byte (reference implementation);
* the **compiled pack plans** here, selected per (datatype, count) from
  the canonical IR (:mod:`repro.datatype.canonical`) by its cost model:

  - ``memcpy``    — single gap-free block: one slice copy per range;
  - ``strided2d`` — uniform vector: head/body/tail strided slice copies
    (the CPU counterpart of ``cudaMemcpy2D``);
  - ``gather``    — a cached NumPy index array at the datatype's
    granularity (8 B for double-based types), so packing a fragment is
    one fancy-index expression — the moral equivalent of the paper's
    cached CUDA_DEV list: it depends only on the type's *shape*, never
    on buffer addresses, so it is computed once per (datatype, count)
    and reused for every subsequent pack/unpack;
  - ``stack``     — the resumable stack walk, for sub-granularity base
    offsets no precompiled map can express.

Both engines are validated against each other by property tests.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.datatype.canonical import (
    PLAN_GATHER,
    PLAN_MEMCPY,
    PLAN_STACK,
    PLAN_STRIDED2D,
    canonicalize,
    select_cpu_plan,
)
from repro.datatype.ddt import Datatype
from repro.datatype.stack import StackMachine, compile_datatype
from repro.datatype.typemap import Spans

__all__ = ["Convertor", "gather_indices", "stream_unit", "pack_bytes", "unpack_bytes"]


def stream_unit(dt: Datatype, count: int = 1) -> int:
    """Byte granularity of the packed stream for ``count`` elements."""
    unit = dt.granularity()
    if count > 1:
        # element k lives at k * extent, so the unit must divide the
        # extent too (a resized type may have any byte extent)
        unit = math.gcd(unit, abs(dt.extent)) or 1
    return unit


def gather_indices(dt: Datatype, count: int = 1) -> tuple[np.ndarray, int]:
    """Element-granularity gather map for ``count`` elements of ``dt``.

    Returns ``(idx, unit)`` where ``idx[k]`` is the user-buffer offset (in
    ``unit``-byte elements) of the ``k``-th packed element.  Cached on the
    datatype.
    """
    unit = stream_unit(dt, count)
    key = (count, unit)
    cached = dt._gather_cache.get(key)
    if cached is not None:
        return cached, unit
    spans = dt.spans_for_count(count)
    idx = _spans_to_indices(spans, unit)
    dt._gather_cache[key] = idx
    return idx, unit


def _spans_to_indices(spans: Spans, unit: int) -> np.ndarray:
    """Expand byte spans into per-element user offsets (in units)."""
    if spans.count == 0:
        return np.empty(0, dtype=np.int64)
    counts = spans.lens // unit
    starts = spans.disps // unit
    total = int(counts.sum())
    # idx = repeat(starts) + intra-span ramp
    idx = np.repeat(starts, counts)
    ramp = np.arange(total, dtype=np.int64)
    span_first = np.repeat(np.cumsum(counts) - counts, counts)
    idx += ramp - span_first
    return idx


class Convertor:
    """Fragment-oriented pack/unpack bound to one user buffer.

    The protocols drive this exactly like Open MPI drives
    ``opal_convertor_pack``: ask for the next ``n`` bytes of the packed
    stream (pack), or deliver the next ``n`` bytes (unpack).  Fragment
    boundaries that are multiples of the datatype granularity take the
    vectorized path; anything else falls back to the stack machine.
    """

    def __init__(
        self,
        dt: Datatype,
        count: int,
        user_bytes: np.ndarray,
        direction: str = "pack",
        base_offset: int = 0,
    ) -> None:
        if direction not in ("pack", "unpack"):
            raise ValueError("direction must be 'pack' or 'unpack'")
        dt.commit()
        self.dt = dt
        self.count = count
        self.user = user_bytes
        self.direction = direction
        self.base_offset = base_offset
        self.total_bytes = dt.size * count
        self.position = 0
        self._unit = stream_unit(dt, count)
        #: gather index array, built lazily — the uniform-vector fast
        #: path below never needs it (for a 4096^2 sub-matrix the index
        #: array alone is 16M int64 entries)
        self._idx: Optional[np.ndarray] = None
        self._user_elems: Optional[np.ndarray] = None
        self._stack: Optional[StackMachine] = None
        #: dedicated stack machine for the *range* API when the base is
        #: misaligned (the gather map cannot express a sub-unit shift)
        self._rstack: Optional[StackMachine] = None
        self._rstack_pos = 0
        lo = dt.spans_for_count(count).true_lb if count else 0
        if base_offset + lo < 0:
            raise ValueError("datatype reaches below the start of the buffer")
        #: canonical normal form of (datatype, count) — the structural
        #: identity plan selection and the DevCache key on
        self.form = canonicalize(dt, count)
        #: compiled pack plan the cost model chose for this stream
        self.plan = select_cpu_plan(self.form, self._unit, base_offset)
        #: uniform-vector shape, when the whole stream is expressible as
        #: a strided 2-D copy (the CPU counterpart of cudaMemcpy2D)
        self._vec = None
        self._rows_view: Optional[np.ndarray] = None
        if self.plan == PLAN_STACK:
            self._fallback()  # misaligned base: stack machine from the start
        elif self.plan in (PLAN_MEMCPY, PLAN_STRIDED2D):
            self._vec = self.form.vector_shape

    # -- internals -------------------------------------------------------
    def _elems(self) -> np.ndarray:
        if self._user_elems is None:
            u = self._unit
            usable = len(self.user) // u * u
            self._user_elems = self.user[:usable].view(_unit_dtype(u))
        return self._user_elems

    def _indices(self) -> np.ndarray:
        """User-buffer-absolute gather indices (element granularity)."""
        if self._idx is None:
            idx, unit = gather_indices(self.dt, self.count)
            assert unit == self._unit
            if self.base_offset:
                idx = idx + self.base_offset // self._unit
            self._idx = idx
        return self._idx

    def _rows(self) -> Optional[np.ndarray]:
        """Strided 2-D (block, element) view of the user buffer."""
        if self._rows_view is None:
            v = self._vec
            u = self._unit
            elems = self._elems()
            start = (self.base_offset + v.first_disp) // u
            epb = v.blocklength // u
            spb = v.stride // u  # elements between successive block starts
            if start < 0 or start + (v.count - 1) * spb + epb > len(elems):
                self._vec = None  # layout exceeds the buffer: no fast path
                self.plan = PLAN_GATHER
                return None
            item = elems.dtype.itemsize
            self._rows_view = np.lib.stride_tricks.as_strided(
                elems[start:],
                shape=(v.count, epb),
                strides=(spb * item, item),
            )
        return self._rows_view

    def _fast_range(self, buf: np.ndarray, lo: int, hi: int) -> bool:
        """Strided-copy transfer of packed range [lo, hi); True if handled.

        For uniform-vector layouts every fragment decomposes into (head
        partial block, whole blocks, tail partial block) — three NumPy
        slice copies instead of a fancy-index gather over every element,
        the CPU-side analogue of packing with ``cudaMemcpy2D``.
        """
        if self._vec is None or lo >= hi:
            return False
        rows = self._rows()
        if rows is None:
            return False
        epb = rows.shape[1]
        e0, e1 = lo // self._unit, hi // self._unit
        o = buf[: hi - lo].view(rows.dtype)
        pack = self.direction == "pack"
        r0, c0 = divmod(e0, epb)
        r1, c1 = divmod(e1, epb)
        if r0 == r1:
            if pack:
                o[:] = rows[r0, c0:c1]
            else:
                rows[r0, c0:c1] = o
            return True
        pos = 0
        if c0:
            n0 = epb - c0
            if pack:
                o[:n0] = rows[r0, c0:]
            else:
                rows[r0, c0:] = o[:n0]
            pos = n0
            r0 += 1
        nmid = r1 - r0
        if nmid > 0:
            mid = o[pos : pos + nmid * epb].reshape(nmid, epb)
            if pack:
                mid[:] = rows[r0:r1]
            else:
                rows[r0:r1] = mid
            pos += nmid * epb
        if c1:
            if pack:
                o[pos : pos + c1] = rows[r1, :c1]
            else:
                rows[r1, :c1] = o[pos : pos + c1]
        return True

    def _fallback(self) -> StackMachine:
        if self._stack is None:
            self.plan = PLAN_STACK
            prog = compile_datatype(self.dt, self.count)
            self._stack = StackMachine(
                prog, self.user, direction=self.direction, base_disp=self.base_offset
            )
            # fast-forward to the current position
            if self.position:
                scratch = np.empty(self.position, dtype=np.uint8)
                if self.direction == "pack":
                    self._stack.advance(scratch)
                else:
                    raise RuntimeError(
                        "cannot fall back mid-unpack; use aligned fragments"
                    )
        return self._stack

    # -- API ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.position >= self.total_bytes

    def pack(self, out: np.ndarray, max_bytes: Optional[int] = None) -> int:
        """Produce the next packed bytes into ``out``; returns count."""
        if self.direction != "pack":
            raise RuntimeError("convertor was created for unpack")
        n = min(
            self.total_bytes - self.position,
            len(out) if max_bytes is None else min(max_bytes, len(out)),
        )
        if n <= 0:
            return 0
        lo, hi = self.position, self.position + n
        u = self._unit
        if self._stack is None and lo % u == 0 and hi % u == 0:
            if not self._fast_range(out[:n], lo, hi):
                idx = self._indices()[lo // u : hi // u]
                out[:n] = self._elems()[idx].view(np.uint8)
        else:
            done = self._fallback().advance(out[:n])
            assert done == n
        self.position = hi
        return n

    def unpack(self, data: np.ndarray, max_bytes: Optional[int] = None) -> int:
        """Consume the next packed bytes from ``data``; returns count."""
        if self.direction != "unpack":
            raise RuntimeError("convertor was created for pack")
        n = min(
            self.total_bytes - self.position,
            len(data) if max_bytes is None else min(max_bytes, len(data)),
        )
        if n <= 0:
            return 0
        lo, hi = self.position, self.position + n
        u = self._unit
        if self._stack is None and lo % u == 0 and hi % u == 0:
            if not self._fast_range(data[:n], lo, hi):
                idx = self._indices()[lo // u : hi // u]
                self._elems()[idx] = data[:n].view(_unit_dtype(u))
        else:
            done = self._fallback().advance(data[:n])
            assert done == n
        self.position = hi
        return n

    def _range_stack(self, lo: int) -> StackMachine:
        """Stack machine backing the range API for misaligned bases.

        The gather index array is element-granular, so a ``base_offset``
        that is not a multiple of the unit cannot be folded into it — the
        old fast path silently dropped the sub-unit shift and touched the
        wrong user bytes.  Packing may revisit or skip ranges (the stream
        is regenerated / advanced through scratch); unpacking is
        inherently sequential — consumed bytes cannot be replayed.
        """
        if self._rstack is not None and self._rstack_pos > lo:
            if self.direction != "pack":
                raise RuntimeError(
                    "misaligned-base unpack_range cannot rewind; "
                    "deliver fragments in stream order"
                )
            self._rstack = None  # rewind: rebuild and re-walk the stream
        if self._rstack is None:
            prog = compile_datatype(self.dt, self.count)
            self._rstack = StackMachine(
                prog, self.user, direction=self.direction,
                base_disp=self.base_offset,
            )
            self._rstack_pos = 0
        if self._rstack_pos < lo:
            if self.direction != "pack":
                raise RuntimeError(
                    "misaligned-base unpack_range cannot skip ahead; "
                    "deliver fragments in stream order"
                )
            scratch = np.empty(lo - self._rstack_pos, dtype=np.uint8)
            self._rstack.advance(scratch)
            self._rstack_pos = lo
        return self._rstack

    def pack_range(self, out: np.ndarray, lo: int, hi: int) -> None:
        """Random-access pack of packed-stream range [lo, hi) (aligned)."""
        u = self._unit
        if lo % u or hi % u:
            raise ValueError("pack_range requires granularity-aligned bounds")
        if self.base_offset % u:
            done = self._range_stack(lo).advance(out[: hi - lo])
            assert done == hi - lo
            self._rstack_pos = hi
            return
        if self._fast_range(out[: hi - lo], lo, hi):
            return
        idx = self._indices()[lo // u : hi // u]
        out[: hi - lo] = self._elems()[idx].view(np.uint8)

    def unpack_range(self, data: np.ndarray, lo: int, hi: int) -> None:
        """Random-access unpack of packed-stream range [lo, hi) (aligned)."""
        u = self._unit
        if lo % u or hi % u:
            raise ValueError("unpack_range requires granularity-aligned bounds")
        if self.base_offset % u:
            done = self._range_stack(lo).advance(data[: hi - lo])
            assert done == hi - lo
            self._rstack_pos = hi
            return
        if self._fast_range(data[: hi - lo], lo, hi):
            return
        idx = self._indices()[lo // u : hi // u]
        self._elems()[idx] = data[: hi - lo].view(_unit_dtype(u))


_UNIT_DTYPES = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}


def _unit_dtype(u: int):
    dt = _UNIT_DTYPES.get(u)
    if dt is None:
        # non-power-of-two granularity: fall back to byte records
        return np.dtype((np.void, u))
    return dt


def pack_bytes(dt: Datatype, count: int, user_bytes: np.ndarray) -> np.ndarray:
    """One-shot pack of ``count`` elements; returns the packed stream."""
    conv = Convertor(dt, count, user_bytes, "pack")
    out = np.empty(conv.total_bytes, dtype=np.uint8)
    conv.pack(out)
    return out


def unpack_bytes(
    dt: Datatype, count: int, user_bytes: np.ndarray, packed: np.ndarray
) -> None:
    """One-shot unpack of a packed stream into the user layout."""
    conv = Convertor(dt, count, user_bytes, "unpack")
    n = conv.unpack(packed)
    if n != conv.total_bytes:
        raise ValueError(
            f"packed stream holds {len(packed)} bytes; type needs "
            f"{conv.total_bytes}"
        )
