"""Span algebra: the flattened typemap of a derived datatype.

A committed datatype's layout is a sequence of byte *spans* —
``(displacement, length)`` pairs **in pack order** (the order the MPI
typemap defines, which is not necessarily ascending displacement: a struct
may legally visit memory backwards).  Spans are held as a pair of int64
NumPy arrays so constructing the typemap of a million-block type (e.g. the
paper's matrix-transpose datatype, N^2 single-element blocks) is a handful
of vectorized operations rather than a Python loop.

Adjacent-in-order spans that touch in memory are coalesced — the same
normalization Open MPI's datatype optimizer performs, and the reason a
``vector`` with ``stride == blocklength`` behaves exactly like a
``contiguous``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

__all__ = ["Spans", "coalesce", "concat", "tile"]


@dataclass(frozen=True)
class Spans:
    """Byte spans in pack order.  Immutable; arrays must not be mutated."""

    disps: np.ndarray  # int64 byte displacements
    lens: np.ndarray  # int64 byte lengths, all > 0

    def __post_init__(self) -> None:
        d = np.asarray(self.disps, dtype=np.int64)
        l = np.asarray(self.lens, dtype=np.int64)
        if d.shape != l.shape or d.ndim != 1:
            raise ValueError("disps/lens must be equal-length 1-D arrays")
        object.__setattr__(self, "disps", d)
        object.__setattr__(self, "lens", l)

    # -- basic facts ----------------------------------------------------
    @property
    def count(self) -> int:
        return int(self.disps.size)

    @property
    def size(self) -> int:
        """Total payload bytes."""
        return int(self.lens.sum()) if self.count else 0

    @property
    def true_lb(self) -> int:
        return int(self.disps.min()) if self.count else 0

    @property
    def true_ub(self) -> int:
        return int((self.disps + self.lens).max()) if self.count else 0

    def packed_offsets(self) -> np.ndarray:
        """Packed-stream offset of each span (exclusive prefix sum)."""
        out = np.empty(self.count, dtype=np.int64)
        if self.count:
            np.cumsum(self.lens[:-1], out=out[1:])
            out[0] = 0
        return out

    # -- transforms ------------------------------------------------------
    def shift(self, delta: int) -> "Spans":
        """The same spans displaced by ``delta`` bytes."""
        return Spans(self.disps + int(delta), self.lens)

    def iter_pairs(self) -> Iterator[tuple[int, int]]:
        """Iterate ``(displacement, length)`` tuples in pack order."""
        for d, l in zip(self.disps.tolist(), self.lens.tolist()):
            yield d, l

    def overlaps_self(self) -> bool:
        """True if any two spans touch the same byte (illegal for recv types)."""
        order = np.argsort(self.disps, kind="stable")
        d = self.disps[order]
        e = d + self.lens[order]
        return bool(np.any(d[1:] < e[:-1]))

    @staticmethod
    def empty() -> "Spans":
        z = np.empty(0, dtype=np.int64)
        return Spans(z, z)

    def __repr__(self) -> str:
        return f"Spans(count={self.count}, size={self.size})"


def coalesce(spans: Spans) -> Spans:
    """Merge runs of spans that are consecutive in order *and* in memory."""
    n = spans.count
    if n <= 1:
        return spans
    d, l = spans.disps, spans.lens
    # break before i when span i does not start where span i-1 ended
    breaks = np.empty(n, dtype=bool)
    breaks[0] = True
    breaks[1:] = d[1:] != d[:-1] + l[:-1]
    if breaks.all():
        return spans
    group = np.cumsum(breaks) - 1
    n_groups = int(group[-1]) + 1
    out_d = d[breaks]
    out_l = np.zeros(n_groups, dtype=np.int64)
    np.add.at(out_l, group, l)
    return Spans(out_d, out_l)


def concat(parts: Iterable[Spans]) -> Spans:
    """Concatenate span lists in order, dropping empty parts."""
    parts = [p for p in parts if p.count]
    if not parts:
        return Spans.empty()
    if len(parts) == 1:
        return parts[0]
    return Spans(
        np.concatenate([p.disps for p in parts]),
        np.concatenate([p.lens for p in parts]),
    )


def tile(spans: Spans, count: int, stride_bytes: int) -> Spans:
    """Repeat a span list ``count`` times, offsetting each copy by the stride.

    This is the workhorse for ``contiguous``/``vector``/send-count
    replication: one broadcasted add instead of a Python loop.
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    if count == 0 or spans.count == 0:
        return Spans.empty()
    if count == 1:
        return spans
    offsets = (np.arange(count, dtype=np.int64) * np.int64(stride_bytes))[:, None]
    disps = (spans.disps[None, :] + offsets).reshape(-1)
    lens = np.broadcast_to(spans.lens, (count, spans.count)).reshape(-1)
    return coalesce(Spans(disps, np.ascontiguousarray(lens)))
