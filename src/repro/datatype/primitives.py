"""Predefined (primitive) MPI datatypes.

Primitives are the leaves of every derived type; the type *signature* —
the ordered multiset of primitives, ignoring layout — is what MPI requires
to match between communicating peers (Section 5.2.2 relies on this:
a vector and a contiguous type with equal signatures may legally pair).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Primitive",
    "BYTE",
    "CHAR",
    "SHORT",
    "INT",
    "INT64",
    "FLOAT",
    "DOUBLE",
    "PREDEFINED",
]


@dataclass(frozen=True)
class Primitive:
    """A predefined MPI datatype."""

    mpi_name: str
    np_dtype: str

    @property
    def size(self) -> int:
        return np.dtype(self.np_dtype).itemsize

    @property
    def alignment(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return self.mpi_name


BYTE = Primitive("MPI_BYTE", "u1")
CHAR = Primitive("MPI_CHAR", "i1")
SHORT = Primitive("MPI_SHORT", "i2")
INT = Primitive("MPI_INT", "i4")
INT64 = Primitive("MPI_INT64_T", "i8")
FLOAT = Primitive("MPI_FLOAT", "f4")
DOUBLE = Primitive("MPI_DOUBLE", "f8")

PREDEFINED: dict[str, Primitive] = {
    p.mpi_name: p for p in (BYTE, CHAR, SHORT, INT, INT64, FLOAT, DOUBLE)
}
