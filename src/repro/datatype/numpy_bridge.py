"""NumPy interop: derive MPI datatypes from array slices.

A downstream user usually thinks "send ``A[1:5, 3:9]``", not "construct a
vector of blocklength …".  These helpers build the committed datatype
describing a basic slice of an n-dimensional array, plus utilities to
inspect which bytes of a buffer a datatype touches.

>>> dt = datatype_from_slice((8, 8), np.s_[1:5, 3:9], DOUBLE, order="C")
>>> # dt packs exactly A[1:5, 3:9] out of a row-major 8x8 array
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.datatype.ddt import Datatype, subarray
from repro.datatype.primitives import Primitive

__all__ = ["datatype_from_slice", "byte_mask", "described_elements"]


def datatype_from_slice(
    shape: Sequence[int],
    key,
    base: Primitive,
    order: str = "C",
) -> Datatype:
    """The committed datatype selecting ``array[key]`` from ``array``.

    ``key`` is anything a basic (non-strided) NumPy indexing expression
    produces: a slice, an int, or a tuple of them — e.g. ``np.s_[1:5, 3:9]``.
    Steps other than 1 are rejected (MPI subarrays are contiguous per
    dimension; build a vector explicitly for strided selections).
    """
    shape = list(shape)
    if not isinstance(key, tuple):
        key = (key,)
    if len(key) > len(shape):
        raise ValueError("more indices than array dimensions")
    key = key + (slice(None),) * (len(shape) - len(key))
    starts: list[int] = []
    subsizes: list[int] = []
    for dim, (n, k) in enumerate(zip(shape, key)):
        if isinstance(k, int):
            if not -n <= k < n:
                raise IndexError(f"index {k} out of range for dim {dim}")
            k = slice(k % n, k % n + 1)
        if not isinstance(k, slice):
            raise TypeError(f"dim {dim}: only ints and slices are supported")
        start, stop, step = k.indices(n)
        if step != 1:
            raise ValueError(
                f"dim {dim}: step {step} unsupported — MPI subarrays are "
                "contiguous per dimension"
            )
        if stop <= start:
            raise ValueError(f"dim {dim}: empty selection")
        starts.append(start)
        subsizes.append(stop - start)
    return subarray(shape, subsizes, starts, base, order=order).commit()


def byte_mask(dt: Datatype, buffer_bytes: int, count: int = 1) -> np.ndarray:
    """Boolean mask over a buffer: True where the datatype touches."""
    spans = dt.spans_for_count(count)
    if spans.count and (spans.true_lb < 0 or spans.true_ub > buffer_bytes):
        raise ValueError("datatype reaches outside the buffer")
    mask = np.zeros(buffer_bytes, dtype=bool)
    for d, l in spans.iter_pairs():
        mask[d : d + l] = True
    return mask


def described_elements(
    dt: Datatype, array: np.ndarray, count: int = 1
) -> np.ndarray:
    """The packed element values the datatype would extract from ``array``."""
    from repro.datatype.convertor import pack_bytes

    # preserve the array's own memory layout ('A'): a Fortran-ordered
    # array must be walked in Fortran order, matching its datatype
    raw = np.frombuffer(array.tobytes(order="A"), dtype=np.uint8)
    packed = pack_bytes(dt, count, raw)
    return packed.view(array.dtype)
