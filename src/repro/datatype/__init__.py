"""MPI derived datatypes and the CPU datatype engine.

This package reimplements the parts of Open MPI's datatype machinery the
paper builds on:

* the full MPI type-constructor algebra (:mod:`repro.datatype.ddt`) —
  contiguous, vector/hvector, indexed/hindexed/indexed_block, struct,
  subarray, resized;
* the flattened *typemap* representation (:mod:`repro.datatype.typemap`) —
  coalesced (displacement, length) spans in pack order, computed with
  vectorized NumPy span algebra so million-block types stay cheap;
* the **stack-based convertor** (:mod:`repro.datatype.stack`,
  :mod:`repro.datatype.convertor`) — Open MPI's pack/unpack state machine
  ("a datatype is described by a concise stack-based representation",
  Section 3), supporting pause/resume at arbitrary byte positions for
  fragment pipelining;
* a vectorized gather/scatter fast path validated against the stack
  machine by property tests;
* the **canonical IR** (:mod:`repro.datatype.canonical`) — the normal
  form of ``(datatype, count)`` with a stable structural key (what the
  DevCache and fast-path selection key on) and the compiled pack-plan
  menu chosen by a small cost model.
"""

from repro.datatype.primitives import (
    BYTE,
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    INT64,
    SHORT,
    Primitive,
)
from repro.datatype.ddt import (
    Datatype,
    contiguous,
    hindexed,
    hvector,
    indexed,
    indexed_block,
    resized,
    struct,
    subarray,
    vector,
)
from repro.datatype.typemap import Spans
from repro.datatype.canonical import (
    CanonicalForm,
    canonical_key,
    canonicalize,
    display_id,
    select_cpu_plan,
    select_gpu_plan,
)
from repro.datatype.convertor import Convertor, pack_bytes, unpack_bytes
from repro.datatype.numpy_bridge import byte_mask, datatype_from_slice

__all__ = [
    "Primitive",
    "BYTE",
    "CHAR",
    "SHORT",
    "INT",
    "INT64",
    "FLOAT",
    "DOUBLE",
    "Datatype",
    "contiguous",
    "vector",
    "hvector",
    "indexed",
    "hindexed",
    "indexed_block",
    "struct",
    "subarray",
    "resized",
    "Spans",
    "CanonicalForm",
    "canonicalize",
    "canonical_key",
    "display_id",
    "select_cpu_plan",
    "select_gpu_plan",
    "Convertor",
    "pack_bytes",
    "unpack_bytes",
    "byte_mask",
    "datatype_from_slice",
]
