"""Canonical datatype IR: a TEMPI-style normal form with compiled pack plans.

Every committed datatype flattens to a coalesced span typemap in pack
order (:mod:`repro.datatype.typemap`).  That typemap — *not* the
constructor tree that produced it — is what pack/unpack behaviour
depends on, so it is the right identity for caching and kernel
selection.  This module canonicalizes ``(datatype, count)`` into a small
normal-form IR (the spirit of TEMPI's "canonical representation of
CUDA-aware datatypes", arXiv 2012.14363) and derives from it

* a **stable, hashable canonical key** — :func:`canonical_key` — used by
  :class:`repro.gpu_engine.cache.DevCache` and the convertor's fast-path
  selection in place of the old identity-based ``type_id`` key, so two
  structurally identical datatypes built separately (two tenants, a
  re-run workload, ``vector`` vs an equivalent ``hindexed``) share
  cached CUDA_DEV descriptors and gather maps instead of silently
  re-paying the first-iteration cost forever (the paper's Fig 6/7
  "cached" argument only works if the cache can actually hit);
* a **menu of compiled pack plans** — :func:`select_cpu_plan` /
  :func:`select_gpu_plan` — chosen by a small byte-cost model
  (:func:`plan_cost`), so contiguous, strided and irregular layouts each
  get their first-class fast path instead of the generic stack walk.

Normalization rules (applied by construction — the span algebra performs
them during :meth:`~repro.datatype.ddt.Datatype.commit`, and
:func:`canonicalize` classifies the result):

* **contiguous-collapse** — adjacent-in-order spans that touch in memory
  are merged (``vector`` with ``stride == blocklength`` *is* a
  ``contiguous``); a single gap-free span canonicalizes to ``contig``;
* **vector/hvector unification** — strides are reduced to bytes, so
  ``vector(c, b, s, base)`` and ``hvector(c, b, s * extent, base)`` are
  the same ``vector`` form;
* **hindexed run-merging** — touching ``hindexed``/``indexed`` blocks
  coalesce into maximal runs before classification;
* **struct flattening** — ``struct``/``subarray``/nesting disappear: only
  the flattened pack-order spans matter;
* **resized/dup erasure** — ``resized`` changes only ``lb``/``extent``
  and ``dup`` only identity; for ``count == 1`` both canonicalize
  identically to their base, and for ``count > 1`` the extent enters the
  form only through the tiled span layout it actually produces.

Forms and keys are cached per ``(datatype, count)`` on the datatype
object; irregular layouts are keyed by a digest of their span arrays
(BLAKE2b over the little-endian int64 bytes), which is deterministic
across processes and platforms — unlike ``hash()``/``id()``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.datatype.ddt import Datatype, VectorShape, _detect_vector
from repro.datatype.typemap import Spans

__all__ = [
    "CanonicalForm",
    "canonicalize",
    "canonical_key",
    "display_id",
    "CPU_PLANS",
    "GPU_PLANS",
    "PLAN_MEMCPY",
    "PLAN_STRIDED2D",
    "PLAN_VECTOR_KERNEL",
    "PLAN_GATHER",
    "PLAN_STACK",
    "plan_cost",
    "select_cpu_plan",
    "select_gpu_plan",
    "feasible_gpu_plans",
]

# -- the pack-plan menu -------------------------------------------------------

#: single gap-free block: one memcpy (CPU) / one-row kernel pass (GPU)
PLAN_MEMCPY = "memcpy"
#: uniform vector: strided 2-D slice copies (the cudaMemcpy2D analogue)
PLAN_STRIDED2D = "strided2d"
#: uniform vector on the GPU: the specialized vector pack kernel (Sec 3.1)
PLAN_VECTOR_KERNEL = "vector_kernel"
#: irregular runs: precompiled gather map (CPU) / CUDA_DEV work list (GPU)
PLAN_GATHER = "gather"
#: generic resumable stack walk — always feasible, never fast
PLAN_STACK = "stack"

#: plans the CPU convertor can execute, in typical cost order
CPU_PLANS = (PLAN_MEMCPY, PLAN_STRIDED2D, PLAN_GATHER, PLAN_STACK)
#: plans the GPU datatype engine can execute
GPU_PLANS = (PLAN_MEMCPY, PLAN_VECTOR_KERNEL, PLAN_GATHER)


@dataclass(frozen=True)
class CanonicalForm:
    """Normal form of ``count`` elements of a datatype.

    ``kind`` is one of:

    * ``"empty"``  — zero payload bytes;
    * ``"contig"`` — one gap-free block of ``size`` bytes at ``first_disp``;
    * ``"vector"`` — ``blocks`` equal blocks of ``blocklength`` bytes on a
      constant positive ``stride`` from ``first_disp``;
    * ``"runs"``   — anything else: ``blocks`` maximal coalesced runs,
      identified by a digest of the span arrays.

    ``key`` is the stable, hashable identity two structurally identical
    layouts share — the thing caches and plan selection key on.
    """

    kind: str
    size: int  # total payload bytes
    blocks: int  # number of coalesced runs
    first_disp: int  # displacement of the first block (pack order)
    blocklength: int  # uniform block bytes (contig/vector; 0 for runs)
    stride: int  # bytes between block starts (vector; 0 otherwise)
    key: tuple  # stable hashable identity

    @property
    def vector_shape(self) -> Optional[VectorShape]:
        """The uniform-vector view, for the strided/vector-kernel plans."""
        if self.kind == "contig":
            return VectorShape(1, self.size, self.size, self.first_disp)
        if self.kind == "vector":
            return VectorShape(
                self.blocks, self.blocklength, self.stride, self.first_disp
            )
        return None

    def __repr__(self) -> str:
        return (
            f"CanonicalForm({self.kind}, size={self.size}B, "
            f"blocks={self.blocks})"
        )


def _runs_digest(spans: Spans) -> str:
    """Deterministic digest of the span arrays (platform-independent)."""
    h = hashlib.blake2b(digest_size=12)
    h.update(np.ascontiguousarray(spans.disps, dtype="<i8").tobytes())
    h.update(np.ascontiguousarray(spans.lens, dtype="<i8").tobytes())
    return h.hexdigest()


def _classify(spans: Spans) -> CanonicalForm:
    """Classify coalesced pack-order spans into their normal form."""
    n = spans.count
    if n == 0:
        return CanonicalForm("empty", 0, 0, 0, 0, 0, key=("empty",))
    if n == 1:
        length = int(spans.lens[0])
        disp = int(spans.disps[0])
        return CanonicalForm(
            "contig", length, 1, disp, length, 0,
            key=("contig", length, disp),
        )
    shape = _detect_vector(spans)
    if shape is not None:
        return CanonicalForm(
            "vector",
            shape.count * shape.blocklength,
            shape.count,
            shape.first_disp,
            shape.blocklength,
            shape.stride,
            key=(
                "vector",
                shape.count,
                shape.blocklength,
                shape.stride,
                shape.first_disp,
            ),
        )
    return CanonicalForm(
        "runs",
        spans.size,
        n,
        int(spans.disps[0]),
        0,
        0,
        key=("runs", n, spans.size, _runs_digest(spans)),
    )


def canonicalize(dt: Datatype, count: int = 1) -> CanonicalForm:
    """Normal form of ``count`` elements of a committed datatype.

    Cached per ``count`` on the datatype object — computing it costs one
    tiled-span walk the first time and a dict lookup after.
    """
    dt.commit()
    cached = dt._canon_cache.get(count)
    if cached is not None:
        return cached
    form = _classify(dt.spans_for_count(count))
    dt._canon_cache[count] = form
    return form


def canonical_key(dt: Datatype, count: int, unit_size: int) -> tuple:
    """Stable cache key for ``(datatype, count, S)``.

    Structure-based: any two datatypes whose ``count`` elements flatten
    to the same pack-order layout get the same key, whoever built them
    and however (``vector`` vs ``hindexed`` runs, struct-wrapped,
    resized, dup'ed).  The CUDA_DEV work list depends only on the spans
    and ``S``, so sharing entries across such types is exact, and the
    DEV validator's cache-hit rebuild check cross-verifies it.
    """
    return (canonicalize(dt, count).key, unit_size)


def display_id(dt: Datatype) -> str:
    """Short, stable display id derived from the canonical key.

    Unlike the old ``#<type_id>`` global-counter suffix, this does not
    change with construction order, so reprs embedded in traces, logs
    and bench output diff cleanly across runs and test orderings.
    """
    if not dt.committed:
        return "uncommitted"
    key = canonicalize(dt, 1).key
    h = hashlib.blake2b(repr(key).encode(), digest_size=4)
    return h.hexdigest()


# -- cost model --------------------------------------------------------------
#
# Relative per-byte costs of each plan's inner loop, in arbitrary units.
# Only the ordering matters for selection; the constants encode what the
# paper (and the repo's own benchmarks) measured: one big copy beats
# row-wise strided copies, which beat an element-granular gather, which
# beats the interpreted stack walk by a wide margin.  Per-block overheads
# make many-tiny-block layouts prefer the gather map once rows get small.

_BYTE_COST = {
    PLAN_MEMCPY: 1.0,
    PLAN_STRIDED2D: 1.2,
    PLAN_VECTOR_KERNEL: 1.2,
    PLAN_GATHER: 4.0,
    PLAN_STACK: 40.0,
}
#: fixed per-block overhead (loop iteration / descriptor fetch)
_BLOCK_COST = {
    PLAN_MEMCPY: 0.0,
    PLAN_STRIDED2D: 16.0,
    PLAN_VECTOR_KERNEL: 16.0,
    PLAN_GATHER: 8.0,
    PLAN_STACK: 64.0,
}


def plan_cost(form: CanonicalForm, plan: str) -> float:
    """Modelled cost (arbitrary units) of executing ``plan`` on ``form``."""
    return form.size * _BYTE_COST[plan] + form.blocks * _BLOCK_COST[plan]


def _cpu_feasible(form: CanonicalForm, unit: int, base_offset: int) -> list:
    """CPU plans able to execute ``form`` exactly, cheapest-capable first."""
    if base_offset % unit != 0:
        # the gather map and strided views are element-granular; a
        # sub-unit base shift is only expressible by the stack machine
        return [PLAN_STACK]
    feasible = []
    shape = form.vector_shape
    aligned = shape is not None and (
        shape.blocklength % unit == 0
        and shape.stride % unit == 0
        and shape.first_disp % unit == 0
        and shape.stride >= shape.blocklength
        and shape.count > 0
    )
    if form.kind == "contig" and aligned:
        feasible.append(PLAN_MEMCPY)
    if form.kind == "vector" and aligned:
        feasible.append(PLAN_STRIDED2D)
    feasible.append(PLAN_GATHER)
    feasible.append(PLAN_STACK)
    return feasible


def select_cpu_plan(
    form: CanonicalForm, unit: int, base_offset: int = 0
) -> str:
    """Cheapest feasible CPU pack plan for ``form`` at granularity ``unit``."""
    feasible = _cpu_feasible(form, unit, base_offset)
    return min(feasible, key=lambda p: plan_cost(form, p))


#: GPU gather surcharge per block: CUDA_DEV descriptor emission + upload.
#: The vector/memcpy kernels need no DEV preparation at all (Section 3.1),
#: which is why they win whenever the form admits them.
_GPU_DEV_PREP_COST = 24.0


def feasible_gpu_plans(form: CanonicalForm) -> tuple[str, ...]:
    """Every GPU plan able to execute ``form`` exactly.

    The menu :func:`select_gpu_plan` chooses from by modelled cost, and
    the menu the autotuner (:mod:`repro.tune`) may re-rank by *measured*
    cost — learned history must never make an infeasible plan choosable.
    """
    if form.kind == "empty":
        return (PLAN_MEMCPY,)
    if form.kind == "contig":
        return (PLAN_GATHER, PLAN_MEMCPY)
    if form.kind == "vector":
        return (PLAN_GATHER, PLAN_VECTOR_KERNEL)
    return (PLAN_GATHER,)


def select_gpu_plan(form: CanonicalForm, force_dev: bool = False) -> str:
    """Cheapest feasible GPU pack plan for ``form``.

    ``force_dev`` pins the generic CUDA_DEV path (the paper's ablation
    knob).  The empty form packs zero bytes — call it a memcpy.
    """
    if force_dev:
        return PLAN_GATHER
    if form.kind == "empty":
        return PLAN_MEMCPY

    def cost(plan: str) -> float:
        c = plan_cost(form, plan)
        if plan == PLAN_GATHER:
            c += form.blocks * _GPU_DEV_PREP_COST
        return c

    feasible = [PLAN_GATHER]
    if form.kind == "contig":
        feasible.append(PLAN_MEMCPY)
    elif form.kind == "vector":
        feasible.append(PLAN_VECTOR_KERNEL)
    return min(feasible, key=cost)
