"""Derived datatype constructors and the :class:`Datatype` object.

Mirrors the MPI constructor algebra (MPI-3.1 chapter 4): ``contiguous``,
``vector``/``hvector``, ``indexed``/``hindexed``/``indexed_block``,
``struct``, ``subarray`` and ``resized``.  A datatype must be
:meth:`~Datatype.commit`\\ ted before use; committing flattens the type to
its coalesced span typemap (see :mod:`repro.datatype.typemap`) and
precomputes the properties the engines need — size, extent, signature,
and the uniform-vector description the GPU engine's specialized kernel
consumes when one exists.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Optional, Sequence

import numpy as np

from repro.datatype.primitives import Primitive
from repro.datatype.typemap import Spans, coalesce, concat, tile

__all__ = [
    "Datatype",
    "VectorShape",
    "contiguous",
    "vector",
    "hvector",
    "indexed",
    "hindexed",
    "indexed_block",
    "struct",
    "subarray",
    "resized",
]

# Per-object identity counter.  INTERNAL to repro.datatype: it is unique
# per constructed object, so keying anything on it defeats structural
# sharing, and its value depends on construction order, so nothing
# user-visible may derive from it (use the canonical key / ``display_id``
# instead; ``repro.sanitize.lint`` rule SAN-L004 enforces this outside
# this package).
_type_ids = itertools.count()


class VectorShape:
    """A uniform-vector description: ``count`` blocks of ``blocklength``
    bytes spaced ``stride`` bytes apart starting at ``first_disp``.

    The GPU engine's specialized vector kernel (Section 3.1) handles any
    datatype reducible to this shape without DEV preparation.
    """

    __slots__ = ("count", "blocklength", "stride", "first_disp")

    def __init__(self, count: int, blocklength: int, stride: int, first_disp: int):
        self.count = count
        self.blocklength = blocklength
        self.stride = stride
        self.first_disp = first_disp

    def __repr__(self) -> str:
        return (
            f"VectorShape(count={self.count}, blocklength={self.blocklength}B, "
            f"stride={self.stride}B, first={self.first_disp})"
        )


class Datatype:
    """An MPI datatype (primitive wrapper or derived)."""

    def __init__(
        self,
        kind: str,
        build_spans: Callable[[], Spans],
        size: int,
        lb: int,
        ub: int,
        signature: tuple[tuple[str, int], ...],
        children: Sequence["Datatype"] = (),
        params: Optional[dict] = None,
    ) -> None:
        self.type_id = next(_type_ids)
        self.kind = kind
        self._build_spans = build_spans
        self.size = int(size)  # payload bytes per element of this type
        self.lb = int(lb)
        self.ub = int(ub)
        self.signature = signature
        self.children = tuple(children)
        self.params = params or {}
        self.committed = False
        self._spans: Optional[Spans] = None
        self._contig: Optional[bool] = None
        #: per-(count) caches used by the convertor fast path
        self._gather_cache: dict[tuple[int, int], np.ndarray] = {}
        #: per-count canonical forms (repro.datatype.canonical)
        self._canon_cache: dict = {}

    # -- extent ------------------------------------------------------------
    @property
    def extent(self) -> int:
        return self.ub - self.lb

    @property
    def true_lb(self) -> int:
        return self.spans.true_lb

    @property
    def true_ub(self) -> int:
        return self.spans.true_ub

    @property
    def is_contiguous(self) -> bool:
        """True when one element is a single gap-free span starting at 0."""
        cached = self._contig
        if cached is None:
            s = self.spans
            cached = self._contig = (
                s.count == 1 and int(s.disps[0]) == 0 and int(s.lens[0]) == self.size
            )
        return cached

    # -- commit / typemap ----------------------------------------------------
    def commit(self) -> "Datatype":
        """Flatten and cache the typemap; idempotent, returns self."""
        if not self.committed:
            self._spans = coalesce(self._build_spans())
            if self._spans.size != self.size:
                raise AssertionError(
                    f"{self!r}: typemap size {self._spans.size} != "
                    f"declared size {self.size}"
                )
            self.committed = True
        return self

    @property
    def spans(self) -> Spans:
        if not self.committed:
            raise RuntimeError(f"{self!r} used before commit()")
        assert self._spans is not None
        return self._spans

    def spans_for_count(self, count: int) -> Spans:
        """Typemap of ``count`` consecutive elements (send-count semantics)."""
        return tile(self.spans, count, self.extent)

    # -- uniform-vector detection ------------------------------------------
    def as_vector(self, count: int = 1) -> Optional[VectorShape]:
        """Return the uniform-vector shape of ``count`` elements, if any.

        Delegates to the canonical IR (:mod:`repro.datatype.canonical`),
        which caches the classification per count — so the engines, the
        convertor and the cache key all agree on one normal form.
        """
        from repro.datatype.canonical import canonicalize

        return canonicalize(self, count).vector_shape

    # -- misc -----------------------------------------------------------------
    def granularity(self) -> int:
        """Largest power-of-two byte unit dividing every span disp/len.

        The convertor's gather fast path works at this granularity; 8 for
        double-based types, smaller for packed char structs.
        """
        s = self.spans
        if s.count == 0:
            return 1
        g = int(np.gcd.reduce(np.concatenate([s.disps, s.lens])))
        g = math.gcd(g, 16) if g else 16
        return max(1, g)

    def signature_primitive_count(self) -> int:
        """Total number of primitive elements in the signature."""
        return sum(c for _, c in self.signature)

    # -- introspection (MPI_Type_get_envelope / get_contents analogues) ----
    def envelope(self) -> tuple[str, dict]:
        """The combiner that built this type and its integer arguments."""
        plain = {
            k: v
            for k, v in self.params.items()
            if isinstance(v, (int, str, list, tuple))
        }
        return self.kind, plain

    def dup(self) -> "Datatype":
        """MPI_Type_dup: an identical committed copy with a fresh id."""
        clone = Datatype(
            kind=self.kind,
            build_spans=self._build_spans,
            size=self.size,
            lb=self.lb,
            ub=self.ub,
            signature=self.signature,
            children=self.children,
            params=dict(self.params),
        )
        if self.committed:
            clone.commit()
        return clone

    def describe(self, indent: int = 0) -> str:
        """Readable constructor tree, for debugging and docs."""
        pad = "  " * indent
        kind, env = self.envelope()
        args = ", ".join(
            f"{k}={v}" for k, v in env.items() if not isinstance(v, (list, tuple))
        )
        head = (
            f"{pad}{kind}({args}) size={self.size}B extent={self.extent}B"
        )
        parts = [head]
        seen = set()
        for child in self.children:
            if child.type_id in seen:
                continue
            seen.add(child.type_id)
            parts.append(child.describe(indent + 1))
        return "\n".join(parts)

    @property
    def display_id(self) -> str:
        """Stable short id derived from the canonical key (not the global
        construction counter, whose value depends on test/run ordering)."""
        from repro.datatype.canonical import display_id

        return display_id(self)

    def __repr__(self) -> str:
        return f"Datatype<{self.kind}@{self.display_id}, size={self.size}B>"


def _detect_vector(spans: Spans) -> Optional[VectorShape]:
    """Detect ``count`` equal blocks on a constant stride."""
    n = spans.count
    if n == 0:
        return None
    lens = spans.lens
    first_len = int(lens[0])
    if n == 1:
        return VectorShape(1, first_len, first_len, int(spans.disps[0]))
    if not bool((lens == first_len).all()):
        return None
    d = spans.disps
    stride = int(d[1] - d[0])
    if stride <= 0:
        return None
    if not bool((d[1:] - d[:-1] == stride).all()):
        return None
    return VectorShape(n, first_len, stride, int(d[0]))


# ---------------------------------------------------------------------------
# signature helpers
# ---------------------------------------------------------------------------


def _sig_primitive(p: Primitive, count: int) -> tuple[tuple[str, int], ...]:
    return ((p.mpi_name, count),)


def _sig_repeat(sig: tuple[tuple[str, int], ...], count: int):
    if count == 0 or not sig:
        return ()
    if len(sig) == 1:
        return ((sig[0][0], sig[0][1] * count),)
    return _sig_normalize(sig * count)


def _sig_normalize(sig) -> tuple[tuple[str, int], ...]:
    out: list[list] = []
    for name, cnt in sig:
        if cnt == 0:
            continue
        if out and out[-1][0] == name:
            out[-1][1] += cnt
        else:
            out.append([name, cnt])
    return tuple((n, c) for n, c in out)


def _as_datatype(t: "Datatype | Primitive") -> Datatype:
    if isinstance(t, Datatype):
        return t
    if isinstance(t, Primitive):
        return _primitive_datatype(t)
    raise TypeError(f"expected Datatype or Primitive, got {type(t).__name__}")


_PRIM_CACHE: dict[str, Datatype] = {}


def _primitive_datatype(p: Primitive) -> Datatype:
    if p.mpi_name not in _PRIM_CACHE:
        size = p.size

        def build(size=size) -> Spans:
            return Spans(np.zeros(1, dtype=np.int64), np.full(1, size, np.int64))

        dt = Datatype(
            kind=p.mpi_name,
            build_spans=build,
            size=size,
            lb=0,
            ub=size,
            signature=_sig_primitive(p, 1),
            params={"primitive": p},
        )
        dt.commit()
        _PRIM_CACHE[p.mpi_name] = dt
    return _PRIM_CACHE[p.mpi_name]


# ---------------------------------------------------------------------------
# constructors
# ---------------------------------------------------------------------------


def contiguous(count: int, base: "Datatype | Primitive") -> Datatype:
    """MPI_Type_contiguous."""
    base = _as_datatype(base)
    if count < 0:
        raise ValueError("count must be >= 0")
    ext = base.extent

    def build() -> Spans:
        return tile(base.commit().spans, count, ext)

    lo = min(0, (count - 1) * ext) if count else 0
    hi = max(0, (count - 1) * ext) if count else 0
    return Datatype(
        kind="contiguous",
        build_spans=build,
        size=base.size * count,
        lb=base.lb + lo,
        ub=(base.ub + hi) if count else base.lb,
        signature=_sig_repeat(base.signature, count),
        children=(base,),
        params={"count": count},
    )


def hvector(count: int, blocklength: int, stride_bytes: int, base) -> Datatype:
    """MPI_Type_create_hvector (stride in bytes)."""
    base = _as_datatype(base)
    if count < 0 or blocklength < 0:
        raise ValueError("count/blocklength must be >= 0")
    block = contiguous(blocklength, base)

    def build() -> Spans:
        return tile(block.commit().spans, count, stride_bytes)

    # lb/ub from the extreme placements of the block (handles negative
    # strides: the last block may sit below the first)
    pos = [i * stride_bytes for i in (0, count - 1)] if count else [0]
    lbs = [p + block.lb for p in pos]
    ubs = [p + block.ub for p in pos]
    return Datatype(
        kind="hvector",
        build_spans=build,
        size=block.size * count,
        lb=min(lbs) if count else 0,
        ub=max(ubs) if count else 0,
        signature=_sig_repeat(block.signature, count),
        children=(base,),
        params={
            "count": count,
            "blocklength": blocklength,
            "stride_bytes": stride_bytes,
        },
    )


def vector(count: int, blocklength: int, stride: int, base) -> Datatype:
    """MPI_Type_vector (stride in elements of ``base``)."""
    base = _as_datatype(base)
    dt = hvector(count, blocklength, stride * base.extent, base)
    dt.params["stride"] = stride
    return dt


def hindexed(
    blocklengths: Sequence[int], displacements_bytes: Sequence[int], base
) -> Datatype:
    """MPI_Type_create_hindexed (displacements in bytes)."""
    base = _as_datatype(base)
    if len(blocklengths) != len(displacements_bytes):
        raise ValueError("blocklengths and displacements differ in length")
    bls = np.asarray(blocklengths, dtype=np.int64)
    disps = np.asarray(displacements_bytes, dtype=np.int64)
    if (bls < 0).any():
        raise ValueError("negative blocklength")
    base.commit()
    ext = base.extent

    def build() -> Spans:
        bspans = base.spans
        # Gap-free single-span base (primitives, contiguous doubles, ...):
        # tiling block i always coalesces to the single span
        # (disps[i] + d0, bls[i] * len0), so the whole typemap is two
        # vectorized expressions.  This is the hot path for the paper's
        # triangular/stair types (one block per column) — the per-block
        # tile+coalesce loop below made building an N=4096 triangular
        # type cost hundreds of milliseconds of CPU DEV-emission walk.
        if bspans.count == 1 and int(bspans.lens[0]) == ext:
            keep = bls > 0
            if not keep.any():
                return Spans.empty()
            return coalesce(
                Spans(
                    disps[keep] + int(bspans.disps[0]),
                    bls[keep] * int(bspans.lens[0]),
                )
            )
        parts = []
        # group identical blocklengths to keep this vectorized per distinct bl
        order = np.arange(len(bls))
        blocks: dict[int, Spans] = {}
        for i in order:
            bl = int(bls[i])
            if bl == 0:
                continue
            if bl not in blocks:
                blocks[bl] = tile(base.spans, bl, ext)
            parts.append(blocks[bl].shift(int(disps[i])))
        return coalesce(concat(parts))

    size = int(bls.sum()) * base.size
    if len(bls):
        lbs = disps + base.lb + np.minimum(0, (bls - 1) * ext)
        ubs = disps + base.ub + np.maximum(0, (bls - 1) * ext)
        nonzero = bls > 0
        lb = int(lbs[nonzero].min()) if nonzero.any() else 0
        ub = int(ubs[nonzero].max()) if nonzero.any() else 0
    else:
        lb = ub = 0
    return Datatype(
        kind="hindexed",
        build_spans=build,
        size=size,
        lb=lb,
        ub=ub,
        signature=_sig_repeat(base.signature, int(bls.sum())),
        children=(base,),
        params={"blocklengths": bls, "displacements_bytes": disps},
    )


def indexed(
    blocklengths: Sequence[int], displacements: Sequence[int], base
) -> Datatype:
    """MPI_Type_indexed (displacements in elements of ``base``)."""
    base = _as_datatype(base)
    disps_b = [d * base.extent for d in displacements]
    dt = hindexed(blocklengths, disps_b, base)
    dt.params["displacements"] = np.asarray(displacements, dtype=np.int64)
    return dt


def indexed_block(
    blocklength: int, displacements: Sequence[int], base
) -> Datatype:
    """MPI_Type_create_indexed_block."""
    return indexed([blocklength] * len(displacements), displacements, base)


def struct(
    blocklengths: Sequence[int],
    displacements_bytes: Sequence[int],
    types: Sequence["Datatype | Primitive"],
) -> Datatype:
    """MPI_Type_create_struct."""
    if not (len(blocklengths) == len(displacements_bytes) == len(types)):
        raise ValueError("struct argument lists differ in length")
    dts = [_as_datatype(t).commit() for t in types]
    bls = [int(b) for b in blocklengths]
    disps = [int(d) for d in displacements_bytes]

    def build() -> Spans:
        parts = []
        for bl, disp, dt in zip(bls, disps, dts):
            if bl == 0:
                continue
            parts.append(tile(dt.spans, bl, dt.extent).shift(disp))
        return coalesce(concat(parts))

    size = sum(bl * dt.size for bl, dt in zip(bls, dts))
    lbs, ubs = [], []
    sig: list[tuple[str, int]] = []
    for bl, disp, dt in zip(bls, disps, dts):
        if bl == 0:
            continue
        lbs.append(disp + dt.lb + min(0, (bl - 1) * dt.extent))
        ubs.append(disp + dt.ub + max(0, (bl - 1) * dt.extent))
        sig.extend(_sig_repeat(dt.signature, bl))
    return Datatype(
        kind="struct",
        build_spans=build,
        size=size,
        lb=min(lbs) if lbs else 0,
        ub=max(ubs) if ubs else 0,
        signature=_sig_normalize(sig),
        children=tuple(dts),
        params={"blocklengths": bls, "displacements_bytes": disps},
    )


def subarray(
    sizes: Sequence[int],
    subsizes: Sequence[int],
    starts: Sequence[int],
    base,
    order: str = "C",
) -> Datatype:
    """MPI_Type_create_subarray.

    ``order='F'`` (column-major) matches the paper's ScaLAPACK-style
    sub-matrix workloads; the resulting type's extent is the full array,
    as the MPI standard requires.
    """
    base = _as_datatype(base).commit()
    ndim = len(sizes)
    if not (len(subsizes) == len(starts) == ndim):
        raise ValueError("sizes/subsizes/starts differ in length")
    for d in range(ndim):
        if not (0 <= starts[d] and starts[d] + subsizes[d] <= sizes[d]):
            raise ValueError(f"subarray dim {d} out of bounds")
        if subsizes[d] <= 0:
            raise ValueError("subsizes must be positive")
    if order not in ("C", "F"):
        raise ValueError("order must be 'C' or 'F'")

    # dimension order from fastest-varying to slowest
    dims = list(range(ndim - 1, -1, -1)) if order == "C" else list(range(ndim))
    # element strides per dimension (in elements of base)
    strides = {}
    acc = 1
    for d in dims:
        strides[d] = acc
        acc *= sizes[d]
    total_elems = acc

    inner = _as_datatype(base)
    # innermost contiguous run along the fastest dimension
    fast = dims[0]
    dt: Datatype = contiguous(subsizes[fast], inner)
    for d in dims[1:]:
        dt = hvector(subsizes[d], 1, strides[d] * base.extent, dt)
    start_off = sum(starts[d] * strides[d] for d in range(ndim)) * base.extent
    body = dt

    def build() -> Spans:
        return body.commit().spans.shift(start_off)

    sub_elems = 1
    for s in subsizes:
        sub_elems *= s
    out = Datatype(
        kind="subarray",
        build_spans=build,
        size=base.size * sub_elems,
        lb=0,
        ub=total_elems * base.extent,
        signature=_sig_repeat(base.signature, sub_elems),
        children=(base,),
        params={
            "sizes": list(sizes),
            "subsizes": list(subsizes),
            "starts": list(starts),
            "order": order,
        },
    )
    return out


def resized(base, lb: int, extent: int) -> Datatype:
    """MPI_Type_create_resized."""
    base = _as_datatype(base).commit()

    def build() -> Spans:
        return base.spans

    return Datatype(
        kind="resized",
        build_spans=build,
        size=base.size,
        lb=lb,
        ub=lb + extent,
        signature=base.signature,
        children=(base,),
        params={"lb": lb, "extent": extent},
    )
