"""The stack-based datatype representation and pack/unpack state machine.

This is a faithful reduction of Open MPI's ``opal_convertor``: a datatype
compiles to a linear *program* of descriptors —

* ``ElemDesc(count, blocklen, extent, disp)``: ``count`` contiguous blocks
  of ``blocklen`` bytes, consecutive blocks ``extent`` bytes apart,
  starting ``disp`` bytes from the enclosing frame's base;
* ``LoopDesc(loops, extent, items, disp)`` … ``EndLoopDesc``: repeat the
  enclosed ``items`` descriptors ``loops`` times, advancing the frame base
  by ``extent`` per iteration.

The :class:`StackMachine` walks the program with an explicit stack of
loop frames and can *pause at any byte position* and resume later — the
property Open MPI's fragmentation pipeline depends on, and the one the
paper's CPU stage exploits when it "converts only a part of the datatype"
to overlap DEV preparation with GPU kernels (Section 3.2).

The paper notes that porting this stack walk directly to the GPU
"generates too many conditional operations, which are not GPU friendly" —
hence the two-stage design reproduced in :mod:`repro.gpu_engine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.datatype.ddt import Datatype

__all__ = ["ElemDesc", "LoopDesc", "EndLoopDesc", "compile_datatype", "StackMachine"]


@dataclass(frozen=True)
class ElemDesc:
    count: int  # number of blocks
    blocklen: int  # bytes per block
    extent: int  # byte distance between successive block starts
    disp: int  # byte offset from the enclosing frame base


@dataclass(frozen=True)
class LoopDesc:
    loops: int  # iterations
    extent: int  # frame-base advance per iteration
    items: int  # number of descriptors in the body (excl. EndLoop)
    disp: int  # body base offset for the first iteration


@dataclass(frozen=True)
class EndLoopDesc:
    items: int


Desc = Union[ElemDesc, LoopDesc, EndLoopDesc]


def compile_datatype(dt: Datatype, count: int = 1) -> list[Desc]:
    """Compile ``count`` elements of ``dt`` into a descriptor program."""
    dt.commit()
    body = _compile(dt)
    if count != 1:
        body = _loop(count, dt.extent, body)
    return body


def _loop(loops: int, extent: int, body: list[Desc], disp: int = 0) -> list[Desc]:
    if loops == 1 and disp == 0:
        return body
    # single-ELEM body folds into the ELEM itself when shapes allow
    if len(body) == 1 and isinstance(body[0], ElemDesc):
        e = body[0]
        if e.count == 1:
            return [ElemDesc(loops, e.blocklen, extent, disp + e.disp)]
        if e.count * e.extent == extent or loops == 1:
            pass  # falls through to generic loop
    return [LoopDesc(loops, extent, len(body), disp), *body, EndLoopDesc(len(body))]


def _compile(dt: Datatype) -> list[Desc]:
    kind = dt.kind
    if kind.startswith("MPI_"):
        return [ElemDesc(1, dt.size, dt.size, 0)]
    if kind == "contiguous":
        base = dt.children[0]
        n = dt.params["count"]
        if n == 0:
            return []
        inner = _compile(base)
        if len(inner) == 1 and isinstance(inner[0], ElemDesc):
            e = inner[0]
            # gap-free base: fold the repetition into a longer block
            if e.count == 1 and e.blocklen == base.extent and e.disp == 0:
                return [ElemDesc(1, e.blocklen * n, e.blocklen * n, 0)]
            # strided base: fold into a block run
            if e.count == 1:
                return [ElemDesc(n, e.blocklen, base.extent, e.disp)]
        return _loop(n, base.extent, inner)
    if kind == "hvector":
        base = dt.children[0]
        n = dt.params["count"]
        bl = dt.params["blocklength"]
        stride = dt.params["stride_bytes"]
        if n == 0 or bl == 0:
            return []
        inner = _compile(base)
        if len(inner) == 1 and isinstance(inner[0], ElemDesc):
            e = inner[0]
            if e.count == 1 and e.blocklen == base.extent and e.disp == 0:
                # classic vector of a contiguous base
                return [ElemDesc(n, e.blocklen * bl, stride, 0)]
        block = _loop(bl, base.extent, inner)
        return _loop(n, stride, block)
    if kind == "hindexed":
        base = dt.children[0]
        bls = dt.params["blocklengths"]
        disps = dt.params["displacements_bytes"]
        inner = _compile(base)
        out: list[Desc] = []
        simple = (
            len(inner) == 1
            and isinstance(inner[0], ElemDesc)
            and inner[0].count == 1
            and inner[0].blocklen == base.extent
            and inner[0].disp == 0
        )
        for bl, disp in zip(bls.tolist(), disps.tolist()):
            if bl == 0:
                continue
            if simple:
                out.append(ElemDesc(1, base.extent * bl, base.extent * bl, disp))
            else:
                out.extend(_loop(bl, base.extent, inner, disp=disp))
        return out
    if kind == "struct":
        out = []
        for bl, disp, child in zip(
            dt.params["blocklengths"], dt.params["displacements_bytes"], dt.children
        ):
            if bl == 0:
                continue
            inner = _compile(child)
            out.extend(_loop(bl, child.extent, inner, disp=disp))
        return out
    if kind == "resized":
        return _compile(dt.children[0])
    if kind == "subarray":
        # recompile from the recorded geometry (the body was built from
        # nested hvectors at construction time)
        base = dt.children[0]
        sizes = dt.params["sizes"]
        subsizes = dt.params["subsizes"]
        starts = dt.params["starts"]
        order = dt.params["order"]
        ndim = len(sizes)
        dims = list(range(ndim - 1, -1, -1)) if order == "C" else list(range(ndim))
        strides = {}
        acc = 1
        for d in dims:
            strides[d] = acc
            acc *= sizes[d]
        inner = _compile(base)
        prog: list[Desc]
        if (
            len(inner) == 1
            and isinstance(inner[0], ElemDesc)
            and inner[0].blocklen == base.extent
            and inner[0].disp == 0
        ):
            prog = [
                ElemDesc(
                    1,
                    base.extent * subsizes[dims[0]],
                    base.extent * subsizes[dims[0]],
                    0,
                )
            ]
        else:
            prog = _loop(subsizes[dims[0]], base.extent, inner)
        for d in dims[1:]:
            prog = _loop(subsizes[d], strides[d] * base.extent, prog)
        start_off = sum(starts[d] * strides[d] for d in range(ndim)) * base.extent
        if start_off:
            prog = _loop(1, 0, prog, disp=start_off)
        return prog
    raise NotImplementedError(f"cannot compile datatype kind {kind!r}")


@dataclass
class _Frame:
    pc: int  # index of the LoopDesc
    remaining: int
    base: int  # frame base displacement


class StackMachine:
    """Resumable pack/unpack over a compiled descriptor program.

    ``direction='pack'`` gathers from the described layout into a
    contiguous stream; ``'unpack'`` scatters a contiguous stream back.
    """

    def __init__(
        self,
        program: list[Desc],
        user_bytes: np.ndarray,
        direction: str = "pack",
        base_disp: int = 0,
    ) -> None:
        if direction not in ("pack", "unpack"):
            raise ValueError("direction must be 'pack' or 'unpack'")
        self.program = program
        self.user = user_bytes
        self.direction = direction
        self.base = base_disp
        # execution state
        self.pc = 0
        self.stack: list[_Frame] = []
        self.frame_base = base_disp
        self.block_i = 0  # progress within the current ElemDesc
        self.block_off = 0
        self.bytes_done = 0
        self.finished = not program

    def advance(self, stream: np.ndarray, max_bytes: Optional[int] = None) -> int:
        """Pack into / unpack from ``stream``; returns bytes processed.

        Stops when ``max_bytes`` is reached or the program completes.
        ``stream`` must hold the *next* fragment only — its offset in the
        packed message is implicit in the machine's progress.
        """
        if self.finished:
            return 0
        budget = len(stream) if max_bytes is None else min(max_bytes, len(stream))
        out_pos = 0
        user = self.user
        pack = self.direction == "pack"
        # keep walking zero-cost descriptors (loop bookkeeping) even once
        # the byte budget is exhausted, so an exact-size advance finishes
        while not self.finished:
            desc = self.program[self.pc]
            if isinstance(desc, ElemDesc):
                if budget <= 0 and self.block_i < desc.count:
                    break
                start = self.frame_base + desc.disp
                while self.block_i < desc.count and budget > 0:
                    src0 = start + self.block_i * desc.extent + self.block_off
                    n = min(desc.blocklen - self.block_off, budget)
                    if pack:
                        stream[out_pos : out_pos + n] = user[src0 : src0 + n]
                    else:
                        user[src0 : src0 + n] = stream[out_pos : out_pos + n]
                    out_pos += n
                    budget -= n
                    self.block_off += n
                    if self.block_off == desc.blocklen:
                        self.block_off = 0
                        self.block_i += 1
                if self.block_i == desc.count:
                    self.block_i = 0
                    self._next()
            elif isinstance(desc, LoopDesc):
                if desc.loops == 0:
                    self.pc += desc.items + 2  # skip body and EndLoop
                    self._check_done()
                else:
                    self.stack.append(
                        _Frame(self.pc, desc.loops, self.frame_base)
                    )
                    self.frame_base += desc.disp
                    self.pc += 1
            elif isinstance(desc, EndLoopDesc):
                frame = self.stack[-1]
                frame.remaining -= 1
                if frame.remaining > 0:
                    loop = self.program[frame.pc]
                    assert isinstance(loop, LoopDesc)
                    self.frame_base += loop.extent
                    self.pc = frame.pc + 1
                else:
                    self.stack.pop()
                    loop = self.program[frame.pc]
                    assert isinstance(loop, LoopDesc)
                    self.frame_base = frame.base
                    self._next()
            else:  # pragma: no cover - defensive
                raise AssertionError(f"unknown descriptor {desc!r}")
        self.bytes_done += out_pos
        return out_pos

    def _next(self) -> None:
        self.pc += 1
        self._check_done()

    def _check_done(self) -> None:
        # unwind: if pc runs past the program with an empty stack, finish;
        # inside a loop the EndLoop descriptor handles continuation.
        if self.pc >= len(self.program) and not self.stack:
            self.finished = True
