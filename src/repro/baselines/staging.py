"""The three rejected designs of Figure 1, as runnable coroutines.

Each returns a generator suitable for ``sim.spawn``; all move real bytes
so the ablation benchmarks can verify they produce the same packed stream
as the GPU engine while paying very different simulated costs.

(a) ``whole_region_pack`` — "copy the entire non-contiguous data
    including the gaps from device memory into host memory" and let the
    CPU datatype engine pack.  Fast wire-wise for dense layouts, but
    wastes host memory and PCIe bandwidth proportional to the *extent*,
    and is bounded by CPU pack throughput.
(b) ``per_block_d2h_pack`` — "issue one device-to-host memory copy for
    each piece of contiguous data".  The per-call driver overhead times
    the block count is the killer.
(c) ``per_block_d2d_transfer`` — same, but device-to-device into an
    identically laid-out peer buffer (requires P2P and identical
    layouts).
"""

from __future__ import annotations

from typing import Optional

from repro.datatype.convertor import Convertor
from repro.datatype.ddt import Datatype
from repro.hw.gpu import Gpu
from repro.hw.memory import Buffer
from repro.mpi.proc import MpiProcess

__all__ = ["whole_region_pack", "per_block_d2h_pack", "per_block_d2d_transfer"]


def whole_region_pack(
    proc: MpiProcess, dt: Datatype, count: int, src: Buffer, host_out: Buffer
):
    """Fig 1(a): D2H the whole extent (gaps included), CPU-pack on host.

    ``host_out`` receives the packed stream; a bounce buffer of the full
    extent is allocated (and its size reported via the return value).
    """
    gpu = proc.gpu
    spans = dt.spans_for_count(count)
    lo, hi = spans.true_lb, spans.true_ub
    region = hi - lo
    bounce = proc.node.host_memory.alloc(max(region, 1), label="region-bounce")
    try:
        yield gpu.memcpy_d2h(bounce, src[lo:hi])
        conv = Convertor(dt, count, bounce.bytes, "pack", base_offset=-lo)
        total = dt.size * count

        def move() -> None:
            conv.pack(host_out.bytes[:total])

        yield proc.node.cpu_pack_op(total, fn=move, label="region-cpu-pack")
    finally:
        bounce.free()
    return region  # bounce-buffer bytes consumed — the approach's cost


def per_block_d2h_pack(
    proc: MpiProcess, dt: Datatype, count: int, src: Buffer, host_out: Buffer
):
    """Fig 1(b): one cudaMemcpy D2H per contiguous block.

    The k driver calls serialize on the PCIe FIFO — k per-op overheads
    plus the payload bytes — and the caller only needs the batch as a
    whole, so the whole block list goes through one
    :meth:`~repro.sim.resources.FifoLink.transfer_many`: per-block
    busy-time accounting, but a single future and delivery event.
    """
    gpu = proc.gpu
    spans = dt.spans_for_count(count)
    link = gpu.d2h_link
    disps, lens = spans.disps, spans.lens
    if spans.count:

        def move(_f) -> None:
            pos = 0
            sb = src.bytes
            ob = host_out.bytes
            for d, l in zip(disps.tolist(), lens.tolist()):
                ob[pos : pos + l] = sb[d : d + l]
                pos += l

        fut = link.transfer_many(lens.tolist(), label="per-block-d2h")
        fut.add_callback(move)
        yield fut
    return spans.count


def per_block_d2d_transfer(
    proc: MpiProcess,
    dt: Datatype,
    count: int,
    src: Buffer,
    dst: Buffer,
    peer_gpu: Optional[Gpu] = None,
):
    """Fig 1(c): one D2D copy per block into an identical remote layout."""
    gpu = proc.gpu
    spans = dt.spans_for_count(count)
    if peer_gpu is None or peer_gpu is gpu:
        link = gpu.copy_engine
        call_oh = gpu.params.memcpy_call_overhead
    else:
        link = gpu.p2p_links[peer_gpu.name]
        call_oh = 0.0  # the P2P link's own per-op overhead applies
    disps, lens = spans.disps, spans.lens
    if spans.count:

        def move(_f) -> None:
            sb, db = src.bytes, dst.bytes
            for d, l in zip(disps.tolist(), lens.tolist()):
                db[d : d + l] = sb[d : d + l]

        # each copy pays the engine's per-op overhead plus the memcpy
        # call cost; transfer_many charges both once per block
        fut = link.transfer_many(
            lens.tolist(), label="per-block-d2d", extra_overhead=call_oh
        )
        fut.add_callback(move)
        yield fut
    return spans.count
