"""The three rejected designs of Figure 1, as runnable coroutines.

Each returns a generator suitable for ``sim.spawn``; all move real bytes
so the ablation benchmarks can verify they produce the same packed stream
as the GPU engine while paying very different simulated costs.

(a) ``whole_region_pack`` — "copy the entire non-contiguous data
    including the gaps from device memory into host memory" and let the
    CPU datatype engine pack.  Fast wire-wise for dense layouts, but
    wastes host memory and PCIe bandwidth proportional to the *extent*,
    and is bounded by CPU pack throughput.
(b) ``per_block_d2h_pack`` — "issue one device-to-host memory copy for
    each piece of contiguous data".  The per-call driver overhead times
    the block count is the killer.
(c) ``per_block_d2d_transfer`` — same, but device-to-device into an
    identically laid-out peer buffer (requires P2P and identical
    layouts).
"""

from __future__ import annotations

from typing import Optional

from repro.datatype.convertor import Convertor
from repro.datatype.ddt import Datatype
from repro.hw.gpu import Gpu
from repro.hw.memory import Buffer
from repro.mpi.proc import MpiProcess

__all__ = ["whole_region_pack", "per_block_d2h_pack", "per_block_d2d_transfer"]

#: issuing more small copies than this per message is modeled batched in
#: groups to keep the simulator's Python overhead bounded; the *time*
#: charged is identical (k copies = k overheads + bytes/bw on one FIFO)
_BATCH = 4096


def whole_region_pack(
    proc: MpiProcess, dt: Datatype, count: int, src: Buffer, host_out: Buffer
):
    """Fig 1(a): D2H the whole extent (gaps included), CPU-pack on host.

    ``host_out`` receives the packed stream; a bounce buffer of the full
    extent is allocated (and its size reported via the return value).
    """
    gpu = proc.gpu
    spans = dt.spans_for_count(count)
    lo, hi = spans.true_lb, spans.true_ub
    region = hi - lo
    bounce = proc.node.host_memory.alloc(max(region, 1), label="region-bounce")
    try:
        yield gpu.memcpy_d2h(bounce, src[lo:hi])
        conv = Convertor(dt, count, bounce.bytes, "pack", base_offset=-lo)
        total = dt.size * count

        def move() -> None:
            conv.pack(host_out.bytes[:total])

        yield proc.node.cpu_pack_op(total, fn=move, label="region-cpu-pack")
    finally:
        bounce.free()
    return region  # bounce-buffer bytes consumed — the approach's cost


def per_block_d2h_pack(
    proc: MpiProcess, dt: Datatype, count: int, src: Buffer, host_out: Buffer
):
    """Fig 1(b): one cudaMemcpy D2H per contiguous block."""
    gpu = proc.gpu
    spans = dt.spans_for_count(count)
    link = gpu.d2h_link
    n = spans.count
    disps, lens = spans.disps, spans.lens
    out_off = 0
    last = None
    done = 0
    while done < n:
        batch = slice(done, min(done + _BATCH, n))
        b_disps = disps[batch]
        b_lens = lens[batch]
        nbytes = int(b_lens.sum())
        k = len(b_lens)
        # k driver calls: k per-op overheads + the payload, FIFO on PCIe
        extra = link.overhead * (k - 1)
        off0 = out_off

        def move(b_disps=b_disps, b_lens=b_lens, off0=off0) -> None:
            pos = off0
            sb = src.bytes
            ob = host_out.bytes
            for d, l in zip(b_disps.tolist(), b_lens.tolist()):
                ob[pos : pos + l] = sb[d : d + l]
                pos += l

        fut = link.transfer(nbytes, label="per-block-d2h", extra_overhead=extra)
        fut.add_callback(lambda _f, mv=move: mv())
        last = fut
        out_off += nbytes
        done += k
    if last is not None:
        yield last
    return spans.count


def per_block_d2d_transfer(
    proc: MpiProcess,
    dt: Datatype,
    count: int,
    src: Buffer,
    dst: Buffer,
    peer_gpu: Optional[Gpu] = None,
):
    """Fig 1(c): one D2D copy per block into an identical remote layout."""
    gpu = proc.gpu
    spans = dt.spans_for_count(count)
    if peer_gpu is None or peer_gpu is gpu:
        link = gpu.copy_engine
        call_oh = gpu.params.memcpy_call_overhead
    else:
        link = gpu.p2p_links[peer_gpu.name]
        call_oh = 0.0  # the P2P link's own per-op overhead applies
    disps, lens = spans.disps, spans.lens
    n = spans.count
    last = None
    done = 0
    while done < n:
        batch = slice(done, min(done + _BATCH, n))
        b_disps = disps[batch]
        b_lens = lens[batch]
        k = len(b_lens)
        nbytes = int(b_lens.sum())
        extra = (link.overhead + call_oh) * (k - 1) + call_oh

        def move(b_disps=b_disps, b_lens=b_lens) -> None:
            sb, db = src.bytes, dst.bytes
            for d, l in zip(b_disps.tolist(), b_lens.tolist()):
                db[d : d + l] = sb[d : d + l]

        fut = link.transfer(nbytes, label="per-block-d2d", extra_overhead=extra)
        fut.add_callback(lambda _f, mv=move: mv())
        last = fut
        done += k
    if last is not None:
        yield last
    return spans.count
