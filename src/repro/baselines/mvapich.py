"""MVAPICH2-GDR-style comparator: the vectorization approach.

Reimplements the structure the paper attributes to Wang et al. [1, 16]:
"a vectorization algorithm to convert any type of datatype into a set of
vector datatypes ... each contiguous block in such an indexed datatype is
considered as a single vector type and packed/unpacked separately from
other vectors by its own call to cudaMemcpy2D, increasing the number of
synchronizations ... Moreover, no pipelining or overlap between the
different stages of the datatype conversion is provided" (Section 2.2).

Consequences reproduced here:

* a true ``vector`` datatype → a single ``cudaMemcpy2D`` (decent);
* an ``indexed`` triangular matrix → one ``cudaMemcpy2D`` *per column*
  (driver-call bound — the curves that leave the chart in Fig 10);
* a transpose type → one ``cudaMemcpy2D`` per output column, each with
  thousands of 8-byte rows (row-descriptor bound, Fig 12);
* pack → transfer → unpack strictly serialized (no pipeline);
* data always transits host memory on the inter-node path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datatype.ddt import Datatype
from repro.datatype.typemap import Spans
from repro.mpi.proc import MpiProcess

__all__ = ["VectorRun", "vectorize_spans", "MvapichLikeTransfer"]


@dataclass(frozen=True)
class VectorRun:
    """One vector produced by the vectorization algorithm."""

    first_disp: int
    blocklength: int
    stride: int
    count: int

    @property
    def nbytes(self) -> int:
        return self.blocklength * self.count


def vectorize_spans(spans: Spans) -> list[VectorRun]:
    """Greedy conversion of a span list into maximal vector runs.

    Runs break wherever the block length changes or the displacement
    stops advancing arithmetically — so equal-length evenly-spaced blocks
    fuse into one vector and everything else degenerates to per-block
    vectors, exactly the behaviour the paper criticizes.
    """
    n = spans.count
    if n == 0:
        return []
    d, l = spans.disps, spans.lens
    if n == 1:
        return [VectorRun(int(d[0]), int(l[0]), int(l[0]), 1)]
    d1 = np.diff(d)
    breaks = np.zeros(n, dtype=bool)
    breaks[0] = True
    breaks[1:] |= l[1:] != l[:-1]
    if n > 2:
        breaks[2:] |= d1[1:] != d1[:-1]
    starts = np.flatnonzero(breaks)
    ends = np.append(starts[1:], n)
    runs: list[VectorRun] = []
    for s, e in zip(starts.tolist(), ends.tolist()):
        cnt = e - s
        stride = int(d1[s]) if cnt > 1 else int(l[s])
        runs.append(VectorRun(int(d[s]), int(l[s]), stride, cnt))
    return _merge_runs(runs)


def _merge_runs(runs: list[VectorRun]) -> list[VectorRun]:
    """Fold boundary singletons into the arithmetic run they start.

    The vectorized break detection flags both the first element of a new
    run *and* the element after it (the stride only stabilizes at the
    second gap), leaving a spurious singleton at each run boundary.
    """
    merged: list[VectorRun] = []
    for r in runs:
        if merged:
            p = merged[-1]
            if p.blocklength == r.blocklength:
                gap = r.first_disp - (p.first_disp + (p.count - 1) * p.stride)
                if gap < p.blocklength:
                    merged.append(r)  # would overlap: not a legal pitch
                    continue
                if p.count == 1 and (r.count == 1 or gap == r.stride):
                    stride = r.stride if r.count > 1 else gap
                    merged[-1] = VectorRun(
                        p.first_disp, p.blocklength, stride, r.count + 1
                    )
                    continue
                if p.count > 1 and r.count == 1 and gap == p.stride:
                    merged[-1] = VectorRun(
                        p.first_disp, p.blocklength, p.stride, p.count + 1
                    )
                    continue
        merged.append(r)
    return merged


class MvapichLikeTransfer:
    """One-way non-contiguous GPU transfer, MVAPICH-style.

    A single coordinator coroutine drives sender pack, wire transfer and
    receiver unpack *sequentially* — faithful to the no-overlap design.
    """

    #: beyond this many cudaMemcpy2D calls the remainder is charged as one
    #: batched operation with identical per-call costs (bounded Python
    #: overhead, identical simulated time)
    MAX_MODELED_CALLS = 8192

    def __init__(self, sender: MpiProcess, receiver: MpiProcess) -> None:
        if sender.gpu is None or receiver.gpu is None:
            raise ValueError("MVAPICH baseline models GPU-GPU transfers")
        self.s = sender
        self.r = receiver
        self.same_node = sender.node is receiver.node

    # -- the per-run cudaMemcpy2D stage ---------------------------------------
    def _memcpy2d_stage(
        self,
        proc: MpiProcess,
        runs: list[VectorRun],
        user: np.ndarray,
        stage,
        direction: str,  # "pack": user -> stage, "unpack": stage -> user
        over_pcie: bool,
    ):
        """One synchronous cudaMemcpy2D per vector run (plus sync cost)."""
        gpu = proc.gpu
        stream = gpu.stream("mvapich")
        sync_oh = gpu.params.memcpy_call_overhead  # cudaStreamSynchronize
        if over_pcie:
            link = gpu.d2h_link if direction == "pack" else gpu.h2d_link
            pcie_bw = link.bandwidth
        else:
            link = gpu.copy_engine
            pcie_bw = 0.0
        pos = 0
        for j, run in enumerate(runs):
            duration = gpu.memcpy2d_time(
                run.blocklength, run.count, over_pcie=over_pcie, pcie_bw=pcie_bw
            )
            if j + 1 >= self.MAX_MODELED_CALLS and len(runs) > j + 1:
                rest = runs[j:]
                rest_bytes = sum(r.nbytes for r in rest)
                batched = duration * len(rest)

                def move_rest(rest=rest, pos=pos) -> None:
                    self._move_runs(rest, user, stage, pos, direction)

                yield stream.enqueue(
                    batched + sync_oh * len(rest),
                    fn=move_rest,
                    label="mvapich-memcpy2d-batch",
                    co_links=(link,),
                    nbytes=rest_bytes,
                )
                return

            def move(run=run, pos=pos) -> None:
                self._move_runs([run], user, stage, pos, direction)

            yield stream.enqueue(
                duration + sync_oh,
                fn=move,
                label="mvapich-memcpy2d",
                co_links=(link,),
                nbytes=run.nbytes,
            )
            pos += run.nbytes

    @staticmethod
    def _move_runs(runs, user, stage, pos, direction: str) -> None:
        sv = stage.bytes if hasattr(stage, "bytes") else stage
        for run in runs:
            for i in range(run.count):
                u0 = run.first_disp + i * run.stride
                s0 = pos + i * run.blocklength
                if direction == "pack":
                    sv[s0 : s0 + run.blocklength] = user[u0 : u0 + run.blocklength]
                else:
                    user[u0 : u0 + run.blocklength] = sv[s0 : s0 + run.blocklength]
            pos += run.nbytes

    # -- one-way transfers -------------------------------------------------------
    def transfer(
        self,
        src_buf,
        src_dt: Datatype,
        src_count: int,
        dst_buf,
        dst_dt: Datatype,
        dst_count: int,
    ):
        """Coroutine: move one message sender->receiver, MVAPICH-style."""
        s_spans = src_dt.spans_for_count(src_count)
        r_spans = dst_dt.spans_for_count(dst_count)
        total = s_spans.size
        s_runs = vectorize_spans(s_spans)
        r_runs = vectorize_spans(r_spans)
        if self.same_node:
            yield from self._intra_node(src_buf, s_runs, dst_buf, r_runs, total)
        else:
            yield from self._inter_node(src_buf, s_runs, dst_buf, r_runs, total)
        return total

    def _intra_node(self, src_buf, s_runs, dst_buf, r_runs, total):
        """Pack D2H into a shared host region, unpack H2D — serialized.

        "Both Wang and Jenkins's work require transitioning the packed
        GPU data through host memory, increasing the load on the memory
        bus and imposing a significant sequential overhead on the
        communications" (Section 2.2) — so even intra-node the baseline
        crosses PCIe twice, with no overlap between the stages.
        """
        host_stage = self.s.acquire_staging("host", max(total, 256))
        try:
            yield from self._memcpy2d_stage(
                self.s, s_runs, src_buf.bytes, host_stage, "pack", over_pcie=True
            )
            # handoff through the shared-memory segment (control only; the
            # staging region itself is shared between the processes)
            yield self.s.node.shmem_link.transfer(
                self.s.node.params.am_header_bytes, label="mvapich-handoff"
            )
            yield from self._memcpy2d_stage(
                self.r, r_runs, dst_buf.bytes, host_stage, "unpack", over_pcie=True
            )
        finally:
            self.s.release_staging("host", host_stage)

    def _inter_node(self, src_buf, s_runs, dst_buf, r_runs, total):
        """Pack D2H, send over the wire, unpack H2D — serialized."""
        host_s = self.s.acquire_staging("host", max(total, 256))
        host_r = self.r.acquire_staging("host", max(total, 256))
        try:
            yield from self._memcpy2d_stage(
                self.s, s_runs, src_buf.bytes, host_s, "pack", over_pcie=True
            )
            nic = self.s.node.nic
            yield nic.send(self.r.node.name, total, label="mvapich-wire")
            host_r.bytes[:total] = host_s.bytes[:total]
            yield from self._memcpy2d_stage(
                self.r, r_runs, dst_buf.bytes, host_r, "unpack", over_pcie=True
            )
        finally:
            self.s.release_staging("host", host_s)
            self.r.release_staging("host", host_r)
