"""Comparator implementations.

* :mod:`repro.baselines.staging` — the three rejected designs of Fig 1:
  (a) copy the whole region including gaps and pack on the CPU,
  (b) one ``cudaMemcpy`` D2H per contiguous block,
  (c) one device-to-device copy per contiguous block;
* :mod:`repro.baselines.mvapich` — an MVAPICH2-GDR-style engine built on
  Wang et al.'s vectorization algorithm: any datatype becomes a list of
  vectors, each packed/unpacked with its own synchronous ``cudaMemcpy2D``
  and no pipelining between stages (Section 2.2) — the paper's
  competitive baseline in Figs 10-12.
"""

from repro.baselines.staging import (
    per_block_d2d_transfer,
    per_block_d2h_pack,
    whole_region_pack,
)
from repro.baselines.mvapich import MvapichLikeTransfer, vectorize_spans

__all__ = [
    "whole_region_pack",
    "per_block_d2h_pack",
    "per_block_d2d_transfer",
    "MvapichLikeTransfer",
    "vectorize_spans",
]
