"""Nodes and clusters: hosts, GPUs, intra-node and inter-node transports.

A :class:`Node` owns host memory, a CPU pack engine (the traditional Open
MPI host datatype engine runs here), a PCIe switch with its GPUs, a
shared-memory transport link for intra-node CPU-staged traffic, and a NIC.
A :class:`Cluster` is a set of nodes sharing one simulator and tracer —
the root object every benchmark builds first.
"""

from __future__ import annotations

from typing import Optional

from repro.hw.gpu import Gpu
from repro.hw.memory import Memory, MemoryKind
from repro.hw.nic import Nic
from repro.hw.params import SystemParams, k40_cluster
from repro.hw.pcie import PcieSwitch
from repro.sim.core import Future, Simulator
from repro.sim.resources import FifoLink
from repro.sim.trace import NullTracer, Tracer

__all__ = ["Node", "Cluster"]


class Node:
    """One compute node: host memory + CPUs + GPUs + NIC."""

    def __init__(
        self,
        sim: Simulator,
        params: SystemParams,
        name: str,
        n_gpus: Optional[int] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.params = params
        self.name = name
        self.tracer = tracer
        self.host_memory = Memory(
            f"{name}.host", params.host.memory_capacity, MemoryKind.HOST, owner=self
        )
        self.switch = PcieSwitch(sim, params, name, tracer=tracer)
        self.gpus: list[Gpu] = []
        count = params.gpus_per_node if n_gpus is None else n_gpus
        for i in range(count):
            gpu = Gpu(sim, params.gpu, name=f"{name}.gpu{i}", tracer=tracer)
            gpu.node = self
            self.switch.attach(gpu)
            self.gpus.append(gpu)
        self.nic = Nic(sim, params, name, tracer=tracer)
        #: intra-node shared-memory transport (CPU copy through a shmem
        #: segment) — the non-GPU path of the sm BTL
        self.shmem_link = FifoLink(
            sim,
            f"{name}.shmem",
            bandwidth=params.shmem.bandwidth,
            latency=params.shmem.latency,
            overhead=params.shmem.overhead,
            tracer=tracer,
        )
        #: serializes the host CPU datatype engine (one core per process
        #: would be more faithful; benchmarks here use one flow at a time)
        self.cpu_pack_engine = FifoLink(
            sim,
            f"{name}.cpu_pack",
            bandwidth=params.host.cpu_pack_bw,
            overhead=params.host.cpu_pack_overhead,
            tracer=tracer,
        )
        self.cpu_memcpy_engine = FifoLink(
            sim,
            f"{name}.cpu_memcpy",
            bandwidth=params.host.cpu_memcpy_bw,
            overhead=params.host.cpu_pack_overhead,
            tracer=tracer,
        )
        #: serializes CPU-side DEV preparation (the GPU engine's stage 1);
        #: durations are charged as per-op overheads, so bandwidth is moot
        self.cpu_prep_engine = FifoLink(
            sim, f"{name}.cpu_prep", bandwidth=1e15, tracer=tracer
        )

    def cpu_pack_op(self, nbytes: int, fn=None, label: str = "cpu_pack") -> Future:
        """Charge a CPU pack/unpack of ``nbytes``; run ``fn`` at completion.

        ``fn`` is chained as the transfer future's *first* callback, so it
        runs before any waiter added afterwards resumes — same ordering
        as the old wrapper future, one allocation and zero extra events
        cheaper.
        """
        fut = self.cpu_pack_engine.transfer(nbytes, label=label)
        if fn is not None:
            fut.add_callback(lambda _f: fn())
        return fut

    def cpu_memcpy_op(self, nbytes: int, fn=None, label: str = "cpu_memcpy") -> Future:
        """Charge a plain CPU memcpy; run ``fn`` at completion."""
        fut = self.cpu_memcpy_engine.transfer(nbytes, label=label)
        if fn is not None:
            fut.add_callback(lambda _f: fn())
        return fut

    def __repr__(self) -> str:
        return f"Node({self.name}, {len(self.gpus)} GPUs)"


class Cluster:
    """A set of nodes on one simulated clock.

    >>> cluster = Cluster(n_nodes=2, gpus_per_node=2)
    >>> gpu = cluster.nodes[0].gpus[0]
    """

    def __init__(
        self,
        n_nodes: int = 1,
        gpus_per_node: int = 2,
        params: Optional[SystemParams] = None,
        trace: bool = False,
        sim: Optional[Simulator] = None,
    ) -> None:
        self.params = params or k40_cluster()
        #: ``sim`` lets a caller supply the clock — the schedule
        #: explorer (repro.sanitize.verify.explore) injects a seeded
        #: perturbed simulator; everyone else gets a fresh default
        self.sim = sim if sim is not None else Simulator()
        #: always a tracer object — a :class:`NullTracer` when disabled —
        #: so consumers never need a None guard
        self.tracer: Tracer = Tracer() if trace else NullTracer()
        self.nodes = [
            Node(
                self.sim,
                self.params,
                name=f"node{i}",
                n_gpus=gpus_per_node,
                tracer=self.tracer,
            )
            for i in range(n_nodes)
        ]

    def node(self, i: int) -> Node:
        """The i-th node."""
        return self.nodes[i]

    def gpu(self, node: int, gpu: int) -> Gpu:
        """GPU ``gpu`` of node ``node``."""
        return self.nodes[node].gpus[gpu]

    def __repr__(self) -> str:
        return f"Cluster({len(self.nodes)} nodes x {len(self.nodes[0].gpus)} GPUs)"
