"""PCI-Express fabric model.

Each GPU hangs off the switch with a dedicated x16 port, modeled as two
independent FIFO directions (H2D and D2H) so full-duplex traffic overlaps
but same-direction traffic serializes — the property behind the paper's
observation that "packed GPU data always goes through PCI-E ... thus PCI-E
bandwidth could be a bottleneck of overall communication" (Section 5.2).

Peer-to-peer (CUDA IPC / GPUDirect P2P) paths get their own links per
ordered GPU pair, with the slightly higher GPU-GPU bandwidth the paper
cites from [18].
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.hw.params import LinkParams, SystemParams
from repro.sim.core import Simulator
from repro.sim.resources import FifoLink
from repro.sim.trace import Tracer

if TYPE_CHECKING:
    from repro.hw.gpu import Gpu

__all__ = ["PcieSwitch"]


class PcieSwitch:
    """Wires a node's GPUs to the host and to each other."""

    def __init__(
        self,
        sim: Simulator,
        params: SystemParams,
        node_name: str,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.params = params
        self.node_name = node_name
        self.tracer = tracer
        self._gpus: list["Gpu"] = []

    def _mk(self, name: str, lp: LinkParams) -> FifoLink:
        return FifoLink(
            self.sim,
            name,
            bandwidth=lp.bandwidth,
            latency=lp.latency,
            overhead=lp.overhead,
            tracer=self.tracer,
        )

    def attach(self, gpu: "Gpu") -> None:
        """Give the GPU its H2D/D2H ports and P2P paths to earlier GPUs."""
        p = self.params
        gpu.h2d_link = self._mk(f"{self.node_name}.pcie.h2d.{gpu.name}", p.pcie_h2d)
        gpu.d2h_link = self._mk(f"{self.node_name}.pcie.d2h.{gpu.name}", p.pcie_d2h)
        for other in self._gpus:
            fwd = self._mk(
                f"{self.node_name}.pcie.p2p.{other.name}->{gpu.name}", p.pcie_p2p
            )
            back = self._mk(
                f"{self.node_name}.pcie.p2p.{gpu.name}->{other.name}", p.pcie_p2p
            )
            other.p2p_links[gpu.name] = fwd
            gpu.p2p_links[other.name] = back
        self._gpus.append(gpu)

    @property
    def gpus(self) -> list["Gpu"]:
        return list(self._gpus)
