"""Byte-addressable simulated memories and buffer handles.

A :class:`Memory` is a named arena with *logical* capacity bookkeeping
(allocations fail when the device would be out of memory) whose storage is
materialized lazily: each allocation owns a NumPy ``uint8`` array, so a
12 GB simulated GPU costs nothing until buffers are actually allocated.

A :class:`Buffer` is a (allocation, offset, size) handle — the moral
equivalent of a device pointer, supporting pointer arithmetic via slicing.
All data movement in the package ultimately reads/writes :class:`Buffer`
contents, which keeps the reproduction honest: a protocol bug shows up as
wrong bytes on the receiver, not just a wrong simulated time.
"""

from __future__ import annotations

import enum
import itertools
from typing import Iterator, Optional

import numpy as np

from repro.sanitize import runtime as _san

__all__ = ["MemoryKind", "OutOfMemory", "Memory", "Allocation", "Buffer"]


class MemoryKind(enum.Enum):
    """Where a buffer physically lives (drives protocol selection)."""

    HOST = "host"
    HOST_PINNED = "host_pinned"
    DEVICE = "device"
    MANAGED = "managed"

    @property
    def is_device(self) -> bool:
        return self is MemoryKind.DEVICE

    @property
    def is_host(self) -> bool:
        return self in (MemoryKind.HOST, MemoryKind.HOST_PINNED)


_HOST_KINDS = (MemoryKind.HOST, MemoryKind.HOST_PINNED)


class OutOfMemory(MemoryError):
    """Raised when an arena cannot satisfy an allocation."""


_alloc_ids = itertools.count()


class Allocation:
    """One materialized block inside a :class:`Memory`."""

    __slots__ = (
        "memory",
        "alloc_id",
        "nbytes",
        "requested_nbytes",
        "data",
        "freed",
        "label",
    )

    def __init__(
        self,
        memory: "Memory",
        nbytes: int,
        label: str = "",
        requested_nbytes: Optional[int] = None,
    ) -> None:
        self.memory = memory
        self.alloc_id = next(_alloc_ids)
        #: the *rounded* size — in-use accounting charges and refunds this
        #: field on both sides, so alignment slack can never leak
        self.nbytes = nbytes
        #: the caller-requested (pre-rounding) size; bytes beyond it are
        #: the alignment redzone
        self.requested_nbytes = nbytes if requested_nbytes is None else requested_nbytes
        self.data = np.zeros(nbytes, dtype=np.uint8)
        self.freed = False
        self.label = label

    def __repr__(self) -> str:
        return f"Allocation(#{self.alloc_id}, {self.nbytes}B in {self.memory.name})"


class Memory:
    """A fixed-capacity arena; allocations are lazily materialized."""

    #: allocation granularity — mimics CUDA's 256-byte alignment guarantee
    ALIGNMENT = 256

    def __init__(
        self,
        name: str,
        capacity: int,
        kind: MemoryKind,
        owner: Optional[object] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"memory {name!r}: capacity must be positive")
        self.name = name
        self.capacity = int(capacity)
        self.kind = kind
        self.owner = owner  # the Gpu or Node this arena belongs to
        self.bytes_in_use = 0
        self.peak_bytes_in_use = 0
        self.live_allocations = 0

    def alloc(self, nbytes: int, label: str = "") -> "Buffer":
        """Allocate ``nbytes`` (rounded up to the arena alignment)."""
        if nbytes <= 0:
            raise ValueError(f"memory {self.name!r}: allocation must be positive")
        rounded = -(-nbytes // self.ALIGNMENT) * self.ALIGNMENT
        if self.bytes_in_use + rounded > self.capacity:
            raise OutOfMemory(
                f"memory {self.name!r}: cannot allocate {nbytes} bytes "
                f"({self.bytes_in_use}/{self.capacity} in use)"
            )
        self.bytes_in_use += rounded
        self.peak_bytes_in_use = max(self.peak_bytes_in_use, self.bytes_in_use)
        self.live_allocations += 1
        allocation = Allocation(self, rounded, label=label, requested_nbytes=nbytes)
        if _san.MEM is not None:
            _san.MEM.on_alloc(allocation)
        return Buffer(allocation, 0, nbytes, label=label)

    def free(self, allocation: Allocation) -> None:
        """Return an allocation's bytes to the arena (double-free checked)."""
        if allocation.memory is not self:
            raise ValueError(f"allocation {allocation!r} not from {self.name!r}")
        if allocation.freed:
            raise ValueError(f"double free of {allocation!r}")
        allocation.freed = True
        self.bytes_in_use -= allocation.nbytes
        self.live_allocations -= 1
        if _san.MEM is not None:
            _san.MEM.on_free(allocation)

    @property
    def bytes_free(self) -> int:
        return self.capacity - self.bytes_in_use

    def __repr__(self) -> str:
        return (
            f"Memory({self.name!r}, kind={self.kind.value}, "
            f"{self.bytes_in_use}/{self.capacity}B used)"
        )


class Buffer:
    """A handle to a contiguous byte range inside an :class:`Allocation`.

    Supports pointer arithmetic via slicing: ``buf[16:32]`` is a sub-buffer
    aliasing the same bytes (no copy), like ``ptr + 16``.
    """

    __slots__ = ("allocation", "offset", "nbytes", "label")

    def __init__(
        self, allocation: Allocation, offset: int, nbytes: int, label: str = ""
    ):
        if offset < 0 or offset + nbytes > allocation.nbytes:
            raise ValueError(
                f"buffer [{offset}, {offset + nbytes}) outside allocation "
                f"of {allocation.nbytes} bytes"
            )
        self.allocation = allocation
        self.offset = offset
        self.nbytes = nbytes
        self.label = label
        if _san.MEM is not None:
            _san.MEM.on_buffer(self)

    # -- placement predicates -------------------------------------------
    @property
    def memory(self) -> Memory:
        return self.allocation.memory

    @property
    def kind(self) -> MemoryKind:
        return self.memory.kind

    # flat attribute walks (not chained properties): these predicates sit
    # on every protocol-selection path
    @property
    def is_device(self) -> bool:
        return self.allocation.memory.kind is MemoryKind.DEVICE

    @property
    def is_host(self) -> bool:
        return self.allocation.memory.kind in _HOST_KINDS

    @property
    def device(self) -> Optional[object]:
        """The owning GPU for device/managed memory, else None."""
        return self.memory.owner if not self.is_host else None

    # -- data access -------------------------------------------------------
    @property
    def bytes(self) -> np.ndarray:
        """A mutable ``uint8`` view of the buffer's contents."""
        if self.allocation.freed:
            if _san.MEM is not None:
                _san.MEM.on_use_after_free(self)
            raise ValueError(f"use after free: {self!r}")
        if _san.MEM is not None:
            _san.MEM.on_touch(self)
        return self.allocation.data[self.offset : self.offset + self.nbytes]

    def view(self, dtype: np.dtype | str) -> np.ndarray:
        """Reinterpret the whole buffer as an array of ``dtype``."""
        dt = np.dtype(dtype)
        if self.nbytes % dt.itemsize:
            raise ValueError(
                f"buffer of {self.nbytes} bytes not divisible by "
                f"{dt.itemsize}-byte items"
            )
        return self.bytes.view(dt)

    def fill(self, value: int) -> None:
        """Set every byte of the buffer to ``value``."""
        self.bytes[:] = value

    def write(self, array: np.ndarray, at: int = 0) -> None:
        """Copy a NumPy array's bytes into the buffer at byte offset ``at``."""
        raw = np.ascontiguousarray(array).view(np.uint8).reshape(-1)
        if at + raw.nbytes > self.nbytes:
            raise ValueError("write overruns buffer")
        self.bytes[at : at + raw.nbytes] = raw

    def read(self, dtype: np.dtype | str, count: int, at: int = 0) -> np.ndarray:
        """Copy out ``count`` items of ``dtype`` starting at byte ``at``."""
        dt = np.dtype(dtype)
        end = at + count * dt.itemsize
        if end > self.nbytes:
            raise ValueError("read overruns buffer")
        return self.bytes[at:end].view(dt).copy()

    # -- pointer arithmetic ------------------------------------------------
    def __getitem__(self, key: slice) -> "Buffer":
        if not isinstance(key, slice) or key.step not in (None, 1):
            raise TypeError("buffers only support contiguous slices")
        start, stop, _ = key.indices(self.nbytes)
        return Buffer(
            self.allocation, self.offset + start, stop - start, label=self.label
        )

    def split(self, chunk: int) -> Iterator["Buffer"]:
        """Yield consecutive sub-buffers of at most ``chunk`` bytes."""
        if chunk <= 0:
            raise ValueError("chunk must be positive")
        for lo in range(0, self.nbytes, chunk):
            yield self[lo : min(lo + chunk, self.nbytes)]

    def free(self) -> None:
        """Free the underlying allocation.

        Only the original whole-allocation handle may free: freeing a
        sub-buffer would silently release bytes other live handles still
        alias.
        """
        if self.offset != 0 or self.nbytes != self.allocation.requested_nbytes:
            raise ValueError(
                f"cannot free sub-buffer {self!r} (allocation spans "
                f"[0, {self.allocation.requested_nbytes})); free() must be "
                f"called on the original allocation handle"
            )
        self.memory.free(self.allocation)

    def __len__(self) -> int:
        return self.nbytes

    def __repr__(self) -> str:
        tag = f" {self.label!r}" if self.label else ""
        return (
            f"Buffer({self.memory.name}#{self.allocation.alloc_id}"
            f"[{self.offset}:{self.offset + self.nbytes}]{tag})"
        )
