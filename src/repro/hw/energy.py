"""Dynamic-energy accounting over traced resource occupancy.

The paper motivates GPU offload partly by efficiency: the engine design
aims "not only to minimize the overheads but also to decrease the overall
energy consumption" (Section 1), with no quantitative figure.  As an
extension, this module attributes *dynamic* energy to each traced
resource — ``E = P_active x busy_time`` — so configurations can be
compared: e.g. a CPU-packed transfer keeps a ~100 W socket busy for
seconds that a GPU kernel finishes in milliseconds at ~235 W.

This is deliberately simple (no DVFS, no static power, no race-to-idle
credit); it supports the qualitative claim only, as DESIGN.md records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.trace import Tracer

__all__ = ["PowerRatings", "EnergyReport", "energy_report"]


@dataclass(frozen=True)
class PowerRatings:
    """Active (dynamic) power draw per resource class, in watts."""

    gpu_kernel: float = 235.0  # K40 board power with SMs at load
    gpu_dma: float = 25.0  # copy-engine DMA, SMs idle
    pcie: float = 8.0
    nic: float = 12.0
    cpu_core: float = 25.0  # one Ivy Bridge core at load
    shmem: float = 20.0  # CPU-driven double copy through shared memory

    def classify(self, resource: str) -> float:
        """Map a traced resource name to its power rating.

        Order matters: link names embed GPU names (``pcie.h2d.node0.gpu0``),
        so transports are recognized before compute resources.
        """
        if "pcie" in resource:
            return self.pcie
        if resource.startswith("ib.") or ".ib" in resource:
            return self.nic
        if "cpu" in resource:
            return self.cpu_core
        if "shmem" in resource:
            return self.shmem
        if "dtengine" in resource:
            return self.gpu_kernel  # pack/unpack kernels (SMs active)
        if resource.endswith(".ce"):
            # the in-device engine's spans echo work already billed on the
            # issuing stream (co-occupancy): count it once, there
            return 0.0
        if "stream" in resource:
            return self.gpu_dma  # memcpy traffic, SMs idle
        if ".gpu" in resource:
            return self.gpu_kernel
        return 0.0


@dataclass
class EnergyReport:
    """Per-resource and total dynamic energy, in joules."""

    per_resource: dict[str, float] = field(default_factory=dict)

    @property
    def total_joules(self) -> float:
        return sum(self.per_resource.values())

    def by_class(self) -> dict[str, float]:
        """Aggregate by coarse resource class (gpu/pcie/nic/cpu/other)."""
        out: dict[str, float] = {}
        for name, joules in self.per_resource.items():
            if "pcie" in name:
                key = "pcie"
            elif name.startswith("ib."):
                key = "nic"
            elif "cpu" in name:
                key = "cpu"
            elif "shmem" in name:
                key = "shmem"
            else:
                key = "gpu"
            out[key] = out.get(key, 0.0) + joules
        return out

    def render(self) -> str:
        """Per-class energy breakdown as plain text."""
        lines = ["dynamic energy (J):"]
        for k, v in sorted(self.by_class().items()):
            lines.append(f"  {k:6s} {v * 1e3:10.3f} mJ")
        lines.append(f"  {'total':6s} {self.total_joules * 1e3:10.3f} mJ")
        return "\n".join(lines)


def energy_report(
    tracer: Tracer, ratings: PowerRatings | None = None
) -> EnergyReport:
    """Attribute dynamic energy to every traced resource."""
    ratings = ratings or PowerRatings()
    report = EnergyReport()
    for resource in tracer.resources():
        power = ratings.classify(resource)
        if power <= 0:
            continue
        report.per_resource[resource] = power * tracer.busy_time(resource)
    return report
