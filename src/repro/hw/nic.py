"""Network interface model (FDR InfiniBand class).

A :class:`Nic` owns one transmit link per destination node (established
lazily), so concurrent flows to different nodes share nothing while flows
to the same destination serialize.  This is coarse but preserves the
property the inter-node experiments rely on: the wire is a single ~6.8 GB/s
FIFO pipe with microsecond latency.

GPUDirect RDMA is represented as a capability flag plus a bandwidth ceiling
for large messages: the paper (citing [14]) notes direct GPU-NIC transfers
only win below ~30 KB, which is why the integrated protocols stage large
messages through host memory.  The flag lets benchmarks demonstrate that
crossover.
"""

from __future__ import annotations

from typing import Optional

from repro.hw.params import LinkParams, SystemParams
from repro.sim.core import Future, Simulator
from repro.sim.resources import FifoLink
from repro.sim.trace import Tracer

__all__ = ["Nic"]


class Nic:
    """One HCA per node."""

    def __init__(
        self,
        sim: Simulator,
        params: SystemParams,
        node_name: str,
        tracer: Optional[Tracer] = None,
        gpudirect_rdma: bool = True,
        gpudirect_large_bw_fraction: float = 0.35,
        gpudirect_crossover_bytes: int = 30 * 1024,
    ) -> None:
        self.sim = sim
        self.params = params
        self.node_name = node_name
        self.tracer = tracer
        self.gpudirect_rdma = gpudirect_rdma
        #: large GPUDirect RDMA reads run at a fraction of wire speed
        #: (PCIe read latency to device memory is not pipelined well)
        self.gpudirect_large_bw_fraction = gpudirect_large_bw_fraction
        self.gpudirect_crossover_bytes = gpudirect_crossover_bytes
        self._tx: dict[str, FifoLink] = {}

    def link_to(self, other_node: str) -> FifoLink:
        """The (lazily created) transmit link toward a destination node."""
        if other_node not in self._tx:
            lp: LinkParams = self.params.ib
            self._tx[other_node] = FifoLink(
                self.sim,
                f"ib.{self.node_name}->{other_node}",
                bandwidth=lp.bandwidth,
                latency=lp.latency,
                overhead=lp.overhead,
                tracer=self.tracer,
            )
        return self._tx[other_node]

    def send(
        self,
        dst_node: str,
        nbytes: int,
        payload=None,
        label: str = "ib.send",
        gpudirect: bool = False,
    ) -> Future:
        """Transmit ``nbytes`` to ``dst_node``; resolves at delivery."""
        link = self.link_to(dst_node)
        extra = 0.0
        if gpudirect and nbytes > self.gpudirect_crossover_bytes:
            # effective slowdown: stretch occupancy to the degraded rate
            full = nbytes / link.bandwidth
            degraded = nbytes / (link.bandwidth * self.gpudirect_large_bw_fraction)
            extra = degraded - full
        return link.transfer(nbytes, payload=payload, label=label, extra_overhead=extra)
