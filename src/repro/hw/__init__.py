"""Simulated hardware: memories, GPUs, PCIe, NICs, nodes, clusters.

The hardware layer has two responsibilities that are kept deliberately
coupled:

1. **Function** — device and host memories are real NumPy-backed byte
   arenas; copies and kernels move real bytes, so the datatype engines on
   top can be validated bit-for-bit.
2. **Time** — every operation charges a modeled duration to a simulated
   resource (a GPU stream/SM array, a PCIe direction, a NIC port), so the
   paper's bandwidth and overlap phenomena are reproduced on the simulated
   clock.
"""

from repro.hw.memory import Buffer, Memory, MemoryKind, OutOfMemory
from repro.hw.params import GpuParams, HostParams, LinkParams, SystemParams, k40_cluster
from repro.hw.gpu import Gpu, KernelStats
from repro.hw.pcie import PcieSwitch
from repro.hw.nic import Nic
from repro.hw.node import Cluster, Node

__all__ = [
    "Buffer",
    "Memory",
    "MemoryKind",
    "OutOfMemory",
    "GpuParams",
    "HostParams",
    "LinkParams",
    "SystemParams",
    "k40_cluster",
    "Gpu",
    "KernelStats",
    "PcieSwitch",
    "Nic",
    "Cluster",
    "Node",
]
