"""Simulated GPU: streams, copy engines, and the kernel cost model.

The cost model reproduces the paper's GPU-side phenomena mechanically:

* **Contiguous copies** (``cudaMemcpy`` D2D) run at the practical peak
  ``copy_peak_bw`` — the paper's reference "practical peak of GPU memory
  bandwidth" (Fig 6's ``C-cudaMemcpy`` line).
* **Pack/unpack kernels** move 8 bytes per thread per iteration.  Work is
  charged at *iteration granularity*: a CUDA block of ``threads_per_block``
  threads retires ``threads_per_block * 8`` bytes per iteration whether or
  not every thread has useful work.  A work unit smaller than one block
  iteration therefore still costs a full iteration — this is exactly the
  *occupancy* effect the paper measures: the lower triangular matrix's
  ragged columns leave threads idle and land at ~80 % of peak, while the
  vector type and the stair-triangular (block-size-aligned) variant reach
  ~94 % (Fig 6 / Fig 5).
* **Launch and driver-call overheads** are fixed costs; they are what
  makes one-memcpy-per-block strategies (Fig 1 b/c, MVAPICH's vectorized
  indexed types) collapse for many-block datatypes.
* **Grid throttling**: with ``g`` CUDA blocks granted, kernel bandwidth is
  capped at ``g * warps_per_block * per_warp_bw`` — Section 5.3's "minimal
  GPU resources" experiment walks this curve until it crosses PCIe
  bandwidth.
* **Contention**: a co-running application (Section 5.4) scales available
  bandwidth and SMs by ``1 - contention``.

Functionally, every operation moves real bytes between :class:`Buffer`
objects when its completion event fires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.hw.memory import Buffer, Memory, MemoryKind
from repro.hw.params import GpuParams
from repro.sanitize import runtime as _san
from repro.sim.core import Future, Simulator
from repro.sim.resources import FifoLink
from repro.sim.trace import Tracer

__all__ = ["Gpu", "Stream", "KernelStats"]


@dataclass(frozen=True)
class KernelStats:
    """Timing breakdown of a modeled kernel, for bandwidth reporting."""

    payload_bytes: int
    charged_bytes: int
    n_units: int
    launch_time: float
    transfer_time: float
    overhead_time: float

    @property
    def total_time(self) -> float:
        return self.launch_time + self.transfer_time + self.overhead_time

    @property
    def efficiency(self) -> float:
        """Payload bytes / charged bytes (occupancy/coalescing efficiency)."""
        if self.charged_bytes == 0:
            return 1.0
        return self.payload_bytes / self.charged_bytes


class Stream:
    """A CUDA stream: a FIFO timeline of kernel/copy operations.

    Operations may *co-occupy* other FIFO links (a PCIe direction, the
    device copy engine) so that concurrent streams contend realistically.
    """

    def __init__(self, gpu: "Gpu", name: str) -> None:
        self.gpu = gpu
        self.sim = gpu.sim
        self.name = name
        self._busy_until = 0.0
        self.ops = 0

    @property
    def busy_until(self) -> float:
        return self._busy_until

    @property
    def _san_actor(self) -> str:
        return f"{self.gpu.name}.{self.name}"

    def enqueue(
        self,
        duration: float,
        fn: Optional[Callable[[], None]] = None,
        label: str = "",
        co_links: Sequence[FifoLink] = (),
        nbytes: int = 0,
        payload=None,
        reads: Sequence = (),
        writes: Sequence = (),
    ) -> Future:
        """Schedule an operation of ``duration`` seconds on this stream.

        The operation starts when the stream *and* all co-occupied links
        are free; ``fn`` (the actual byte movement) runs at completion.

        ``reads``/``writes`` declare the Buffer ranges the operation
        touches (``Buffer`` or ``(Buffer, lo, hi)``) for the race
        detector; they are ignored unless it is enabled.
        """
        if duration < 0:
            raise ValueError(f"stream {self.name}: negative duration")
        start = max(self.sim.now, self._busy_until)
        for link in co_links:
            start = max(start, link.busy_until)
        end = start + duration
        self._busy_until = end
        for link in co_links:
            link.occupy_until(end, nbytes=nbytes, label=label)
        self.ops += 1
        if self.gpu.tracer:
            self.gpu.tracer.record(
                f"{self.gpu.name}.{self.name}", start, end, label, nbytes
            )
        fut = Future(self.sim, label=label or f"{self.gpu.name}.{self.name}.op")
        if _san.RACE is not None:
            # launch order is an HB edge into the stream; the completion
            # future carries the stream's clock (incl. these accesses) out
            fut._san_snap = _san.RACE.stream_op(
                self._san_actor, reads, writes, label=label or "stream-op"
            )

        def complete() -> None:
            if fn is not None:
                fn()
            fut.resolve(payload)

        self.sim.call_at(end, complete)
        return fut

    def synchronize(self) -> Future:
        """A future resolving when everything queued so far has finished."""
        fut = Future(self.sim, label=f"{self.name}.sync")
        if _san.RACE is not None:
            # sync waits for all queued work: waiter inherits the stream clock
            fut._san_snap = _san.RACE.actor_snapshot(self._san_actor)
        self.sim.call_at(max(self.sim.now, self._busy_until), fut.resolve)
        return fut


class Gpu:
    """One simulated GPU device."""

    def __init__(
        self,
        sim: Simulator,
        params: GpuParams,
        name: str = "gpu0",
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.params = params
        self.name = name
        self.tracer = tracer
        self.memory = Memory(f"{name}.mem", params.memory_capacity, MemoryKind.DEVICE, owner=self)
        #: fraction of the GPU consumed by a co-running application (S5.4)
        self.contention = 0.0
        #: in-device copy engine shared by all streams for D2D traffic
        self.copy_engine = FifoLink(
            sim, f"{name}.ce", params.copy_peak_bw, latency=0.0, overhead=0.0,
            tracer=tracer,
        )
        # Host<->device and peer links are wired by the Node.
        self.h2d_link: Optional[FifoLink] = None
        self.d2h_link: Optional[FifoLink] = None
        self.p2p_links: dict[str, FifoLink] = {}
        self.node = None  # set by Node
        self._streams: dict[str, Stream] = {}
        self.default_stream = self.stream("stream0")

    # -- streams ------------------------------------------------------------
    def stream(self, name: str) -> Stream:
        """Get or create a named stream."""
        if name not in self._streams:
            self._streams[name] = Stream(self, name)
        return self._streams[name]

    # -- throughput model ------------------------------------------------------
    def _avail(self) -> float:
        return max(1e-9, 1.0 - self.contention)

    def kernel_bandwidth(self, grid_blocks: Optional[int] = None) -> float:
        """Achievable pack-kernel payload bandwidth for a given grid size."""
        p = self.params
        if grid_blocks is None:
            grid_blocks = p.default_grid_blocks
        warps = grid_blocks * p.warps_per_block
        peak = p.copy_peak_bw * p.kernel_peak_fraction
        return min(peak, warps * p.per_warp_bw) * self._avail()

    def copy_bandwidth(self) -> float:
        """Contiguous-copy bandwidth under the current contention."""
        return self.params.copy_peak_bw * self._avail()

    # -- kernel cost model -------------------------------------------------
    def dev_kernel_stats(
        self,
        unit_lens: np.ndarray,
        grid_blocks: Optional[int] = None,
    ) -> KernelStats:
        """Cost of the generic DEV pack/unpack kernel over CUDA_DEV units.

        Each unit is retired in whole block iterations of
        ``threads_per_block * bytes_per_thread`` bytes; partially filled
        iterations idle the remaining threads (occupancy loss).
        """
        p = self.params
        if grid_blocks is None:
            grid_blocks = p.default_grid_blocks
        unit_lens = np.asarray(unit_lens, dtype=np.int64)
        n_units = int(unit_lens.size)
        payload = int(unit_lens.sum()) if n_units else 0
        block_iter = p.threads_per_block * p.bytes_per_thread
        iters = -(-unit_lens // block_iter) if n_units else unit_lens
        charged = int(iters.sum()) * block_iter if n_units else 0
        bw = self.kernel_bandwidth(grid_blocks)
        transfer = charged / bw if charged else 0.0
        # each block serially fetches its units from the CUDA_DEV array
        overhead = (n_units / max(1, grid_blocks)) * p.dev_unit_overhead
        overhead /= self._avail()
        return KernelStats(
            payload_bytes=payload,
            charged_bytes=charged,
            n_units=n_units,
            launch_time=p.kernel_launch_overhead,
            transfer_time=transfer,
            overhead_time=overhead,
        )

    def vector_kernel_stats(
        self,
        count: float,
        blocklength_bytes: int,
        grid_blocks: Optional[int] = None,
        aligned: bool = True,
    ) -> KernelStats:
        """Cost of the specialized vector pack/unpack kernel.

        Rows (contiguous blocks) are consumed at *warp* granularity —
        32 threads x 8 B per iteration — so small or ragged rows waste at
        most a fraction of one warp iteration, not a whole block iteration.
        Misaligned rows pay the prologue/epilogue split (Section 3.1).

        ``count`` may be fractional: a pipeline fragment covering part of
        a (possibly huge) row is charged proportionally.
        """
        p = self.params
        if grid_blocks is None:
            grid_blocks = p.default_grid_blocks
        payload = int(round(count * blocklength_bytes))
        warp_iter = p.warp_iter_bytes
        iters_per_row = -(-blocklength_bytes // warp_iter)
        if not aligned:
            iters_per_row += p.misalignment_iterations
        charged = int(round(count * iters_per_row * warp_iter))
        bw = self.kernel_bandwidth(grid_blocks)
        transfer = charged / bw if charged else 0.0
        overhead = (count / max(1, grid_blocks)) * p.vector_row_overhead
        overhead /= self._avail()
        return KernelStats(
            payload_bytes=payload,
            charged_bytes=charged,
            n_units=count,
            launch_time=p.kernel_launch_overhead,
            transfer_time=transfer,
            overhead_time=overhead,
        )

    def memcpy_time(self, nbytes: int) -> float:
        """Duration of a contiguous in-device ``cudaMemcpy`` (D2D)."""
        p = self.params
        return p.memcpy_call_overhead + nbytes / self.copy_bandwidth()

    def memcpy2d_time(
        self, width: int, height: int, over_pcie: bool, pcie_bw: float = 0.0
    ) -> float:
        """Duration of ``cudaMemcpy2D`` moving ``height`` rows of ``width`` B.

        Rows whose width is not a 64 B multiple leave the DMA fast path
        (Fig 8's sawtooth); each row costs a descriptor.
        """
        p = self.params
        if over_pcie:
            bw = pcie_bw
            row_oh = p.memcpy2d_row_overhead_pcie
        else:
            bw = self.copy_bandwidth()
            row_oh = p.memcpy2d_row_overhead_d2d
        charged_row = -(-width // 64) * 64
        factor = width / charged_row
        if width % 64:
            factor *= p.memcpy2d_misaligned_penalty
        return (
            p.memcpy2d_call_overhead
            + height * row_oh
            + (width * height) / (bw * factor)
        )

    # -- operations ---------------------------------------------------------
    def launch_kernel(
        self,
        stats: KernelStats,
        fn: Optional[Callable[[], None]] = None,
        stream: Optional[Stream] = None,
        label: str = "kernel",
        co_links: Sequence[FifoLink] = (),
    ) -> Future:
        """Run a kernel whose cost was computed by one of the stats methods."""
        stream = stream or self.default_stream
        return stream.enqueue(
            stats.total_time,
            fn=fn,
            label=label,
            co_links=co_links,
            nbytes=stats.payload_bytes,
        )

    def memcpy_d2d(
        self,
        dst: Buffer,
        src: Buffer,
        stream: Optional[Stream] = None,
        label: str = "memcpyD2D",
    ) -> Future:
        """Contiguous in-device copy (the paper's bandwidth yardstick)."""
        if dst.nbytes < src.nbytes:
            raise ValueError("memcpy_d2d: destination smaller than source")
        stream = stream or self.default_stream
        nbytes = src.nbytes

        def move() -> None:
            # MSan-style: a raw copy of uninitialized bytes is benign and
            # propagates (the .bytes accessors handle use-after-free);
            # uninit *reads* are flagged where bytes are interpreted --
            # pack/unpack kernels and the CPU pipeline stages
            dst.bytes[:nbytes] = src.bytes

        return stream.enqueue(
            self.memcpy_time(nbytes),
            fn=move,
            label=label,
            co_links=(self.copy_engine,),
            nbytes=nbytes,
            reads=((src, 0, nbytes),),
            writes=((dst, 0, nbytes),),
        )

    def _pcie_copy(
        self,
        dst: Buffer,
        src: Buffer,
        link: FifoLink,
        stream: Optional[Stream],
        label: str,
    ) -> Future:
        nbytes = src.nbytes
        if dst.nbytes < nbytes:
            raise ValueError(f"{label}: destination smaller than source")
        stream = stream or self.default_stream
        duration = link.overhead + nbytes / link.bandwidth + link.latency

        def move() -> None:
            # MSan-style: a raw copy of uninitialized bytes is benign and
            # propagates (the .bytes accessors handle use-after-free);
            # uninit *reads* are flagged where bytes are interpreted --
            # pack/unpack kernels and the CPU pipeline stages
            dst.bytes[:nbytes] = src.bytes

        return stream.enqueue(
            duration,
            fn=move,
            label=label,
            co_links=(link,),
            nbytes=nbytes,
            reads=((src, 0, nbytes),),
            writes=((dst, 0, nbytes),),
        )

    def memcpy_d2h(
        self, dst: Buffer, src: Buffer, stream: Optional[Stream] = None
    ) -> Future:
        """Device-to-host copy over this GPU's PCIe D2H direction."""
        if self.d2h_link is None:
            raise RuntimeError(f"{self.name}: not wired to a node (d2h)")
        return self._pcie_copy(dst, src, self.d2h_link, stream, "memcpyD2H")

    def memcpy_h2d(
        self, dst: Buffer, src: Buffer, stream: Optional[Stream] = None
    ) -> Future:
        """Host-to-device copy over this GPU's PCIe H2D direction."""
        if self.h2d_link is None:
            raise RuntimeError(f"{self.name}: not wired to a node (h2d)")
        return self._pcie_copy(dst, src, self.h2d_link, stream, "memcpyH2D")

    def memcpy_peer(
        self,
        dst: Buffer,
        src: Buffer,
        peer: "Gpu",
        stream: Optional[Stream] = None,
    ) -> Future:
        """Device-to-device copy across GPUs through the PCIe switch."""
        link = self.p2p_links.get(peer.name)
        if link is None:
            raise RuntimeError(f"no P2P path {self.name} -> {peer.name}")
        return self._pcie_copy(dst, src, link, stream, "memcpyP2P")

    def __repr__(self) -> str:
        return f"Gpu({self.name}, {self.params.name})"
