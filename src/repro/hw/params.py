"""Hardware parameter presets.

The default preset (:func:`k40_cluster`) is calibrated to the paper's
testbed — the NVIDIA PSG cluster: K40 GPUs (CUDA 7.0), PCIe 3.0 x16,
two Ivy Bridge Xeons per node, FDR InfiniBand.  Absolute numbers are
approximations from public spec sheets; what matters for reproducing the
paper's *shape* is the ratio structure:

``GPU DRAM copy peak (~180 GB/s)  >>  PCIe (~10 GB/s)  >  IB FDR (~6.8 GB/s)
>  CPU pack (~5 GB/s)`` and ``kernel launch (~6 us) ~ memcpy call (~5 us)``.

All bandwidths are bytes/second, times are seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "GpuParams",
    "HostParams",
    "LinkParams",
    "SystemParams",
    "k40_cluster",
]

KB = 1024
MB = 1024 * KB
GB = 1024 * MB
US = 1e-6
NS = 1e-9


@dataclass(frozen=True)
class GpuParams:
    """GPU execution-model knobs (K40-class defaults)."""

    name: str = "K40"
    memory_capacity: int = 12 * GB

    #: practical peak payload rate of an in-device contiguous copy
    #: (cudaMemcpy D2D); the paper treats this as the achievable maximum.
    copy_peak_bw: float = 180 * GB

    #: fixed cost of launching any kernel
    kernel_launch_overhead: float = 6 * US
    #: fixed cost of a cudaMemcpy/cudaMemcpy2D driver call
    memcpy_call_overhead: float = 5 * US
    #: extra per-call cost of cudaMemcpy2D (descriptor setup)
    memcpy2d_call_overhead: float = 7 * US
    #: per-row cost of cudaMemcpy2D: in-device it is kernel-like (per-row
    #: address arithmetic only), over PCIe each row needs a DMA descriptor
    memcpy2d_row_overhead_d2d: float = 4 * NS
    memcpy2d_row_overhead_pcie: float = 110 * NS
    #: cudaMemcpy2D rows whose width is not a 64 B multiple fall off the
    #: fast path; their throughput is additionally scaled by this factor
    #: (drives the sawtooth in Fig 8).
    memcpy2d_misaligned_penalty: float = 0.45

    #: intrinsic efficiency of a load/store pack kernel relative to the
    #: copy engine (instruction issue, address arithmetic): the paper's
    #: vector kernel reaches 94% of cudaMemcpy.
    kernel_peak_fraction: float = 0.94

    #: grid geometry
    sm_count: int = 15
    threads_per_block: int = 512
    default_grid_blocks: int = 120
    bytes_per_thread: int = 8  # each thread moves 8 B per iteration

    #: number of resident warps needed to saturate DRAM bandwidth —
    #: determines how performance degrades when the pack kernel is granted
    #: only a few CUDA blocks (Section 5.3).  ~512 warps (= 32 blocks of
    #: 512 threads) is Kepler-class for a streaming copy kernel.
    saturation_warps: int = 512

    #: per work-unit fetch/loop overhead charged to the owning warp
    dev_unit_overhead: float = 30 * NS
    #: per-row (contiguous block) overhead of the specialized vector kernel
    vector_row_overhead: float = 4 * NS
    #: extra warp iterations charged when a block is not 8-byte aligned
    #: (prologue/epilogue split), as a fraction of one warp iteration
    misalignment_iterations: float = 2.0

    #: CUDA_DEV work-unit size S (the paper evaluates 1/2/4 KB; 4 KB is
    #: the default used in the evaluation to maximize unrolling)
    dev_unit_size: int = 4 * KB

    #: CPU-side DEV preparation: cost per DEV (stack walk, emit tuple) and
    #: per CUDA_DEV work unit (split, append); pipelining/caching hides or
    #: removes this (Fig 7).
    dev_prep_per_dev: float = 60 * NS
    dev_prep_per_unit: float = 5 * NS
    #: number of CUDA_DEVs converted per pipelined preparation chunk
    dev_prep_chunk_units: int = 8192

    @property
    def warp_size(self) -> int:
        return 32

    @property
    def warps_per_block(self) -> int:
        return self.threads_per_block // self.warp_size

    @property
    def warp_iter_bytes(self) -> int:
        """Bytes one warp moves per iteration (32 threads x 8 B)."""
        return self.warp_size * self.bytes_per_thread

    @property
    def per_warp_bw(self) -> float:
        """Streaming bandwidth of a single warp when DRAM is uncontended."""
        return self.copy_peak_bw / self.saturation_warps


@dataclass(frozen=True)
class HostParams:
    """Host CPU/memory model."""

    memory_capacity: int = 64 * GB
    #: single-core datatype pack/unpack rate of the CPU convertor
    cpu_pack_bw: float = 5 * GB
    #: plain memcpy rate
    cpu_memcpy_bw: float = 10 * GB
    #: per pack/unpack call fixed cost
    cpu_pack_overhead: float = 0.3 * US


@dataclass(frozen=True)
class LinkParams:
    """A (bandwidth, latency, per-op overhead) triple for a FIFO link."""

    bandwidth: float
    latency: float = 0.0
    overhead: float = 0.0


@dataclass(frozen=True)
class SystemParams:
    """Everything needed to build a :class:`repro.hw.node.Cluster`."""

    gpu: GpuParams = field(default_factory=GpuParams)
    host: HostParams = field(default_factory=HostParams)

    #: PCIe 3.0 x16, per direction, host<->GPU
    pcie_h2d: LinkParams = field(
        default_factory=lambda: LinkParams(10.5 * GB, 1.2 * US, 5 * US)
    )
    pcie_d2h: LinkParams = field(
        default_factory=lambda: LinkParams(10.5 * GB, 1.2 * US, 5 * US)
    )
    #: GPU-GPU peer-to-peer through the PCIe switch.  Per [18] in the paper
    #: the GPU-GPU path has *higher* PCIe utilization than CPU-GPU.
    pcie_p2p: LinkParams = field(
        default_factory=lambda: LinkParams(11.5 * GB, 1.4 * US, 5 * US)
    )
    #: FDR InfiniBand (56 Gb/s -> ~6.8 GB/s payload)
    ib: LinkParams = field(
        default_factory=lambda: LinkParams(6.8 * GB, 1.7 * US, 0.6 * US)
    )
    #: intra-node CPU shared-memory transport (double copy through shmem)
    shmem: LinkParams = field(
        default_factory=lambda: LinkParams(8.0 * GB, 0.4 * US, 0.25 * US)
    )

    #: small control message cost (Active Message header, ACK...)
    am_header_bytes: int = 64
    #: one-time CUDA IPC handle open / RDMA registration cost (the paper's
    #: motivation for caching registrations at the BTL level)
    ipc_registration_cost: float = 90 * US
    rdma_registration_cost: float = 60 * US
    #: per-fragment cross-process synchronization on the IPC path (CUDA
    #: IPC event wait before touching a remote-owned segment); occupies
    #: the transfer engine, so it bounds pipeline efficiency below 100%
    ipc_frag_sync_cost: float = 12 * US
    #: pack/unpack kernels touching a *peer GPU's* memory directly issue
    #: many small latency-bound PCIe reads — "generating too much traffic
    #: and under-utilizing the PCI-E" (Section 5.2.1) — so they reach only
    #: this fraction of the P2P wire bandwidth.  Bulk cudaMemcpy P2P (the
    #: local-staging option) is unaffected.
    p2p_kernel_efficiency: float = 0.8

    gpus_per_node: int = 6
    cores_per_node: int = 20

    def with_gpu(self, **kw) -> "SystemParams":
        """A copy with the given GPU parameter overrides."""
        return replace(self, gpu=replace(self.gpu, **kw))


def k40_cluster() -> SystemParams:
    """The paper's testbed preset (NVIDIA PSG cluster)."""
    return SystemParams()
