"""Structured stats records: the uniform objects benchmarks consume.

Each layer fills its own record:

* :class:`TransferStats` — one point-to-point transfer (either side),
  appended to ``MpiProcess.transfer_log`` by the PML when the protocol
  coroutine finishes;
* :class:`CacheStats` — a :class:`repro.gpu_engine.cache.DevCache`
  snapshot with *consistent* hit/byte accounting;
* :class:`EngineStats` — a GPU datatype engine's prep/kernel/byte totals;
* :class:`WorldStats` — the roll-up ``MpiWorld.stats()`` returns: every
  transfer record, aggregated cache/engine numbers, per-resource busy
  time and the pack/wire overlap read off the cluster tracer.

Nothing here imports the MPI stack — records are plain data, assembled
by the layer that owns the underlying objects.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional

__all__ = [
    "TransferStats",
    "CacheStats",
    "EngineStats",
    "WorldStats",
    "classify_resource",
]


@dataclass
class TransferStats:
    """One side of one point-to-point transfer, as the PML saw it."""

    tid: str
    role: str  # "send" | "recv"
    rank: int = -1
    peer: int = -1
    protocol: str = ""  # "eager" | "host" | "ipc_rdma" | "copyinout"
    mode: str = ""  # ipc_rdma mode: general/send_contig/recv_contig/...
    total_bytes: int = 0
    frag_bytes: int = 0
    fragments: int = 0
    #: time this side spent blocked waiting for a pipeline credit
    credit_wait_s: float = 0.0
    #: peak number of fragments simultaneously in flight on this side
    max_in_flight: int = 0
    #: fragment notifications re-sent because no ACK arrived in time
    retransmits: int = 0
    #: duplicate fragment notifications suppressed by the receiver
    dup_frags_dropped: int = 0
    #: duplicate ACKs suppressed by the sender
    dup_acks_dropped: int = 0
    #: degradation taken, if any ("copyinout", "direct_unpack", ...)
    fallback: str = ""
    start_s: float = -1.0
    end_s: float = -1.0

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end_s - self.start_s)

    @property
    def bandwidth(self) -> float:
        """Effective bytes/second over the transfer's lifetime."""
        d = self.duration_s
        return self.total_bytes / d if d > 0 else 0.0

    def is_complete(self) -> bool:
        """True when every field a finished transfer must report is set."""
        return (
            bool(self.protocol)
            and self.role in ("send", "recv")
            and self.rank >= 0
            and self.peer >= 0
            and self.total_bytes >= 0  # zero-byte transfers are legal
            and self.fragments >= 1
            and 0.0 <= self.start_s <= self.end_s
        )

    def to_dict(self) -> dict:
        """The record as a JSON-friendly dict."""
        return asdict(self)


@dataclass
class CacheStats:
    """DevCache accounting snapshot (hit/miss/eviction/bytes)."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    #: ``put`` calls that found their key already resident — kept apart
    #: from ``hits`` so pre-population cannot inflate the hit rate
    put_resident: int = 0
    rejected_oversized: int = 0
    entries: int = 0
    bytes_cached: int = 0
    bytes_evicted: int = 0
    budget_bytes: int = 0

    @property
    def lookups(self) -> int:
        """Lookup-path consultations only (``get``); excludes pre-populates."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits / lookups, 0.0 when the cache was never consulted."""
        n = self.lookups
        return self.hits / n if n else 0.0

    def merged(self, other: "CacheStats") -> "CacheStats":
        """Element-wise sum (budget summed too: total reserved memory)."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            insertions=self.insertions + other.insertions,
            evictions=self.evictions + other.evictions,
            put_resident=self.put_resident + other.put_resident,
            rejected_oversized=self.rejected_oversized + other.rejected_oversized,
            entries=self.entries + other.entries,
            bytes_cached=self.bytes_cached + other.bytes_cached,
            bytes_evicted=self.bytes_evicted + other.bytes_evicted,
            budget_bytes=self.budget_bytes + other.budget_bytes,
        )

    def to_dict(self) -> dict:
        """The record plus the derived hit rate, JSON-friendly."""
        d = asdict(self)
        d["hit_rate"] = self.hit_rate
        return d


@dataclass
class EngineStats:
    """GPU datatype engine totals: the two pipeline stages plus the cache."""

    jobs: int = 0
    fragments: int = 0
    prep_s: float = 0.0
    kernel_s: float = 0.0
    bytes_packed: int = 0
    cache: CacheStats = field(default_factory=CacheStats)
    #: jobs per selected pack plan (memcpy / vector_kernel / gather)
    plans: dict = field(default_factory=dict)

    def merged(self, other: "EngineStats") -> "EngineStats":
        """Element-wise sum of two engines' totals (caches included)."""
        plans = dict(self.plans)
        for name, n in other.plans.items():
            plans[name] = plans.get(name, 0) + n
        return EngineStats(
            jobs=self.jobs + other.jobs,
            fragments=self.fragments + other.fragments,
            prep_s=self.prep_s + other.prep_s,
            kernel_s=self.kernel_s + other.kernel_s,
            bytes_packed=self.bytes_packed + other.bytes_packed,
            cache=self.cache.merged(other.cache),
            plans=plans,
        )

    def to_dict(self) -> dict:
        """The record (cache expanded) as a JSON-friendly dict."""
        d = asdict(self)
        d["cache"] = self.cache.to_dict()
        return d


def classify_resource(name: str) -> str:
    """Bucket a tracer resource name into a pipeline stage.

    * ``pack`` — GPU datatype-engine streams and the host CPU pack engine;
    * ``wire`` — the links a message rides between ranks: InfiniBand,
      PCIe peer-to-peer, the shared-memory segment;
    * ``pcie`` — host/device staging directions (H2D / D2H);
    * ``prep`` — the CPU CUDA_DEV preparation engine;
    * ``other`` — everything else (copy engines, memcpy queues...).
    """
    if ".dtengine" in name or name.endswith(".cpu_pack"):
        return "pack"
    if name.startswith("ib.") or ".pcie.p2p." in name or name.endswith(".shmem"):
        return "wire"
    if ".pcie.h2d." in name or ".pcie.d2h." in name:
        return "pcie"
    if name.endswith(".cpu_prep"):
        return "prep"
    return "other"


@dataclass
class WorldStats:
    """Everything ``MpiWorld.stats()`` rolls up for one run window."""

    transfers: list[TransferStats] = field(default_factory=list)
    by_protocol: dict = field(default_factory=dict)
    by_mode: dict = field(default_factory=dict)
    engine: EngineStats = field(default_factory=EngineStats)
    #: tracer-derived busy time per resource name (empty without tracing)
    resource_busy_s: dict = field(default_factory=dict)
    pack_busy_s: float = 0.0
    wire_busy_s: float = 0.0
    pcie_busy_s: float = 0.0
    pack_wire_overlap_s: float = 0.0
    #: simulator-core counters for the stats window (between resets):
    #: events executed, timers cancelled before firing, and the event
    #: queue's high-water mark
    events_processed: int = 0
    timers_cancelled: int = 0
    peak_queue_depth: int = 0
    #: wall-clock seconds spent inside ``world.run`` for the window
    run_wall_s: float = 0.0
    #: simulated seconds elapsed across the window's ``run`` calls
    sim_elapsed_s: float = 0.0
    #: flat snapshot of the world's metrics registry
    metrics: dict = field(default_factory=dict)

    @property
    def events_per_wall_s(self) -> float:
        """Simulator events executed per wall-clock second (0 if unrun)."""
        if self.run_wall_s <= 0.0:
            return 0.0
        return self.events_processed / self.run_wall_s

    @property
    def cache(self) -> CacheStats:
        return self.engine.cache

    @property
    def cache_hit_rate(self) -> float:
        return self.engine.cache.hit_rate

    @property
    def pack_wire_overlap_fraction(self) -> float:
        """How much of the pack time hid under the wire time (0..1)."""
        if self.pack_busy_s <= 0.0:
            return 0.0
        return min(1.0, self.pack_wire_overlap_s / self.pack_busy_s)

    @property
    def total_bytes(self) -> int:
        return sum(t.total_bytes for t in self.transfers if t.role == "send")

    @property
    def credit_wait_s(self) -> float:
        return sum(t.credit_wait_s for t in self.transfers)

    @property
    def retransmits(self) -> int:
        """Total fragment retransmissions across every transfer."""
        return sum(t.retransmits for t in self.transfers)

    @property
    def dup_drops(self) -> int:
        """Duplicate frags + ACKs suppressed across every transfer."""
        return sum(
            t.dup_frags_dropped + t.dup_acks_dropped for t in self.transfers
        )

    @property
    def fallbacks(self) -> dict:
        """Count of transfers per degradation taken (empty = none)."""
        out: dict[str, int] = {}
        for t in self.transfers:
            if t.fallback:
                out[t.fallback] = out.get(t.fallback, 0) + 1
        return out

    @property
    def faults_injected(self) -> dict:
        """Injected-fault counters from the metrics snapshot."""
        return {
            k[len("faults."):]: v
            for k, v in self.metrics.items()
            if k.startswith("faults.")
        }

    @property
    def coll_ops(self) -> dict:
        """Collective calls per ``<op>.<algorithm>``, summed over ranks.

        Aggregates the per-rank ``r<k>.coll.<op>.<algo>`` counters the
        collectives module bumps on every call (byte totals appear as
        ``<op>.bytes``); empty when no collectives ran.
        """
        out: dict[str, int] = {}
        for k, v in self.metrics.items():
            _rank, dot, rest = k.partition(".")
            if dot and rest.startswith("coll.") and _rank.startswith("r"):
                name = rest[len("coll."):]
                out[name] = out.get(name, 0) + v
        return out

    def busy_by_stage(self) -> dict:
        """Busy time aggregated by :func:`classify_resource` stage."""
        out: dict[str, float] = {}
        for name, busy in self.resource_busy_s.items():
            out[classify_resource(name)] = out.get(
                classify_resource(name), 0.0
            ) + busy
        return out

    def is_complete(self) -> bool:
        """True when every transfer record is fully populated."""
        return bool(self.transfers) and all(
            t.is_complete() for t in self.transfers
        )

    def to_dict(self) -> dict:
        """The whole roll-up, derived ratios included, JSON-friendly."""
        return {
            "transfers": [t.to_dict() for t in self.transfers],
            "by_protocol": dict(self.by_protocol),
            "by_mode": dict(self.by_mode),
            "engine": self.engine.to_dict(),
            "cache_hit_rate": self.cache_hit_rate,
            "resource_busy_s": dict(self.resource_busy_s),
            "pack_busy_s": self.pack_busy_s,
            "wire_busy_s": self.wire_busy_s,
            "pcie_busy_s": self.pcie_busy_s,
            "pack_wire_overlap_s": self.pack_wire_overlap_s,
            "pack_wire_overlap_fraction": self.pack_wire_overlap_fraction,
            "events_processed": self.events_processed,
            "timers_cancelled": self.timers_cancelled,
            "peak_queue_depth": self.peak_queue_depth,
            "run_wall_s": self.run_wall_s,
            "sim_elapsed_s": self.sim_elapsed_s,
            "events_per_wall_s": self.events_per_wall_s,
            "credit_wait_s": self.credit_wait_s,
            "retransmits": self.retransmits,
            "dup_drops": self.dup_drops,
            "fallbacks": self.fallbacks,
            "faults_injected": self.faults_injected,
            "coll_ops": self.coll_ops,
            "metrics": dict(self.metrics),
        }

    def summary(self) -> str:
        """A compact human-readable report (used by ``--smoke``)."""
        lines = [
            f"transfers: {len(self.transfers)} "
            f"({sum(1 for t in self.transfers if t.role == 'send')} sends, "
            f"{self.total_bytes} bytes)",
            f"protocols: {dict(sorted(self.by_protocol.items()))}",
            f"cache: {self.engine.cache.hits} hits / "
            f"{self.engine.cache.lookups} lookups "
            f"(rate {self.cache_hit_rate:.2f})",
            f"pack busy {self.pack_busy_s * 1e6:.1f}us, "
            f"wire busy {self.wire_busy_s * 1e6:.1f}us, "
            f"overlap {self.pack_wire_overlap_fraction:.2f}",
            f"credit wait {self.credit_wait_s * 1e6:.1f}us",
        ]
        if self.events_processed:
            line = (
                f"events: {self.events_processed} "
                f"(peak queue {self.peak_queue_depth}, "
                f"{self.timers_cancelled} timers cancelled)"
            )
            if self.run_wall_s > 0.0:
                line += f", {self.events_per_wall_s:,.0f} events/s wall"
            lines.append(line)
        colls = self.coll_ops
        if colls:
            lines.append(f"collectives: {dict(sorted(colls.items()))}")
        faults = self.faults_injected
        if faults or self.retransmits or self.dup_drops or self.fallbacks:
            lines.append(
                f"faults: {sum(faults.values())} injected {dict(sorted(faults.items()))}, "
                f"{self.retransmits} retransmits, "
                f"{self.dup_drops} dups dropped, "
                f"fallbacks {dict(sorted(self.fallbacks.items()))}"
            )
        return "\n".join(lines)
