"""A small in-process metrics registry (counters, gauges, histograms, timers).

Instruments are plain Python objects updated synchronously on the
simulated clock's thread — no locks, no sampling.  A
:class:`MetricsRegistry` maps dotted names to instruments and supports
*scoping*: ``registry.scoped("r0.engine.")`` returns a view sharing the
same store whose instruments are created under the prefix, so each
rank/engine/cache namespaces its metrics without threading strings
through every call site.

``snapshot()`` flattens everything to a JSON-friendly dict; the
Chrome-trace exporter (:func:`repro.sim.trace.save_chrome_trace`) embeds
that snapshot next to the timeline so one file carries both views.
"""

from __future__ import annotations

import math
from typing import Optional, Union

__all__ = ["Counter", "Gauge", "Histogram", "Timer", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count (events, bytes, hits...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: Union[int, float] = 1) -> None:
        """Add ``n`` (must be non-negative) to the count."""
        if n < 0:
            raise ValueError(f"counter {self.name!r}: negative increment {n}")
        self.value += n

    def reset(self) -> None:
        """Zero the count."""
        self.value = 0

    def snapshot(self):
        """The count as a plain value."""
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time level (fragments in flight, bytes cached...).

    Tracks the high-water mark alongside the current value — pipelines
    are judged by their peak occupancy, not their final (drained) state.
    """

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self.max_value = 0

    def set(self, v: Union[int, float]) -> None:
        """Set the level (updates the high-water mark)."""
        self.value = v
        if v > self.max_value:
            self.max_value = v

    def inc(self, n: Union[int, float] = 1) -> None:
        """Raise the level by ``n``."""
        self.set(self.value + n)

    def dec(self, n: Union[int, float] = 1) -> None:
        """Lower the level by ``n`` (the high-water mark stays)."""
        self.value -= n

    def reset(self) -> None:
        """Zero the level and its high-water mark."""
        self.value = 0
        self.max_value = 0

    def snapshot(self):
        """Current level and high-water mark as a plain dict."""
        return {"value": self.value, "max": self.max_value}

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value}, max={self.max_value})"


class Histogram:
    """Streaming distribution summary: count/sum/min/max/mean.

    Deliberately bucket-free — the simulator is deterministic, so tests
    want exact moments, and the trace exporter wants a compact record.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, v: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        """Forget every sample."""
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def snapshot(self):
        """The summary moments as a plain dict."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:g})"


class Timer(Histogram):
    """A histogram of durations in (simulated) seconds.

    The simulator's clock is explicit, so a timer is fed measured
    intervals rather than wrapping wall-clock calls:

    >>> t0 = sim.now
    >>> ...  # doctest: +SKIP
    >>> timer.observe(sim.now - t0)  # doctest: +SKIP
    """

    __slots__ = ()

    @property
    def seconds(self) -> float:
        """Total observed time — the usual aggregation for busy timers."""
        return self.total


_KINDS = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
    "timer": Timer,
}


class MetricsRegistry:
    """Dotted-name registry of instruments with prefix scoping.

    All scoped views share one store, so a single ``snapshot()`` on the
    root sees every instrument in the system.
    """

    def __init__(
        self,
        prefix: str = "",
        _store: Optional[dict] = None,
    ) -> None:
        self.prefix = prefix
        self._store: dict[str, object] = _store if _store is not None else {}

    # -- instrument accessors (get-or-create) --------------------------------
    def _get(self, kind: str, name: str):
        cls = _KINDS[kind]
        full = self.prefix + name
        inst = self._store.get(full)
        if inst is None:
            inst = cls(full)
            self._store[full] = inst
        elif type(inst) is not cls:
            raise TypeError(
                f"metric {full!r} already registered as "
                f"{type(inst).__name__}, requested {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        """Get or create a :class:`Counter` under this scope."""
        return self._get("counter", name)

    def gauge(self, name: str) -> Gauge:
        """Get or create a :class:`Gauge` under this scope."""
        return self._get("gauge", name)

    def histogram(self, name: str) -> Histogram:
        """Get or create a :class:`Histogram` under this scope."""
        return self._get("histogram", name)

    def timer(self, name: str) -> Timer:
        """Get or create a :class:`Timer` under this scope."""
        return self._get("timer", name)

    # -- scoping -------------------------------------------------------------
    def scoped(self, prefix: str) -> "MetricsRegistry":
        """A view creating instruments under ``self.prefix + prefix``."""
        return MetricsRegistry(self.prefix + prefix, _store=self._store)

    # -- inspection ----------------------------------------------------------
    def names(self) -> list[str]:
        """Full names under this scope, sorted."""
        return sorted(n for n in self._store if n.startswith(self.prefix))

    def get(self, name: str):
        """The instrument registered under ``self.prefix + name``, or None."""
        return self._store.get(self.prefix + name)

    def snapshot(self) -> dict:
        """Flatten every instrument under this scope to plain values."""
        return {
            n: self._store[n].snapshot()  # type: ignore[attr-defined]
            for n in self.names()
        }

    def reset(self) -> None:
        """Zero every instrument under this scope (instruments persist)."""
        for n in self.names():
            self._store[n].reset()  # type: ignore[attr-defined]

    def __len__(self) -> int:
        return len(self.names())

    def __repr__(self) -> str:
        return f"MetricsRegistry(prefix={self.prefix!r}, {len(self)} metrics)"
