"""Observability substrate: metrics registry and structured stats records.

``repro.obs`` is the one place every layer reports into:

* :mod:`repro.obs.metrics` — counters, gauges, histograms and timers,
  grouped in a :class:`MetricsRegistry` that supports prefix scoping so
  each rank/engine/cache namespaces its instruments without string
  plumbing at every call site;
* :mod:`repro.obs.stats` — structured records (:class:`TransferStats`,
  :class:`CacheStats`, :class:`EngineStats`, :class:`WorldStats`) that
  benchmarks consume instead of reaching into protocol internals.

See ``docs/OBSERVABILITY.md`` for the full tour.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from repro.obs.stats import (
    CacheStats,
    EngineStats,
    TransferStats,
    WorldStats,
    classify_resource,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "TransferStats",
    "CacheStats",
    "EngineStats",
    "WorldStats",
    "classify_resource",
]
