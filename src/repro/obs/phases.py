"""Wall-clock phase accounting for the benchmark harness.

The benchmark suite tracks two very different clocks:

* **simulated time** — the deterministic virtual clock every figure
  reports; nothing in this module ever touches it;
* **harness wall-clock** — how long the *simulator itself* takes to run,
  split into phases (CPU DEV-emission walk, work-unit split, simulator
  event loop) so a regression in the Python hot paths shows up in the
  ``BENCH_*.json`` trajectory even when the simulated numbers are
  unchanged.

Collection is opt-in and nested-scope based: call sites in hot code do
``with phases.measure("dev_build"): ...`` which is a no-op (one global
read) unless a :func:`collect` scope is active.  The recorded durations
feed only the benchmark report — simulation behaviour never depends on
them, which is why the determinism lint (SAN-L001) allows simulation
code to call into this module.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = ["PhaseTimer", "active", "collect", "measure"]

#: canonical phase names used by the built-in hooks
DEV_BUILD = "dev_build"
UNIT_SPLIT = "unit_split"
SIM_RUN = "sim_run"


class PhaseTimer:
    """Accumulated wall-clock seconds and call counts per phase name.

    Phases may nest (``dev_build`` happens *inside* ``sim_run``), so the
    per-phase totals are not disjoint and need not sum to the overall
    wall time.
    """

    __slots__ = ("seconds", "counts")

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.counts: dict[str, int] = {}

    def add(self, phase: str, seconds: float) -> None:
        """Record one timed interval for ``phase``."""
        self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds
        self.counts[phase] = self.counts.get(phase, 0) + 1

    def to_dict(self) -> dict:
        """JSON-friendly ``{phase: {"seconds": s, "count": n}}`` mapping."""
        return {
            name: {"seconds": self.seconds[name], "count": self.counts[name]}
            for name in sorted(self.seconds)
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = ", ".join(
            f"{k}={v * 1e3:.1f}ms" for k, v in sorted(self.seconds.items())
        )
        return f"PhaseTimer({parts})"


_ACTIVE: Optional[PhaseTimer] = None


def active() -> Optional[PhaseTimer]:
    """The collector currently in scope, or None."""
    return _ACTIVE


@contextmanager
def collect(timer: Optional[PhaseTimer] = None) -> Iterator[PhaseTimer]:
    """Activate a collector for the scope; restores the previous on exit."""
    global _ACTIVE
    own = timer if timer is not None else PhaseTimer()
    prev = _ACTIVE
    _ACTIVE = own
    try:
        yield own
    finally:
        _ACTIVE = prev


@contextmanager
def measure(phase: str) -> Iterator[None]:
    """Time the enclosed block under ``phase`` when a collector is active."""
    t = _ACTIVE
    if t is None:
        yield
        return
    t0 = time.perf_counter()
    try:
        yield
    finally:
        t.add(phase, time.perf_counter() - t0)
