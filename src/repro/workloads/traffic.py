"""Seeded multi-tenant traffic replay: the autotuner's training diet.

Real GPU applications rarely look like a single ping-pong: several
libraries (tenants) share the ranks, each with its own communicator and
its own — structurally identical — derived datatypes, sending a mix of
eager-sized control messages and large non-contiguous payloads in
bursts.  This module generates that traffic deterministically:

* every random draw (shift patterns, message sizes, payload kinds,
  burst gaps) is precomputed up front from one ``numpy`` generator
  seeded by :class:`TrafficSpec.seed`, so sender and receiver agree on
  every message shape by construction and two runs with the same spec
  are bit-identical;
* each tenant runs on its own dup'ed communicator and builds its *own*
  datatype objects, exercising the canonical-key DevCache exactly the
  way two independent libraries in one application do;
* per round, every rank sleeps the same drawn gap and then issues all
  tenants' sends and receives back-to-back — idle valleys followed by
  waves of concurrent traffic across communicators.

The same harness doubles as the autotuner's training loop: run it with
an observe-mode :class:`~repro.tune.tuner.Autotuner` under candidate
configs to fill a decision table, then replay with ``autotune="on"``
to validate (see ``python -m repro.tune --train`` and the
``traffic_tuned`` bench scenario).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datatype.ddt import contiguous, vector
from repro.datatype.primitives import BYTE, DOUBLE
from repro.hw.node import Cluster
from repro.mpi.world import MpiWorld
from repro.sim.core import Future, Simulator

__all__ = ["TrafficSpec", "TrafficDraws", "run_traffic", "replay_digest"]


@dataclass(frozen=True)
class TrafficSpec:
    """One reproducible traffic mix (all knobs, nothing hidden).

    ``size_mix`` pairs contiguous payload sizes with draw weights; the
    defaults straddle the eager limit so the mix exercises the eager,
    host-rendezvous, and device pipelines.  ``vector_frac`` of the
    draws instead send ``vector(vector_rows, vector_bl, vector_stride)``
    doubles — the non-contiguous path through the GPU engine.
    """

    seed: int = 7
    tenants: int = 3
    rounds: int = 4
    n_nodes: int = 2
    gpus_per_node: int = 2
    #: (nbytes, weight) pairs for contiguous draws
    size_mix: tuple = ((2 << 10, 0.45), (64 << 10, 0.35), (1 << 20, 0.2))
    #: probability a draw sends the structured (vector) payload instead
    vector_frac: float = 0.4
    vector_rows: int = 512
    vector_bl: int = 4
    vector_stride: int = 12
    #: max elements of the vector type per structured send
    vector_max_count: int = 3
    #: mean idle gap before each burst (exponential)
    burst_gap_s: float = 2e-4
    #: tenants with index < host_tenants use host buffers (CPU pipeline)
    host_tenants: int = 1

    def __post_init__(self) -> None:
        """Validate the spec (sizes positive, fractions in range)."""
        if self.tenants < 1 or self.rounds < 1:
            raise ValueError("traffic needs >= 1 tenant and >= 1 round")
        if self.n_nodes * self.gpus_per_node < 2:
            raise ValueError("traffic needs >= 2 ranks")
        if not self.size_mix or any(n <= 0 or w <= 0 for n, w in self.size_mix):
            raise ValueError("size_mix entries must be (nbytes>0, weight>0)")
        if not 0.0 <= self.vector_frac <= 1.0:
            raise ValueError("vector_frac must be in [0, 1]")
        if not 0 <= self.host_tenants <= self.tenants:
            raise ValueError("host_tenants must be in [0, tenants]")

    @property
    def world_size(self) -> int:
        """Total ranks (one per GPU slot)."""
        return self.n_nodes * self.gpus_per_node


@dataclass
class TrafficDraws:
    """Every random draw of one run, materialized before the clock starts.

    Indexed ``[round][tenant]`` (gaps per round only).  Both endpoints
    of a message read the same table, so the receiver always knows the
    sender's kind/size without any out-of-band agreement.
    """

    shifts: list = field(default_factory=list)
    kinds: list = field(default_factory=list)  # "contig" | "vector"
    sizes: list = field(default_factory=list)  # contig nbytes
    vcounts: list = field(default_factory=list)  # vector element count
    gaps: list = field(default_factory=list)

    @classmethod
    def generate(cls, spec: TrafficSpec) -> "TrafficDraws":
        """Draw the full schedule from one seeded generator."""
        rng = np.random.default_rng(spec.seed)
        size = spec.world_size
        nbytes = np.array([n for n, _w in spec.size_mix])
        weights = np.array([w for _n, w in spec.size_mix], dtype=float)
        weights /= weights.sum()
        d = cls()
        for _r in range(spec.rounds):
            d.shifts.append(
                [int(rng.integers(1, size)) for _t in range(spec.tenants)]
            )
            d.kinds.append([
                "vector" if rng.random() < spec.vector_frac else "contig"
                for _t in range(spec.tenants)
            ])
            d.sizes.append([
                int(rng.choice(nbytes, p=weights)) for _t in range(spec.tenants)
            ])
            d.vcounts.append([
                int(rng.integers(1, spec.vector_max_count + 1))
                for _t in range(spec.tenants)
            ])
            d.gaps.append(float(rng.exponential(spec.burst_gap_s)))
        return d


def _sleep(sim: Simulator, seconds: float) -> Future:
    """A future resolving ``seconds`` of simulated time from now."""
    fut = Future(sim, label="traffic-gap")
    sim.call_at(sim.now + seconds, lambda: fut.resolve(None))
    return fut


def _replay(spec: TrafficSpec, config, tuner, sim):
    """Build the world, run the full replay; returns the raw pieces.

    ``(world, recvbufs, elapsed, messages)`` — :func:`run_traffic`
    flattens them into metrics, :func:`replay_digest` hashes the
    application-visible state for the schedule explorer.
    """
    draws = TrafficDraws.generate(spec)
    size = spec.world_size
    cluster = Cluster(spec.n_nodes, spec.gpus_per_node, sim=sim)
    placements = [
        (n, g) for n in range(spec.n_nodes) for g in range(spec.gpus_per_node)
    ]
    world = MpiWorld(cluster, placements, config=config, tuner=tuner)

    # one communicator per tenant: COMM_WORLD plus dup()s (fresh context
    # ids — concurrent same-tag traffic on different tenants never mixes)
    comms = [world.comm_world]
    for _t in range(1, spec.tenants):
        comms.append(world.comm_world.dup())

    # per-tenant, per-rank datatype instances: distinct objects with
    # identical structure — the canonical key must unify them
    vec_dts = [
        [
            vector(spec.vector_rows, spec.vector_bl, spec.vector_stride,
                   DOUBLE).commit()
            for _r in range(size)
        ]
        for _t in range(spec.tenants)
    ]
    contig_sizes = sorted({n for n, _w in spec.size_mix})
    contig_dts = [
        {n: contiguous(n, BYTE).commit() for n in contig_sizes}
        for _r in range(size)
    ]

    vec_extent = vec_dts[0][0].extent * spec.vector_max_count
    buf_bytes = max(max(contig_sizes), vec_extent)
    sendbufs: list = []
    recvbufs: list = []
    for t in range(spec.tenants):
        srow, rrow = [], []
        for r in range(size):
            proc = world.procs[r]
            if t < spec.host_tenants:
                sb = proc.node.host_memory.alloc(buf_bytes, label=f"traffic-s{t}")
                rb = proc.node.host_memory.alloc(buf_bytes, label=f"traffic-r{t}")
            else:
                sb = proc.ctx.malloc(buf_bytes)
                rb = proc.ctx.malloc(buf_bytes)
            sb.fill(17)
            rb.fill(0)
            srow.append(sb)
            rrow.append(rb)
        sendbufs.append(srow)
        recvbufs.append(rrow)

    messages = 0
    for r in range(spec.rounds):
        messages += spec.tenants * size

    def make_program(rank: int):
        def run(mpi):
            for rnd in range(spec.rounds):
                # idle valley, then the whole round's traffic at once
                yield _sleep(mpi.sim, draws.gaps[rnd])
                reqs = []
                for t in range(spec.tenants):
                    shift = draws.shifts[rnd][t]
                    dest = (rank + shift) % size
                    src = (rank - shift) % size
                    if draws.kinds[rnd][t] == "vector":
                        dt = vec_dts[t][rank]
                        cnt = draws.vcounts[rnd][t]
                    else:
                        dt = contig_dts[rank][draws.sizes[rnd][t]]
                        cnt = 1
                    reqs.append(mpi.isend(
                        sendbufs[t][rank], dt, cnt, dest=dest, tag=rnd,
                        comm=comms[t],
                    ))
                    reqs.append(mpi.irecv(
                        recvbufs[t][rank], dt, cnt, source=src, tag=rnd,
                        comm=comms[t],
                    ))
                yield mpi.wait_all(*reqs)
                yield mpi.barrier()
        return run

    elapsed = world.run([make_program(r) for r in range(size)])
    return world, recvbufs, elapsed, messages


def run_traffic(spec: TrafficSpec, config=None, tuner=None) -> dict[str, float]:
    """Run one traffic replay; returns flat gateable metrics.

    ``tuner`` is handed to :class:`MpiWorld` verbatim (an observe-mode
    tuner trains on this traffic; a mode-"on" tuner steers it), taking
    precedence over whatever ``config.autotune`` would build.

    Metrics: ``elapsed_s`` (whole replay, virtual clock),
    ``total_gbytes`` moved, ``messages`` issued, DevCache
    ``cache_hits``/``cache_misses`` across all tenants, and
    ``cross_tenant_hit_rate`` — the fraction of descriptor lookups
    that reuse cached preparations (the canonical-key payoff the
    generator exists to measure).
    """
    world, _recvbufs, elapsed, messages = _replay(spec, config, tuner, None)
    ws = world.stats()
    cache = ws.cache
    lookups = cache.hits + cache.misses
    return {
        "elapsed_s": elapsed,
        "total_gbytes": ws.total_bytes / 1e9,
        "messages": float(messages),
        "cache_hits": float(cache.hits),
        "cache_misses": float(cache.misses),
        "cross_tenant_hit_rate": cache.hits / lookups if lookups else 0.0,
    }


def replay_digest(spec: TrafficSpec, config=None, tuner=None, sim=None) -> str:
    """BLAKE2b digest of everything the application observes in a replay.

    Hashes every tenant's received bytes on every rank plus — when a
    tuner steered the run — its
    :meth:`~repro.tune.tuner.Autotuner.decisions_digest`, then runs the
    finalize audit.  The schedule explorer asserts this digest is
    bit-identical across perturbed event orderings: data integrity *and*
    reproducible tuned (plan, protocol) selection per size band in one
    check.
    """
    import hashlib

    world, recvbufs, _elapsed, _messages = _replay(spec, config, tuner, sim)
    world.finalize()
    h = hashlib.blake2b(digest_size=16)
    for row in recvbufs:
        for buf in row:
            h.update(buf.bytes.tobytes())
    if tuner is not None:
        h.update(tuner.decisions_digest().encode())
    return h.hexdigest()
