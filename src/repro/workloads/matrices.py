"""Dense-linear-algebra datatypes (Section 5.1's V and T workloads).

All matrices are **column-major** doubles, as in ScaLAPACK and the paper:

* ``submatrix_type`` — an ``N x N`` sub-matrix of a ``ld x ld`` matrix:
  each column is contiguous, columns are ``ld`` elements apart — a
  classic ``MPI_Type_vector`` (the ``V`` curves);
* ``lower_triangular_type`` — column ``c`` holds ``N - c`` elements
  starting on the diagonal — an ``MPI_Type_indexed`` (the ``T`` curves);
* ``stair_triangular_type`` — the triangular matrix rounded out to
  ``nb``-element stairs (Fig 5), which removes the kernel-occupancy
  penalty when ``nb`` is a multiple of the CUDA block size;
* ``transpose_type`` — the receive type that scatters a packed matrix as
  its transpose: N vectors of blocklength 1 (Section 5.2.3's stress test).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datatype.ddt import Datatype, contiguous, indexed, resized, vector
from repro.datatype.primitives import DOUBLE, Primitive

__all__ = [
    "submatrix_type",
    "lower_triangular_type",
    "stair_triangular_type",
    "transpose_type",
    "triangular_mask",
    "stair_mask",
    "MatrixWorkload",
]


def submatrix_type(n: int, ld: int | None = None, base: Primitive = DOUBLE) -> Datatype:
    """``n x n`` sub-matrix of a column-major ``ld x ld`` matrix."""
    ld = 2 * n if ld is None else ld
    if ld < n:
        raise ValueError("leading dimension smaller than the sub-matrix")
    return vector(n, n, ld, base).commit()


def lower_triangular_type(
    n: int, ld: int | None = None, base: Primitive = DOUBLE
) -> Datatype:
    """Lower-triangular part of a column-major ``ld x ld`` matrix."""
    ld = n if ld is None else ld
    if ld < n:
        raise ValueError("leading dimension smaller than the matrix")
    blocklengths = [n - c for c in range(n)]
    displacements = [c * ld + c for c in range(n)]
    return indexed(blocklengths, displacements, base).commit()


def stair_triangular_type(
    n: int, nb: int, ld: int | None = None, base: Primitive = DOUBLE
) -> Datatype:
    """Stair-shaped triangular matrix (Fig 5).

    Column ``c``'s block starts at row ``(c // nb) * nb`` — so every
    block length is a multiple of ``nb`` (for ``nb | n``), and with
    ``nb`` a multiple of the CUDA block size "no CUDA thread is idle".
    """
    ld = n if ld is None else ld
    if n % nb:
        raise ValueError("n must be a multiple of the stair size nb")
    blocklengths = [n - (c // nb) * nb for c in range(n)]
    displacements = [c * ld + (c // nb) * nb for c in range(n)]
    return indexed(blocklengths, displacements, base).commit()


def transpose_type(n: int, base: Primitive = DOUBLE) -> Datatype:
    """Receive type that lays a packed ``n x n`` matrix out transposed.

    One column of the transposed matrix is a vector of ``n`` single
    elements strided ``n`` apart; resizing it to one element's extent and
    repeating it ``n`` times walks the columns — "the whole transposed
    matrix is a collection of N vector types" (Section 5.2.3).
    """
    col = vector(n, 1, n, base)
    return contiguous(n, resized(col, 0, base.size)).commit()


def triangular_mask(n: int, ld: int) -> np.ndarray:
    """Boolean byte mask (column-major, doubles) of the triangular layout."""
    mask = np.zeros(ld * ld, dtype=bool)
    for c in range(n):
        mask[c * ld + c : c * ld + n] = True
    return mask


def stair_mask(n: int, nb: int, ld: int) -> np.ndarray:
    """Boolean byte mask of the stair-triangular layout."""
    mask = np.zeros(ld * ld, dtype=bool)
    for c in range(n):
        start = (c // nb) * nb
        mask[c * ld + start : c * ld + n] = True
    return mask


@dataclass(frozen=True)
class MatrixWorkload:
    """A named datatype + the element count of its payload."""

    name: str
    datatype: Datatype
    ld: int  # leading dimension in elements of the underlying matrix

    @property
    def payload_bytes(self) -> int:
        return self.datatype.size

    @property
    def footprint_bytes(self) -> int:
        return self.ld * self.ld * 8

    @staticmethod
    def submatrix(n: int, ld: int | None = None) -> "MatrixWorkload":
        ld = 2 * n if ld is None else ld
        return MatrixWorkload("V", submatrix_type(n, ld), ld)

    @staticmethod
    def triangular(n: int) -> "MatrixWorkload":
        return MatrixWorkload("T", lower_triangular_type(n), n)

    @staticmethod
    def stair(n: int, nb: int) -> "MatrixWorkload":
        return MatrixWorkload("T-stair", stair_triangular_type(n, nb), n)

    @staticmethod
    def contiguous_matrix(n: int) -> "MatrixWorkload":
        return MatrixWorkload("C", contiguous(n * n, DOUBLE).commit(), n)
