"""SHOC-style 2-D stencil halo exchange datatypes.

"In the 2D stencil application of the Scalable HeterOgeneous Computing
benchmark (SHOC), two of the four boundaries are contiguous, and the
other two are non-contiguous, which can be defined by a vector type"
(Section 3).  For a row-major ``rows x cols`` grid with a halo of width
``h``: the north/south halos are contiguous row bands, the east/west
halos are column bands described by a vector.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datatype.ddt import Datatype, contiguous, vector
from repro.datatype.primitives import DOUBLE, Primitive

__all__ = ["StencilHalo", "stencil_halo_types"]


@dataclass(frozen=True)
class StencilHalo:
    """The four boundary datatypes of one grid tile (row-major)."""

    rows: int
    cols: int
    halo: int
    north: Datatype  # contiguous rows at the top
    south: Datatype  # contiguous rows at the bottom
    west: Datatype  # vector: column band at the left
    east: Datatype  # vector: column band at the right

    def offsets(self) -> dict[str, int]:
        """Byte offset of each boundary's first element in the tile."""
        itemsize = 8
        return {
            "north": 0,
            "south": (self.rows - self.halo) * self.cols * itemsize,
            "west": 0,
            "east": (self.cols - self.halo) * itemsize,
        }


def stencil_halo_types(
    rows: int, cols: int, halo: int = 1, base: Primitive = DOUBLE
) -> StencilHalo:
    """Build the four halo datatypes for a row-major tile."""
    if halo <= 0 or rows < 2 * halo or cols < 2 * halo:
        raise ValueError("halo too large for the tile")
    band = contiguous(halo * cols, base).commit()
    col_band = vector(rows, halo, cols, base).commit()
    return StencilHalo(
        rows=rows,
        cols=cols,
        halo=halo,
        north=band,
        south=band,
        west=col_band,
        east=col_band,
    )
