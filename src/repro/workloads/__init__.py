"""Workload datatypes and data generators used across the evaluation.

These are the memory layouts the paper's evaluation is built on
(Section 5): ScaLAPACK-style sub-matrices (vector), lower-triangular
matrices (indexed), the stair-triangular occupancy probe (Fig 5), the
matrix-transpose stress type (Fig 12), SHOC-style 2-D stencil halos and
LAMMPS-style particle index lists (Section 3's motivation).
"""

from repro.workloads.matrices import (
    MatrixWorkload,
    lower_triangular_type,
    stair_triangular_type,
    submatrix_type,
    transpose_type,
    triangular_mask,
)
from repro.workloads.stencil import StencilHalo, stencil_halo_types
from repro.workloads.particles import particle_index_type, random_particle_indices

__all__ = [
    "MatrixWorkload",
    "submatrix_type",
    "lower_triangular_type",
    "stair_triangular_type",
    "transpose_type",
    "triangular_mask",
    "StencilHalo",
    "stencil_halo_types",
    "particle_index_type",
    "random_particle_indices",
]
