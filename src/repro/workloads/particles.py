"""LAMMPS-style particle exchange datatypes.

"In the LAMMPS application from the molecular dynamics domain, each
process keeps an array of indices of local particles that need to be
communicated; such an access pattern can be captured by an indexed type"
(Section 3).  Particles are fixed-size records; the exchange set is an
``indexed_block`` over the particle array.
"""

from __future__ import annotations

import numpy as np

from repro.datatype.ddt import Datatype, contiguous, indexed_block
from repro.datatype.primitives import DOUBLE, Primitive

__all__ = ["particle_record_type", "particle_index_type", "random_particle_indices"]

#: a particle: position (3 doubles) + velocity (3 doubles) + 2 scalar fields
PARTICLE_FIELDS = 8


def particle_record_type(base: Primitive = DOUBLE) -> Datatype:
    """One particle record (8 doubles)."""
    return contiguous(PARTICLE_FIELDS, base).commit()


def particle_index_type(
    indices: np.ndarray, base: Primitive = DOUBLE
) -> Datatype:
    """The exchange set: the records at ``indices`` in the particle array."""
    record = particle_record_type(base)
    return indexed_block(1, [int(i) for i in indices], record).commit()


def random_particle_indices(
    n_local: int, n_send: int, seed: int = 1234
) -> np.ndarray:
    """A sorted random subset of local particle slots (boundary particles)."""
    if n_send > n_local:
        raise ValueError("cannot send more particles than exist")
    rng = np.random.default_rng(seed)
    return np.sort(rng.choice(n_local, size=n_send, replace=False))
