"""The adaptive protocol/plan autotuner (ROADMAP item 5).

No single data-movement scheme wins across message sizes and datatype
shapes — the paper's schemes trade places around the eager limit and the
staged/direct crossover, Eijkhout (arXiv 1809.10778) shows DDT schemes
swapping ranks near the megabyte range, and the cross-implementation DDT
study (arXiv 2511.13804) shows manual packing sometimes beating
datatypes outright.  The repo measures all of this (WorldStats,
per-plan engine counters, the gated bench suite) but until now picked
protocol, ``frag_bytes``, ``pipeline_depth`` and pack plan statically
from :class:`~repro.mpi.config.MpiConfig`.  :class:`Autotuner` closes
the loop: it selects per (canonical datatype form, message-size band,
topology) from *measured history* in a :class:`~repro.tune.table.DecisionTable`,
with the MVAPICH-style host-staged copy-in/out path as a first-class
choice it may fall back to.

Three modes (``MpiConfig.autotune``):

* ``"off"`` — no tuner object exists; every path keeps today's static
  selection, with zero overhead.
* ``"observe"`` — the tuner records observed costs into its table but
  never decides; static selection is unchanged.  This is how training
  runs harvest history.
* ``"on"`` — decisions come from a snapshot of the table **frozen at
  construction**; observations are still recorded (into the live table,
  for later persistence) but cannot steer the run that produced them.

The frozen snapshot is a determinism invariant, not an optimization:
an online tuner whose decisions depended on which observation happened
to land first would give the schedule-perturbation explorer
(``REPRO_SANITIZE=verify``) different protocol choices under reordered
same-timestamp events.  With the snapshot, the chosen (plan, protocol)
per size band is a pure function of (table, key) — reproducible under
any schedule and any seed.  Exploration happens *offline*: the training
CLI (``python -m repro.tune --train``) sweeps candidate configurations
under seeded traffic and merges the observed costs.

Decision hooks (all no-ops in "observe"; all fall back to the static
pick when the key has no history):

* **PML send path** — :func:`Autotuner.decide_send` picks rendezvous
  ``(frag_bytes, pipeline_depth)`` and a *preferred protocol* that the
  RTS advertises; the receiver honours the preference only when it is in
  the feasible set for the actual buffer pair.  Preferring
  ``copyinout`` over ``ipc_rdma`` for a device pair is exactly the
  "manual packing beats DDT RDMA here" fallback.
* **collective ladder** — :func:`Autotuner.decide_coll` picks the
  ``auto`` rung for the uniform ``alltoall`` among staged / nonblocking
  / direct.  Tuned ``direct`` assumes the symmetric placement every
  valid uniform alltoall already has (same contract as configuring
  ``coll_algorithm="direct"`` world-wide); the ragged ``alltoallv``
  keeps the static auto rule.
* **GPU engine** — :func:`Autotuner.decide_plan` overrides
  :func:`~repro.datatype.canonical.select_gpu_plan`'s hand-set cost
  model with learned seconds-per-byte, but only when *every* feasible
  plan for the form has measured history — a half-trained table must
  not beat a sensible model.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.datatype.canonical import CanonicalForm
from repro.tune.table import DecisionTable, band_label, validate_bands

if TYPE_CHECKING:
    from repro.mpi.config import MpiConfig

__all__ = [
    "SendChoice",
    "Autotuner",
    "send_choice_str",
    "parse_send_choice",
    "struct_sig",
]

MODES = ("off", "observe", "on")


@dataclass(frozen=True)
class SendChoice:
    """A tuned rendezvous-send decision."""

    frag_bytes: int
    depth: int
    #: advertised preference; the receiver applies it only if feasible
    protocol: Optional[str] = None


def send_choice_str(frag_bytes: int, depth: int, protocol: Optional[str]) -> str:
    """Encode a send choice as a table choice string."""
    return f"frag={frag_bytes},depth={depth},proto={protocol or '-'}"


def parse_send_choice(choice: str) -> Optional[SendChoice]:
    """Decode a send choice string; None for non-send choices (``eager``)."""
    if not choice.startswith("frag="):
        return None
    try:
        parts = dict(p.split("=", 1) for p in choice.split(","))
        frag = int(parts["frag"])
        depth = int(parts["depth"])
        proto = parts.get("proto", "-")
    except (ValueError, KeyError):
        return None
    if frag <= 0 or depth < 1:
        return None
    return SendChoice(frag, depth, None if proto == "-" else proto)


def struct_sig(form: CanonicalForm) -> str:
    """Size-normalized structural signature of a canonical form.

    The *shape class* — not the exact element count — is what picks a
    pack strategy, and banding is what generalizes across sizes.  A
    vector keeps its (blocklength, stride) geometry so a 64-row and a
    512-row instance of the same matrix column share history in
    different bands; irregular ``runs`` layouts keep their exact span
    digest (their geometry *is* their identity).
    """
    if form.kind == "vector":
        return f"v{form.blocklength}x{form.stride}"
    if form.kind == "runs":
        # the canonical key is ("runs", blocks, size, digest)
        return f"runs{form.key[3]}"
    return form.kind  # "contig" | "empty"


class Autotuner:
    """Frozen-decision autotuner over a :class:`DecisionTable`.

    One instance is shared world-wide (built by
    :class:`~repro.mpi.world.MpiWorld` and handed to every rank, like
    the fault plan), so all ranks decide from the same frozen snapshot.
    ``seed`` identifies the offline training trajectory that produced
    the table; it is recorded for provenance and used by the training
    harness, never by in-run decisions.
    """

    def __init__(
        self,
        table: Optional[DecisionTable] = None,
        mode: str = "on",
        seed: int = 0,
        bands: Optional[tuple[int, ...]] = None,
    ) -> None:
        if mode not in ("observe", "on"):
            raise ValueError(
                f"Autotuner mode must be 'observe' or 'on', got {mode!r}"
            )
        if bands is not None:
            bands = validate_bands(bands)
        self.table = table if table is not None else DecisionTable(bands)
        if bands is not None and self.table.bands != bands:
            raise ValueError(
                f"decision-table bands {self.table.bands} do not match "
                f"configured tuner_bands {bands}"
            )
        self.mode = mode
        self.seed = seed
        #: decisions are made against this frozen cost view only
        self._frozen: dict[str, dict[str, float]] = (
            self.table.snapshot() if mode == "on" else {}
        )
        #: key -> choice actually applied this run (reproducibility digest)
        self.decisions: dict[str, str] = {}

    @classmethod
    def from_config(cls, config: "MpiConfig") -> Optional["Autotuner"]:
        """Build (or decline to build) the tuner a config asks for.

        Returns ``None`` for ``autotune="off"``.  A configured
        ``tuner_table`` path is loaded strictly — a malformed table
        raises ``ValueError`` at world construction rather than running
        untuned.
        """
        if config.autotune == "off":
            return None
        bands = validate_bands(config.tuner_bands)
        table = None
        if config.tuner_table is not None:
            table = DecisionTable.load(config.tuner_table)
        return cls(
            table=table, mode=config.autotune, seed=config.tuner_seed,
            bands=bands,
        )

    # -- keys --------------------------------------------------------------
    def _band(self, nbytes: int) -> str:
        return band_label(self.table.bands, nbytes)

    def p2p_key(self, form: CanonicalForm, nbytes: int, intra: bool, s_loc: str) -> str:
        """Sender-side point-to-point key.

        Built from what the sender knows at RTS time: the canonical form,
        the size band, node topology, and its own buffer placement (the
        receiver's placement arrives only with the CTS; the protocol that
        actually ran is part of the recorded *choice* instead).
        """
        topo = "intra" if intra else "inter"
        return f"p2p/{struct_sig(form)}/{self._band(nbytes)}/{topo}/{s_loc[0]}"

    def coll_key(
        self, op: str, peer_bytes: int, device: bool, n_nodes: int, size: int
    ) -> str:
        """Collective key: op, placement, per-peer band, world shape."""
        loc = "dev" if device else "host"
        return (
            f"coll/{op}/{loc}/{self._band(peer_bytes)}/n{n_nodes}x{size}"
        )

    def plan_key(self, form: CanonicalForm, nbytes: int) -> str:
        """GPU pack-plan key: structural signature + size band."""
        return f"plan/{struct_sig(form)}/{self._band(nbytes)}"

    # -- decide ------------------------------------------------------------
    def _best_frozen(self, key: str, feasible=None) -> Optional[str]:
        costs = self._frozen.get(key)
        if not costs:
            return None
        ranked = [
            (c, choice)
            for choice, c in costs.items()
            if feasible is None or choice in feasible
        ]
        if not ranked:
            return None
        return min(ranked)[1]

    def decide_send(self, key: str) -> Optional[SendChoice]:
        """Tuned (frag, depth, preferred protocol) for a rendezvous send."""
        if self.mode != "on":
            return None
        costs = self._frozen.get(key)
        if not costs:
            return None
        ranked = []
        for choice, c in costs.items():
            parsed = parse_send_choice(choice)
            if parsed is not None:
                ranked.append((c, choice, parsed))
        if not ranked:
            return None
        _c, choice, parsed = min(ranked, key=lambda t: (t[0], t[1]))
        self.decisions[key] = choice
        return parsed

    def decide_coll(self, key: str, feasible) -> Optional[str]:
        """Tuned algorithm value for a collective, or None (static auto)."""
        if self.mode != "on":
            return None
        choice = self._best_frozen(key, feasible)
        if choice is not None:
            self.decisions[key] = choice
        return choice

    def decide_plan(self, key: str, feasible) -> Optional[str]:
        """Tuned GPU pack plan, only with full coverage of ``feasible``.

        With a single feasible plan there is nothing to decide; with
        several, every one must have history before learned costs
        override the static model — otherwise the one plan that happened
        to run during training would always win.
        """
        if self.mode != "on" or len(feasible) < 2:
            return None
        costs = self._frozen.get(key)
        if not costs or any(p not in costs for p in feasible):
            return None
        choice = min((costs[p], p) for p in feasible)[1]
        self.decisions[key] = choice
        return choice

    # -- observe -----------------------------------------------------------
    def observe_send(
        self,
        key: str,
        frag_bytes: int,
        depth: int,
        protocol: Optional[str],
        seconds: float,
        nbytes: int,
    ) -> None:
        """Record a completed rendezvous send under its choice string."""
        self.table.observe(
            key, send_choice_str(frag_bytes, depth, protocol), seconds, nbytes
        )

    def observe_eager(self, key: str, seconds: float, nbytes: int) -> None:
        """Record an eager send (informational; never a tuned choice)."""
        self.table.observe(key, "eager", seconds, nbytes)

    def observe_coll(
        self, key: str, algo: str, seconds: float, nbytes: int
    ) -> None:
        """Record one rank's elapsed time for a collective call."""
        self.table.observe(key, algo, seconds, nbytes)

    def observe_plan(
        self, key: str, plan: str, seconds: float, nbytes: int
    ) -> None:
        """Record a GPU pack-plan cost sample (prep or per-fragment)."""
        self.table.observe(key, plan, seconds, nbytes)

    # -- reproducibility ---------------------------------------------------
    def decisions_digest(self) -> str:
        """Stable digest of every (key, choice) decision applied so far.

        The schedule explorer asserts this digest is bit-identical across
        perturbed event orderings — the acceptance criterion that tuned
        selection per size band is reproducible.
        """
        h = hashlib.blake2b(digest_size=12)
        for key in sorted(self.decisions):
            h.update(key.encode())
            h.update(b"=")
            h.update(self.decisions[key].encode())
            h.update(b"\n")
        return h.hexdigest()

    def __repr__(self) -> str:
        return (
            f"Autotuner(mode={self.mode!r}, keys={len(self.table)}, "
            f"decisions={len(self.decisions)})"
        )
