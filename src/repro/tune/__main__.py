"""Offline autotuner CLI: train a decision table, compare it to static.

Training (``--train``) replays the seeded multi-tenant traffic mix and
the alltoall ladder under a sweep of *static* candidate configurations
with an observe-mode :class:`~repro.tune.tuner.Autotuner` attached, so
every (key, choice) pair accumulates measured virtual-clock costs:

* fragment/depth candidates over the traffic replay (eager, host, and
  device rendezvous keys);
* a ``use_cuda_ipc=False`` leg, so the MVAPICH-style copy-in/out
  baseline is sampled as a first-class protocol choice — the table can
  legitimately prefer it where it wins;
* a ``force_dev_path`` leg, so the generic gather plan has history and
  :meth:`~repro.tune.tuner.Autotuner.decide_plan`'s full-coverage rule
  can engage;
* staged/nonblocking/direct sweeps of the uniform alltoall.

All exploration happens *here*, offline and seeded — in-run decisions
are deterministic argmins over the frozen table, which is what keeps
tuned runs explorer-clean (docs/AUTOTUNER.md).

Comparison (``--compare TABLE``) reports, per table key, the tuned
choice against the static :class:`~repro.mpi.config.MpiConfig` pick;
``--format github`` emits ``::notice`` workflow annotations for the
divergences so they surface inline on pull requests.  Exit code is
always 0 — divergence is information, not failure.
"""

from __future__ import annotations

import argparse
import sys

from repro.tune.table import DecisionTable
from repro.tune.tuner import Autotuner, send_choice_str

#: (frag_bytes, pipeline_depth) static candidates the sweep measures
FULL_CANDIDATES = ((256 << 10, 2), (1 << 20, 4), (4 << 20, 8))
QUICK_CANDIDATES = ((256 << 10, 2), (1 << 20, 4))

#: per-peer alltoall block sizes for the collective sweep
FULL_COLL_SIZES = (1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10)
QUICK_COLL_SIZES = (4 << 10, 64 << 10)

#: rungs sampled for the uniform alltoall (mirrors collectives._TUNABLE_A2A)
TUNABLE_A2A = ("staged", "nonblocking", "direct")


def train(out: str, quick: bool, seed: int, verbose: bool = True) -> DecisionTable:
    """Run the sweeps, persist the merged table at ``out``, return it."""
    from repro.bench.harness import alltoall_times
    from repro.gpu_engine import EngineOptions
    from repro.mpi.collectives import CollAlgorithm
    from repro.mpi.config import MpiConfig
    from repro.workloads.traffic import TrafficSpec, run_traffic

    tuner = Autotuner(DecisionTable(), mode="observe", seed=seed)
    spec = TrafficSpec(
        seed=seed, rounds=2 if quick else 4, tenants=2 if quick else 3
    )
    candidates = QUICK_CANDIDATES if quick else FULL_CANDIDATES
    for frag, depth in candidates:
        base = MpiConfig(frag_bytes=frag, pipeline_depth=depth)
        # IPC on: device pairs sample the RDMA pipeline at (frag, depth)
        run_traffic(spec, config=base, tuner=tuner)
        # IPC off: the same keys sample the copy-in/out baseline
        run_traffic(spec, config=base.but(use_cuda_ipc=False), tuner=tuner)
    # forced generic-DEV leg: gather plan costs for vector-describable
    # types, so decide_plan's full-coverage requirement can be met
    run_traffic(
        spec,
        config=MpiConfig(engine=EngineOptions(force_dev_path=True)),
        tuner=tuner,
    )
    algos = [CollAlgorithm(a) for a in TUNABLE_A2A]
    for nbytes in QUICK_COLL_SIZES if quick else FULL_COLL_SIZES:
        # record the measured wall time per rung — the metric a tuned
        # "auto" must minimize — rather than per-rank in-run elapsed
        times = alltoall_times(nbytes, algos, n_nodes=2, gpus_per_node=2)
        peer = max(nbytes // 8, 1) * 8
        key = tuner.coll_key("alltoall", peer, True, n_nodes=2, size=4)
        for algo, t in times.items():
            tuner.observe_coll(key, algo, t, peer * 4)
    table = tuner.table
    table.save(out)
    if verbose:
        print(
            f"trained {len(table)} keys / {table.total_samples} samples "
            f"-> {out}"
        )
    return table


def _parse_band_edge(label: str) -> int:
    """Representative byte count of a band label ('le32768' / 'gt...')."""
    if label.startswith("le"):
        return int(label[2:])
    return int(label[2:]) + 1


def _static_p2p_protocol(key: str) -> str:
    """The classic handshake outcome for a symmetric pair of this key.

    ``p2p/{sig}/{band}/{topo}/{loc}`` carries only the sender side, but
    for the like-for-like pairs the traffic generator sends, the static
    pick is determined: host senders stage via host, intra-node device
    pairs ride CUDA IPC, inter-node device pairs copy in/out.
    """
    topo, loc = key.rsplit("/", 2)[1:]
    if loc == "h":
        return "host"
    return "ipc_rdma" if topo == "intra" else "copyinout"


def _static_coll_choice(key: str) -> str | None:
    """The static ``"auto"`` rung for a coll key, or None if not an a2a."""
    from repro.mpi.config import MpiConfig

    _c, op, loc, band = key.split("/")[:4]
    if op not in ("alltoall", "alltoallv"):
        return None
    cfg = MpiConfig()
    if loc == "dev" and _parse_band_edge(band) <= cfg.coll_staged_threshold:
        return "staged"
    return "nonblocking"


def compare(table_path: str, fmt: str) -> int:
    """Print tuned-vs-static picks for every key; annotate divergences."""
    from repro.mpi.config import MpiConfig

    table = DecisionTable.load(table_path)
    tuner = Autotuner(table, mode="on")
    cfg = MpiConfig()
    divergences = 0
    for key in sorted(table.entries):
        tuned: str | None = None
        static: str | None = None
        if key.startswith("p2p/"):
            choice = tuner.decide_send(key)
            if choice is not None:
                tuned = send_choice_str(
                    choice.frag_bytes, choice.depth, choice.protocol
                )
                static = send_choice_str(
                    cfg.frag_bytes, cfg.pipeline_depth,
                    _static_p2p_protocol(key),
                )
        elif key.startswith("coll/"):
            tuned = tuner.decide_coll(key, TUNABLE_A2A)
            static = _static_coll_choice(key)
        else:  # plan/... — informational only (static pick needs the form)
            tuned = table.best(key)
        if tuned is None:
            continue
        diverges = static is not None and tuned != static
        mark = "  DIVERGES" if diverges else ""
        print(f"{key}: tuned={tuned} static={static or '-'}{mark}")
        if diverges:
            divergences += 1
            if fmt == "github":
                print(
                    "::notice title=autotuner divergence::"
                    f"{key}: tuned pick {tuned} differs from the static "
                    f"MpiConfig pick {static}"
                )
    print(f"{divergences} divergence(s) across {len(table)} keys")
    return 0


def main(argv=None) -> int:
    """Entry point: ``--train --out PATH`` or ``--compare TABLE``."""
    p = argparse.ArgumentParser(
        prog="python -m repro.tune",
        description="train / inspect the protocol autotuner decision table",
    )
    p.add_argument("--train", action="store_true", help="run the training sweeps")
    p.add_argument("--out", help="where --train writes the decision table")
    p.add_argument(
        "--quick", action="store_true",
        help="smaller sweep (CI-sized; same keys, fewer samples)",
    )
    p.add_argument(
        "--seed", type=int, default=0,
        help="traffic seed for the training replay (default 0)",
    )
    p.add_argument("--compare", metavar="TABLE", help="report tuned vs static picks")
    p.add_argument(
        "--format", choices=("text", "github"), default="text",
        help="'github' adds ::notice annotations for divergences",
    )
    args = p.parse_args(argv)
    if args.train:
        if not args.out:
            p.error("--train requires --out PATH")
        train(args.out, args.quick, args.seed)
        return 0
    if args.compare:
        try:
            return compare(args.compare, args.format)
        except ValueError as err:
            print(f"error: {err}", file=sys.stderr)
            return 1
    p.error("nothing to do: pass --train --out PATH or --compare TABLE")
    return 2  # unreachable (error() raises SystemExit)


if __name__ == "__main__":
    sys.exit(main())
