"""Adaptive protocol/plan autotuner (docs/AUTOTUNER.md).

``repro.tune`` selects protocol, fragment size, pipeline depth, pack
plan and collective rung per (canonical datatype form, message-size
band, topology) from measured history, with the MVAPICH-style
host-staged baseline as a first-class fallback choice.  See
:mod:`repro.tune.tuner` for the mode contract (off / observe / on) and
:mod:`repro.tune.table` for the schema-versioned decision table; train
and inspect tables with ``python -m repro.tune``.
"""

from repro.tune.table import DEFAULT_BANDS, SCHEMA, DecisionTable
from repro.tune.tuner import Autotuner, SendChoice

__all__ = [
    "SCHEMA",
    "DEFAULT_BANDS",
    "DecisionTable",
    "Autotuner",
    "SendChoice",
]
