"""The autotuner's persistable decision table.

A :class:`DecisionTable` accumulates *observations* — ``(key, choice,
seconds, nbytes)`` samples measured on the simulated clock — and answers
*decisions*: the cheapest observed choice for a key, by mean seconds per
byte.  Keys are flat strings built by :mod:`repro.tune.tuner` from the
canonical datatype form, the message size band, and the topology
(``p2p/v1024x2048/le32768/intra/d``); choices are flat strings too
(``frag=1048576,depth=4,proto=ipc_rdma``, ``staged``, ``vector_kernel``),
so the table itself knows nothing about protocols or plans and the JSON
document stays diffable.

The on-disk form is schema-versioned exactly like ``BENCH_*.json``
(:data:`SCHEMA`); :meth:`DecisionTable.from_doc` hard-fails on a missing
or unknown schema tag and on malformed entries — a half-loaded decision
table silently steering every transfer is the one failure mode this
subsystem must not have.

Size bands quantize message sizes so history generalizes: an observation
at 48 KB informs a decision at 60 KB.  ``bands`` are the inclusive upper
edges in bytes; band *i* covers ``(bands[i-1], bands[i]]`` and one open
band covers everything above the last edge.
"""

from __future__ import annotations

import json
import os
from bisect import bisect_left
from typing import Iterable, Optional

__all__ = [
    "SCHEMA",
    "DEFAULT_BANDS",
    "band_of",
    "band_label",
    "validate_bands",
    "DecisionTable",
]

#: schema tag of the persisted JSON document (bump on layout change)
SCHEMA = "repro-tune/1"

#: default size-band upper edges (bytes): eager-ish, small/medium/large
#: rendezvous, plus the open top band.  4 KB..2 MB brackets the range
#: where the paper's schemes trade places (crossovers at ~30 KB and ~MB).
DEFAULT_BANDS = (4 << 10, 32 << 10, 256 << 10, 2 << 20)


def validate_bands(bands) -> tuple[int, ...]:
    """Normalize and validate band edges; raises ``ValueError`` if bad."""
    if isinstance(bands, (str, bytes)) or not isinstance(bands, Iterable):
        raise ValueError(f"size bands must be a sequence of bytes, got {bands!r}")
    edges = tuple(bands)
    if not edges:
        raise ValueError("size bands must name at least one edge")
    for e in edges:
        if isinstance(e, bool) or not isinstance(e, int) or e <= 0:
            raise ValueError(f"size-band edges must be positive ints, got {e!r}")
    if any(b <= a for a, b in zip(edges, edges[1:])):
        raise ValueError(f"size-band edges must be strictly increasing: {edges}")
    return edges


def band_of(bands: tuple[int, ...], nbytes: int) -> int:
    """Index of the band containing ``nbytes`` (``len(bands)`` = open top)."""
    return bisect_left(bands, nbytes)


def band_label(bands: tuple[int, ...], nbytes: int) -> str:
    """Stable band name for keys: ``le<edge>`` or ``gt<last-edge>``."""
    i = band_of(bands, nbytes)
    if i < len(bands):
        return f"le{bands[i]}"
    return f"gt{bands[-1]}"


class DecisionTable:
    """Observed costs per (key, choice), with argmin decisions.

    ``entries[key][choice]`` is ``[samples, seconds, nbytes]`` — plain
    lists so the JSON round-trip is the identity.  Costs are mean seconds
    per byte (zero-byte observations, e.g. DEV-prep overheads, still
    contribute their seconds), so choices observed on different message
    counts stay comparable within a band.
    """

    def __init__(self, bands: Optional[tuple[int, ...]] = None) -> None:
        self.bands: tuple[int, ...] = validate_bands(bands or DEFAULT_BANDS)
        self.entries: dict[str, dict[str, list]] = {}

    # -- recording ---------------------------------------------------------
    def observe(self, key: str, choice: str, seconds: float, nbytes: int) -> None:
        """Fold one measured sample into the (key, choice) cell."""
        if seconds < 0 or nbytes < 0:
            raise ValueError(
                f"observation must be non-negative: {seconds}s / {nbytes}B"
            )
        cell = self.entries.setdefault(key, {}).setdefault(choice, [0, 0.0, 0])
        cell[0] += 1
        cell[1] += seconds
        cell[2] += nbytes

    def merge(self, other: "DecisionTable") -> None:
        """Fold another table's samples into this one (bands must match)."""
        if other.bands != self.bands:
            raise ValueError(
                f"cannot merge tables with different bands: "
                f"{self.bands} vs {other.bands}"
            )
        for key, choices in other.entries.items():
            mine = self.entries.setdefault(key, {})
            for choice, (n, s, b) in choices.items():
                cell = mine.setdefault(choice, [0, 0.0, 0])
                cell[0] += n
                cell[1] += s
                cell[2] += b

    # -- deciding ----------------------------------------------------------
    def cost(self, key: str, choice: str) -> Optional[float]:
        """Mean seconds per byte of a (key, choice) cell; None if unseen."""
        cell = self.entries.get(key, {}).get(choice)
        if cell is None or cell[0] == 0:
            return None
        _n, seconds, nbytes = cell
        return seconds / max(nbytes, 1)

    def best(self, key: str, feasible=None) -> Optional[str]:
        """Cheapest observed choice for ``key`` among ``feasible``.

        Deterministic: ties break lexicographically on the choice string,
        independent of observation (and dict) order.
        """
        choices = self.entries.get(key)
        if not choices:
            return None
        ranked = []
        for choice in choices:
            if feasible is not None and choice not in feasible:
                continue
            c = self.cost(key, choice)
            if c is not None:
                ranked.append((c, choice))
        if not ranked:
            return None
        return min(ranked)[1]

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Frozen ``{key: {choice: cost}}`` view for in-run decisions.

        The autotuner decides from this copy, taken once at construction,
        so observations recorded *during* a run can never steer that same
        run — decisions stay independent of event-arrival order, which is
        what keeps tuned runs schedule-explorer clean.
        """
        return {
            key: {
                choice: cost
                for choice in choices
                if (cost := self.cost(key, choice)) is not None
            }
            for key, choices in self.entries.items()
        }

    @property
    def total_samples(self) -> int:
        return sum(
            cell[0] for choices in self.entries.values() for cell in choices.values()
        )

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        return (
            f"DecisionTable({len(self.entries)} keys, "
            f"{self.total_samples} samples)"
        )

    # -- persistence -------------------------------------------------------
    def to_doc(self) -> dict:
        """The schema-versioned JSON document (sorted for diffability)."""
        return {
            "schema": SCHEMA,
            "bands": list(self.bands),
            "entries": {
                key: {
                    choice: [cell[0], cell[1], cell[2]]
                    for choice, cell in sorted(self.entries[key].items())
                }
                for key in sorted(self.entries)
            },
        }

    @classmethod
    def from_doc(cls, doc) -> "DecisionTable":
        """Parse and *strictly* validate a decision-table document.

        Raises ``ValueError`` on a missing/unknown schema tag or any
        malformed entry — consistent with the bench gate's
        missing-metric=fail rule.  A decision table is load-bearing
        config, not advisory data; a typo must not degrade to "tuner
        silently does nothing".
        """
        if not isinstance(doc, dict):
            raise ValueError(
                f"decision table must be a JSON object, got {type(doc).__name__}"
            )
        schema = doc.get("schema")
        if schema != SCHEMA:
            raise ValueError(
                f"decision table has schema {schema!r}, expected {SCHEMA!r} "
                "(missing or unknown schema tags are hard failures)"
            )
        table = cls(bands=validate_bands(doc.get("bands", DEFAULT_BANDS)))
        entries = doc.get("entries", {})
        if not isinstance(entries, dict):
            raise ValueError("decision table 'entries' must be an object")
        for key, choices in entries.items():
            if not isinstance(key, str) or not key:
                raise ValueError(f"decision-table key must be a string: {key!r}")
            if not isinstance(choices, dict):
                raise ValueError(f"choices for {key!r} must be an object")
            for choice, cell in choices.items():
                if not isinstance(choice, str) or not choice:
                    raise ValueError(
                        f"choice under {key!r} must be a string: {choice!r}"
                    )
                ok = (
                    isinstance(cell, (list, tuple))
                    and len(cell) == 3
                    and isinstance(cell[0], int)
                    and not isinstance(cell[0], bool)
                    and isinstance(cell[1], (int, float))
                    and not isinstance(cell[1], bool)
                    and isinstance(cell[2], int)
                    and not isinstance(cell[2], bool)
                    and cell[0] > 0
                    and cell[1] >= 0
                    and cell[2] >= 0
                )
                if not ok:
                    raise ValueError(
                        f"malformed cell for {key!r}/{choice!r}: expected "
                        f"[samples>0, seconds>=0, nbytes>=0], got {cell!r}"
                    )
                table.entries.setdefault(key, {})[choice] = [
                    cell[0], float(cell[1]), cell[2],
                ]
        return table

    def save(self, path: str) -> str:
        """Write the document to ``path`` (creating parent directories)."""
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w") as fh:
            json.dump(self.to_doc(), fh, indent=2, sort_keys=False)
            fh.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> "DecisionTable":
        """Read and validate a table; JSON syntax errors become ValueError."""
        with open(path) as fh:
            try:
                doc = json.load(fh)
            except json.JSONDecodeError as err:
                raise ValueError(f"decision table {path}: invalid JSON: {err}")
        return cls.from_doc(doc)
