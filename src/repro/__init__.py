"""repro — GPU-Aware Non-contiguous Data Movement In Open MPI (HPDC'16).

A complete, simulated reproduction of Wu et al.'s GPU datatype engine and
its Open MPI integration: MPI derived datatypes, the two-stage
DEV/CUDA_DEV GPU pack-unpack engine, the pipelined CUDA-IPC RDMA and
copy-in/copy-out protocols, the MVAPICH-style comparator, and a
discrete-event hardware model (GPU, PCIe, InfiniBand) on which every
experiment of the paper's evaluation section can be regenerated.

Quick start::

    from repro.hw import Cluster
    from repro.mpi import MpiWorld
    from repro.workloads import submatrix_type

    cluster = Cluster(n_nodes=1, gpus_per_node=2)
    world = MpiWorld(cluster, placements=[(0, 0), (0, 1)])
    V = submatrix_type(1024, 2048)
    ...

See ``examples/quickstart.py`` for the runnable version.
"""

from repro.datatype import (
    BYTE,
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    contiguous,
    hindexed,
    hvector,
    indexed,
    indexed_block,
    resized,
    struct,
    subarray,
    vector,
)
from repro.gpu_engine import DevCache, EngineOptions, GpuDatatypeEngine
from repro.hw import Cluster
from repro.mpi import MpiConfig, MpiWorld

__version__ = "1.0.0"

__all__ = [
    "BYTE",
    "CHAR",
    "INT",
    "FLOAT",
    "DOUBLE",
    "contiguous",
    "vector",
    "hvector",
    "indexed",
    "hindexed",
    "indexed_block",
    "struct",
    "subarray",
    "resized",
    "DevCache",
    "EngineOptions",
    "GpuDatatypeEngine",
    "Cluster",
    "MpiConfig",
    "MpiWorld",
    "__version__",
]
