"""MPI message matching: posted receives vs unexpected messages.

Implements the MPI ordering guarantee: messages from the same (source,
communicator) match posted receives in send order (the envelope sequence
number provides the total order per source), and a receive posted with
wildcards matches the earliest eligible unexpected message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.mpi.message import Envelope
from repro.sanitize import runtime as _san
from repro.sim.core import Future

__all__ = ["PostedRecv", "MatchingEngine"]


@dataclass
class PostedRecv:
    """A receive waiting for a sender."""

    source: int
    tag: int
    comm_id: int
    on_match: Future  # resolved with the matched arrival object
    posted_order: int = 0


class MatchingEngine:
    """Per-rank matcher."""

    def __init__(self) -> None:
        self._posted: list[PostedRecv] = []
        self._unexpected: list[tuple[Envelope, Any]] = []
        self._order = 0
        #: next expected pair_seq per (source, comm_id)
        self._next_pair: dict[tuple[int, int], int] = {}
        #: out-of-order arrivals held until the gap closes, keyed
        #: (source, comm_id) -> {pair_seq: (env, arrival)}
        self._held: dict[tuple[int, int], dict[int, tuple[Envelope, Any]]] = {}

    # -- sender side -----------------------------------------------------
    def arrive(self, env: Envelope, arrival: Any) -> Optional[PostedRecv]:
        """A first-fragment/RTS arrived; match or queue as unexpected.

        Returns the matched posted receive (already removed), or None.
        ``arrival`` is whatever the protocol needs to continue (an RTS
        descriptor, eager data, ...) and is handed to the receive.

        Arrivals stamped with a ``pair_seq`` are re-sequenced per
        (source, comm) before matching: a message that overtook an
        earlier-posted one on the wire (smaller eager pack, injected
        delay) is held back until the gap closes, so matching always
        sees send order — MPI's non-overtaking guarantee.
        """
        if env.pair_seq < 0:
            return self._deliver(env, arrival)
        key = (env.source, env.comm_id)
        expected = self._next_pair.get(key, 0)
        if env.pair_seq != expected:
            self._held.setdefault(key, {})[env.pair_seq] = (env, arrival)
            return None
        matched = self._deliver(env, arrival)
        expected += 1
        held = self._held.get(key)
        while held and expected in held:
            e2, a2 = held.pop(expected)
            self._deliver(e2, a2)
            expected += 1
        self._next_pair[key] = expected
        return matched

    def _deliver(self, env: Envelope, arrival: Any) -> Optional[PostedRecv]:
        """Match an in-order arrival against posted receives, or queue it."""
        if _san.VERIFY is not None:
            _san.VERIFY.on_deliver(self, env)
        for i, post in enumerate(self._posted):
            if env.matches(post.source, post.tag) and env.comm_id == post.comm_id:
                del self._posted[i]
                post.on_match.resolve(arrival)
                return post
        self._unexpected.append((env, arrival))
        return None

    # -- receiver side --------------------------------------------------------
    def post(self, post: PostedRecv) -> Optional[Any]:
        """Post a receive; if an unexpected message matches, consume it.

        The unexpected queue is scanned in delivery order — :meth:`arrive`
        re-sequences stamped arrivals before queueing, so list order *is*
        send order per source, preserving MPI's non-overtaking rule.

        A wildcard receive facing unexpected messages from *several*
        sources is a genuine MPI nondeterminism: per-source order is
        fixed, the inter-source choice is not.  The verifier's explorer
        perturbs exactly that choice (``match_choice``); default is the
        deterministic earliest delivery.
        """
        verify = _san.VERIFY
        if (
            verify is not None
            and verify.match_choice is not None
            and post.source < 0
        ):
            seen: set = set()
            candidates: list[int] = []
            for i, (env, arrival) in enumerate(self._unexpected):
                if (
                    env.matches(post.source, post.tag)
                    and env.comm_id == post.comm_id
                    and env.source not in seen
                ):
                    seen.add(env.source)
                    candidates.append(i)
            if candidates:
                i = verify.on_match_choice(self, post, candidates)
                env, arrival = self._unexpected[i]
                del self._unexpected[i]
                post.on_match.resolve(arrival)
                return arrival
            # fall through: nothing eligible, post normally
        for i, (env, arrival) in enumerate(self._unexpected):
            if env.matches(post.source, post.tag) and env.comm_id == post.comm_id:
                del self._unexpected[i]
                post.on_match.resolve(arrival)
                return arrival
        post.posted_order = self._order
        self._order += 1
        self._posted.append(post)
        return None

    @property
    def unexpected_count(self) -> int:
        return len(self._unexpected)

    @property
    def posted_count(self) -> int:
        return len(self._posted)
