"""MPI message matching: posted receives vs unexpected messages.

Implements the MPI ordering guarantee: messages from the same (source,
communicator) match posted receives in send order (the envelope sequence
number provides the total order per source), and a receive posted with
wildcards matches the earliest eligible unexpected message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.mpi.message import Envelope
from repro.sim.core import Future

__all__ = ["PostedRecv", "MatchingEngine"]


@dataclass
class PostedRecv:
    """A receive waiting for a sender."""

    source: int
    tag: int
    comm_id: int
    on_match: Future  # resolved with the matched arrival object
    posted_order: int = 0


class MatchingEngine:
    """Per-rank matcher."""

    def __init__(self) -> None:
        self._posted: list[PostedRecv] = []
        self._unexpected: list[tuple[Envelope, Any]] = []
        self._order = 0

    # -- sender side -----------------------------------------------------
    def arrive(self, env: Envelope, arrival: Any) -> Optional[PostedRecv]:
        """A first-fragment/RTS arrived; match or queue as unexpected.

        Returns the matched posted receive (already removed), or None.
        ``arrival`` is whatever the protocol needs to continue (an RTS
        descriptor, eager data, ...) and is handed to the receive.
        """
        for i, post in enumerate(self._posted):
            if env.matches(post.source, post.tag) and env.comm_id == post.comm_id:
                del self._posted[i]
                post.on_match.resolve(arrival)
                return post
        self._unexpected.append((env, arrival))
        return None

    # -- receiver side --------------------------------------------------------
    def post(self, post: PostedRecv) -> Optional[Any]:
        """Post a receive; if an unexpected message matches, consume it.

        Unexpected messages from one source are scanned in arrival order,
        preserving MPI's non-overtaking rule.
        """
        best_i = -1
        best_seq = None
        for i, (env, _arr) in enumerate(self._unexpected):
            if env.matches(post.source, post.tag) and env.comm_id == post.comm_id:
                if best_seq is None or env.seq < best_seq:
                    best_i, best_seq = i, env.seq
        if best_i >= 0:
            env, arrival = self._unexpected.pop(best_i)
            post.on_match.resolve(arrival)
            return arrival
        post.posted_order = self._order
        self._order += 1
        self._posted.append(post)
        return None

    @property
    def unexpected_count(self) -> int:
        return len(self._unexpected)

    @property
    def posted_count(self) -> int:
        return len(self._posted)
