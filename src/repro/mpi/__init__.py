"""A layered MPI point-to-point stack over the simulated cluster.

Mirrors the Open MPI architecture the paper integrates with (Section 4):

* **PML** (:mod:`repro.mpi.pml`) — matching, protocol selection
  (eager / rendezvous), fragmentation policy;
* **BML** (:mod:`repro.mpi.bml`) — picks the best BTL for a peer pair;
* **BTL** (:mod:`repro.mpi.btl`) — byte movers: shared memory (with CUDA
  IPC) and InfiniBand (with GPUDirect), both exposing BTL-level *Active
  Messages* — "an asynchronous communication mechanism ... each message
  header contains the reference of a callback handler triggered on the
  receiver side";
* **GPU protocols** (:mod:`repro.mpi.protocols`) — the paper's pipelined
  RDMA protocol (Fig 4) and copy-in/copy-out protocol, both driving the
  GPU datatype engine fragment by fragment.

Ranks are simulation coroutines; :class:`repro.mpi.world.MpiWorld` builds
them over a :class:`repro.hw.node.Cluster` and runs user programs.
"""

from repro.mpi.config import MpiConfig
from repro.mpi.requests import Request, Status
from repro.mpi.rma import RmaWindow
from repro.mpi.world import MpiWorld, RankContext
from repro.mpi import collectives

__all__ = [
    "MpiConfig",
    "Request",
    "Status",
    "RmaWindow",
    "MpiWorld",
    "RankContext",
    "collectives",
]
