"""One-sided communication (MPI RMA) over the GPU datatype machinery.

"Once constructed and committed, an MPI datatype can be used as an
argument for any point-to-point, collective, I/O, and **one-sided**
functions" (Section 1), and intra-node "CUDA IPC ... provides a one
sided copy mechanism similar to RDMA" (Section 4.1).

A :class:`RmaWindow` exposes one buffer per rank.  ``put``/``get`` are
origin-driven: the origin packs (or unpacks) with its own engine and the
scatter/gather in the *target's* memory runs as an origin-GPU kernel
streaming over the mapped window — no target-process involvement, which
is the point of one-sided semantics.  Inter-node windows stage through
host memory and charge the target node's passive hardware (its PCIe
links), again without a target coroutine.

``fence`` completes all locally issued operations and synchronizes
ranks, like ``MPI_Win_fence``.
"""

from __future__ import annotations

import itertools
import weakref
from typing import TYPE_CHECKING, Optional, Sequence

from repro.cuda.ipc import IpcMemHandle
from repro.datatype.ddt import Datatype
from repro.hw.memory import Buffer
from repro.mpi.protocols.common import CpuSideJob
from repro.sanitize import runtime as _san
from repro.sim.core import all_of

if TYPE_CHECKING:
    from repro.mpi.world import MpiWorld, RankContext

__all__ = ["RmaWindow", "one_sided_move"]

_win_ids = itertools.count()


class RmaWindow:
    """A window of remotely accessible buffers, one per rank."""

    def __init__(self, world: "MpiWorld", buffers: Sequence[Buffer]) -> None:
        if len(buffers) != world.size:
            raise ValueError("one window buffer per rank is required")
        self.world = world
        self.buffers = list(buffers)
        self.win_id = next(_win_ids)
        self.freed = False
        # per-origin-rank outstanding operations (completed by fence)
        self._pending: dict[int, list] = {r: [] for r in range(world.size)}
        # the verifier's finalize audit flags windows never freed; a
        # weakref keeps the registry from pinning dead windows alive
        world._rma_windows.append(weakref.ref(self))

    def free(self) -> None:
        """Release the window (``MPI_Win_free``).  Idempotent.

        Freeing with unfenced operations outstanding is an error — real
        MPI requires all RMA to be completed by a synchronization call
        before the free.
        """
        pending = sum(len(v) for v in self._pending.values())
        if pending:
            raise RuntimeError(
                f"RmaWindow w{self.win_id} freed with {pending} "
                f"unfenced operation(s)"
            )
        self.freed = True

    # -- access epoch ------------------------------------------------------
    def fence(self, mpi: "RankContext"):
        """Coroutine: complete local RMA ops, then synchronize all ranks."""
        pending = self._pending[mpi.rank]
        if pending:
            _vtok = None
            if _san.VERIFY is not None:
                _vtok = _san.VERIFY.wait_begin(
                    "fence", mpi.rank, mpi.sim,
                    detail=f"w{self.win_id}: {len(pending)} pending op(s)",
                    world=self.world,
                )
            yield all_of(mpi.sim, pending)
            if _san.VERIFY is not None:
                _san.VERIFY.wait_end(_vtok)
            pending.clear()
        yield mpi.barrier()

    # -- operations -----------------------------------------------------------
    def put(
        self,
        mpi: "RankContext",
        origin_buf: Buffer,
        origin_dt: Datatype,
        origin_count: int,
        target: int,
        target_dt: Optional[Datatype] = None,
        target_count: Optional[int] = None,
        target_offset: int = 0,
    ):
        """Start a put; completes at the next :meth:`fence`.

        The origin's data (``origin_dt`` layout) lands in the target's
        window laid out as ``target_dt`` — signatures must match, exactly
        as for sends.
        """
        proc = self._start(
            mpi, origin_buf, origin_dt, origin_count,
            target, target_dt, target_count, target_offset, "put",
        )
        self._pending[mpi.rank].append(proc)
        return proc

    def get(
        self,
        mpi: "RankContext",
        origin_buf: Buffer,
        origin_dt: Datatype,
        origin_count: int,
        target: int,
        target_dt: Optional[Datatype] = None,
        target_count: Optional[int] = None,
        target_offset: int = 0,
    ):
        """Start a get; completes at the next :meth:`fence`."""
        proc = self._start(
            mpi, origin_buf, origin_dt, origin_count,
            target, target_dt, target_count, target_offset, "get",
        )
        self._pending[mpi.rank].append(proc)
        return proc

    # -- internals ----------------------------------------------------------
    def _start(
        self, mpi, origin_buf, origin_dt, origin_count,
        target, target_dt, target_count, target_offset, op,
    ):
        from repro.mpi.pml import _signature_check, _times

        origin_dt.commit()
        target_dt = (target_dt or origin_dt).commit()
        target_count = origin_count if target_count is None else target_count
        if op == "put":
            _signature_check(
                _times(origin_dt.signature, origin_count),
                _times(target_dt.signature, target_count),
            )
        else:
            _signature_check(
                _times(target_dt.signature, target_count),
                _times(origin_dt.signature, origin_count),
            )
        coro = self._run(
            mpi, origin_buf, origin_dt, origin_count,
            target, target_dt, target_count, target_offset, op,
        )
        return mpi.sim.spawn(coro, label=f"rma.{op}@w{self.win_id}")

    def _run(
        self, mpi, origin_buf, origin_dt, origin_count,
        target, target_dt, target_count, target_offset, op,
    ):
        target_proc = self.world.procs[target]
        win_buf = self.buffers[target][target_offset:]
        moved = yield from one_sided_move(
            mpi.proc, origin_buf, origin_dt, origin_count,
            target_proc, win_buf, target_dt, target_count, op,
        )
        return moved


def one_sided_move(
    proc, origin_buf, origin_dt, origin_count,
    target_proc, target_buf, target_dt, target_count, op,
):
    """Coroutine: one origin-driven transfer into/out of ``target_buf``.

    The shared engine room of :class:`RmaWindow` and the direct-IPC
    collective algorithms (:mod:`repro.mpi.collectives`).  ``op`` is
    ``"put"`` (origin layout packed, scattered into the target buffer as
    ``target_dt``) or ``"get"`` (the reverse); signatures must match as
    for sends.  Same-node transfers run origin-driven kernels over the
    mapped (IPC-opened) buffer; inter-node transfers stage through host
    memory and charge the target node's passive hardware — no target
    coroutine either way.  Returns the packed byte count.
    """
    from repro.mpi.pml import _signature_check, _times

    origin_dt.commit()
    target_dt.commit()
    if op == "put":
        _signature_check(
            _times(origin_dt.signature, origin_count),
            _times(target_dt.signature, target_count),
        )
    else:
        _signature_check(
            _times(target_dt.signature, target_count),
            _times(origin_dt.signature, origin_count),
        )
    total = min(origin_dt.size * origin_count,
                target_dt.size * target_count)
    if total == 0:
        return 0
    if proc.node is target_proc.node:
        yield from _intra_node_move(
            proc, origin_buf, origin_dt, origin_count,
            target_proc, target_buf, target_dt, target_count, total, op,
        )
    else:
        yield from _inter_node_move(
            proc, origin_buf, origin_dt, origin_count,
            target_proc, target_buf, target_dt, target_count, total, op,
        )
    return total


def _intra_node_move(
    proc, origin_buf, origin_dt, origin_count,
    target_proc, win_buf, target_dt, target_count, total, op,
):
    """Origin-driven scatter/gather through the mapped window."""
    mapped = win_buf
    if win_buf.is_device and win_buf.device is not proc.gpu:
        handle = IpcMemHandle.get(win_buf)
        mapped = yield handle.open(proc.gpu, proc.ipc_cache)

    both_device = origin_buf.is_device and win_buf.is_device
    if both_device:
        engine = proc.engine
        stage = proc.acquire_staging("device", max(total, 256))
        try:
            if op == "put":
                pj = engine.pack_job(origin_dt, origin_count, origin_buf,
                                     proc.config.engine)
                yield from pj.process_all(stage[:total])
                uj = engine.unpack_job(target_dt, target_count, mapped,
                                       proc.config.engine)
                yield from uj.process_all(stage[:total])
            else:
                pj = engine.pack_job(target_dt, target_count, mapped,
                                     proc.config.engine)
                yield from pj.process_all(stage[:total])
                uj = engine.unpack_job(origin_dt, origin_count, origin_buf,
                                       proc.config.engine)
                yield from uj.process_all(stage[:total])
        finally:
            proc.release_staging("device", stage)
        return

    # host-involved windows: the origin CPU drives both transforms
    import numpy as np

    stage = np.empty(total, dtype=np.uint8)
    if op == "put":
        src = CpuSideJob(proc, origin_dt, origin_count, origin_buf, "pack")
        dst = CpuSideJob(proc, target_dt, target_count, mapped, "unpack")
    else:
        src = CpuSideJob(proc, target_dt, target_count, mapped, "pack")
        dst = CpuSideJob(proc, origin_dt, origin_count, origin_buf, "unpack")
    yield src.process_range(0, total, stage)
    yield proc.node.shmem_link.transfer(total, label="rma-shmem")
    yield dst.process_range(0, total, stage)


def _inter_node_move(
    proc, origin_buf, origin_dt, origin_count,
    target_proc, win_buf, target_dt, target_count, total, op,
):
    """Host-staged one-sided transfer; target hardware acts passively."""
    import numpy as np

    stage = np.empty(total, dtype=np.uint8)
    origin_is_put = op == "put"
    # 1. origin-side transform into/out of the wire buffer
    if origin_is_put:
        if origin_buf.is_device:
            hstage = proc.acquire_staging(
                "host", max(total, 256), zero_copy_map=True
            )
            pj = proc.engine.pack_job(origin_dt, origin_count, origin_buf,
                                      proc.config.engine)
            yield from pj.process_all(hstage[:total])
            stage[:] = hstage.bytes[:total]
            proc.release_staging("host", hstage, zero_copy_map=True)
        else:
            job = CpuSideJob(proc, origin_dt, origin_count, origin_buf, "pack")
            yield job.process_range(0, total, stage)
        # 2. the wire
        yield proc.node.nic.send(
            target_proc.node.name, total, label="rma-put"
        )
        # 3. passive completion at the target: its PCIe/memory moves
        yield from _passive_scatter(
            target_proc, win_buf, target_dt, target_count, stage, total
        )
    else:
        # get: request flight, passive gather at the target, data back
        yield proc.node.nic.send(target_proc.node.name, 64, label="rma-get-req")
        yield from _passive_gather(
            target_proc, win_buf, target_dt, target_count, stage, total
        )
        yield target_proc.node.nic.send(
            proc.node.name, total, label="rma-get-data"
        )
        if origin_buf.is_device:
            hstage = proc.acquire_staging(
                "host", max(total, 256), zero_copy_map=True
            )
            hstage.bytes[:total] = stage
            uj = proc.engine.unpack_job(origin_dt, origin_count, origin_buf,
                                        proc.config.engine)
            yield from uj.process_all(hstage[:total])
            proc.release_staging("host", hstage, zero_copy_map=True)
        else:
            job = CpuSideJob(proc, origin_dt, origin_count, origin_buf,
                             "unpack")
            yield job.process_range(0, total, stage)


def _passive_scatter(target_proc, win_buf, dt, count, stage, total):
    """Deposit wire bytes into the target window without a target rank.

    Device windows charge the target GPU's H2D link and an unpack kernel
    on a dedicated stream — hardware the origin's RDMA write drives.
    """
    from repro.datatype.convertor import Convertor

    if win_buf.is_device:
        gpu = win_buf.device
        hstage = target_proc.acquire_staging(
            "host", max(total, 256), zero_copy_map=False
        )
        hstage.bytes[:total] = stage[:total]
        dstage = target_proc.acquire_staging("device", max(total, 256))
        yield gpu.memcpy_h2d(dstage[:total], hstage[:total], stream=gpu.stream("rma"))
        stats = gpu.dev_kernel_stats(
            _unit_lens(dt, count, gpu.params.dev_unit_size)
        )
        conv = Convertor(dt, count, win_buf.bytes, "unpack")

        def move() -> None:
            conv.unpack_range(dstage.bytes[:total], 0, total)

        yield gpu.launch_kernel(stats, fn=move, stream=gpu.stream("rma"),
                                label="rma-unpack")
        target_proc.release_staging("host", hstage)
        target_proc.release_staging("device", dstage)
    else:
        conv = Convertor(dt, count, win_buf.bytes, "unpack")

        def move() -> None:
            conv.unpack_range(stage[:total], 0, total)

        yield target_proc.node.cpu_pack_op(total, fn=move, label="rma-unpack")


def _passive_gather(target_proc, win_buf, dt, count, stage, total):
    """Read the target window's layout into wire bytes, passively."""
    from repro.datatype.convertor import Convertor

    if win_buf.is_device:
        gpu = win_buf.device
        dstage = target_proc.acquire_staging("device", max(total, 256))
        stats = gpu.dev_kernel_stats(
            _unit_lens(dt, count, gpu.params.dev_unit_size)
        )
        conv = Convertor(dt, count, win_buf.bytes, "pack")

        def move() -> None:
            conv.pack_range(dstage.bytes[:total], 0, total)

        yield gpu.launch_kernel(stats, fn=move, stream=gpu.stream("rma"),
                                label="rma-pack")
        hstage = target_proc.acquire_staging("host", max(total, 256))
        yield gpu.memcpy_d2h(hstage[:total], dstage[:total], stream=gpu.stream("rma"))
        stage[:total] = hstage.bytes[:total]
        target_proc.release_staging("device", dstage)
        target_proc.release_staging("host", hstage)
    else:
        conv = Convertor(dt, count, win_buf.bytes, "pack")

        def move() -> None:
            conv.pack_range(stage[:total], 0, total)

        yield target_proc.node.cpu_pack_op(total, fn=move, label="rma-pack")


def _unit_lens(dt: Datatype, count: int, unit_size: int):
    from repro.gpu_engine.dev import to_devs
    from repro.gpu_engine.work_units import split_units

    return split_units(to_devs(dt, count), unit_size).lens
