"""Tunables of the MPI stack — the paper's experimental knobs.

Every configuration the evaluation varies is a field here: pipeline
fragment size and depth, CUDA IPC on/off (RDMA vs copy-in/out), zero-copy
on/off, receiver local staging (the 10-15 % effect of Section 5.2.1),
GPUDirect RDMA (only profitable under ~30 KB, per [14]), and the engine
options (cache, prep pipelining, grid size).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.gpu_engine.engine import EngineOptions

__all__ = ["MpiConfig"]

KB = 1024
MB = 1024 * KB


@dataclass(frozen=True)
class MpiConfig:
    #: messages at or below this size go eager (single Active Message)
    eager_limit: int = 12 * KB
    #: rendezvous pipeline fragment size
    frag_bytes: int = 1 * MB
    #: ring-buffer depth (concurrent in-flight fragments)
    pipeline_depth: int = 4

    #: allow CUDA IPC (intra-node GPU RDMA); when False the copy-in/out
    #: protocol is used even within a node (Section 4.2's motivation)
    use_cuda_ipc: bool = True
    #: use GPUDirect RDMA for inter-node GPU transfers instead of host
    #: staging (the paper avoids it for large messages)
    use_gpudirect_rdma: bool = False
    #: receiver copies each packed fragment into a local GPU buffer before
    #: unpacking, instead of unpacking from the mapped remote buffer —
    #: "by using a local GPU buffer, the performance is 10-15% faster"
    receiver_local_staging: bool = True
    #: UMA zero-copy for host staging buffers (copy-in/out protocol)
    zero_copy: bool = True
    #: direction of the general RDMA pipeline (Section 4.1 mentions both):
    #: "get" — sender packs into its own ring, receiver pulls (default,
    #: the Fig 4 flow); "put" — receiver exposes its ring, the sender's
    #: pack kernels write it directly through the mapped window
    rdma_mode: str = "get"

    #: GPU datatype engine options
    engine: EngineOptions = field(default_factory=EngineOptions)

    def but(self, **kw) -> "MpiConfig":
        """A modified copy (keyword-for-keyword)."""
        return replace(self, **kw)
