"""Tunables of the MPI stack — the paper's experimental knobs.

Every configuration the evaluation varies is a field here: pipeline
fragment size and depth, CUDA IPC on/off (RDMA vs copy-in/out), zero-copy
on/off, receiver local staging (the 10-15 % effect of Section 5.2.1),
GPUDirect RDMA (only profitable under ~30 KB, per [14]), and the engine
options (cache, prep pipelining, grid size).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.faults.plan import FaultSpec
from repro.gpu_engine.engine import EngineOptions
from repro.sanitize.options import SanitizeOptions
from repro.tune.table import DEFAULT_BANDS, validate_bands

__all__ = ["MpiConfig", "RetryPolicy"]

KB = 1024
MB = 1024 * KB


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retry knobs for the reliability layer (docs/ROBUSTNESS.md).

    A sender arms one retransmit timer per unACKed ``frag`` notification;
    the timer backs off exponentially (``rto * backoff**attempt``) and the
    transfer fails with :class:`repro.faults.TransferTimeout` once
    ``max_retries`` retransmissions go unanswered.  Timers are armed only
    when a fault plan is active (or ``always_on``), so fault-free
    benchmark timelines are untouched.
    """

    #: base retransmit timeout, seconds (generous: fragments are ~100 us)
    rto: float = 2e-3
    #: exponential backoff factor between retransmissions
    backoff: float = 2.0
    #: retransmissions per fragment before the transfer fails
    max_retries: int = 8
    #: sender-side CUDA IPC open attempts beyond the first
    ipc_open_retries: int = 4
    #: arm retransmit timers even without an active fault plan
    always_on: bool = False

    def __post_init__(self) -> None:
        if self.rto <= 0:
            raise ValueError(f"RetryPolicy.rto must be positive, got {self.rto}")
        if self.backoff < 1.0:
            raise ValueError(
                f"RetryPolicy.backoff must be >= 1, got {self.backoff}"
            )
        if self.max_retries < 0 or self.ipc_open_retries < 0:
            raise ValueError("RetryPolicy retry counts must be >= 0")


@dataclass(frozen=True)
class MpiConfig:
    #: messages at or below this size go eager (single Active Message)
    eager_limit: int = 12 * KB
    #: rendezvous pipeline fragment size
    frag_bytes: int = 1 * MB
    #: ring-buffer depth (concurrent in-flight fragments)
    pipeline_depth: int = 4

    #: allow CUDA IPC (intra-node GPU RDMA); when False the copy-in/out
    #: protocol is used even within a node (Section 4.2's motivation)
    use_cuda_ipc: bool = True
    #: use GPUDirect RDMA for inter-node GPU transfers instead of host
    #: staging (the paper avoids it for large messages)
    use_gpudirect_rdma: bool = False
    #: receiver copies each packed fragment into a local GPU buffer before
    #: unpacking, instead of unpacking from the mapped remote buffer —
    #: "by using a local GPU buffer, the performance is 10-15% faster"
    receiver_local_staging: bool = True
    #: UMA zero-copy for host staging buffers (copy-in/out protocol)
    zero_copy: bool = True
    #: direction of the general RDMA pipeline (Section 4.1 mentions both):
    #: "get" — sender packs into its own ring, receiver pulls (default,
    #: the Fig 4 flow); "put" — receiver exposes its ring, the sender's
    #: pack kernels write it directly through the mapped window
    rdma_mode: str = "get"

    #: collective algorithm selection (docs/COLLECTIVES.md): one of
    #: "auto", "pairwise", "nonblocking", "staged", "direct",
    #: "hierarchical".  "auto" keeps the classic per-op defaults
    #: (binomial bcast, linear gather, ring allgather) and picks
    #: staged-vs-direct for the alltoall family by message size; every
    #: collective also accepts an explicit per-call override
    coll_algorithm: str = "auto"
    #: per-peer packed bytes at or below which "auto" routes the
    #: alltoall family through the copy-to-host staged path; above it
    #: the device-direct path wins.  The ``coll_crossover`` bench
    #: scenario measures the flip at ~16-64 KB depending on topology
    #: (mostly-inter-node worlds) — this default sits in that band, and
    #: matches the paper's ~30 KB GPUDirect-profitability note
    coll_staged_threshold: int = 32 * KB

    #: adaptive autotuner mode (docs/AUTOTUNER.md): "off" keeps every
    #: static selection with zero overhead; "observe" records measured
    #: costs into the decision table without deciding (training runs);
    #: "on" decides protocol/frag/depth/plan/collective-rung from a
    #: table snapshot frozen at world construction
    autotune: str = "off"
    #: path of a persisted repro-tune/1 decision table to decide from
    #: (None = start empty); malformed tables fail world construction
    tuner_table: Optional[str] = None
    #: seed identifying the offline training trajectory (provenance +
    #: the training harness's traffic seed; never used by in-run
    #: decisions, which are deterministic argmins)
    tuner_seed: int = 0
    #: message-size band upper edges (bytes, strictly increasing) the
    #: tuner quantizes history with; one open band sits above the last
    tuner_bands: tuple = DEFAULT_BANDS

    #: keep a per-rank TransferStats log entry for every transfer.  On by
    #: default (WorldStats timing/fragment breakdowns need it); scale
    #: runs with thousands of ranks turn it off and fall back to the
    #: always-on protocol counters (see MpiWorld.stats)
    transfer_log: bool = True

    #: GPU datatype engine options
    engine: EngineOptions = field(default_factory=EngineOptions)

    #: timeout/retry/backoff for the rendezvous reliability layer
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: fault-injection plan (None = no injection); see repro.faults
    faults: Optional[FaultSpec] = None
    #: correctness checkers (docs/SANITIZERS.md); defaults to the
    #: ``REPRO_SANITIZE`` environment contract — all off when unset
    sanitize: SanitizeOptions = field(default_factory=SanitizeOptions.from_env)

    def __post_init__(self) -> None:
        if self.eager_limit < 0:
            raise ValueError(
                f"eager_limit must be >= 0, got {self.eager_limit}"
            )
        if self.frag_bytes <= 0:
            # frag_bytes=0 would make every fragment plan an infinite loop
            raise ValueError(
                f"frag_bytes must be positive, got {self.frag_bytes}"
            )
        if self.pipeline_depth < 1:
            # a zero-credit window can never admit the first fragment
            raise ValueError(
                f"pipeline_depth must be >= 1, got {self.pipeline_depth}"
            )
        if self.rdma_mode not in ("get", "put"):
            # receiver() dispatches on this string; anything else would
            # silently fall into the GET branch
            raise ValueError(
                f"rdma_mode must be 'get' or 'put', got {self.rdma_mode!r}"
            )
        if self.coll_algorithm not in (
            "auto", "pairwise", "nonblocking", "staged", "direct",
            "hierarchical",
        ):
            # collectives resolve this per call; a typo here would only
            # surface deep inside the first collective of a run
            raise ValueError(
                "coll_algorithm must be one of 'auto', 'pairwise', "
                "'nonblocking', 'staged', 'direct', 'hierarchical', "
                f"got {self.coll_algorithm!r}"
            )
        if self.coll_staged_threshold < 0:
            raise ValueError(
                "coll_staged_threshold must be >= 0, got "
                f"{self.coll_staged_threshold}"
            )
        if self.autotune not in ("off", "observe", "on"):
            # the world checks `!= "off"` to build the tuner; a typo like
            # "On" would silently run untuned
            raise ValueError(
                "autotune must be one of 'off', 'observe', 'on', got "
                f"{self.autotune!r}"
            )
        if self.tuner_table is not None and not isinstance(self.tuner_table, str):
            raise ValueError(
                f"tuner_table must be a path or None, got {self.tuner_table!r}"
            )
        if not isinstance(self.tuner_seed, int) or isinstance(
            self.tuner_seed, bool
        ) or self.tuner_seed < 0:
            raise ValueError(
                f"tuner_seed must be a non-negative int, got {self.tuner_seed!r}"
            )
        # normalize (lists become tuples) and validate edges up front so a
        # bad band spec fails at config time, not mid-run inside a key build
        object.__setattr__(self, "tuner_bands", validate_bands(self.tuner_bands))

    def but(self, **kw) -> "MpiConfig":
        """A modified copy (keyword-for-keyword)."""
        return replace(self, **kw)
