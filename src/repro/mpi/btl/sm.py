"""Shared-memory BTL (intra-node), with CUDA IPC support.

Control messages and host payloads travel through a shared-memory segment
(the node's ``shmem_link``).  Device buffers can be cross-mapped with
CUDA IPC — "CUDA IPC allows the GPU memory of one process to be exposed
to the others, and therefore provides a one sided copy mechanism similar
to RDMA" (Section 4.1) — which is what the pipelined RDMA protocol rides
on within a node.
"""

from __future__ import annotations

from repro.mpi.btl.base import Btl
from repro.sim.core import Future

__all__ = ["SmBtl"]


class SmBtl(Btl):
    """Shared-memory transport between two ranks on one node."""

    name = "sm"

    def __init__(self, src, dst) -> None:
        super().__init__(src, dst)
        if src.node is not dst.node:
            raise ValueError("sm BTL requires both ranks on one node")
        self.link = src.node.shmem_link
        #: label -> "sm:<label>" (rendered once per distinct label)
        self._wire_labels: dict = {}

    @property
    def supports_cuda_ipc(self) -> bool:
        return (
            self.src.config.use_cuda_ipc
            and self.src.gpu is not None
            and self.dst.gpu is not None
        )

    @property
    def header_cost_bytes(self) -> int:
        return self.src.node.params.am_header_bytes

    def _wire_send(
        self, nbytes: int, label: str, gpudirect: bool = False, payload=None
    ) -> Future:
        labels = self._wire_labels
        full = labels.get(label)
        if full is None:
            full = labels[label] = f"{self.name}:{label}"
        return self.link.transfer(nbytes, payload=payload, label=full)
