"""BTL interface: Active Messages over a byte mover.

"The implementation of our pipelined RDMA protocol uses BTL-level Active
Message, which is an asynchronous communication mechanism ... each
message header contains the reference of a callback handler triggered on
the receiver side, allowing the sender to specify how the message will be
handled on the receiver side upon message arrival" (Section 4.1).

An :meth:`Btl.am_send` charges the wire cost (header + optional payload)
and, at delivery time, hands the packet to the destination process's
dispatcher.  Handlers run at arrival; anything long-running should punt
into a coroutine or mailbox.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Optional

import numpy as np

from repro.mpi.message import AmPacket, Envelope
from repro.sanitize import runtime as _san
from repro.sim.core import Future

if TYPE_CHECKING:
    from repro.mpi.proc import MpiProcess

__all__ = ["Btl"]


class Btl(ABC):
    """One transport between a fixed (sender, receiver) process pair."""

    name = "base"

    def __init__(self, src: "MpiProcess", dst: "MpiProcess") -> None:
        self.src = src
        self.dst = dst
        self.am_sends = 0
        self.bytes_sent = 0
        #: handler -> rendered "am:<handler>" label (one f-string per
        #: handler instead of one per send)
        self._am_labels: dict[str, str] = {}

    # -- capabilities ------------------------------------------------------
    @property
    def same_node(self) -> bool:
        return self.src.node is self.dst.node

    @property
    @abstractmethod
    def supports_cuda_ipc(self) -> bool:
        """True when device buffers can be cross-mapped (intra-node IPC)."""

    @property
    @abstractmethod
    def header_cost_bytes(self) -> int:
        ...

    @abstractmethod
    def _wire_send(
        self, nbytes: int, label: str, gpudirect: bool = False, payload: Any = None
    ) -> Future:
        """Charge the transport for ``nbytes``; resolve with ``payload``
        at delivery."""

    # -- Active Messages ------------------------------------------------------
    def am_send(
        self,
        handler: str,
        header: dict[str, Any],
        payload: Optional[np.ndarray] = None,
        envelope: Optional[Envelope] = None,
        label: str = "",
        gpudirect: bool = False,
        owned: bool = False,
    ) -> Future:
        """Send an AM; the returned future resolves at *delivery*.

        The payload is snapshotted at call time (DMA-read semantics).
        With ``gpudirect`` the NIC reads/writes device memory directly
        (only meaningful on transports that support it).

        ``owned=True`` asserts the caller hands over both ``payload``
        (already a ``uint8`` array it will not touch again) and
        ``header`` (a fresh dict), skipping the defensive copies — the
        eager path's freshly packed stage qualifies.
        """
        if payload is None:
            data = None
        elif owned and isinstance(payload, np.ndarray) and payload.dtype == np.uint8:
            data = payload
        else:
            data = np.array(payload, dtype=np.uint8)
        packet = AmPacket(handler=handler,
                          header=header if owned else dict(header),
                          payload=data, envelope=envelope)
        nbytes = self.header_cost_bytes + packet.payload_bytes
        self.am_sends += 1
        self.bytes_sent += nbytes
        if not label:
            label = self._am_labels.get(handler)
            if label is None:
                label = self._am_labels[handler] = f"am:{handler}"
        faults = getattr(self.src, "faults", None)
        if faults is None and _san.RACE is None:
            # fault-free, uninstrumented delivery: the wire future itself
            # carries the packet and dispatches as its first callback —
            # callers see the same contract (resolves with the packet at
            # delivery) without a second future per message
            wire = self._wire_send(
                nbytes, label, gpudirect=gpudirect, payload=packet
            )

            def deliver_fast(_f: Future) -> None:
                self.dst.dispatch(packet, self)

            wire.add_callback(deliver_fast)
            return wire
        wire = self._wire_send(nbytes, label, gpudirect=gpudirect)
        done = Future(self.src.sim, label=label)
        sim = self.src.sim
        # network delivery is a happens-before edge from the *send*: the
        # handler runs under the destination's AM actor joined with the
        # sender's clock at am_send time
        snap = None if _san.RACE is None else _san.RACE.snapshot()

        def dispatch() -> None:
            if _san.RACE is not None:
                _san.RACE.deliver_am(
                    f"am.r{self.dst.rank}",
                    snap,
                    lambda: self.dst.dispatch(packet, self),
                )
            else:
                self.dst.dispatch(packet, self)

        def deliver(_f: Future) -> None:
            fault = faults.am_decision(handler) if faults is not None else None
            if fault is None:
                dispatch()
                done.resolve(packet)
                return
            if fault.drop:
                # the wire accepted the message; it just never arrives.
                # The future still resolves (DMA-completion semantics).
                done.resolve(packet)
                return

            def arrive() -> None:
                dispatch()
                if not done.done:
                    done.resolve(packet)
                if fault.dup:
                    # the duplicate trails the original, as a spurious
                    # retransmission would
                    sim.call_soon(dispatch)

            if fault.delay_s > 0.0:
                sim.call_after(fault.delay_s, arrive)
            else:
                arrive()

        wire.add_callback(deliver)
        return done
