"""InfiniBand BTL (inter-node), FDR class, with optional GPUDirect RDMA.

Host payloads ride the NIC link.  GPUDirect RDMA — direct NIC access to
device memory — is exposed as a capability but, per the paper (citing
[14]), "it only delivers interesting performance for small messages (less
than 30KB)"; the copy-in/out protocol therefore stages large GPU messages
through host memory, and the GPUDirect send path models the degraded
large-message bandwidth for the benchmarks that demonstrate the crossover.
"""

from __future__ import annotations

from repro.mpi.btl.base import Btl
from repro.sim.core import Future

__all__ = ["IbBtl"]


class IbBtl(Btl):
    """InfiniBand transport between two ranks on different nodes."""

    name = "ib"

    def __init__(self, src, dst) -> None:
        super().__init__(src, dst)
        if src.node is dst.node:
            raise ValueError("ib BTL is for inter-node pairs")
        self.nic = src.node.nic
        self.dst_node = dst.node.name
        #: label -> "ib:<label>" (rendered once per distinct label)
        self._wire_labels: dict = {}

    @property
    def supports_cuda_ipc(self) -> bool:
        return False

    @property
    def supports_gpudirect(self) -> bool:
        return self.nic.gpudirect_rdma and self.src.config.use_gpudirect_rdma

    @property
    def header_cost_bytes(self) -> int:
        return self.src.node.params.am_header_bytes

    def _wire_send(
        self, nbytes: int, label: str, gpudirect: bool = False, payload=None
    ) -> Future:
        labels = self._wire_labels
        full = labels.get(label)
        if full is None:
            full = labels[label] = f"{self.name}:{label}"
        return self.nic.send(
            self.dst_node, nbytes, payload=payload, label=full,
            gpudirect=gpudirect,
        )

    def gpudirect_send(self, nbytes: int, label: str = "gdr") -> Future:
        """Direct device-memory RDMA over the wire (degraded when large)."""
        return self.nic.send(
            self.dst_node, nbytes, label=f"{self.name}:{label}", gpudirect=True
        )
