"""Byte Transfer Layers: the lowest tier of the stack.

"The lowest layer, the BTL (byte transfer layer), is used for the actual
point-to-point byte movement ... mainly deals with low level network
communication protocols where the focus is on optimally moving blobs of
bytes" (Section 4).  Two transports are provided, matching the paper's
evaluation: shared memory (:mod:`repro.mpi.btl.sm`, with CUDA IPC) and
InfiniBand (:mod:`repro.mpi.btl.ib`, with GPUDirect).
"""

from repro.mpi.btl.base import Btl
from repro.mpi.btl.sm import SmBtl
from repro.mpi.btl.ib import IbBtl

__all__ = ["Btl", "SmBtl", "IbBtl"]
