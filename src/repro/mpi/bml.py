"""BML: BTL management layer.

"Below the PML, the BML manages different network devices, handles
multi-link data transfers, and selects the most suitable BTL for a
communication based on the current network device" (Section 4).  Here the
policy is the paper's: shared memory within a node, InfiniBand across
nodes; endpoints are cached so protocol state (IPC registrations,
sequence counters) persists across messages.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.mpi.btl.ib import IbBtl
from repro.mpi.btl.sm import SmBtl

if TYPE_CHECKING:
    from repro.mpi.btl.base import Btl
    from repro.mpi.proc import MpiProcess

__all__ = ["Bml"]


class Bml:
    """Per-world BTL selector/cache."""

    def __init__(self) -> None:
        self._endpoints: dict[tuple[int, int], "Btl"] = {}

    def btl_for(self, src: "MpiProcess", dst: "MpiProcess") -> "Btl":
        """The cached transport endpoint from ``src`` toward ``dst``."""
        key = (src.rank, dst.rank)
        btl = self._endpoints.get(key)
        if btl is None:
            if src.node is dst.node:
                btl = SmBtl(src, dst)
            else:
                btl = IbBtl(src, dst)
            self._endpoints[key] = btl
        return btl
