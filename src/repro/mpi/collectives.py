"""Datatype-aware collective operations over the point-to-point stack.

"Once constructed and committed, an MPI datatype can be used as an
argument for any point-to-point, collective, I/O, and one-sided
functions" (Section 1).  These collectives demonstrate exactly that: the
GPU datatype engine and protocols underneath are untouched — a broadcast
of a triangular matrix from GPU memory pipelines through the same
CUDA-IPC/copy-in-out machinery as a send.

Algorithms are the textbook ones Open MPI's ``coll/base`` uses for small
worlds: binomial-tree broadcast, linear gather to the root, ring
allgather.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.datatype.ddt import Datatype
from repro.hw.memory import Buffer

if TYPE_CHECKING:
    from repro.mpi.world import RankContext

__all__ = ["bcast", "gather", "allgather"]

_COLL_TAG_BASE = 1 << 20


def _next_tag(mpi: "RankContext", op: str) -> int:
    """Per-rank collective sequence number.

    MPI requires every rank to invoke collectives in the same order, so a
    local counter yields globally agreeing tags without communication.
    """
    proc = mpi.proc
    seqs = getattr(proc, "_coll_seq", None)
    if seqs is None:
        seqs = {}
        proc._coll_seq = seqs
    seq = seqs.get(op, 0)
    seqs[op] = seq + 1
    return _COLL_TAG_BASE + (seq % (1 << 15)) * 4


def bcast(mpi: "RankContext", buf: Buffer, dt: Datatype, count: int, root: int = 0):
    """Binomial-tree broadcast; every rank must call it.

    Coroutine: use as ``yield from bcast(mpi, ...)``.
    """
    size = mpi.size
    if size == 1:
        return 0
    tag = _next_tag(mpi, "bcast")
    vrank = (mpi.rank - root) % size
    # receive from parent
    if vrank != 0:
        parent = _parent(vrank)
        src = (parent + root) % size
        yield mpi.recv(buf, dt, count, source=src, tag=tag)
    # forward to children, highest bit first (Open MPI's binomial order:
    # the farthest subtree starts earliest, giving the log2(P) rounds)
    lowest = vrank & -vrank if vrank else size
    mask = 1
    while mask * 2 < size:
        mask <<= 1
    reqs = []
    while mask:
        if mask < lowest and (vrank | mask) < size:
            child = ((vrank | mask) + root) % size
            reqs.append(mpi.isend(buf, dt, count, dest=child, tag=tag))
        mask >>= 1
    if reqs:
        yield mpi.wait_all(*reqs)
    return dt.size * count


def _parent(vrank: int) -> int:
    # clear the lowest set bit
    return vrank & (vrank - 1)


def gather(
    mpi: "RankContext",
    sendbuf: Buffer,
    send_dt: Datatype,
    send_count: int,
    recvbufs: Sequence[Buffer] | None,
    recv_dt: Datatype | None,
    recv_count: int = 0,
    root: int = 0,
):
    """Linear gather to the root.

    ``recvbufs`` is a per-source list of destination buffers on the root
    (slots of one larger allocation in practice); non-roots pass None.
    Coroutine: ``yield from gather(...)``.
    """
    tag = _next_tag(mpi, "gather")
    if mpi.rank == root:
        assert recvbufs is not None and recv_dt is not None
        reqs = []
        for src in range(mpi.size):
            if src == root:
                continue
            reqs.append(
                mpi.irecv(recvbufs[src], recv_dt, recv_count, source=src, tag=tag)
            )
        # root's own contribution: a self-message through the engines
        # (isend first — a blocking self-send would rendezvous-deadlock)
        self_req = mpi.isend(sendbuf, send_dt, send_count, dest=root, tag=tag)
        yield mpi.recv(recvbufs[root], recv_dt, recv_count, source=root, tag=tag)
        yield self_req
        if reqs:
            yield mpi.wait_all(*reqs)
    else:
        yield mpi.send(sendbuf, send_dt, send_count, dest=root, tag=tag)
    return send_dt.size * send_count


def allgather(
    mpi: "RankContext",
    sendbuf: Buffer,
    send_dt: Datatype,
    send_count: int,
    recvbufs: Sequence[Buffer],
    recv_dt: Datatype,
    recv_count: int,
):
    """Ring allgather: N-1 steps, each forwarding the previous block.

    ``recvbufs[r]`` receives rank ``r``'s contribution (every rank passes
    its own ``sendbuf`` content via ``recvbufs[rank]`` too).
    Coroutine: ``yield from allgather(...)``.
    """
    size = mpi.size
    rank = mpi.rank
    tag = _next_tag(mpi, "allgather")
    right = (rank + 1) % size
    left = (rank - 1) % size
    # seed own block locally, as a self-message through the engines
    # (isend first — a blocking self-send would rendezvous-deadlock)
    self_req = mpi.isend(sendbuf, send_dt, send_count, dest=rank, tag=tag)
    yield mpi.recv(recvbufs[rank], recv_dt, recv_count, source=rank, tag=tag)
    yield self_req
    # ring steps may share one tag: per-source FIFO ordering matches the
    # in-order posted receives
    for step in range(size - 1):
        send_block = (rank - step) % size
        recv_block = (rank - step - 1) % size
        reqs = [
            mpi.isend(
                recvbufs[send_block], recv_dt, recv_count, dest=right, tag=tag
            ),
            mpi.irecv(
                recvbufs[recv_block], recv_dt, recv_count, source=left, tag=tag
            ),
        ]
        yield mpi.wait_all(*reqs)
    return send_dt.size * send_count * size
