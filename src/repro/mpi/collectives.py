"""Datatype-aware collective operations over the point-to-point stack.

"Once constructed and committed, an MPI datatype can be used as an
argument for any point-to-point, collective, I/O, and one-sided
functions" (Section 1).  These collectives demonstrate exactly that: the
GPU datatype engine and protocols underneath are untouched — a broadcast
of a triangular matrix from GPU memory pipelines through the same
CUDA-IPC/copy-in-out machinery as a send.

Every collective accepts an algorithm from the :class:`CollAlgorithm`
ladder (see docs/COLLECTIVES.md), resolved per call from an explicit
``algorithm=`` override, else ``MpiConfig.coll_algorithm``, else the
per-op ``"auto"`` default:

- ``PAIRWISE`` — the classic fixed-schedule two-sided algorithm
  (binomial-tree bcast, serialized linear gather, ring allgather,
  ordered pairwise-exchange alltoall).
- ``NONBLOCKING`` — post every isend/irecv at once and wait.
- ``STAGED`` — copy-to-host: device blocks are engine-packed into a
  device ring, moved with *one* batched D2H, exchanged host-to-host,
  then one batched H2D + per-block unpack.  The per-message GPU costs
  (kernel launches, IPC handshakes) are paid once, which is why it wins
  at small sizes (SNIPPETS.md `copy_to_cpu_alltoall`).
- ``DIRECT`` — one-sided: each rank deposits straight into the peers'
  user buffers via :func:`repro.mpi.rma.one_sided_move` (CUDA-IPC
  scatter kernels intra-node), fenced by barriers.
- ``HIERARCHICAL`` — leader-per-node: local blocks aggregate on one
  rank per simulated node, leaders exchange one packed region per peer
  node, then scatter locally (alltoall family only).

Mixed worlds are fine for the two-sided rungs: ``STAGED`` is a local
decision (the wire carries the same packed signature either way), so a
host-buffer rank interoperates with a device rank that stages.
``DIRECT``/``HIERARCHICAL`` change the message pattern and must be
chosen world-wide (the shared ``MpiConfig`` or the same override).

Tag-space layout: collective traffic lives above ``_COLL_TAG_BASE``
(1 << 20), and every op owns a disjoint ``_COLL_OP_SPAN``-wide
sub-space, indexed by ``_COLL_OP_INDEX``.  Within an op, the per-rank
call sequence number (collectives are invoked in the same order on
every rank, so local counters agree globally) selects a 4-tag phase
block.  Before this layout, ``bcast`` seq *k* and ``gather`` seq *k*
produced the *same* tag, so overlapping collectives could cross-match
fragments — see the regression tests in tests/mpi/test_collectives.py.

Every op returns the documented **bytes moved per rank** — the packed
bytes this rank contributes — uniformly, including world size 1.
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING, Optional, Sequence

from repro.datatype.ddt import Datatype, contiguous, struct
from repro.datatype.primitives import BYTE, PREDEFINED
from repro.hw.memory import Buffer
from repro.mpi.rma import one_sided_move
from repro.sanitize import runtime as _san
from repro.sim.core import all_of

if TYPE_CHECKING:
    from repro.mpi.world import RankContext

__all__ = [
    "CollAlgorithm",
    "bcast",
    "gather",
    "allgather",
    "alltoall",
    "alltoallv",
]


class CollAlgorithm(str, Enum):
    """One rung of the collective algorithm ladder (module docstring)."""

    PAIRWISE = "pairwise"
    NONBLOCKING = "nonblocking"
    STAGED = "staged"
    DIRECT = "direct"
    HIERARCHICAL = "hierarchical"


# -- tag space ----------------------------------------------------------------

_COLL_TAG_BASE = 1 << 20
#: width of each op's private tag sub-space
_COLL_OP_SPAN = 1 << 17
#: disjoint sub-space index per op — the tag-collision fix
_COLL_OP_INDEX = {
    "bcast": 0,
    "gather": 1,
    "allgather": 2,
    "alltoall": 3,
    "alltoallv": 4,
}
_COLL_SEQ_SLOTS = 1 << 15
#: tags per call: slot 0 for the flat algorithms, 1..3 for the
#: hierarchical aggregate/exchange/scatter phases
_COLL_PHASES = 4


def _op_tag(op: str, seq: int, phase: int = 0) -> int:
    """The wire tag for phase ``phase`` of call ``seq`` of ``op``."""
    return (
        _COLL_TAG_BASE
        + _COLL_OP_INDEX[op] * _COLL_OP_SPAN
        + (seq % _COLL_SEQ_SLOTS) * _COLL_PHASES
        + phase
    )


def _bump_seq(mpi: "RankContext", op: str) -> int:
    """Per-rank, per-op collective sequence number.

    MPI requires every rank to invoke collectives in the same order, so a
    local counter yields globally agreeing tags without communication.
    """
    proc = mpi.proc
    seqs = getattr(proc, "_coll_seq", None)
    if seqs is None:
        seqs = {}
        proc._coll_seq = seqs
    seq = seqs.get(op, 0)
    seqs[op] = seq + 1
    return seq


def _next_tag(mpi: "RankContext", op: str) -> int:
    """Bump ``op``'s sequence and return the call's phase-0 tag."""
    return _op_tag(op, _bump_seq(mpi, op))


# -- packed wire types --------------------------------------------------------

_PACKED_CACHE: dict[tuple, Datatype] = {}


def _scale_signature(sig: tuple, count: int) -> tuple:
    """The signature of ``count`` consecutive elements of signature ``sig``."""
    if count == 0 or not sig:
        return ()
    if count == 1:
        return sig
    if len(sig) == 1:
        name, c = sig[0]
        return ((name, c * count),)
    return sig * count


def _packed_for_signature(sig: tuple) -> Datatype:
    """A committed *contiguous-layout* datatype with signature ``sig``.

    The staged and hierarchical paths move packed byte streams; sending
    them under this type keeps the PML signature check honest (packed
    send signature == original send signature) while the layout is a
    plain dense run.
    """
    cached = _PACKED_CACHE.get(sig)
    if cached is not None:
        return cached
    if not sig:
        dtp = contiguous(0, BYTE)
    elif len(sig) == 1:
        name, c = sig[0]
        dtp = contiguous(c, PREDEFINED[name])
    else:
        lens = []
        disps = []
        types = []
        off = 0
        for name, c in sig:
            prim = PREDEFINED[name]
            lens.append(c)
            disps.append(off)
            types.append(prim)
            off += c * prim.size
        dtp = struct(lens, disps, types)
    dtp.commit()
    _PACKED_CACHE[sig] = dtp
    return dtp


def _packed_type(dt: Datatype, count: int) -> Datatype:
    """Packed wire type for ``count`` elements of ``dt``."""
    return _packed_for_signature(_scale_signature(dt.commit().signature, count))


def _parts_signature(parts) -> tuple:
    """Concatenated (and run-coalesced) signature of (dt, count) parts."""
    out: list = []
    for dt, cnt in parts:
        for name, c in _scale_signature(dt.commit().signature, cnt):
            if out and out[-1][0] == name:
                out[-1] = (name, out[-1][1] + c)
            else:
                out.append((name, c))
    return tuple(out)


# -- selection ----------------------------------------------------------------

_A2A_OPS = ("alltoall", "alltoallv")

#: rungs the autotuner may pick for a uniform alltoall under ``"auto"``.
#: PAIRWISE is excluded (strictly dominated by NONBLOCKING here) and
#: HIERARCHICAL needs explicit opt-in (it reshapes the traffic pattern).
_TUNABLE_A2A = ("staged", "nonblocking", "direct")


def _resolve_algorithm(
    mpi: "RankContext",
    op: str,
    explicit,
    is_device: bool,
    peer_bytes: int,
) -> CollAlgorithm:
    """Pick the rung: explicit override > MpiConfig.coll_algorithm > auto.

    ``"auto"`` keeps the classic per-op defaults and, for the alltoall
    family, stages through the host when the largest per-peer packed
    block is at or below ``coll_staged_threshold`` bytes (the measured
    staged-vs-direct crossover; bench scenario ``coll_crossover``).
    """
    choice = explicit if explicit is not None else mpi.config.coll_algorithm
    if isinstance(choice, CollAlgorithm):
        algo = choice
    elif choice == "auto":
        tuner = mpi.proc.tuner
        if tuner is not None and op == "alltoall":
            # tuned rung — *uniform* alltoall only: symmetric inputs mean
            # every rank derives the same key against the same frozen
            # table, so the world agrees on the algorithm without any
            # extra agreement round (required for STAGED/DIRECT, which
            # assume all ranks run the same rung).  alltoallv's ragged
            # per-rank peer_bytes would diverge, so it stays static.
            key = tuner.coll_key(
                op, peer_bytes, is_device, mpi.world.num_nodes, mpi.size
            )
            tuned = tuner.decide_coll(key, _TUNABLE_A2A)
            if tuned is not None:
                return CollAlgorithm(tuned)
        if op in _A2A_OPS:
            if is_device and peer_bytes <= mpi.config.coll_staged_threshold:
                algo = CollAlgorithm.STAGED
            else:
                algo = CollAlgorithm.NONBLOCKING
        elif op == "gather":
            algo = CollAlgorithm.NONBLOCKING
        else:
            algo = CollAlgorithm.PAIRWISE
    else:
        try:
            algo = CollAlgorithm(choice)
        except ValueError:
            raise ValueError(
                f"unknown collective algorithm {choice!r}; expected 'auto' "
                f"or one of {[a.value for a in CollAlgorithm]}"
            ) from None
    if algo is CollAlgorithm.HIERARCHICAL and op not in _A2A_OPS:
        raise ValueError(
            "CollAlgorithm.HIERARCHICAL is implemented for the alltoall "
            f"family; {op} supports pairwise/nonblocking/staged/direct"
        )
    return algo


def _count_call(mpi: "RankContext", op: str, algo: CollAlgorithm, nbytes: int) -> None:
    """Per-rank ``coll.*`` counters (aggregated by WorldStats.coll_ops)."""
    metrics = mpi.proc.metrics
    metrics.counter(f"coll.{op}.{algo.value}").inc()
    metrics.counter(f"coll.{op}.bytes").inc(nbytes)


# -- shared building blocks ---------------------------------------------------


def _pack_into(mpi: "RankContext", buf: Buffer, dt: Datatype, count: int, dst: Buffer):
    """Coroutine: engine-pack ``count`` of ``dt`` from ``buf`` into ``dst``."""
    job = mpi.proc.engine.pack_job(dt, count, buf, mpi.config.engine)
    yield from job.process_all(dst)


def _unpack_from(mpi: "RankContext", buf: Buffer, dt: Datatype, count: int, src: Buffer):
    """Coroutine: engine-unpack ``count`` of ``dt`` into ``buf`` from ``src``."""
    job = mpi.proc.engine.unpack_job(dt, count, buf, mpi.config.engine)
    yield from job.process_all(src)


def _rendezvous_table(mpi: "RankContext", key) -> dict:
    """The world-level out-of-band metadata table for one collective call.

    One-sided and hierarchical algorithms need peer buffer/count
    metadata that two-sided matching would normally carry; ranks deposit
    it here (keyed by (op, seq, ...), which every rank derives
    identically) and a barrier orders deposits before reads.
    """
    return mpi.world._coll_rendezvous.setdefault(key, {})


def _rendezvous_close(mpi: "RankContext", key) -> None:
    """Idempotently drop a finished call's metadata table."""
    mpi.world._coll_rendezvous.pop(key, None)


def _run_moves(mpi: "RankContext", moves):
    """Coroutine: run labelled one-sided move coroutines to completion."""
    procs = [mpi.sim.spawn(coro, label=label) for coro, label in moves]
    if procs:
        yield all_of(mpi.sim, procs, label="coll.direct")


# -- bcast --------------------------------------------------------------------


def bcast(
    mpi: "RankContext",
    buf: Buffer,
    dt: Datatype,
    count: int,
    root: int = 0,
    algorithm=None,
):
    """Broadcast ``count`` elements of ``dt`` from ``root`` to every rank.

    Coroutine: use as ``yield from bcast(mpi, ...)``.  Returns the bytes
    moved per rank (``dt.size * count``), uniformly for every world size
    — including 1, so bench sweeps need no special case.
    """
    dt.commit()
    nbytes = dt.size * count
    algo = _resolve_algorithm(mpi, "bcast", algorithm, buf.is_device, nbytes)
    seq = _bump_seq(mpi, "bcast")
    _count_call(mpi, "bcast", algo, nbytes)
    if mpi.size == 1:
        return nbytes
    tag = _op_tag("bcast", seq)
    _vkey = None
    if _san.VERIFY is not None:
        # waits inside the collective inherit "bcast#<seq>/<algo>" as
        # their detail, so a hang names the exact collective call
        _vkey = _san.VERIFY.coll_begin(
            mpi.world, mpi.rank, "bcast", seq, algo.value
        )
    try:
        if algo is CollAlgorithm.STAGED and buf.is_device and nbytes:
            yield from _bcast_staged(mpi, buf, dt, count, root, tag, nbytes)
        elif algo is CollAlgorithm.NONBLOCKING:
            yield from _bcast_flat(mpi, buf, dt, count, root, tag)
        elif algo is CollAlgorithm.DIRECT:
            yield from _bcast_direct(mpi, buf, dt, count, root, seq)
        else:
            yield from _bcast_binomial(mpi, buf, dt, count, root, tag)
    finally:
        if _vkey is not None:
            _san.VERIFY.coll_end(_vkey)
    return nbytes


def _bcast_binomial(mpi, buf, dt, count, root, tag):
    """Binomial tree: receive from parent, forward to children."""
    size = mpi.size
    vrank = (mpi.rank - root) % size
    if vrank != 0:
        parent = vrank & (vrank - 1)  # clear the lowest set bit
        src = (parent + root) % size
        yield mpi.recv(buf, dt, count, source=src, tag=tag)
    # forward to children, highest bit first (Open MPI's binomial order:
    # the farthest subtree starts earliest, giving the log2(P) rounds)
    lowest = vrank & -vrank if vrank else size
    mask = 1
    while mask * 2 < size:
        mask <<= 1
    reqs = []
    while mask:
        if mask < lowest and (vrank | mask) < size:
            child = ((vrank | mask) + root) % size
            reqs.append(mpi.isend(buf, dt, count, dest=child, tag=tag))
        mask >>= 1
    if reqs:
        yield mpi.wait_all(*reqs)


def _bcast_flat(mpi, buf, dt, count, root, tag):
    """Flat nonblocking: the root isends to every rank at once."""
    if mpi.rank == root:
        reqs = [
            mpi.isend(buf, dt, count, dest=r, tag=tag)
            for r in range(mpi.size)
            if r != root
        ]
        if reqs:
            yield mpi.wait_all(*reqs)
    else:
        yield mpi.recv(buf, dt, count, source=root, tag=tag)


def _bcast_staged(mpi, buf, dt, count, root, tag, nbytes):
    """Copy-to-host: one batched PCIe transit, a host-side tree, unpack."""
    proc = mpi.proc
    packed = _packed_type(dt, count)
    dstage = proc.acquire_staging("device", max(nbytes, 256))
    hstage = proc.acquire_staging("host", max(nbytes, 256))
    if mpi.rank == root:
        yield from _pack_into(mpi, buf, dt, count, dstage[:nbytes])
        yield proc.gpu.memcpy_d2h(hstage[:nbytes], dstage[:nbytes])
    yield from _bcast_binomial(mpi, hstage[:nbytes], packed, 1, root, tag)
    if mpi.rank != root:
        yield proc.gpu.memcpy_h2d(dstage[:nbytes], hstage[:nbytes])
        yield from _unpack_from(mpi, buf, dt, count, dstage[:nbytes])
    proc.release_staging("device", dstage)
    proc.release_staging("host", hstage)


def _bcast_direct(mpi, buf, dt, count, root, seq):
    """One-sided: the root puts into every rank's buffer, barrier-fenced."""
    key = ("bcast", seq)
    table = _rendezvous_table(mpi, key)
    table[mpi.rank] = (buf, dt, count)
    yield mpi.barrier()
    if mpi.rank == root:
        moves = []
        for r in range(mpi.size):
            if r == root:
                continue
            tbuf, tdt, tcount = table[r]
            moves.append((
                one_sided_move(
                    mpi.proc, buf, dt, count,
                    mpi.world.procs[r], tbuf, tdt, tcount, "put",
                ),
                f"coll.bcast.put r{root}->r{r}",
            ))
        yield from _run_moves(mpi, moves)
    yield mpi.barrier()
    _rendezvous_close(mpi, key)


# -- gather -------------------------------------------------------------------


def gather(
    mpi: "RankContext",
    sendbuf: Buffer,
    send_dt: Datatype,
    send_count: int,
    recvbufs: Optional[Sequence[Buffer]],
    recv_dt: Optional[Datatype],
    recv_count: Optional[int] = None,
    root: int = 0,
    algorithm=None,
):
    """Gather every rank's block to the root.

    ``recvbufs`` is a per-source list of destination buffers on the root
    (slots of one larger allocation in practice); non-roots pass None.
    ``recv_count`` is required at the root and must be positive — a
    forgotten kwarg used to default to 0 and silently receive nothing.
    Coroutine: ``yield from gather(...)``.  Returns the bytes moved per
    rank (``send_dt.size * send_count``).
    """
    send_dt.commit()
    nbytes = send_dt.size * send_count
    algo = _resolve_algorithm(mpi, "gather", algorithm, sendbuf.is_device, nbytes)
    seq = _bump_seq(mpi, "gather")
    _count_call(mpi, "gather", algo, nbytes)
    if mpi.rank == root:
        if recvbufs is None or recv_dt is None:
            raise ValueError(
                f"gather: root rank {root} must pass recvbufs and recv_dt"
            )
        if recv_count is None or recv_count <= 0:
            raise ValueError(
                "gather: recv_count must be a positive element count at "
                f"the root, got {recv_count!r}"
            )
        if len(recvbufs) != mpi.size:
            raise ValueError(
                f"gather: root needs one recv buffer per rank "
                f"({mpi.size}), got {len(recvbufs)}"
            )
        recv_dt.commit()
    tag = _op_tag("gather", seq)
    _vkey = None
    if _san.VERIFY is not None:
        _vkey = _san.VERIFY.coll_begin(
            mpi.world, mpi.rank, "gather", seq, algo.value
        )
    try:
        if algo is CollAlgorithm.DIRECT:
            yield from _gather_direct(
                mpi, sendbuf, send_dt, send_count,
                recvbufs, recv_dt, recv_count, root, seq,
            )
        elif algo is CollAlgorithm.PAIRWISE:
            yield from _gather_serial(
                mpi, sendbuf, send_dt, send_count,
                recvbufs, recv_dt, recv_count, root, tag,
            )
        elif algo is CollAlgorithm.STAGED:
            yield from _gather_staged(
                mpi, sendbuf, send_dt, send_count,
                recvbufs, recv_dt, recv_count, root, tag,
            )
        else:
            yield from _gather_linear(
                mpi, sendbuf, send_dt, send_count,
                recvbufs, recv_dt, recv_count, root, tag,
            )
    finally:
        if _vkey is not None:
            _san.VERIFY.coll_end(_vkey)
    return nbytes


def _gather_linear(
    mpi, sendbuf, send_dt, send_count, recvbufs, recv_dt, recv_count, root, tag
):
    """Linear gather: the root posts every irecv at once."""
    if mpi.rank == root:
        reqs = []
        for src in range(mpi.size):
            if src == root:
                continue
            reqs.append(
                mpi.irecv(recvbufs[src], recv_dt, recv_count, source=src, tag=tag)
            )
        # root's own contribution: a self-message through the engines
        # (isend first — a blocking self-send would rendezvous-deadlock)
        self_req = mpi.isend(sendbuf, send_dt, send_count, dest=root, tag=tag)
        yield mpi.recv(recvbufs[root], recv_dt, recv_count, source=root, tag=tag)
        yield self_req
        if reqs:
            yield mpi.wait_all(*reqs)
    else:
        yield mpi.send(sendbuf, send_dt, send_count, dest=root, tag=tag)


def _gather_serial(
    mpi, sendbuf, send_dt, send_count, recvbufs, recv_dt, recv_count, root, tag
):
    """Serialized linear gather: the root drains sources one at a time."""
    if mpi.rank == root:
        self_req = mpi.isend(sendbuf, send_dt, send_count, dest=root, tag=tag)
        yield mpi.recv(recvbufs[root], recv_dt, recv_count, source=root, tag=tag)
        yield self_req
        for src in range(mpi.size):
            if src == root:
                continue
            yield mpi.recv(recvbufs[src], recv_dt, recv_count, source=src, tag=tag)
    else:
        yield mpi.send(sendbuf, send_dt, send_count, dest=root, tag=tag)


def _gather_staged(
    mpi, sendbuf, send_dt, send_count, recvbufs, recv_dt, recv_count, root, tag
):
    """Copy-to-host gather: sources pack once; the root lands packed
    blocks in host staging and batches one H2D + per-slot unpack."""
    proc = mpi.proc
    size = mpi.size
    nb_out = send_dt.size * send_count
    if mpi.rank != root:
        if sendbuf.is_device and nb_out:
            dstage = proc.acquire_staging("device", max(nb_out, 256))
            hstage = proc.acquire_staging("host", max(nb_out, 256))
            yield from _pack_into(mpi, sendbuf, send_dt, send_count, dstage[:nb_out])
            yield proc.gpu.memcpy_d2h(hstage[:nb_out], dstage[:nb_out])
            yield mpi.send(
                hstage[:nb_out], _packed_type(send_dt, send_count), 1,
                dest=root, tag=tag,
            )
            proc.release_staging("device", dstage)
            proc.release_staging("host", hstage)
        else:
            yield mpi.send(sendbuf, send_dt, send_count, dest=root, tag=tag)
        return
    # root: device slots receive packed bytes into one compact host
    # staging area; host slots (and the root's own block) go direct
    nb_in = recv_dt.size * recv_count
    packed_in = _packed_type(recv_dt, recv_count)
    dev_slots = [
        s for s in range(size)
        if s != root and recvbufs[s].is_device and nb_in
    ]
    offsets = {s: i * nb_in for i, s in enumerate(dev_slots)}
    total = len(dev_slots) * nb_in
    hin = din = None
    if dev_slots:
        hin = proc.acquire_staging("host", max(total, 256))
        din = proc.acquire_staging("device", max(total, 256))
    reqs = []
    for src in range(size):
        if src == root:
            continue
        if src in offsets:
            lo = offsets[src]
            reqs.append(
                mpi.irecv(hin[lo:lo + nb_in], packed_in, 1, source=src, tag=tag)
            )
        else:
            reqs.append(
                mpi.irecv(recvbufs[src], recv_dt, recv_count, source=src, tag=tag)
            )
    self_req = mpi.isend(sendbuf, send_dt, send_count, dest=root, tag=tag)
    yield mpi.recv(recvbufs[root], recv_dt, recv_count, source=root, tag=tag)
    yield self_req
    if reqs:
        yield mpi.wait_all(*reqs)
    if dev_slots:
        yield proc.gpu.memcpy_h2d(din[:total], hin[:total])
        for src in dev_slots:
            lo = offsets[src]
            yield from _unpack_from(
                mpi, recvbufs[src], recv_dt, recv_count, din[lo:lo + nb_in]
            )
        proc.release_staging("host", hin)
        proc.release_staging("device", din)


def _gather_direct(
    mpi, sendbuf, send_dt, send_count, recvbufs, recv_dt, recv_count, root, seq
):
    """One-sided gather: every rank puts into its slot at the root."""
    key = ("gather", seq)
    table = _rendezvous_table(mpi, key)
    if mpi.rank == root:
        table["root"] = (recvbufs, recv_dt, recv_count)
    yield mpi.barrier()
    tbufs, tdt, tcount = table["root"]
    yield from _run_moves(mpi, [(
        one_sided_move(
            mpi.proc, sendbuf, send_dt, send_count,
            mpi.world.procs[root], tbufs[mpi.rank], tdt, tcount, "put",
        ),
        f"coll.gather.put r{mpi.rank}->r{root}",
    )])
    yield mpi.barrier()
    _rendezvous_close(mpi, key)


# -- allgather ----------------------------------------------------------------


def allgather(
    mpi: "RankContext",
    sendbuf: Buffer,
    send_dt: Datatype,
    send_count: int,
    recvbufs: Sequence[Buffer],
    recv_dt: Datatype,
    recv_count: int,
    algorithm=None,
):
    """Gather every rank's block onto every rank.

    ``recvbufs[r]`` receives rank ``r``'s contribution (every rank passes
    its own ``sendbuf`` content via ``recvbufs[rank]`` too).
    Coroutine: ``yield from allgather(...)``.  Returns the bytes moved
    per rank (``send_dt.size * send_count * size``).
    """
    send_dt.commit()
    recv_dt.commit()
    nbytes = send_dt.size * send_count
    algo = _resolve_algorithm(mpi, "allgather", algorithm, sendbuf.is_device, nbytes)
    seq = _bump_seq(mpi, "allgather")
    _count_call(mpi, "allgather", algo, nbytes * mpi.size)
    if len(recvbufs) != mpi.size:
        raise ValueError(
            f"allgather: one recv buffer per rank ({mpi.size}) is "
            f"required, got {len(recvbufs)}"
        )
    tag = _op_tag("allgather", seq)
    _vkey = None
    if _san.VERIFY is not None:
        _vkey = _san.VERIFY.coll_begin(
            mpi.world, mpi.rank, "allgather", seq, algo.value
        )
    try:
        if algo is CollAlgorithm.DIRECT:
            yield from _allgather_direct(
                mpi, sendbuf, send_dt, send_count, recvbufs, recv_dt,
                recv_count, seq,
            )
        elif algo is CollAlgorithm.NONBLOCKING:
            yield from _allgather_flat(
                mpi, sendbuf, send_dt, send_count, recvbufs, recv_dt,
                recv_count, tag,
            )
        elif algo is CollAlgorithm.STAGED:
            yield from _allgather_staged(
                mpi, sendbuf, send_dt, send_count, recvbufs, recv_dt,
                recv_count, tag,
            )
        else:
            yield from _allgather_ring(
                mpi, sendbuf, send_dt, send_count, recvbufs, recv_dt,
                recv_count, tag,
            )
    finally:
        if _vkey is not None:
            _san.VERIFY.coll_end(_vkey)
    return nbytes * mpi.size


def _allgather_ring(
    mpi, sendbuf, send_dt, send_count, recvbufs, recv_dt, recv_count, tag
):
    """Ring allgather: N-1 steps, each forwarding the previous block."""
    size = mpi.size
    rank = mpi.rank
    right = (rank + 1) % size
    left = (rank - 1) % size
    # seed own block locally, as a self-message through the engines
    # (isend first — a blocking self-send would rendezvous-deadlock)
    self_req = mpi.isend(sendbuf, send_dt, send_count, dest=rank, tag=tag)
    yield mpi.recv(recvbufs[rank], recv_dt, recv_count, source=rank, tag=tag)
    yield self_req
    # ring steps may share one tag: per-source FIFO ordering matches the
    # in-order posted receives
    for step in range(size - 1):
        send_block = (rank - step) % size
        recv_block = (rank - step - 1) % size
        reqs = [
            mpi.isend(
                recvbufs[send_block], recv_dt, recv_count, dest=right, tag=tag
            ),
            mpi.irecv(
                recvbufs[recv_block], recv_dt, recv_count, source=left, tag=tag
            ),
        ]
        yield mpi.wait_all(*reqs)


def _allgather_flat(
    mpi, sendbuf, send_dt, send_count, recvbufs, recv_dt, recv_count, tag
):
    """Flat nonblocking: every send and receive in flight at once."""
    rank = mpi.rank
    reqs = [mpi.isend(sendbuf, send_dt, send_count, dest=rank, tag=tag)]
    reqs.append(
        mpi.irecv(recvbufs[rank], recv_dt, recv_count, source=rank, tag=tag)
    )
    for peer in range(mpi.size):
        if peer == rank:
            continue
        reqs.append(mpi.isend(sendbuf, send_dt, send_count, dest=peer, tag=tag))
        reqs.append(
            mpi.irecv(recvbufs[peer], recv_dt, recv_count, source=peer, tag=tag)
        )
    yield mpi.wait_all(*reqs)


def _allgather_staged(
    mpi, sendbuf, send_dt, send_count, recvbufs, recv_dt, recv_count, tag
):
    """Copy-to-host allgather: pack once, one D2H, host exchange, one H2D."""
    proc = mpi.proc
    size = mpi.size
    rank = mpi.rank
    nb_out = send_dt.size * send_count
    nb_in = recv_dt.size * recv_count
    packed_out = _packed_type(send_dt, send_count)
    packed_in = _packed_type(recv_dt, recv_count)
    stage_out = sendbuf.is_device and nb_out and size > 1
    hout = dout = None
    if stage_out:
        dout = proc.acquire_staging("device", max(nb_out, 256))
        hout = proc.acquire_staging("host", max(nb_out, 256))
        yield from _pack_into(mpi, sendbuf, send_dt, send_count, dout[:nb_out])
        yield proc.gpu.memcpy_d2h(hout[:nb_out], dout[:nb_out])
    dev_slots = [
        s for s in range(size)
        if s != rank and recvbufs[s].is_device and nb_in
    ]
    offsets = {s: i * nb_in for i, s in enumerate(dev_slots)}
    total = len(dev_slots) * nb_in
    hin = din = None
    if dev_slots:
        hin = proc.acquire_staging("host", max(total, 256))
        din = proc.acquire_staging("device", max(total, 256))
    # own block: a plain self-message with the original types
    reqs = [mpi.isend(sendbuf, send_dt, send_count, dest=rank, tag=tag)]
    reqs.append(
        mpi.irecv(recvbufs[rank], recv_dt, recv_count, source=rank, tag=tag)
    )
    for peer in range(size):
        if peer == rank:
            continue
        if stage_out:
            reqs.append(mpi.isend(hout[:nb_out], packed_out, 1, dest=peer, tag=tag))
        else:
            reqs.append(
                mpi.isend(sendbuf, send_dt, send_count, dest=peer, tag=tag)
            )
        if peer in offsets:
            lo = offsets[peer]
            reqs.append(
                mpi.irecv(hin[lo:lo + nb_in], packed_in, 1, source=peer, tag=tag)
            )
        else:
            reqs.append(
                mpi.irecv(recvbufs[peer], recv_dt, recv_count, source=peer, tag=tag)
            )
    yield mpi.wait_all(*reqs)
    if dev_slots:
        yield proc.gpu.memcpy_h2d(din[:total], hin[:total])
        for s in dev_slots:
            lo = offsets[s]
            yield from _unpack_from(
                mpi, recvbufs[s], recv_dt, recv_count, din[lo:lo + nb_in]
            )
        proc.release_staging("host", hin)
        proc.release_staging("device", din)
    if stage_out:
        proc.release_staging("device", dout)
        proc.release_staging("host", hout)


def _allgather_direct(
    mpi, sendbuf, send_dt, send_count, recvbufs, recv_dt, recv_count, seq
):
    """One-sided allgather: every rank puts its block into every peer."""
    key = ("allgather", seq)
    table = _rendezvous_table(mpi, key)
    table[mpi.rank] = (recvbufs, recv_dt, recv_count)
    yield mpi.barrier()
    moves = []
    for peer in range(mpi.size):
        tbufs, tdt, tcount = table[peer]
        moves.append((
            one_sided_move(
                mpi.proc, sendbuf, send_dt, send_count,
                mpi.world.procs[peer], tbufs[mpi.rank], tdt, tcount, "put",
            ),
            f"coll.allgather.put r{mpi.rank}->r{peer}",
        ))
    yield from _run_moves(mpi, moves)
    yield mpi.barrier()
    _rendezvous_close(mpi, key)


# -- alltoall / alltoallv -----------------------------------------------------


def alltoall(
    mpi: "RankContext",
    sendbufs: Sequence[Buffer],
    send_dt: Datatype,
    send_count: int,
    recvbufs: Sequence[Buffer],
    recv_dt: Datatype,
    recv_count: int,
    algorithm=None,
):
    """Every rank sends a distinct block to every rank (uniform counts).

    ``sendbufs[d]`` is this rank's block for destination ``d``;
    ``recvbufs[s]`` receives source ``s``'s block (``sendbufs[rank]`` /
    ``recvbufs[rank]`` carry the local block through the same engines).
    Coroutine: ``yield from alltoall(...)``.  Returns the bytes moved
    per rank (``send_dt.size * send_count * size``).
    """
    moved = yield from _alltoall_common(
        mpi, "alltoall", sendbufs, send_dt, [send_count] * mpi.size,
        recvbufs, recv_dt, [recv_count] * mpi.size, algorithm,
    )
    return moved


def alltoallv(
    mpi: "RankContext",
    sendbufs: Sequence[Buffer],
    send_dt: Datatype,
    send_counts: Sequence[int],
    recvbufs: Sequence[Buffer],
    recv_dt: Datatype,
    recv_counts: Sequence[int],
    algorithm=None,
):
    """Vector alltoall: per-destination element counts (zeros allowed).

    ``send_counts[d]`` on rank ``i`` must equal ``recv_counts[i]`` on
    rank ``d`` in signature terms, exactly as for matched send/recv
    pairs.  Coroutine: ``yield from alltoallv(...)``.  Returns the bytes
    moved per rank (``send_dt.size * sum(send_counts)``).
    """
    moved = yield from _alltoall_common(
        mpi, "alltoallv", sendbufs, send_dt, list(send_counts),
        recvbufs, recv_dt, list(recv_counts), algorithm,
    )
    return moved


def _alltoall_common(
    mpi, op, sendbufs, send_dt, send_counts, recvbufs, recv_dt, recv_counts,
    algorithm,
):
    """Validate, resolve the algorithm, and dispatch one alltoall call."""
    size = mpi.size
    send_dt.commit()
    recv_dt.commit()
    if len(sendbufs) != size or len(recvbufs) != size:
        raise ValueError(
            f"{op}: one send and one recv buffer per rank ({size}) is "
            f"required, got {len(sendbufs)}/{len(recvbufs)}"
        )
    if len(send_counts) != size or len(recv_counts) != size:
        raise ValueError(
            f"{op}: one send and one recv count per rank ({size}) is "
            f"required, got {len(send_counts)}/{len(recv_counts)}"
        )
    if min(send_counts, default=0) < 0 or min(recv_counts, default=0) < 0:
        raise ValueError(f"{op}: counts must be >= 0")
    nbytes = send_dt.size * sum(send_counts)
    peer_bytes = send_dt.size * max(send_counts, default=0)
    any_device = bool(
        [d for d in range(size) if sendbufs[d].is_device and send_counts[d]]
        or [s for s in range(size) if recvbufs[s].is_device and recv_counts[s]]
    )
    algo = _resolve_algorithm(mpi, op, algorithm, any_device, peer_bytes)
    seq = _bump_seq(mpi, op)
    _count_call(mpi, op, algo, nbytes)
    tag = _op_tag(op, seq)
    tuner = mpi.proc.tuner
    t0 = mpi.proc.sim.now if tuner is not None else 0.0
    _vkey = None
    if _san.VERIFY is not None:
        _vkey = _san.VERIFY.coll_begin(mpi.world, mpi.rank, op, seq, algo.value)
    try:
        if algo is CollAlgorithm.PAIRWISE:
            yield from _a2av_pairwise(
                mpi, sendbufs, send_dt, send_counts,
                recvbufs, recv_dt, recv_counts, tag,
            )
        elif algo is CollAlgorithm.STAGED:
            yield from _a2av_staged(
                mpi, sendbufs, send_dt, send_counts,
                recvbufs, recv_dt, recv_counts, tag,
            )
        elif algo is CollAlgorithm.DIRECT:
            yield from _a2av_direct(
                mpi, op, sendbufs, send_dt, send_counts,
                recvbufs, recv_dt, recv_counts, seq,
            )
        elif algo is CollAlgorithm.HIERARCHICAL:
            yield from _a2av_hierarchical(
                mpi, op, sendbufs, send_dt, send_counts,
                recvbufs, recv_dt, recv_counts, seq,
            )
        else:
            yield from _a2av_flat(
                mpi, sendbufs, send_dt, send_counts,
                recvbufs, recv_dt, recv_counts, tag,
            )
    finally:
        if _vkey is not None:
            _san.VERIFY.coll_end(_vkey)
    if tuner is not None:
        # per-rank elapsed for the whole call, keyed like the decision
        # above; alltoallv samples are informational (never decided on)
        tuner.observe_coll(
            tuner.coll_key(op, peer_bytes, any_device, mpi.world.num_nodes, size),
            algo.value, mpi.proc.sim.now - t0, nbytes,
        )
    return nbytes


def _a2av_pairwise(
    mpi, sendbufs, send_dt, send_counts, recvbufs, recv_dt, recv_counts, tag
):
    """Pairwise exchange: N-1 ordered sendrecv rounds (plus self)."""
    size = mpi.size
    rank = mpi.rank
    self_req = mpi.isend(
        sendbufs[rank], send_dt, send_counts[rank], dest=rank, tag=tag
    )
    yield mpi.recv(
        recvbufs[rank], recv_dt, recv_counts[rank], source=rank, tag=tag
    )
    yield self_req
    for step in range(1, size):
        dst = (rank + step) % size
        src = (rank - step) % size
        yield mpi.sendrecv(
            sendbufs[dst], send_dt, send_counts[dst], dst,
            recvbufs[src], recv_dt, recv_counts[src],
            source=src, sendtag=tag, recvtag=tag,
        )


def _a2av_flat(
    mpi, sendbufs, send_dt, send_counts, recvbufs, recv_dt, recv_counts, tag
):
    """Nonblocking all-at-once: every block in flight simultaneously."""
    size = mpi.size
    rank = mpi.rank
    reqs = [
        mpi.isend(sendbufs[rank], send_dt, send_counts[rank], dest=rank, tag=tag),
        mpi.irecv(recvbufs[rank], recv_dt, recv_counts[rank], source=rank, tag=tag),
    ]
    for peer in range(size):
        if peer == rank:
            continue
        reqs.append(
            mpi.isend(sendbufs[peer], send_dt, send_counts[peer],
                      dest=peer, tag=tag)
        )
        reqs.append(
            mpi.irecv(recvbufs[peer], recv_dt, recv_counts[peer],
                      source=peer, tag=tag)
        )
    yield mpi.wait_all(*reqs)


def _a2av_staged(
    mpi, sendbufs, send_dt, send_counts, recvbufs, recv_dt, recv_counts, tag
):
    """Copy-to-host alltoall(v): per-block device packs, ONE batched D2H,
    host-to-host exchange, ONE batched H2D, per-block unpacks.

    Per-message GPU overheads are paid as cheap device-to-device packs;
    the PCIe transits amortize across all peers — the reason this rung
    wins for small blocks (SNIPPETS.md `copy_to_cpu_alltoall[v]`).
    Host-buffer blocks (and the self block) skip staging and ride the
    wire with their original types, so mixed worlds interoperate.
    """
    proc = mpi.proc
    size = mpi.size
    rank = mpi.rank
    out_nb = [send_dt.size * c for c in send_counts]
    in_nb = [recv_dt.size * c for c in recv_counts]
    dev_out = [
        d for d in range(size)
        if d != rank and sendbufs[d].is_device and out_nb[d]
    ]
    dev_in = [
        s for s in range(size)
        if s != rank and recvbufs[s].is_device and in_nb[s]
    ]
    out_off = {}
    off = 0
    for d in dev_out:
        out_off[d] = off
        off += out_nb[d]
    out_total = off
    in_off = {}
    off = 0
    for s in dev_in:
        in_off[s] = off
        off += in_nb[s]
    in_total = off
    hout = dout = hin = din = None
    if dev_out:
        dout = proc.acquire_staging("device", max(out_total, 256))
        hout = proc.acquire_staging("host", max(out_total, 256))
        for d in dev_out:
            lo = out_off[d]
            yield from _pack_into(
                mpi, sendbufs[d], send_dt, send_counts[d],
                dout[lo:lo + out_nb[d]],
            )
        yield proc.gpu.memcpy_d2h(hout[:out_total], dout[:out_total])
    if dev_in:
        hin = proc.acquire_staging("host", max(in_total, 256))
        din = proc.acquire_staging("device", max(in_total, 256))
    reqs = []
    if out_nb[rank] or in_nb[rank]:
        reqs.append(
            mpi.isend(sendbufs[rank], send_dt, send_counts[rank],
                      dest=rank, tag=tag)
        )
        reqs.append(
            mpi.irecv(recvbufs[rank], recv_dt, recv_counts[rank],
                      source=rank, tag=tag)
        )
    for peer in range(size):
        if peer == rank:
            continue
        if out_nb[peer]:
            if peer in out_off:
                lo = out_off[peer]
                reqs.append(mpi.isend(
                    hout[lo:lo + out_nb[peer]],
                    _packed_type(send_dt, send_counts[peer]), 1,
                    dest=peer, tag=tag,
                ))
            else:
                reqs.append(mpi.isend(
                    sendbufs[peer], send_dt, send_counts[peer],
                    dest=peer, tag=tag,
                ))
        if in_nb[peer]:
            if peer in in_off:
                lo = in_off[peer]
                reqs.append(mpi.irecv(
                    hin[lo:lo + in_nb[peer]],
                    _packed_type(recv_dt, recv_counts[peer]), 1,
                    source=peer, tag=tag,
                ))
            else:
                reqs.append(mpi.irecv(
                    recvbufs[peer], recv_dt, recv_counts[peer],
                    source=peer, tag=tag,
                ))
    if reqs:
        yield mpi.wait_all(*reqs)
    if dev_in:
        yield proc.gpu.memcpy_h2d(din[:in_total], hin[:in_total])
        for s in dev_in:
            lo = in_off[s]
            yield from _unpack_from(
                mpi, recvbufs[s], recv_dt, recv_counts[s],
                din[lo:lo + in_nb[s]],
            )
        proc.release_staging("host", hin)
        proc.release_staging("device", din)
    if dev_out:
        proc.release_staging("device", dout)
        proc.release_staging("host", hout)


def _a2av_direct(
    mpi, op, sendbufs, send_dt, send_counts, recvbufs, recv_dt, recv_counts, seq
):
    """One-sided alltoall(v): each rank puts straight into its slot in
    every peer's recv buffers, fenced by barriers."""
    key = (op, seq)
    table = _rendezvous_table(mpi, key)
    table[mpi.rank] = (recvbufs, recv_dt, tuple(recv_counts))
    yield mpi.barrier()
    moves = []
    for peer in range(mpi.size):
        tbufs, tdt, tcounts = table[peer]
        if send_counts[peer] == 0 and tcounts[mpi.rank] == 0:
            continue
        moves.append((
            one_sided_move(
                mpi.proc, sendbufs[peer], send_dt, send_counts[peer],
                mpi.world.procs[peer], tbufs[mpi.rank], tdt,
                tcounts[mpi.rank], "put",
            ),
            f"coll.{op}.put r{mpi.rank}->r{peer}",
        ))
    yield from _run_moves(mpi, moves)
    yield mpi.barrier()
    _rendezvous_close(mpi, key)


def _a2av_hierarchical(
    mpi, op, sendbufs, send_dt, send_counts, recvbufs, recv_dt, recv_counts, seq
):
    """Leader-per-node alltoall(v) (arXiv 2503.24230's locality ladder).

    Phase 0 (tag slot 1): every rank ships its per-destination blocks to
    its node leader, which lands them packed in one staging region per
    destination node.  Phase 1 (slot 2): leaders exchange exactly one
    aggregated message per peer node — both sides derive the identical
    region layout from the metadata table, so one packed datatype
    describes it.  Phase 2 (slot 3): leaders scatter the per-destination
    blocks to their local ranks.  The metadata table is closed by a
    trailing barrier.
    """
    world = mpi.world
    rank = mpi.rank
    size = mpi.size
    my_node = mpi.node_index
    local = mpi.node_ranks
    leader = local[0]
    t0 = _op_tag(op, seq, 1)
    t1 = _op_tag(op, seq, 2)
    t2 = _op_tag(op, seq, 3)
    key = (op, "hier", seq)
    table = _rendezvous_table(mpi, key)
    table[rank] = (send_dt, tuple(send_counts), recv_dt, tuple(recv_counts))
    yield mpi.barrier()
    node_ids = sorted({world.node_index(r) for r in range(size)})

    def blk_bytes(src: int, dest: int) -> int:
        sdt, scnts = table[src][0], table[src][1]
        return sdt.size * scnts[dest]

    def blk_type(src: int, dest: int) -> Datatype:
        sdt, scnts = table[src][0], table[src][1]
        return _packed_type(sdt, scnts[dest])

    reqs = []
    # phase 0: everyone (leader included, via self-sends) ships blocks up
    for d in range(size):
        if send_counts[d]:
            reqs.append(
                mpi.isend(sendbufs[d], send_dt, send_counts[d],
                          dest=leader, tag=t0)
            )

    regions: dict = {}
    src_block: dict = {}
    if rank == leader:
        proc = mpi.proc
        kind = "device" if mpi.gpu is not None else "host"
        # region layouts, derived identically on every leader from the
        # shared table: outbound regions are (local source-major, peer
        # destination-minor); the inbound region for node n mirrors it
        out_parts: dict = {}
        in_parts: dict = {}
        for n in node_ids:
            off = 0
            parts = []
            for lr in local:
                for d in world.ranks_on_node(n):
                    nb = blk_bytes(lr, d)
                    if nb:
                        src_block[(lr, d)] = ("out", n, off, nb)
                        parts.append((table[lr][0], table[lr][1][d]))
                        off += nb
            out_parts[n] = (parts, off)
            if n != my_node:
                off = 0
                parts = []
                for s in world.ranks_on_node(n):
                    for lr in local:
                        nb = blk_bytes(s, lr)
                        if nb:
                            src_block[(s, lr)] = ("in", n, off, nb)
                            parts.append((table[s][0], table[s][1][lr]))
                            off += nb
                in_parts[n] = (parts, off)
        for n in node_ids:
            if out_parts[n][1]:
                regions[("out", n)] = proc.acquire_staging(
                    kind, max(out_parts[n][1], 256)
                )
            if n != my_node and in_parts[n][1]:
                regions[("in", n)] = proc.acquire_staging(
                    kind, max(in_parts[n][1], 256)
                )
        # phase-0 receives: per source, blocks arrive in destination
        # order (matching the sender's post order pairwise-FIFO)
        recvs0 = []
        for lr in local:
            for d in range(size):
                nb = blk_bytes(lr, d)
                if not nb:
                    continue
                _dirn, n, off, _nb = src_block[(lr, d)]
                recvs0.append(mpi.irecv(
                    regions[("out", n)][off:off + nb], blk_type(lr, d), 1,
                    source=lr, tag=t0,
                ))
        yield mpi.wait_all(*(reqs + recvs0))
        reqs = []
        # phase 1: one aggregated message per peer node, between leaders
        if len(node_ids) > 1:
            reqs1 = []
            for n in node_ids:
                if n == my_node:
                    continue
                peer = world.ranks_on_node(n)[0]
                parts, total = out_parts[n]
                if total:
                    rtype = _packed_for_signature(_parts_signature(parts))
                    reqs1.append(mpi.isend(
                        regions[("out", n)][:total], rtype, 1,
                        dest=peer, tag=t1,
                    ))
                parts, total = in_parts[n]
                if total:
                    rtype = _packed_for_signature(_parts_signature(parts))
                    reqs1.append(mpi.irecv(
                        regions[("in", n)][:total], rtype, 1,
                        source=peer, tag=t1,
                    ))
            if reqs1:
                yield mpi.wait_all(*reqs1)
        # phase 2: scatter each (source, local destination) block down
        for lr in local:
            for s in range(size):
                nb = blk_bytes(s, lr)
                if not nb:
                    continue
                dirn, n, off, _nb = src_block[(s, lr)]
                reqs.append(mpi.isend(
                    regions[(dirn, n)][off:off + nb], blk_type(s, lr), 1,
                    dest=lr, tag=t2,
                ))
    # every rank receives its final blocks from its leader
    for s in range(size):
        if recv_counts[s]:
            reqs.append(mpi.irecv(
                recvbufs[s], recv_dt, recv_counts[s], source=leader, tag=t2
            ))
    if reqs:
        yield mpi.wait_all(*reqs)
    yield mpi.barrier()
    _rendezvous_close(mpi, key)
    if rank == leader:
        kind = "device" if mpi.gpu is not None else "host"
        for region in regions.values():
            mpi.proc.release_staging(kind, region)
