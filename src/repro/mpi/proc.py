"""Per-rank process state: the endpoint everything else hangs off."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.cuda.runtime import CudaContext
from repro.faults.plan import FaultPlan
from repro.gpu_engine.engine import GpuDatatypeEngine
from repro.mpi.config import MpiConfig
from repro.mpi.matching import MatchingEngine
from repro.mpi.message import AmPacket
from repro.obs.metrics import MetricsRegistry
from repro.obs.stats import TransferStats
from repro.sanitize import runtime as _san
from repro.sim.core import Simulator

if TYPE_CHECKING:
    from repro.hw.gpu import Gpu
    from repro.hw.node import Node
    from repro.mpi.btl.base import Btl

__all__ = ["MpiProcess"]


class MpiProcess:
    """One MPI rank: placement, GPU context, matching, AM dispatch."""

    def __init__(
        self,
        rank: int,
        node: "Node",
        gpu: Optional["Gpu"],
        config: MpiConfig,
        metrics: Optional[MetricsRegistry] = None,
        faults: Optional[FaultPlan] = None,
        tuner=None,
    ) -> None:
        self.rank = rank
        self.node = node
        self.gpu = gpu
        self.config = config
        #: world-shared fault injector (None = fault-free); standalone
        #: processes build their own plan when the config asks for one
        self.faults = faults
        if self.faults is None and config.faults is not None:
            self.faults = FaultPlan(config.faults)
        #: world-shared autotuner (None = static selection); standalone
        #: processes build their own when the config asks for one — same
        #: pattern as the fault plan
        self.tuner = tuner
        if self.tuner is None and config.autotune != "off":
            from repro.tune.tuner import Autotuner

            self.tuner = Autotuner.from_config(config)
        self.sim: Simulator = node.sim
        self.matching = MatchingEngine()
        #: per-(dest, comm) send counters backing the envelope pair_seq
        #: stamp (the receiver re-sequences arrivals by it)
        self._send_seq: dict[tuple[int, int], int] = {}
        #: rank-scoped view of the world's registry (own registry standalone)
        self.metrics = (
            metrics
            if metrics is not None
            else MetricsRegistry().scoped(f"r{rank}.")
        )
        #: one :class:`TransferStats` per completed transfer on this rank
        #: (config.transfer_log=False keeps only the counters — scale runs)
        self.transfer_log: list[TransferStats] = []
        self.log_transfers: bool = config.transfer_log
        #: cached counter objects keyed (role, protocol, mode) so the
        #: per-transfer hot path skips the f-string + registry lookups
        self._rt_counters: dict = {}
        #: reusable CPU convertors keyed (direction, count, id(dt), id(buf));
        #: values hold strong refs to dt/buf so the ids stay valid, and hits
        #: verify identity — see CpuSideJob
        self._convertor_cache: dict = {}
        #: pre-rendered label for matching futures (one irecv per message)
        self._match_label: str = f"r{rank}.match"
        #: per-peer cached isend/irecv process labels (one spawn per message)
        self._isend_labels: dict = {}
        self._irecv_labels: dict = {}
        #: reusable eager RTS headers keyed (id(dt), count) — headers are
        #: read-only downstream, so same-shape sends share one dict
        self._eager_hdr_cache: dict = {}
        self.ctx: Optional[CudaContext] = CudaContext(gpu) if gpu else None
        self._engine: Optional[GpuDatatypeEngine] = None
        self._handlers: dict[str, Callable[[AmPacket, "Btl"], None]] = {}
        #: CUDA IPC registration cache — "a single one-time establishment
        #: of the RDMA connection (and then caching the registration)"
        self.ipc_cache: dict = {}
        self.am_received = 0
        # staging-buffer free lists, keyed (kind, nbytes, mapped)
        self._staging_pool: dict = {}

    # -- staging buffer pool ------------------------------------------------
    def acquire_staging(
        self,
        kind: str,
        nbytes: int,
        zero_copy_map: bool = False,
        optional: bool = False,
    ):
        """Reusable staging buffer ('host' or 'device'), pooled per rank.

        Pooling mirrors the registration/allocation caching real
        implementations do: a ping-pong reuses the same ring every
        iteration, so IPC handles stay cached on the peer.

        ``optional=True`` marks an allocation the caller can live
        without (e.g. the receiver's local staging optimization); under
        fault-injected memory pressure it returns ``None`` instead of a
        buffer, and the caller degrades gracefully.  Required
        allocations are never refused.
        """
        from repro.cuda.uma import map_host_buffer

        if optional and self.faults is not None and self.faults.fail_staging(kind):
            return None
        key = (kind, nbytes, zero_copy_map)
        pool = self._staging_pool.setdefault(key, [])
        if pool:
            buf, snap = pool.pop()
            if _san.MEM is not None:
                # pooled reuse is logically a fresh allocation: stale
                # contents from the previous transfer must read as
                # uninitialized, not as valid data
                _san.MEM.repoison(buf)
            if _san.RACE is not None and snap is not None:
                # allocator-recycling edge: the releaser's clock orders
                # the previous user's accesses before ours (the moral
                # equivalent of malloc/free happens-before in TSan)
                _san.RACE.join_actor(_san.RACE.current, snap)
            return buf
        if kind == "device":
            if self.gpu is None:
                raise RuntimeError(f"rank {self.rank} has no GPU for staging")
            return self.gpu.memory.alloc(nbytes, label="staging")
        buf = self.node.host_memory.alloc(nbytes, label="staging")
        if zero_copy_map:
            if self.gpu is None:
                raise RuntimeError("zero-copy staging needs a GPU")
            map_host_buffer(buf, self.gpu)
        return buf

    def release_staging(self, kind: str, buf, zero_copy_map: bool = False) -> None:
        """Return a staging buffer to its pool."""
        snap = None if _san.RACE is None else _san.RACE.snapshot()
        self._staging_pool[(kind, buf.nbytes, zero_copy_map)].append((buf, snap))

    @property
    def engine(self) -> GpuDatatypeEngine:
        """The rank's GPU datatype engine (created on first GPU use)."""
        if self._engine is None:
            if self.gpu is None:
                raise RuntimeError(f"rank {self.rank} has no GPU")
            # per-process stream: ranks sharing a GPU still get their own
            # CUDA streams, so sender pack and receiver unpack overlap
            self._engine = GpuDatatypeEngine(
                self.gpu,
                stream_name=f"dtengine.r{self.rank}",
                metrics=self.metrics.scoped("engine."),
                tuner=self.tuner,
            )
        return self._engine

    def next_send_seq(self, dest: int, comm_id: int = 0) -> int:
        """The next contiguous pair_seq for a send to ``dest``.

        Stamped on the envelope at post time; the receiver's matching
        engine re-sequences arrivals by it (non-overtaking)."""
        key = (dest, comm_id)
        seq = self._send_seq.get(key, 0)
        self._send_seq[key] = seq + 1
        return seq

    def record_transfer(self, stats: TransferStats) -> None:
        """Log a finished transfer and bump the per-protocol counters."""
        stats.rank = self.rank
        if self.log_transfers:
            self.transfer_log.append(stats)
        self.count_transfer(
            stats.role, stats.protocol, stats.mode, stats.total_bytes
        )

    def count_transfer(
        self, role: str, protocol: str, mode: str, nbytes: int
    ) -> None:
        """Bump the per-protocol counters without building a TransferStats.

        The counters-only path used at scale (``config.transfer_log``
        off); counter objects are created once per (role, protocol, mode)
        and cached, and bumped with direct ``value`` writes (``nbytes``
        is validated non-negative upstream).
        """
        key = (role, protocol, mode)
        counters = self._rt_counters.get(key)
        if counters is None:
            m = self.metrics
            counters = (
                m.counter(f"pml.{role}s"),
                m.counter(f"pml.{role}_bytes"),
                m.counter(f"protocol.{protocol or 'unknown'}"),
                m.counter(f"protocol.{protocol}.{mode}") if mode else None,
            )
            self._rt_counters[key] = counters
        c_ops, c_bytes, c_proto, c_mode = counters
        c_ops.value += 1
        c_bytes.value += nbytes
        c_proto.value += 1
        if c_mode is not None:
            c_mode.value += 1

    # -- Active Message dispatch -----------------------------------------
    def register_handler(
        self, name: str, fn: Callable[[AmPacket, "Btl"], None]
    ) -> None:
        """Bind an Active Message handler name (must be unused)."""
        if name in self._handlers:
            raise ValueError(f"rank {self.rank}: handler {name!r} already bound")
        self._handlers[name] = fn

    def unregister_handler(self, name: str) -> None:
        """Remove an Active Message handler binding, if present."""
        self._handlers.pop(name, None)

    def dispatch(self, packet: AmPacket, btl: "Btl") -> None:
        """Deliver an arriving Active Message to its handler."""
        self.am_received += 1
        fn = self._handlers.get(packet.handler)
        if fn is None:
            raise RuntimeError(
                f"rank {self.rank}: no handler for AM {packet.handler!r}"
            )
        fn(packet, btl)

    def __repr__(self) -> str:
        where = self.gpu.name if self.gpu else self.node.name
        return f"MpiProcess(rank={self.rank} @ {where})"
