"""Shared protocol plumbing: side descriptions, jobs, fragment plans."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.cuda.ipc import IpcMemHandle
from repro.datatype.convertor import Convertor
from repro.datatype.ddt import Datatype
from repro.gpu_engine.engine import PackJob
from repro.hw.memory import Buffer
from repro.obs.stats import TransferStats
from repro.sim.core import Future
from repro.sim.resources import Mailbox, Semaphore

if TYPE_CHECKING:
    from repro.mpi.btl.base import Btl
    from repro.mpi.proc import MpiProcess

__all__ = [
    "SideInfo",
    "TransferState",
    "CpuSideJob",
    "byte_ranges",
    "describe_side",
    "choose_protocol",
]


@dataclass
class SideInfo:
    """What one peer reveals about its buffer during the handshake."""

    loc: str  # "host" | "device"
    gpu_name: Optional[str]
    contiguous: bool
    total: int
    #: IPC handle of the user buffer (contiguous-device fast paths) or of
    #: the sender's fragment ring (general RDMA path)
    handle: Optional[IpcMemHandle] = None
    ring_segments: int = 0
    frag_bytes: int = 0


def describe_side(
    proc: "MpiProcess", buf: Buffer, dt: Datatype, count: int
) -> SideInfo:
    """Build the handshake description of one endpoint's buffer."""
    return SideInfo(
        loc="device" if buf.is_device else "host",
        gpu_name=buf.device.name if buf.is_device else None,
        contiguous=dt.is_contiguous,
        total=dt.size * count,
    )


def choose_protocol(s: SideInfo, r: SideInfo, btl: "Btl") -> str:
    """The receiver-side handshake decision (Section 4.1)."""
    if s.loc == "host" and r.loc == "host":
        return "host"
    if btl.supports_cuda_ipc and s.loc == "device" and r.loc == "device":
        return "ipc_rdma"
    return "copyinout"


def byte_ranges(total: int, frag: int) -> list[tuple[int, int]]:
    """The packed stream cut into pipeline fragments."""
    if total == 0:
        return [(0, 0)]
    return [(lo, min(lo + frag, total)) for lo in range(0, total, frag)]


@dataclass
class TransferState:
    """Per-transfer state shared by a protocol coroutine and its handlers."""

    proc: "MpiProcess"
    btl: "Btl"
    tid: str
    dt: Datatype
    count: int
    buf: Buffer
    total: int
    frag_bytes: int
    depth: int
    #: inbound protocol messages (frag-ready / acks / done)
    inbox: Mailbox = None  # type: ignore[assignment]
    credits: Semaphore = None  # type: ignore[assignment]
    #: sender-side device fragment ring (ipc_rdma general mode)
    ring: Optional[Buffer] = None
    #: which side of the transfer this state belongs to ("s" or "r") —
    #: qualifies AM handler names so a rank sending to *itself* (e.g. a
    #: collective's self-contribution) binds both sides without collision
    role: str = "s"
    #: structured per-transfer record, published to the rank's
    #: ``transfer_log`` by the PML when the protocol finishes
    stats: TransferStats = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        sim = self.proc.sim
        self.inbox = Mailbox(sim, name=f"{self.tid}.inbox")
        self.credits = Semaphore(sim, value=self.depth, name=f"{self.tid}.credits")
        self.stats = TransferStats(
            tid=self.tid,
            role="send" if self.role == "s" else "recv",
            rank=self.proc.rank,
            total_bytes=self.total,
            frag_bytes=self.frag_bytes,
            start_s=sim.now,
        )
        self._in_flight = 0

    # -- observability helpers ----------------------------------------------
    def ranges(self) -> list[tuple[int, int]]:
        """The transfer's fragment plan, recorded into the stats record."""
        r = byte_ranges(self.total, self.frag_bytes)
        self.stats.fragments = len(r)
        return r

    def frag_begin(self) -> None:
        """One more fragment in flight (tracks the high-water mark)."""
        self._in_flight += 1
        if self._in_flight > self.stats.max_in_flight:
            self.stats.max_in_flight = self._in_flight

    def frag_end(self) -> None:
        """One fragment retired."""
        self._in_flight = max(0, self._in_flight - 1)

    def acquire_credit(self) -> Future:
        """``credits.acquire()`` that accounts blocked time and in-flight."""
        t0 = self.proc.sim.now
        fut = self.credits.acquire()

        def granted(_fut: Future) -> None:
            self.stats.credit_wait_s += self.proc.sim.now - t0
            self.frag_begin()

        fut.add_callback(granted)
        return fut

    def release_credit(self) -> None:
        """``credits.release()`` that retires one in-flight fragment."""
        self.frag_end()
        self.credits.release()

    # -- handler helpers -----------------------------------------------------
    def bind(self, suffix: str, fn) -> str:
        """Register a role-qualified AM handler for this transfer."""
        name = f"x{self.tid}.{self.role}.{suffix}"
        self.proc.register_handler(name, fn)
        return name

    def bind_inbox(self, suffix: str) -> str:
        """Route an AM handler's packets into this transfer's inbox."""
        return self.bind(suffix, lambda pkt, _btl: self.inbox.put(pkt))

    def bind_credit(self, suffix: str) -> str:
        """Make an AM handler release one pipeline credit per packet."""
        return self.bind(suffix, lambda pkt, _btl: self.release_credit())

    def unbind_all(self, *suffixes: str) -> None:
        """Remove this side's handlers for the given suffixes."""
        for s in suffixes:
            self.proc.unregister_handler(f"x{self.tid}.{self.role}.{s}")

    def peer(self, suffix: str) -> str:
        """Handler name on the peer side of the same transfer."""
        other = "r" if self.role == "s" else "s"
        return f"x{self.tid}.{other}.{suffix}"


class CpuSideJob:
    """Host-side pack/unpack charged to the node's CPU pack engine.

    The symmetric counterpart of :class:`repro.gpu_engine.engine.PackJob`
    for buffers living in host memory (the traditional datatype engine).
    """

    def __init__(
        self,
        proc: "MpiProcess",
        dt: Datatype,
        count: int,
        buf: Buffer,
        direction: str,
    ) -> None:
        self.proc = proc
        self.node = proc.node
        self.direction = direction
        self.convertor = Convertor(dt, count, buf.bytes, direction)
        self.contiguous = dt.is_contiguous
        self.buf = buf
        self.total = dt.size * count

    def process_range(self, lo: int, hi: int, stage) -> Future:
        """Pack [lo, hi) into ``stage`` / unpack ``stage`` into [lo, hi).

        ``stage`` may be a :class:`Buffer` or a raw ``uint8`` view (e.g. an
        Active Message payload).
        """
        n = hi - lo
        view = stage.bytes if isinstance(stage, Buffer) else stage
        if self.direction == "pack":
            def move() -> None:
                self.convertor.pack_range(view, lo, hi)
        else:
            def move() -> None:
                self.convertor.unpack_range(view, lo, hi)
        if self.contiguous:
            # no transformation needed — a straight memcpy
            return self.node.cpu_memcpy_op(n, fn=move, label=f"cpu-{self.direction}")
        return self.node.cpu_pack_op(n, fn=move, label=f"cpu-{self.direction}")
