"""Shared protocol plumbing: side descriptions, jobs, fragment plans."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.cuda.ipc import IpcMemHandle
from repro.datatype.convertor import Convertor
from repro.datatype.ddt import Datatype
from repro.faults.plan import IpcOpenError, TransferTimeout
from repro.gpu_engine.engine import PackJob
from repro.hw.memory import Buffer
from repro.obs.stats import TransferStats
from repro.sanitize import runtime as _san
from repro.sim.core import Future, TimerHandle
from repro.sim.resources import Mailbox, Semaphore

if TYPE_CHECKING:
    from repro.mpi.btl.base import Btl
    from repro.mpi.proc import MpiProcess

__all__ = [
    "SideInfo",
    "TransferState",
    "CpuSideJob",
    "byte_ranges",
    "describe_side",
    "choose_protocol",
    "feasible_protocols",
    "open_with_retry",
]


def open_with_retry(state: "TransferState", handle: IpcMemHandle):
    """Coroutine: CUDA IPC open with bounded retry and backoff.

    Used on the *sender* side (and anywhere no renegotiation is
    possible): a failed ``cudaIpcOpenMemHandle`` is retried up to
    ``config.retry.ipc_open_retries`` times before the error propagates.
    Receivers instead fall back to the copy-in/out protocol after a
    single failed attempt (they can still steer the handshake).
    """
    proc = state.proc
    policy = proc.config.retry
    attempt = 0
    while True:
        try:
            mapped = yield handle.open(proc.gpu, proc.ipc_cache, faults=proc.faults)
            return mapped
        except IpcOpenError:
            if attempt >= policy.ipc_open_retries:
                raise
            proc.metrics.counter("pml.ipc_open_retries").inc()
            yield proc.sim.timeout(policy.rto * policy.backoff**attempt)
            attempt += 1


@dataclass
class SideInfo:
    """What one peer reveals about its buffer during the handshake."""

    loc: str  # "host" | "device"
    gpu_name: Optional[str]
    contiguous: bool
    total: int
    #: IPC handle of the user buffer (contiguous-device fast paths) or of
    #: the sender's fragment ring (general RDMA path)
    handle: Optional[IpcMemHandle] = None
    ring_segments: int = 0
    frag_bytes: int = 0
    #: sender's tuned protocol preference (docs/AUTOTUNER.md), advertised
    #: in the RTS; the receiver honours it only when feasible for the
    #: actual buffer pair — None keeps the classic handshake decision
    preferred_protocol: Optional[str] = None


def describe_side(
    proc: "MpiProcess", buf: Buffer, dt: Datatype, count: int
) -> SideInfo:
    """Build the handshake description of one endpoint's buffer."""
    return SideInfo(
        loc="device" if buf.is_device else "host",
        gpu_name=buf.device.name if buf.is_device else None,
        contiguous=dt.is_contiguous,
        total=dt.size * count,
    )


def feasible_protocols(s: SideInfo, r: SideInfo, btl: "Btl") -> tuple[str, ...]:
    """Rendezvous protocols able to move this buffer pair, default first.

    Host pairs have exactly one pipeline.  Device pairs over a CUDA-IPC
    BTL may ride the RDMA pipeline *or* the MVAPICH-style host-staged
    copy-in/out — the manual-pack baseline is a first-class choice the
    autotuner can prefer (arXiv 2511.13804: manual packing sometimes
    beats datatype RDMA), and the fault ladder already falls back to it.
    Everything else (mixed placement, no IPC) stages through the host.
    """
    if s.loc == "host" and r.loc == "host":
        return ("host",)
    if btl.supports_cuda_ipc and s.loc == "device" and r.loc == "device":
        return ("ipc_rdma", "copyinout")
    return ("copyinout",)


def choose_protocol(
    s: SideInfo, r: SideInfo, btl: "Btl", preferred: Optional[str] = None
) -> str:
    """The receiver-side handshake decision (Section 4.1).

    ``preferred`` is the sender's tuned advertisement: it wins when it is
    in the feasible set, otherwise the classic first-feasible rule holds
    (so a stale decision table can never produce an unrunnable pairing).
    """
    feasible = feasible_protocols(s, r, btl)
    if preferred is not None and preferred in feasible:
        return preferred
    return feasible[0]


def byte_ranges(total: int, frag: int) -> list[tuple[int, int]]:
    """The packed stream cut into pipeline fragments.

    A zero-byte message has *no* fragments — a ghost ``(0, 0)`` fragment
    would ship a pointless notification through the ring and touch the
    GPU engine for nothing.
    """
    if total == 0:
        return []
    return [(lo, min(lo + frag, total)) for lo in range(0, total, frag)]


@dataclass
class TransferState:
    """Per-transfer state shared by a protocol coroutine and its handlers."""

    proc: "MpiProcess"
    btl: "Btl"
    tid: str
    dt: Datatype
    count: int
    buf: Buffer
    total: int
    frag_bytes: int
    depth: int
    #: inbound protocol messages (frag-ready / acks / done)
    inbox: Mailbox = None  # type: ignore[assignment]
    credits: Semaphore = None  # type: ignore[assignment]
    #: sender-side device fragment ring (ipc_rdma general mode)
    ring: Optional[Buffer] = None
    #: which side of the transfer this state belongs to ("s" or "r") —
    #: qualifies AM handler names so a rank sending to *itself* (e.g. a
    #: collective's self-contribution) binds both sides without collision
    role: str = "s"
    #: structured per-transfer record, published to the rank's
    #: ``transfer_log`` by the PML when the protocol finishes
    stats: TransferStats = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        sim = self.proc.sim
        self.inbox = Mailbox(sim, name=f"{self.tid}.inbox")
        self.credits = Semaphore(sim, value=self.depth, name=f"{self.tid}.credits")
        self.stats = TransferStats(
            tid=self.tid,
            role="send" if self.role == "s" else "recv",
            rank=self.proc.rank,
            total_bytes=self.total,
            frag_bytes=self.frag_bytes,
            start_s=sim.now,
        )
        self._in_flight = 0
        # -- reliability layer (docs/ROBUSTNESS.md) ------------------------
        #: retransmit timers armed only under an active fault plan (or
        #: config.retry.always_on); fault-free timelines stay untouched
        self.reliable = bool(
            self.proc.config.retry.always_on
            or (self.proc.faults is not None and self.proc.faults.active)
        )
        #: sender side: fragment ids whose ACK has arrived
        self.acked: set[int] = set()
        #: sanitizer: clock snapshot at each ACK's arrival; a slot_free
        #: gate that finds its ACK already arrived inherits this stamp
        self._ack_snaps: dict[int, dict] = {}
        self._retrans_timers: dict[int, TimerHandle] = {}
        self._all_acked: Optional[Future] = None
        self._acks_needed = 0
        #: receiver side: fragment ids seen / fully processed (dedupe)
        self._frags_seen: set[int] = set()
        self._frags_done: set[int] = set()
        #: sanitizer: vector-clock snapshot at frag_done time, replayed on
        #: re-ACKs so the unpack -> re-ACK happens-before edge is visible
        self._done_snaps: dict[int, dict] = {}
        #: ring-slot reuse gates (see :meth:`slot_free`)
        self._slot_waiters: dict[int, list[Future]] = {}
        #: waits that must fail if the transfer times out (see _abort)
        self._waits: list[Future] = []
        self._closed = False

    # -- sender reliability: ACK tracking + retransmit -----------------------
    def expect_acks(self, n: int) -> Future:
        """Future resolving once ``n`` distinct fragment ACKs arrive.

        Pair with ``bind("ack", state.on_ack)``.  Fails with
        :class:`TransferTimeout` if any fragment exhausts its retries.
        """
        fut = Future(self.proc.sim, label=f"{self.tid}.all-acked")
        self._all_acked = fut
        self._acks_needed = n
        if n == 0:
            fut.resolve(None)
        return fut

    def on_ack(self, pkt, _btl) -> None:
        """AM handler: dedupe, cancel the retransmit timer, free a credit."""
        i = int(pkt.header["i"])
        if i in self.acked:
            # a retransmitted fragment was re-ACKed; drop the duplicate
            self.stats.dup_acks_dropped += 1
            self.proc.metrics.counter("pml.dup_acks_dropped").inc()
            return
        self.acked.add(i)
        if _san.RACE is not None:
            # delivery-actor clock: includes the receiver's unpack chain
            # (the ACK was sent after the fragment was fully retired)
            self._ack_snaps[i] = _san.RACE.snapshot()
        timer = self._retrans_timers.pop(i, None)
        if timer is not None:
            timer.cancel()
        for fut in self._slot_waiters.pop(i, []):
            if not fut.done:
                fut.resolve(None)
        self.release_credit()
        self._acks_needed -= 1
        if self._acks_needed == 0 and self._all_acked is not None:
            if not self._all_acked.done:
                self._all_acked.resolve(None)

    def slot_free(self, i: int) -> Future:
        """Future: ring slot ``i % depth`` is safe to overwrite.

        In the RDMA modes the ring *is* the data path, and credits are a
        counting window, not slot-specific: ACKs for fragments i+1..i+k
        can hand the sender enough credits to reach fragment ``i + depth``
        while fragment ``i`` — lost on the wire and awaiting
        retransmission — still lives in its slot.  Repacking the slot
        then corrupts the retransmitted fragment.  This gate waits for
        the ACK of fragment ``i - depth`` specifically; on the
        non-reliable path in-order delivery makes the credit window
        sufficient and the gate resolves immediately.
        """
        fut = Future(self.proc.sim, label=f"{self.tid}.slot[{i}]")
        j = i - self.depth
        if not self.reliable or j < 0 or j in self.acked:
            if _san.RACE is not None and j in self._ack_snaps:
                # the gate is a no-op only because ACK(j) already landed;
                # inherit that arrival's clock so slot reuse stays ordered
                # after the receiver's unpack of fragment j
                fut._san_snap = self._ack_snaps[j]
            fut.resolve(None)
            return fut
        self._slot_waiters.setdefault(j, []).append(fut)
        self._waits.append(fut)
        return fut

    def _guard(self, fut: Future) -> Future:
        """Make a wait abortable by a transfer-level timeout failure.

        A sender that exhausts retries may be blocked on a *credit*, not
        on the all-ACKed future — the timeout must reach it there too.
        """
        if not self.reliable:
            return fut
        outer = Future(self.proc.sim, label=f"{self.tid}.guarded")

        def forward(f: Future) -> None:
            if outer.done:
                return
            if f.failed:
                outer.fail(f.exception)
            else:
                outer.resolve(f._value)

        fut.add_callback(forward)
        self._waits.append(outer)
        return outer

    def _abort(self, exc: Exception) -> None:
        """Fail every outstanding guarded wait (retries exhausted)."""
        waits, self._waits = self._waits, []
        for w in waits:
            if not w.done:
                w.fail(exc)

    def send_frag(self, header: dict, payload=None) -> None:
        """Send a ``frag`` notification, retransmitting until ACKed.

        Without the reliability layer this is a plain fire-and-forget
        ``am_send``; with it, an exponential-backoff watchdog re-sends
        the notification while the fragment id stays unACKed, and fails
        the transfer after ``retry.max_retries`` attempts.
        """
        if self.reliable and payload is not None:
            # own snapshot: a retransmission must resend the *original*
            # bytes even after the staging buffer underneath the caller's
            # view has been reused for a later fragment
            payload = np.array(payload, dtype=np.uint8)
        # vector-clock snapshot of the sending context: a retransmission
        # fires from a bare timer (no actor), but it still happens-after
        # everything the original send did (the pack of this fragment)
        snap = None if _san.RACE is None else _san.RACE.snapshot()
        self._transmit(int(header["i"]), header, payload, attempt=0, snap=snap)

    def _transmit(
        self, i: int, header: dict, payload, attempt: int, snap=None
    ) -> None:
        if attempt:
            self.stats.retransmits += 1
            self.proc.metrics.counter("pml.retransmits").inc()
        if _san.RACE is not None and snap is not None:
            _san.RACE.deliver_am(
                f"{self.tid}.{self.role}.xmit",
                snap,
                lambda: self.btl.am_send(self.peer("frag"), header, payload=payload),
            )
        else:
            self.btl.am_send(self.peer("frag"), header, payload=payload)
        if not self.reliable:
            return
        policy = self.proc.config.retry
        delay = policy.rto * policy.backoff**attempt

        def fire() -> None:
            self._retrans_timers.pop(i, None)
            if self._closed or i in self.acked:
                return
            if attempt >= policy.max_retries:
                exc = TransferTimeout(
                    f"{self.tid}: fragment {i} unACKed after "
                    f"{policy.max_retries} retransmissions"
                )
                if self._all_acked is not None and not self._all_acked.done:
                    self._all_acked.fail(exc)
                self._abort(exc)
                return
            self._transmit(i, header, payload, attempt + 1, snap=snap)

        self._retrans_timers[i] = self.proc.sim.call_after(delay, fire)

    # -- receiver reliability: duplicate suppression --------------------------
    def frag_is_dup(self, pkt) -> bool:
        """True when this ``frag`` notification was already seen.

        Duplicates of *completed* fragments are re-ACKed (the original
        ACK may have been the loss); duplicates of in-flight fragments
        are silently dropped — their ACK is already on the way.
        """
        i = int(pkt.header["i"])
        if i not in self._frags_seen:
            self._frags_seen.add(i)
            return False
        self.stats.dup_frags_dropped += 1
        self.proc.metrics.counter("pml.dup_frags_dropped").inc()
        if i in self._frags_done:
            self._reack(i)
        return True

    def frag_done(self, i: int) -> None:
        """Mark a fragment fully processed (its ACK has been sent)."""
        self._frags_done.add(int(i))
        if _san.RACE is not None:
            self._done_snaps[int(i)] = _san.RACE.snapshot()

    def _reack(self, i: int) -> None:
        """Re-ACK a completed fragment (the original ACK may be lost).

        The re-ACK is gated on ``_frags_done`` membership, which is only
        set after the unpack chain retired the fragment — so it carries
        the ``frag_done``-time clock snapshot to keep that ordering
        visible to the race detector even though the sending context is
        the dispatcher loop, not the unpack chain.
        """
        i = int(i)
        snap = self._done_snaps.get(i)
        if _san.RACE is not None and snap is not None:
            _san.RACE.deliver_am(
                f"{self.tid}.{self.role}.reack",
                snap,
                lambda: self.btl.am_send(self.peer("ack"), {"i": i}),
            )
        else:
            self.btl.am_send(self.peer("ack"), {"i": i})

    def seal(self) -> None:
        """Keep answering late retransmissions after the transfer ends.

        Receiver side: a dropped final ACK makes the sender retransmit a
        fragment the receiver has already retired and unbound; the
        tombstone handler re-ACKs anything that still arrives so the
        sender can finish.  Sender side: a duplicated or delayed ACK can
        surface after the transfer completed and the ``ack`` handler was
        unbound; the tombstone swallows it.
        """
        if not self.reliable:
            return
        if self.role == "r":
            name = f"x{self.tid}.{self.role}.frag"

            def tombstone(pkt, _btl) -> None:
                self.proc.metrics.counter("pml.late_retransmits").inc()
                self._reack(pkt.header["i"])

        else:
            name = f"x{self.tid}.{self.role}.ack"

            def tombstone(pkt, _btl) -> None:
                self.stats.dup_acks_dropped += 1
                self.proc.metrics.counter("pml.dup_acks_dropped").inc()

        self.proc.unregister_handler(name)
        self.proc.register_handler(name, tombstone)

    def close(self) -> None:
        """Cancel every outstanding retransmit timer (transfer is over)."""
        self._closed = True
        for timer in self._retrans_timers.values():
            timer.cancel()
        self._retrans_timers.clear()

    # -- observability helpers ----------------------------------------------
    def ranges(self) -> list[tuple[int, int]]:
        """The transfer's fragment plan, recorded into the stats record."""
        r = byte_ranges(self.total, self.frag_bytes)
        self.stats.fragments = len(r)
        return r

    def frag_begin(self) -> None:
        """One more fragment in flight (tracks the high-water mark)."""
        self._in_flight += 1
        if self._in_flight > self.stats.max_in_flight:
            self.stats.max_in_flight = self._in_flight

    def frag_end(self) -> None:
        """One fragment retired."""
        self._in_flight = max(0, self._in_flight - 1)

    def acquire_credit(self) -> Future:
        """``credits.acquire()`` that accounts blocked time and in-flight."""
        t0 = self.proc.sim.now
        fut = self.credits.acquire()

        def granted(_fut: Future) -> None:
            self.stats.credit_wait_s += self.proc.sim.now - t0
            self.frag_begin()

        fut.add_callback(granted)
        return self._guard(fut)

    def release_credit(self) -> None:
        """``credits.release()`` that retires one in-flight fragment."""
        self.frag_end()
        self.credits.release()

    # -- handler helpers -----------------------------------------------------
    def bind(self, suffix: str, fn) -> str:
        """Register a role-qualified AM handler for this transfer."""
        name = f"x{self.tid}.{self.role}.{suffix}"
        self.proc.register_handler(name, fn)
        return name

    def bind_inbox(self, suffix: str) -> str:
        """Route an AM handler's packets into this transfer's inbox."""
        return self.bind(suffix, lambda pkt, _btl: self.inbox.put(pkt))

    def bind_credit(self, suffix: str) -> str:
        """Make an AM handler release one pipeline credit per packet."""
        return self.bind(suffix, lambda pkt, _btl: self.release_credit())

    def unbind_all(self, *suffixes: str) -> None:
        """Remove this side's handlers for the given suffixes."""
        for s in suffixes:
            self.proc.unregister_handler(f"x{self.tid}.{self.role}.{s}")

    def peer(self, suffix: str) -> str:
        """Handler name on the peer side of the same transfer."""
        other = "r" if self.role == "s" else "s"
        return f"x{self.tid}.{other}.{suffix}"


class CpuSideJob:
    """Host-side pack/unpack charged to the node's CPU pack engine.

    The symmetric counterpart of :class:`repro.gpu_engine.engine.PackJob`
    for buffers living in host memory (the traditional datatype engine).
    """

    def __init__(
        self,
        proc: "MpiProcess",
        dt: Datatype,
        count: int,
        buf: Buffer,
        direction: str,
    ) -> None:
        self.proc = proc
        self.node = proc.node
        self.direction = direction
        if _san.MEM is not None:
            _san.MEM.check_cpu_path(buf, what=f"CpuSideJob({direction})")
        # Convertor construction (canonicalize + plan selection + strided
        # views) dominates small-message cost, so reuse one per
        # (direction, count, datatype, buffer).  The range API is
        # stateless, making reuse safe.  Cache values hold strong refs to
        # dt/buf, so the id() keys can never be recycled while an entry
        # lives; the identity check makes a hit unambiguous.
        cache = proc._convertor_cache
        key = (direction, count, id(dt), id(buf))
        hit = cache.get(key)
        if hit is not None and hit[0] is dt and hit[1] is buf:
            self.convertor = hit[2]
        else:
            if len(cache) >= 512:
                cache.clear()
            conv = Convertor(dt, count, buf.bytes, direction)
            cache[key] = (dt, buf, conv)
            self.convertor = conv
        self.contiguous = dt.is_contiguous
        self.buf = buf
        self.total = dt.size * count

    def process_range(self, lo: int, hi: int, stage) -> Future:
        """Pack [lo, hi) into ``stage`` / unpack ``stage`` into [lo, hi).

        ``stage`` may be a :class:`Buffer` or a raw ``uint8`` view (e.g. an
        Active Message payload).
        """
        n = hi - lo
        if isinstance(stage, Buffer):
            if self.direction != "pack" and _san.MEM is not None:
                # unpack reads the staging segment; flag slots nothing
                # filled (before .bytes conservatively marks them valid)
                _san.MEM.check_read(stage, 0, n, what=f"cpu-unpack[{lo}:{hi}]")
            view = stage.bytes
        else:
            view = stage
        if _san.RACE is not None:
            packing = self.direction == "pack"
            _san.RACE.record(
                self.buf, 0, self.buf.nbytes, not packing,
                label=f"cpu-{self.direction}[{lo}:{hi}]",
            )
            if isinstance(stage, Buffer):
                _san.RACE.record(
                    stage, 0, n, packing,
                    label=f"cpu-{self.direction}-stage[{lo}:{hi}]",
                )
        if self.direction == "pack":
            def move() -> None:
                self.convertor.pack_range(view, lo, hi)
        else:
            def move() -> None:
                self.convertor.unpack_range(view, lo, hi)
        if self.contiguous:
            # no transformation needed — a straight memcpy
            return self.node.cpu_memcpy_op(n, fn=move, label=f"cpu-{self.direction}")
        return self.node.cpu_pack_op(n, fn=move, label=f"cpu-{self.direction}")
