"""Copy-in/copy-out protocol: GPU data staged through host memory.

"In some cases, due to hardware limitations or system level security
restrictions, the IPC is disabled and GPU RDMA transfers are not
available ... we provide a copy in/copy out protocol, where all data
transfers go through host memory" (Section 4.2).  This is also the path
the paper uses for **inter-node** transfers: staging through host with
the pipeline beats GPUDirect RDMA beyond ~30 KB.

Pipelining overlaps, per fragment: GPU pack kernel, device-to-host
movement (explicit memcpy or — with UMA *zero copy* — implicitly inside
the kernel), wire transfer, host-to-device movement, and GPU unpack.
Either endpoint may instead be a host buffer, in which case its side
degenerates to the CPU convertor ("extremely similar to the case when
one process uses device memory while the other only uses host memory").
"""

from __future__ import annotations

from repro.mpi.protocols.common import CpuSideJob, SideInfo, TransferState

__all__ = ["sender", "receiver"]


def _ring(state: TransferState, zero_copy: bool):
    """Acquire the host staging ring (optionally UMA-mapped) and segments."""
    nbytes = state.frag_bytes * state.depth
    ring = state.proc.acquire_staging("host", nbytes, zero_copy_map=zero_copy)
    segs = [
        ring[i * state.frag_bytes : (i + 1) * state.frag_bytes]
        for i in range(state.depth)
    ]
    return ring, segs


def sender(state: TransferState, s_info: SideInfo, r_info: SideInfo, cts: dict):
    """Sender side of the copy-in/out pipeline (pack -> stage -> wire)."""
    proc = state.proc
    cfg = proc.config
    ranges = state.ranges()
    all_acked = state.expect_acks(len(ranges))
    state.bind("ack", state.on_ack)
    if not ranges:
        # zero-byte message: nothing to stage, nothing to pipeline
        state.unbind_all("ack")
        return state.total

    on_device = s_info.loc == "device"
    zero_copy = on_device and cfg.zero_copy
    ring, segs = _ring(state, zero_copy)
    dev_stage = None
    if on_device and not zero_copy:
        dev_stage = proc.acquire_staging(
            "device", state.frag_bytes * state.depth
        )
    try:
        if on_device:
            job = proc.engine.pack_job(state.dt, state.count, state.buf, cfg.engine)
        else:
            job = CpuSideJob(proc, state.dt, state.count, state.buf, "pack")
        for i, (lo, hi) in enumerate(ranges):
            yield state.acquire_credit()
            seg = segs[i % state.depth][: hi - lo]
            if on_device:
                frag = job.range_fragment(i, lo, hi)
                if zero_copy:
                    # the pack kernel streams straight into the mapped
                    # host segment, PCIe co-occupied (Fig 7's "cpy")
                    yield from job.process_fragment(frag, seg)
                else:
                    dseg = segs_dev(dev_stage, state, i)[: hi - lo]
                    yield from job.process_fragment(frag, dseg)
                    yield proc.gpu.memcpy_d2h(seg, dseg)
            else:
                yield job.process_range(lo, hi, seg)
            state.send_frag(
                {"i": i, "lo": lo, "hi": hi}, payload=seg.bytes
            )
        yield all_acked
    finally:
        state.proc.release_staging("host", ring, zero_copy_map=zero_copy)
        if dev_stage is not None:
            proc.release_staging("device", dev_stage)
        state.unbind_all("ack")
    return state.total


def segs_dev(dev_stage, state: TransferState, i: int):
    """Device-staging ring segment for fragment ``i``."""
    lo = (i % state.depth) * state.frag_bytes
    return dev_stage[lo : lo + state.frag_bytes]


def receiver(state: TransferState, s_info: SideInfo, r_info: SideInfo):
    """Receiver side of the copy-in/out pipeline (deposit -> unpack).

    Duplicate fragment notifications (retransmissions whose original made
    it through) are suppressed and re-ACKed, so a lossy transport still
    unpacks each fragment exactly once.
    """
    proc, btl = state.proc, state.btl
    cfg = proc.config
    n_frags = len(state.ranges())
    if n_frags == 0:
        state.unbind_all("frag")
        return state.total
    on_device = r_info.loc == "device"
    zero_copy = on_device and cfg.zero_copy
    ring, segs = _ring(state, zero_copy)
    dev_stage = None
    if on_device and not zero_copy:
        dev_stage = proc.acquire_staging("device", state.frag_bytes * state.depth)
    try:
        if on_device:
            job = proc.engine.unpack_job(state.dt, state.count, state.buf, cfg.engine)
        else:
            job = CpuSideJob(proc, state.dt, state.count, state.buf, "unpack")
        fresh = 0
        while fresh < n_frags:
            pkt = yield state.inbox.get()
            if state.frag_is_dup(pkt):
                continue
            fresh += 1
            state.frag_begin()
            i, lo, hi = pkt.header["i"], pkt.header["lo"], pkt.header["hi"]
            seg = segs[i % state.depth][: hi - lo]
            # the wire deposited the fragment into our posted staging
            seg.bytes[:] = pkt.payload[: hi - lo]
            if on_device:
                frag = job.range_fragment(i, lo, hi)
                if zero_copy:
                    yield from job.process_fragment(frag, seg)
                else:
                    dseg = segs_dev(dev_stage, state, i)[: hi - lo]
                    yield proc.gpu.memcpy_h2d(dseg, seg)
                    yield from job.process_fragment(frag, dseg)
            else:
                yield job.process_range(lo, hi, seg.bytes)
            state.frag_end()
            btl.am_send(state.peer("ack"), {"i": i})
            state.frag_done(i)
    finally:
        proc.release_staging("host", ring, zero_copy_map=zero_copy)
        if dev_stage is not None:
            proc.release_staging("device", dev_stage)
        state.unbind_all("frag")
    return state.total
