"""Rendezvous transfer protocols.

Three pipelines, selected by the receiver during the handshake
(Section 4.1: "the packing/unpacking is entirely driven by the receiver
acting upon a GET protocol, providing an opportunity for a handshake
prior to the beginning of the operation"):

* :mod:`repro.mpi.protocols.host_pipeline` — both buffers in host memory
  (the traditional Open MPI path; the paper's ``CPU`` baseline curves);
* :mod:`repro.mpi.protocols.ipc_rdma` — intra-node GPU RDMA over CUDA
  IPC with the Fig 4 fragment ring, including the contiguous fast paths;
* :mod:`repro.mpi.protocols.copy_in_out` — GPU data staged through host
  memory (inter-node, IPC-disabled, or mixed host/device pairs), with
  optional UMA zero-copy.
"""

from repro.mpi.protocols.common import SideInfo, TransferState, choose_protocol
from repro.mpi.protocols import copy_in_out, host_pipeline, ipc_rdma

SENDERS = {
    "host": host_pipeline.sender,
    "copyinout": copy_in_out.sender,
    "ipc_rdma": ipc_rdma.sender,
}

RECEIVERS = {
    "host": host_pipeline.receiver,
    "copyinout": copy_in_out.receiver,
    "ipc_rdma": ipc_rdma.receiver,
}

__all__ = [
    "SideInfo",
    "TransferState",
    "choose_protocol",
    "SENDERS",
    "RECEIVERS",
]
