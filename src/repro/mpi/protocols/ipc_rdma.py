"""Pipelined RDMA protocol over CUDA IPC (Section 4.1, Figure 4).

Intra-node GPU-to-GPU rendezvous.  The sender exposes a device-resident
fragment ring through a CUDA IPC handle shipped in the connection
request; the receiver maps it once (registration cached), then drives the
transfer: the sender packs fragment *i* while the receiver unpacks
fragment *i-1*, synchronizing only through per-fragment Active Messages
("While the sender works on packing a fragment, the receiver is able to
unpack the previous fragment, and then notify the sender that the
fragment is now ready for reuse").

The handshake also negotiates the contiguous fast paths:

* sender contiguous — "the receiver can use the sender buffer directly
  for its unpack operation, without the need for further
  synchronizations";
* receiver contiguous — "the sender is then allowed to pack directly
  into the receiver buffer";
* both contiguous — a plain one-sided GET.

And the receiver may stage each packed fragment into a local GPU buffer
before unpacking — grouping small remote reads into one PCIe-friendly
copy, the 10-15 % win of Section 5.2.1 — controlled by
``MpiConfig.receiver_local_staging``.

Robustness (docs/ROBUSTNESS.md): a receiver whose ``cudaIpcOpenMemHandle``
fails steers the still-open handshake down to the copy-in/out protocol;
a receiver that cannot allocate its optional local staging unpacks
straight from the remote ring; sender-side opens (which have no
renegotiation path) get bounded retry; fragment notifications and ACKs
ride the retransmit/dedupe layer in :class:`TransferState`.
"""

from __future__ import annotations

from repro.cuda.ipc import IpcMemHandle
from repro.faults.plan import IpcOpenError
from repro.mpi.protocols.common import SideInfo, TransferState, open_with_retry
from repro.mpi.protocols.copy_in_out import receiver as copyinout_receiver
from repro.sim.core import all_of

__all__ = ["sender", "receiver", "transfer_mode"]


def transfer_mode(s_info: SideInfo, r_info: SideInfo) -> str:
    """Pick the Fig-4 mode from the two sides' contiguity."""
    if s_info.contiguous and r_info.contiguous:
        return "both_contig"
    if s_info.contiguous:
        return "send_contig"
    if r_info.contiguous:
        return "recv_contig"
    return "general"


# ---------------------------------------------------------------------------
# sender
# ---------------------------------------------------------------------------


def sender(state: TransferState, s_info: SideInfo, r_info: SideInfo, cts: dict):
    """Sender side of the pipelined RDMA protocol (mode-dispatched)."""
    mode = cts["mode"]
    state.stats.mode = mode
    if mode == "general":
        return (yield from _sender_general(state, cts))
    if mode == "general_put":
        return (yield from _sender_put(state, cts))
    if mode == "recv_contig":
        return (yield from _sender_into_receiver(state, r_info, cts))
    # send_contig / both_contig: one-sided GET by the receiver; just wait
    done = yield state.inbox.get()
    assert done.header.get("done")
    return state.total


def _sender_general(state: TransferState, cts: dict):
    """Pack fragments into the ring; notify; recycle on ACK.

    Notifications ride the reliability layer: unACKed fragments are
    re-notified with backoff and duplicate ACKs are suppressed, so the
    credit window (and therefore ring-slot reuse) stays consistent even
    over a faulted transport.
    """
    proc = state.proc
    ring = state.ring  # our device ring, allocated by the PML pre-RTS
    ranges = state.ranges()
    all_acked = state.expect_acks(len(ranges))
    state.bind("ack", state.on_ack)
    try:
        job = proc.engine.pack_job(
            state.dt, state.count, state.buf, proc.config.engine
        )
        for i, (lo, hi) in enumerate(ranges):
            yield state.acquire_credit()
            # the ring is the data path: don't repack a slot whose
            # previous occupant is still unACKed (lost-notification case)
            yield state.slot_free(i)
            slot = i % state.depth
            seg = ring[slot * state.frag_bytes :][: hi - lo]
            frag = job.range_fragment(i, lo, hi)
            yield from job.process_fragment(frag, seg)
            state.send_frag({"i": i, "lo": lo, "hi": hi, "slot": slot})
        yield all_acked
    finally:
        state.unbind_all("ack")
    return state.total


def _sender_into_receiver(state: TransferState, r_info: SideInfo, cts: dict):
    """Receiver is contiguous: pack kernels write its buffer directly."""
    proc, btl = state.proc, state.btl
    handle: IpcMemHandle = cts["handle"]
    mapped = yield from open_with_retry(state, handle)
    job = proc.engine.pack_job(state.dt, state.count, state.buf, proc.config.engine)
    for i, (lo, hi) in enumerate(state.ranges()):
        frag = job.range_fragment(i, lo, hi)
        yield from job.process_fragment(frag, mapped[lo:hi])
    btl.am_send(state.peer("done"), {"done": True})
    return state.total


# ---------------------------------------------------------------------------
# receiver
# ---------------------------------------------------------------------------


def receiver(state: TransferState, s_info: SideInfo, r_info: SideInfo):
    """Receiver side of the pipelined RDMA protocol (mode-dispatched)."""
    mode = transfer_mode(s_info, r_info)
    state.stats.mode = mode
    if mode == "general":
        if state.proc.config.rdma_mode == "put":
            return (yield from _receiver_put(state, s_info, r_info))
        return (yield from _receiver_general(state, s_info, r_info))
    if mode == "send_contig":
        return (yield from _receiver_from_sender(state, s_info, r_info))
    if mode == "recv_contig":
        return (yield from _receiver_exposed(state, r_info))
    return (yield from _receiver_get_contig(state, s_info, r_info))


def _cts(state: TransferState, r_info: SideInfo, mode: str, **extra) -> None:
    state.btl.am_send(
        state.peer("cts"),
        {"protocol": "ipc_rdma", "mode": mode, "side": r_info, **extra},
    )


def _fallback_copyinout(state: TransferState, s_info: SideInfo, r_info: SideInfo):
    """IPC open failed: steer the handshake down to copy-in/out.

    The CTS has not been sent yet, so the receiver still controls the
    protocol choice — it answers ``copyinout`` and both sides run the
    host-staged pipeline instead of crashing the transfer.
    """
    proc = state.proc
    proc.metrics.counter("pml.fallback.copyinout").inc()
    state.stats.protocol = "copyinout"
    state.stats.mode = ""
    state.stats.fallback = "copyinout"
    state.btl.am_send(
        state.peer("cts"), {"protocol": "copyinout", "side": r_info}
    )
    return (yield from copyinout_receiver(state, s_info, r_info))


def _acquire_local_stage(state: TransferState):
    """The optional receiver-side staging ring, degrading gracefully.

    Under allocation pressure (or an injected staging fault) the
    receiver simply unpacks straight from the remote ring — correct,
    just without the Section 5.2.1 grouping win.
    """
    proc = state.proc
    stage = proc.acquire_staging(
        "device", state.frag_bytes * state.depth, optional=True
    )
    if stage is None:
        state.stats.fallback = "direct_unpack"
        proc.metrics.counter("pml.fallback.direct_unpack").inc()
    return stage


def _receiver_general(state: TransferState, s_info: SideInfo, r_info: SideInfo):
    proc, btl = state.proc, state.btl
    cfg = proc.config
    # map the sender's ring (one-time RDMA connection establishment)
    try:
        mapped_ring = yield s_info.handle.open(
            proc.gpu, proc.ipc_cache, faults=proc.faults
        )
    except IpcOpenError:
        return (yield from _fallback_copyinout(state, s_info, r_info))
    sender_gpu = s_info.handle.source_gpu
    cross_gpu = sender_gpu is not proc.gpu
    local_stage = None
    if cfg.receiver_local_staging and cross_gpu:
        local_stage = _acquire_local_stage(state)
    _cts(state, r_info, "general")
    try:
        job = proc.engine.unpack_job(state.dt, state.count, state.buf, cfg.engine)

        def handle(pkt):
            """Per-fragment chain: [stage copy] -> unpack -> ACK.

            Spawned per fragment so the P2P copy of fragment i+1 overlaps
            the unpack kernel of fragment i; the p2p link and the unpack
            stream each serialize their own stage.
            """
            i, lo, hi = pkt.header["i"], pkt.header["lo"], pkt.header["hi"]
            slot = pkt.header["slot"]
            state.frag_begin()
            remote_seg = mapped_ring[slot * state.frag_bytes :][: hi - lo]
            frag = job.range_fragment(i, lo, hi)
            # CUDA IPC event wait before touching the remote-owned segment
            # — serializes on the engine the fragment will use
            sync = proc.node.params.ipc_frag_sync_cost
            engine_link = (
                proc.gpu.p2p_links[sender_gpu.name]
                if cross_gpu
                else proc.gpu.copy_engine
            )
            yield engine_link.transfer(0, extra_overhead=sync, label="ipc-sync")
            if local_stage is not None:
                lseg = local_stage[slot * state.frag_bytes :][: hi - lo]
                yield proc.gpu.memcpy_peer(lseg, remote_seg, sender_gpu)
                yield from job.process_fragment(frag, lseg)
            else:
                # unpack straight out of the (possibly remote) ring segment
                yield from job.process_fragment(frag, remote_seg)
            state.frag_end()
            btl.am_send(state.peer("ack"), {"i": i})
            state.frag_done(i)

        n_frags = len(state.ranges())
        chains = []
        fresh = 0
        while fresh < n_frags:
            pkt = yield state.inbox.get()
            if state.frag_is_dup(pkt):
                continue
            fresh += 1
            chains.append(proc.sim.spawn(handle(pkt), label="rdma-unpack"))
        yield all_of(proc.sim, chains)
    finally:
        if local_stage is not None:
            proc.release_staging("device", local_stage)
    return state.total


def _receiver_from_sender(
    state: TransferState, s_info: SideInfo, r_info: SideInfo
):
    """Sender contiguous: unpack directly from its mapped user buffer."""
    proc, btl = state.proc, state.btl
    cfg = proc.config
    try:
        mapped = yield s_info.handle.open(
            proc.gpu, proc.ipc_cache, faults=proc.faults
        )
    except IpcOpenError:
        return (yield from _fallback_copyinout(state, s_info, r_info))
    sender_gpu = s_info.handle.source_gpu
    cross_gpu = sender_gpu is not proc.gpu
    local_stage = None
    if cfg.receiver_local_staging and cross_gpu:
        local_stage = _acquire_local_stage(state)
    _cts(state, r_info, "send_contig")
    job = proc.engine.unpack_job(state.dt, state.count, state.buf, cfg.engine)

    def handle(i: int, lo: int, hi: int):
        frag = job.range_fragment(i, lo, hi)
        src = mapped[lo:hi]
        sync = proc.node.params.ipc_frag_sync_cost
        engine_link = (
            proc.gpu.p2p_links[sender_gpu.name]
            if cross_gpu
            else proc.gpu.copy_engine
        )
        yield engine_link.transfer(0, extra_overhead=sync, label="ipc-sync")
        if local_stage is not None:
            slot = i % state.depth
            lseg = local_stage[slot * state.frag_bytes :][: hi - lo]
            yield proc.gpu.memcpy_peer(lseg, src, sender_gpu)
            yield from job.process_fragment(frag, lseg)
        else:
            yield from job.process_fragment(frag, src)
        state.release_credit()

    try:
        chains = []
        for i, (lo, hi) in enumerate(state.ranges()):
            # the credit window bounds how many staging slots are in flight
            yield state.acquire_credit()
            chains.append(proc.sim.spawn(handle(i, lo, hi), label="get-unpack"))
        yield all_of(proc.sim, chains)
    finally:
        if local_stage is not None:
            proc.release_staging("device", local_stage)
    btl.am_send(state.peer("done"), {"done": True})
    return state.total


def _receiver_exposed(state: TransferState, r_info: SideInfo):
    """Receiver contiguous: expose the buffer; sender packs into it."""
    r_info.handle = IpcMemHandle.get(state.buf)
    _cts(state, r_info, "recv_contig", handle=r_info.handle)
    done = yield state.inbox.get()
    assert done.header.get("done")
    return state.total


def _receiver_get_contig(
    state: TransferState, s_info: SideInfo, r_info: SideInfo
):
    """Both contiguous: a single one-sided GET of the whole message."""
    proc, btl = state.proc, state.btl
    try:
        mapped = yield s_info.handle.open(
            proc.gpu, proc.ipc_cache, faults=proc.faults
        )
    except IpcOpenError:
        return (yield from _fallback_copyinout(state, s_info, r_info))
    sender_gpu = s_info.handle.source_gpu
    _cts(state, r_info, "both_contig")
    if sender_gpu is proc.gpu:
        yield proc.gpu.memcpy_d2d(state.buf, mapped[: state.total])
    else:
        # pipelined GET: fragments hide per-op overhead behind the wire
        futs = []
        for lo, hi in state.ranges():
            futs.append(
                proc.gpu.memcpy_peer(
                    state.buf[lo:hi], mapped[lo:hi], sender_gpu
                )
            )
        for f in futs:
            yield f
    btl.am_send(state.peer("done"), {"done": True})
    return state.total


# ---------------------------------------------------------------------------
# PUT-driven general mode (Section 4.1's alternative direction)
# ---------------------------------------------------------------------------


def _receiver_put(state: TransferState, s_info: SideInfo, r_info: SideInfo):
    """Expose a local ring; the sender packs into it through the window.

    The staging copy of the GET flow disappears — fragments land already
    local — at the price of the sender's kernels writing through PCIe at
    the remote-access efficiency.  (The ring here is the transfer
    mechanism itself, not an optional optimization, so its allocation is
    not subject to staging-pressure degradation.)
    """
    proc, btl = state.proc, state.btl
    cfg = proc.config
    state.stats.mode = "general_put"
    ring = proc.acquire_staging("device", state.frag_bytes * state.depth)
    handle = IpcMemHandle.get(ring)
    _cts(state, r_info, "general_put", handle=handle)
    try:
        job = proc.engine.unpack_job(state.dt, state.count, state.buf, cfg.engine)

        def handle_frag(pkt):
            """Per-fragment chain: unpack the locally landed bytes, ACK."""
            i, lo, hi = pkt.header["i"], pkt.header["lo"], pkt.header["hi"]
            slot = pkt.header["slot"]
            state.frag_begin()
            seg = ring[slot * state.frag_bytes :][: hi - lo]
            frag = job.range_fragment(i, lo, hi)
            yield from job.process_fragment(frag, seg)
            state.frag_end()
            btl.am_send(state.peer("ack"), {"i": i})
            state.frag_done(i)

        n_frags = len(state.ranges())
        chains = []
        fresh = 0
        while fresh < n_frags:
            pkt = yield state.inbox.get()
            if state.frag_is_dup(pkt):
                continue
            fresh += 1
            chains.append(proc.sim.spawn(handle_frag(pkt), label="put-unpack"))
        yield all_of(proc.sim, chains)
    finally:
        proc.release_staging("device", ring)
    return state.total


def _sender_put(state: TransferState, cts: dict):
    """Pack fragments straight into the receiver's exposed ring."""
    proc = state.proc
    handle: IpcMemHandle = cts["handle"]
    mapped = yield from open_with_retry(state, handle)
    target_gpu = handle.source_gpu
    cross_gpu = target_gpu is not proc.gpu
    ranges = state.ranges()
    all_acked = state.expect_acks(len(ranges))
    state.bind("ack", state.on_ack)
    try:
        job = proc.engine.pack_job(state.dt, state.count, state.buf,
                                   proc.config.engine)
        for i, (lo, hi) in enumerate(ranges):
            yield state.acquire_credit()
            # the receiver's ring is the data path (see _sender_general)
            yield state.slot_free(i)
            slot = i % state.depth
            seg = mapped[slot * state.frag_bytes :][: hi - lo]
            # cross-process write fence before reusing the remote slot
            sync = proc.node.params.ipc_frag_sync_cost
            engine_link = (
                proc.gpu.p2p_links[target_gpu.name]
                if cross_gpu
                else proc.gpu.copy_engine
            )
            yield engine_link.transfer(0, extra_overhead=sync, label="ipc-sync")
            frag = job.range_fragment(i, lo, hi)
            yield from job.process_fragment(frag, seg)
            state.send_frag({"i": i, "lo": lo, "hi": hi, "slot": slot})
        yield all_acked
    finally:
        state.unbind_all("ack")
    return state.total
