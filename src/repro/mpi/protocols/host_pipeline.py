"""Host-memory rendezvous pipeline (the traditional Open MPI path).

"Open MPI handles non-contiguous datatypes on the CPU by packing them
into a temporary CPU buffer prior to communication" (Section 4.2).  The
sender CPU-packs fragments into a staging buffer, ships each as an
Active Message payload, and the receiver CPU-unpacks; acknowledgements
implement the flow-control window.  This is also the paper's ``CPU``
comparison configuration.
"""

from __future__ import annotations

from repro.mpi.protocols.common import CpuSideJob, SideInfo, TransferState
from repro.sim.core import Future

__all__ = ["sender", "receiver"]


def sender(state: TransferState, s_info: SideInfo, r_info: SideInfo, cts: dict):
    """Sender side: pack fragments, send, respect the credit window."""
    proc, btl = state.proc, state.btl
    ranges = state.ranges()
    n_frags = len(ranges)
    acks = {"n": 0}
    all_acked = Future(proc.sim, label=f"{state.tid}.all-acked")

    def on_ack(pkt, _btl) -> None:
        acks["n"] += 1
        state.release_credit()
        if acks["n"] == n_frags:
            all_acked.resolve(None)

    state.bind("ack", on_ack)
    job = CpuSideJob(proc, state.dt, state.count, state.buf, "pack")
    stage = None
    if not job.contiguous:
        stage = proc.node.host_memory.alloc(state.frag_bytes, label="snd-stage")
    try:
        for i, (lo, hi) in enumerate(ranges):
            yield state.acquire_credit()
            if job.contiguous:
                payload = state.buf.bytes[lo:hi]
            else:
                yield job.process_range(lo, hi, stage)
                payload = stage.bytes[: hi - lo]
            btl.am_send(
                state.peer("frag"),
                {"i": i, "lo": lo, "hi": hi},
                payload=payload,
            )
        yield all_acked
    finally:
        if stage is not None:
            stage.free()
        state.unbind_all("ack")
    return state.total


def receiver(state: TransferState, s_info: SideInfo, r_info: SideInfo):
    """Receiver side: unpack each arriving fragment, acknowledge it."""
    proc, btl = state.proc, state.btl
    ranges = state.ranges()
    job = CpuSideJob(proc, state.dt, state.count, state.buf, "unpack")
    try:
        for _ in ranges:
            pkt = yield state.inbox.get()
            state.frag_begin()
            lo, hi = pkt.header["lo"], pkt.header["hi"]
            yield job.process_range(lo, hi, pkt.payload)
            state.frag_end()
            btl.am_send(state.peer("ack"), {"i": pkt.header["i"]})
    finally:
        state.unbind_all("frag")
    return state.total
