"""Host-memory rendezvous pipeline (the traditional Open MPI path).

"Open MPI handles non-contiguous datatypes on the CPU by packing them
into a temporary CPU buffer prior to communication" (Section 4.2).  The
sender CPU-packs fragments into a staging buffer, ships each as an
Active Message payload, and the receiver CPU-unpacks; acknowledgements
implement the flow-control window.  This is also the paper's ``CPU``
comparison configuration.
"""

from __future__ import annotations

from repro.mpi.protocols.common import CpuSideJob, SideInfo, TransferState

__all__ = ["sender", "receiver"]


def sender(state: TransferState, s_info: SideInfo, r_info: SideInfo, cts: dict):
    """Sender side: pack fragments, send, respect the credit window.

    Fragment notifications ride the reliability layer: unACKed fragments
    are retransmitted with backoff, duplicate ACKs are suppressed, and a
    zero-fragment (empty) message completes immediately.
    """
    proc = state.proc
    ranges = state.ranges()
    all_acked = state.expect_acks(len(ranges))
    state.bind("ack", state.on_ack)
    job = CpuSideJob(proc, state.dt, state.count, state.buf, "pack")
    stage = None
    if ranges and not job.contiguous:
        stage = proc.node.host_memory.alloc(state.frag_bytes, label="snd-stage")
    try:
        for i, (lo, hi) in enumerate(ranges):
            yield state.acquire_credit()
            if job.contiguous:
                payload = state.buf.bytes[lo:hi]
            else:
                yield job.process_range(lo, hi, stage)
                payload = stage.bytes[: hi - lo]
            state.send_frag({"i": i, "lo": lo, "hi": hi}, payload=payload)
        yield all_acked
    finally:
        if stage is not None:
            stage.free()
        state.unbind_all("ack")
    return state.total


def receiver(state: TransferState, s_info: SideInfo, r_info: SideInfo):
    """Receiver side: unpack each arriving fragment, acknowledge it.

    Retransmitted duplicates are suppressed (re-ACKed when already
    processed), so a lossy transport converges on exactly-once unpack.
    """
    proc, btl = state.proc, state.btl
    n_frags = len(state.ranges())
    if n_frags == 0:
        return state.total
    job = CpuSideJob(proc, state.dt, state.count, state.buf, "unpack")
    fresh = 0
    try:
        while fresh < n_frags:
            pkt = yield state.inbox.get()
            if state.frag_is_dup(pkt):
                continue
            fresh += 1
            state.frag_begin()
            i, lo, hi = pkt.header["i"], pkt.header["lo"], pkt.header["hi"]
            yield job.process_range(lo, hi, pkt.payload)
            state.frag_end()
            btl.am_send(state.peer("ack"), {"i": i})
            state.frag_done(i)
    finally:
        state.unbind_all("frag")
    return state.total
